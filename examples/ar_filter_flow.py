#!/usr/bin/env python3
"""The AR lattice filter through all three synthesis flows.

Reproduces the dissertation's workhorse experiment set on the
reconstructed AR filter:

* Chapter 3 — the simple 4-chip partitioning with the ILP pin-allocation
  checker inside list scheduling, then the constructive Theorem 3.1
  interchip connection;
* Chapter 4 — the general 3-chip partitioning, interchip connection
  synthesized *before* scheduling, unidirectional and bidirectional
  ports, initiation rates 3/4/5;
* Chapter 5 — force-directed scheduling first, interchip connection by
  clique partitioning afterwards.

Run:  python examples/ar_filter_flow.py
"""

from repro import (synthesize_connection_first, synthesize_schedule_first,
                   synthesize_simple)
from repro.designs import (AR_GENERAL_PINS_BIDIR, AR_GENERAL_PINS_UNIDIR,
                           AR_SIMPLE_PINS, ar_general_design,
                           ar_simple_design)
from repro.modules.library import ar_filter_timing
from repro.reporting import (TextTable, bus_allocation_table,
                             interconnect_listing, schedule_listing)


def chapter3():
    print("=" * 72)
    print("Chapter 3: simple partitioning, initiation rate 2")
    print("=" * 72)
    result = synthesize_simple(ar_simple_design(), AR_SIMPLE_PINS,
                               ar_filter_timing(), initiation_rate=2)
    print(schedule_listing(result.schedule))
    print()
    print(interconnect_listing(result.simple_allocation.interconnect))
    print(f"pin-allocation feasibility checks: "
          f"{result.stats['pin_checks']}")
    print(f"pins used: {result.pins_used()}")
    print()


def chapter4():
    print("=" * 72)
    print("Chapter 4: general partitioning, connection before schedule")
    print("=" * 72)
    table = TextTable(["ports", "L", "pipe", "buses", "pins/partition",
                       "reassignments"])
    for label, pins in (("unidirectional", AR_GENERAL_PINS_UNIDIR),
                        ("bidirectional", AR_GENERAL_PINS_BIDIR)):
        for rate in (3, 4, 5):
            result = synthesize_connection_first(
                ar_general_design(), pins, ar_filter_timing(), rate)
            table.add(label, rate, result.pipe_length,
                      len(result.interconnect.buses),
                      result.pins_used(),
                      result.stats["reassignments"])
    print(table.render())
    print()

    # Show one bus allocation in full (the Table 4.4 shape).
    result = synthesize_connection_first(
        ar_general_design(), AR_GENERAL_PINS_UNIDIR,
        ar_filter_timing(), 3)
    print(bus_allocation_table(result.graph, result.schedule,
                               result.interconnect, result.assignment))
    print()


def chapter5():
    print("=" * 72)
    print("Chapter 5: schedule first (FDS), then clique partitioning")
    print("=" * 72)
    table = TextTable(["L", "pipe budget", "pipe", "pins/partition",
                       "units (partition, type)"])
    for rate, pipe in ((3, 8), (4, 9), (5, 10)):
        result = synthesize_schedule_first(
            ar_general_design(), AR_GENERAL_PINS_UNIDIR,
            ar_filter_timing(), rate, pipe_length=pipe)
        units = ", ".join(f"P{p}:{t}={n}"
                          for (p, t), n in sorted(result.resources.items()))
        table.add(rate, pipe, result.pipe_length, result.pins_used(),
                  units)
    print(table.render())
    print()


def main():
    chapter3()
    chapter4()
    chapter5()


if __name__ == "__main__":
    main()
