#!/usr/bin/env python3
"""A transposed FIR filter across four chips: pins vs rate vs pipe.

A third DSP workload (beyond the dissertation's AR and elliptic
filters): sixteen taps in transposed form, four per chip, the input
sample fanned out to every chip as one multi-transfer value, and the
inter-tap carries crossing chips through degree-1 recursive delays.

The sweep shows the basic economics of pin-constrained pipelining: a
higher initiation rate multiplexes more transfers over the same pins,
and the cycle-accurate simulator confirms every design executes
correctly.

Run:  python examples/fir_multichip.py
"""

from repro import synthesize_connection_first
from repro.designs import FIR_PINS, fir_design
from repro.modules.library import elliptic_filter_timing
from repro.reporting import TextTable, interconnect_listing
from repro.sim import simulate_result


def main():
    timing = elliptic_filter_timing()
    table = TextTable(["rate", "pipe", "buses", "total pins",
                       "simulation"],
                      title="16-tap FIR over 4 chips")
    last = None
    for rate in (2, 3, 4):
        result = synthesize_connection_first(
            fir_design(), FIR_PINS, timing, rate)
        report = simulate_result(result, n_instances=6, seed=rate)
        table.add(rate, result.pipe_length,
                  len(result.interconnect.buses),
                  sum(result.pins_used().values()),
                  f"{report.transfers_checked} transfers OK")
        last = result
    print(table.render())
    print()
    print(interconnect_listing(last.interconnect))

    # The one-value input rides a single bus reaching all four chips.
    xin_buses = {last.assignment.bus_of[f"Xin{c}"] for c in range(1, 5)}
    print(f"\ninput sample transfers share "
          f"{'one bus' if len(xin_buses) == 1 else f'{len(xin_buses)} buses'}")


if __name__ == "__main__":
    main()
