#!/usr/bin/env python3
"""Quickstart: synthesize a small two-chip pipelined design.

Builds a tiny partitioned CDFG by hand, runs the Chapter 4 flow
(connection synthesis, then list scheduling with dynamic bus
reassignment), and prints the schedule, the interchip connection and
the pin usage.

Run:  python examples/quickstart.py
"""

from repro import (CdfgBuilder, ChipSpec, OUTSIDE_WORLD, Partitioning,
                   synthesize_connection_first)
from repro.modules import DesignTiming, HardwareModule, ModuleSet
from repro.reporting import (interconnect_listing, pins_summary,
                             schedule_listing)


def build_design():
    """y = (a*b) + (c*d) computed on chip 1, scaled on chip 2."""
    b = CdfgBuilder("quickstart")
    W = OUTSIDE_WORLD

    # External inputs arrive as transfers from the outside world.
    a = b.io("a", "v.a", source=b.const("src.a", partition=W),
             dests=[], source_partition=W, dest_partition=1)
    c = b.io("c", "v.c", source=b.const("src.c", partition=W),
             dests=[], source_partition=W, dest_partition=1)
    d = b.io("d", "v.d", source=b.const("src.d", partition=W),
             dests=[], source_partition=W, dest_partition=2)

    m1 = b.op("m1", "mul", 1, inputs=[a, c])
    s1 = b.op("s1", "add", 1, inputs=[m1, a])

    # Chip 1's result crosses to chip 2 over a communication bus.
    x1 = b.io("x1", "v.x1", source=s1, dests=[], source_partition=1,
              dest_partition=2)
    m2 = b.op("m2", "mul", 2, inputs=[x1, d])
    s2 = b.op("s2", "add", 2, inputs=[m2, x1])
    b.io("out", "v.out", source=s2, dests=[], source_partition=2,
         dest_partition=W)
    return b.build()


def main():
    graph = build_design()

    # 250 ns control step; 30 ns adders chain behind 210 ns multipliers.
    timing = DesignTiming(
        clock_period=250.0,
        default=ModuleSet.of(
            HardwareModule("adder", "add", delay_ns=30.0),
            HardwareModule("multiplier", "mul", delay_ns=210.0),
        ),
        io_delay_ns=10.0,
    )

    # Two chips with 32 data pins each; the outside world has 64.
    partitioning = Partitioning({
        OUTSIDE_WORLD: ChipSpec(64),
        1: ChipSpec(32),
        2: ChipSpec(32),
    })

    result = synthesize_connection_first(graph, partitioning, timing,
                                         initiation_rate=2)

    print(schedule_listing(result.schedule))
    print()
    print(interconnect_listing(result.interconnect))
    print()
    print(pins_summary(partitioning, result.pins_used(),
                       pipe_length=result.pipe_length))
    print()
    print("self-check:", "OK" if result.verify() == [] else "FAILED")


if __name__ == "__main__":
    main()
