#!/usr/bin/env python3
"""Chapter 7 extensions: conditional I/O sharing and time-division
multiplexing.

Part 1 builds a design whose conditional block straddles two chips —
transfers on mutually exclusive branches never fire in the same
execution instance, so the Figure 7.7 heuristic groups them and the
connection synthesizer lets them share one communication slot (and its
pins).

Part 2 splits a wide transfer into two narrower time-multiplexed
sub-transfers (Figure 7.8), halving the pins at the cost of an extra
transfer cycle.

Run:  python examples/conditional_and_tdm.py
"""

from repro import (CdfgBuilder, ChipSpec, OUTSIDE_WORLD, Partitioning,
                   synthesize_connection_first)
from repro.cdfg.analysis import UnitTiming
from repro.cdfg.transform import insert_time_division_multiplexing
from repro.core.conditional import share_conditionally
from repro.modules import DesignTiming, HardwareModule, ModuleSet
from repro.reporting import interconnect_listing, schedule_listing


def timing():
    return DesignTiming(
        clock_period=100.0,
        default=ModuleSet.of(
            HardwareModule("adder", "add", delay_ns=40.0),
            HardwareModule("cmp", "cmp", delay_ns=40.0),
        ),
        io_delay_ns=10.0,
    )


def conditional_design():
    b = CdfgBuilder("conditional")
    W = OUTSIDE_WORLD
    a = b.io("a", "v.a", source=b.const("src.a", partition=W), dests=[],
             source_partition=W, dest_partition=1)
    cond = b.op("cond", "cmp", 1, inputs=[a])
    then_v = b.op("then_v", "add", 1, inputs=[cond], guard={"c": True})
    else_v = b.op("else_v", "add", 1, inputs=[cond], guard={"c": False})
    # Each branch ships its value to chip 2: mutually exclusive I/O.
    b.io("wt", "v.t", source=then_v, dests=[], source_partition=1,
         dest_partition=2, guard={"c": True})
    b.io("we", "v.e", source=else_v, dests=[], source_partition=1,
         dest_partition=2, guard={"c": False})
    merge = b.op("merge", "add", 2, inputs=["wt", "we"])
    b.io("out", "v.out", source=merge, dests=[], source_partition=2,
         dest_partition=W)
    return b.build()


def part1():
    print("=" * 72)
    print("Conditional I/O sharing (Section 7.2)")
    print("=" * 72)
    graph = conditional_design()
    sharing = share_conditionally(graph, timing(), pipe_length=8,
                                  initiation_rate=2)
    groups = [sorted(group) for group in sharing.groups if len(group) > 1]
    print(f"shared groups found: {groups}")

    pins = Partitioning({OUTSIDE_WORLD: ChipSpec(64),
                         1: ChipSpec(24), 2: ChipSpec(24)})
    result = synthesize_connection_first(
        graph, pins, timing(), 2, share_groups=sharing.share_groups())
    bus_t = result.assignment.bus_of["wt"]
    bus_e = result.assignment.bus_of["we"]
    print(f"wt rides bus C{bus_t}, we rides bus C{bus_e} "
          f"({'shared' if bus_t == bus_e else 'separate'})")
    print(interconnect_listing(result.interconnect))
    print()


def part2():
    print("=" * 72)
    print("Time-division I/O multiplexing (Section 7.3)")
    print("=" * 72)
    b = CdfgBuilder("tdm")
    W = OUTSIDE_WORLD
    a = b.io("a", "v.a", source=b.const("src.a", partition=W), dests=[],
             source_partition=W, dest_partition=1, bit_width=8)
    wide_src = b.op("acc", "add", 1, inputs=[a], bit_width=32)
    wide = b.io("wide", "v.wide", source=wide_src, dests=[],
                source_partition=1, dest_partition=2, bit_width=32)
    sink = b.op("sink", "add", 2, inputs=[wide], bit_width=32)
    b.io("out", "v.out", source=sink, dests=[], source_partition=2,
         dest_partition=W, bit_width=8)
    graph = b.build()

    # The designer decides to split the 32-bit transfer into 2 x 16.
    subs = insert_time_division_multiplexing(graph, "wide", [16, 16])
    print(f"transfer 'wide' split into: {subs}")

    pins = Partitioning({OUTSIDE_WORLD: ChipSpec(64),
                         1: ChipSpec(32), 2: ChipSpec(32)})
    result = synthesize_connection_first(graph, pins, timing(), 2)
    print(schedule_listing(result.schedule))
    print(f"pins used: {result.pins_used()} "
          f"(a whole 32-bit transfer would not fit 32-pin chips that "
          f"also carry their other traffic)")
    print("self-check:", "OK" if result.verify() == [] else "FAILED")


def main():
    part1()
    part2()


if __name__ == "__main__":
    main()
