#!/usr/bin/env python3
"""From schedule to hardware: RTL generation + cycle-accurate checking.

Takes the Chapter-4 AR filter design, performs the classical downstream
binding steps (functional-unit binding, pipelined register allocation,
multiplexer insertion, distributed controller tables), dumps the
structural RTL, and then *runs* the design: the cycle-accurate
simulator executes several pipeline instances with random stimuli,
physically routing every interchip value over its assigned bus segments
and cross-checking everything against a behavioral golden model.

Run:  python examples/rtl_and_simulation.py
"""

from repro import synthesize_connection_first
from repro.designs import AR_GENERAL_PINS_UNIDIR, ar_general_design
from repro.modules.library import ar_filter_timing
from repro.reporting import TextTable
from repro.rtl import (allocate_registers, bind_functional_units,
                       build_control_tables, build_netlist,
                       emit_structural)
from repro.sim import simulate_result


def main():
    result = synthesize_connection_first(
        ar_general_design(), AR_GENERAL_PINS_UNIDIR,
        ar_filter_timing(), initiation_rate=3)

    binding = bind_functional_units(result.schedule)
    registers = allocate_registers(result.graph, result.schedule)
    netlist = build_netlist(result.graph, result.schedule,
                            result.interconnect, result.assignment,
                            binding, registers)
    tables = build_control_tables(result.graph, result.schedule,
                                  binding, registers,
                                  result.interconnect, result.assignment)

    summary = TextTable(["chip", "units", "registers (bits)", "muxes",
                         "mux inputs", "ctrl signals", "area est."],
                        title="per-chip RTL summary")
    for partition in sorted(netlist.chips):
        chip = netlist.chips[partition]
        table = tables.get(partition)
        summary.add(f"P{partition}", len(chip.units),
                    f"{len(chip.registers)} ({sum(chip.registers.values())})",
                    len(chip.muxes), chip.mux_input_total(),
                    table.total_signals() if table else 0,
                    f"{chip.area_estimate():.1f}")
    print(summary.render())
    print()

    text = emit_structural(result.graph, result.schedule,
                           result.interconnect, result.assignment,
                           "ar_filter")
    print("structural RTL (first 40 lines):")
    print("\n".join(text.splitlines()[:40]))
    print("  ...")
    print()

    report = simulate_result(result, n_instances=8, seed=42)
    print(f"cycle-accurate simulation: {report}")


if __name__ == "__main__":
    main()
