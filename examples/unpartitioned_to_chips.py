#!/usr/bin/env python3
"""From an unpartitioned behavior to a verified multi-chip design.

The dissertation assumes a behavioral partitioner (CHOP) already split
the specification; its future-work section asks for synthesis feedback
into that partitioner (Section 8.2).  This example runs the whole
pipeline on an unpartitioned dataflow graph:

1. an FM-style min-cut partitioner assigns operations to chips,
   predicting pin cost as cut bits;
2. I/O nodes are spliced onto the cut arcs and external inputs become
   transfers from the outside world;
3. the Chapter-4 flow synthesizes connection + schedule;
4. if a chip busts its pins, the offending chips' weights feed back
   into a repartition;
5. the result is simulated cycle-accurately.

Run:  python examples/unpartitioned_to_chips.py
"""

from repro import CdfgBuilder, ChipSpec, OUTSIDE_WORLD, Partitioning
from repro.modules import DesignTiming, HardwareModule, ModuleSet
from repro.partition.auto import partition_and_synthesize
from repro.reporting import interconnect_listing, pins_summary
from repro.sim import simulate_result


def butterfly(stages=3, lanes=4):
    """An FFT-ish butterfly network: wide, regular, cut-friendly."""
    b = CdfgBuilder("butterfly")
    current = []
    for lane in range(lanes):
        current.append(b.inp(f"in{lane}", partition=None, bit_width=16))
    for stage in range(stages):
        nxt = []
        stride = 1 << (stage % 2)
        for lane in range(lanes):
            partner = lane ^ stride if (lane ^ stride) < lanes else lane
            op_type = "mul" if (lane + stage) % 3 == 0 else "add"
            nxt.append(b.op(f"s{stage}l{lane}", op_type, None,
                            inputs=[current[lane], current[partner]],
                            bit_width=16))
        current = nxt
    for lane in range(lanes):
        b.out(f"out{lane}", current[lane], partition=None, bit_width=16)
    return b.build()


def main():
    graph = butterfly()
    timing = DesignTiming(
        clock_period=100.0,
        default=ModuleSet.of(
            HardwareModule("adder", "add", delay_ns=40.0),
            HardwareModule("multiplier", "mul", delay_ns=90.0)),
        io_delay_ns=10.0)
    pins = Partitioning({OUTSIDE_WORLD: ChipSpec(160),
                         1: ChipSpec(160), 2: ChipSpec(160)})

    result, plan = partition_and_synthesize(graph, pins, timing,
                                            initiation_rate=2)
    print(f"partition: cut bits {plan.cut_bits}, loads {plan.loads}")
    print()
    print(interconnect_listing(result.interconnect))
    print()
    print(pins_summary(pins, result.pins_used(),
                       pipe_length=result.pipe_length))
    print()
    report = simulate_result(result, n_instances=6, seed=7)
    print(f"simulation: {report}")


if __name__ == "__main__":
    main()
