#!/usr/bin/env python3
"""The fifth-order elliptic wave filter: recursion-limited pipelining.

The filter's storage elements become degree-4 data-recursive edges, so
the minimum initiation rate is 5 cycles (Section 4.4.2).  This example
shows the dissertation's headline contrast:

* greedy list scheduling (Chapter 4 flow) *fails* at the boundary rate
  5 even though a schedule exists, and succeeds at rates 6 and 7;
* force-directed scheduling (Chapter 5 flow) meets rate 5;
* reserving bus slots during connection synthesis (the Objective-4.6
  bandwidth lever) rescues the list scheduler even at rate 5.

Run:  python examples/elliptic_filter_flow.py
"""

from repro import synthesize_connection_first, synthesize_schedule_first
from repro.designs import (ELLIPTIC_PINS_UNIDIR, elliptic_design,
                           elliptic_resources)
from repro.errors import ReproError
from repro.modules.library import elliptic_filter_timing
from repro.reporting import TextTable, interconnect_listing


def main():
    timing = elliptic_filter_timing()

    print("Chapter 4 flow (connection first, greedy list scheduling)")
    table = TextTable(["rate", "outcome", "pipe", "buses"])
    for rate in (5, 6, 7):
        try:
            result = synthesize_connection_first(
                elliptic_design(), ELLIPTIC_PINS_UNIDIR, timing, rate,
                resources=elliptic_resources(rate))
            table.add(rate, "scheduled", result.pipe_length,
                      len(result.interconnect.buses))
        except ReproError as exc:
            table.add(rate, f"failed ({type(exc).__name__})", "-", "-")
    print(table.render())
    print()

    print("Chapter 5 flow (force-directed scheduling first)")
    table = TextTable(["rate", "pipe budget", "pipe",
                       "units (partition, type)"])
    for rate, pipe in ((5, 24), (6, 24), (7, 26)):
        result = synthesize_schedule_first(
            elliptic_design(), ELLIPTIC_PINS_UNIDIR, timing, rate,
            pipe_length=pipe)
        units = ", ".join(f"P{p}:{t}={n}"
                          for (p, t), n in sorted(result.resources.items()))
        table.add(rate, pipe, result.pipe_length, units)
    print(table.render())
    print()

    print("Rescuing rate 5 for the list scheduler: reserve bus slots")
    result = synthesize_connection_first(
        elliptic_design(), ELLIPTIC_PINS_UNIDIR, timing, 5,
        resources=elliptic_resources(5), slot_reserve=3)
    print(f"rate 5 with slot_reserve=3: pipe {result.pipe_length}, "
          f"{len(result.interconnect.buses)} buses")
    print()
    print(interconnect_listing(result.interconnect))
    print()
    print("self-check:", "OK" if result.verify() == [] else "FAILED")


if __name__ == "__main__":
    main()
