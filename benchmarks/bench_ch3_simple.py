"""E3.1 — Chapter 3: the simple-partition AR filter (Figs 3.5-3.7).

Regenerates the Section 3.4 experiment: list scheduling with the
incremental Gomory pin-allocation checker on the 4-chip AR lattice
filter (48/48/32/32 data pins, initiation rate 2, minimum functional
units), then the constructive Theorem 3.1 interchip connection.

Paper reference points: schedule completes with the tight pin budgets
fully used; 0.5 s on a Sun 3/280.
"""

import pytest

from conftest import one_shot
from repro import synthesize_simple
from repro.designs import AR_SIMPLE_PINS, ar_simple_design
from repro.modules.library import ar_filter_timing
from repro.reporting import (TextTable, interconnect_listing,
                             pins_summary, schedule_listing)


def test_fig_3_6_schedule_and_fig_3_7_connection(benchmark, record_table):
    graph = ar_simple_design()

    def run():
        return synthesize_simple(graph, AR_SIMPLE_PINS,
                                 ar_filter_timing(), 2)

    result = one_shot(benchmark, run)
    assert result.verify() == []

    record_table("fig3.6_schedule", schedule_listing(result.schedule))
    record_table(
        "fig3.7_connection",
        interconnect_listing(result.simple_allocation.interconnect))

    summary = TextTable(["partition", "pins used", "budget"],
                        title="Section 3.4 pin usage (paper: budgets "
                              "exactly met — 48/48/32/32)")
    for index in AR_SIMPLE_PINS.indices():
        summary.add(f"P{index}", result.pins_used()[index],
                    AR_SIMPLE_PINS.total_pins(index))
    summary.add("checks", result.stats["pin_checks"], "-")
    record_table("table_sec3.4_pins", summary.render())

    # The tight chips use their budgets fully, as in the text.
    assert result.pins_used()[1] == 48
    assert result.pins_used()[3] == 32


def test_pin_checker_method_ablation(benchmark, record_table):
    """Gomory incremental tableau vs branch & bound re-solve."""
    import time

    graph = ar_simple_design()
    rows = TextTable(["method", "seconds", "pipe length"],
                     title="pin-allocation checker ablation")

    def flow(method):
        start = time.perf_counter()
        result = synthesize_simple(graph, AR_SIMPLE_PINS,
                                   ar_filter_timing(), 2,
                                   pin_method=method)
        return time.perf_counter() - start, result

    def run():
        return flow("gomory")

    elapsed, result = one_shot(benchmark, run)
    rows.add("gomory (incremental cuts)", f"{elapsed:.2f}",
             result.pipe_length)
    elapsed_bnb, result_bnb = flow("bnb")
    rows.add("branch & bound (re-solve)", f"{elapsed_bnb:.2f}",
             result_bnb.pipe_length)
    record_table("ablation_pin_checker", rows.render())
    assert result.pipe_length == result_bnb.pipe_length
