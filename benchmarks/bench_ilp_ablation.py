"""Solver ablation: Gomory dual all-integer cuts vs branch & bound.

The dissertation solves the pin-allocation feasibility ILP with
Gomory's 1960 dual all-integer algorithm specifically because it can be
updated *incrementally* as scheduling pins operations to groups
(Section 3.3).  This bench quantifies the claim on our substrate: a
full scheduling run with the incremental tableau vs re-solving the ILP
from scratch at every check, plus raw solver timings on the
pin-allocation model family.
"""

import time

import pytest

from conftest import one_shot
from repro.core.pin_allocation import PinAllocationProblem
from repro.designs import AR_SIMPLE_PINS, ar_simple_design
from repro.ilp import DualAllIntegerSolver, solve_ilp
from repro.reporting import TextTable


@pytest.mark.parametrize("method", ["gomory", "bnb"])
def test_full_flow_per_method(method, benchmark):
    from repro import synthesize_simple
    from repro.modules.library import ar_filter_timing

    graph = ar_simple_design()

    def run():
        return synthesize_simple(graph, AR_SIMPLE_PINS,
                                 ar_filter_timing(), 2,
                                 pin_method=method)

    result = one_shot(benchmark, run)
    assert result.verify() == []


def test_raw_solver_comparison(benchmark, record_table):
    graph = ar_simple_design()
    problem = PinAllocationProblem(graph, AR_SIMPLE_PINS, 2)
    n_vars, n_cons = problem.tableau_size()

    def run_gomory():
        solver = DualAllIntegerSolver(problem.model)
        assert solver.reoptimize()
        return solver

    start = time.perf_counter()
    solver = one_shot(benchmark, run_gomory)
    gomory_seconds = time.perf_counter() - start

    start = time.perf_counter()
    assert solve_ilp(problem.model).feasible
    bnb_seconds = time.perf_counter() - start

    table = TextTable(["solver", "seconds", "notes"],
                      title=f"pin-allocation ILP ({n_vars} vars, "
                            f"{n_cons} constraints)")
    table.add("dual all-integer cuts", f"{gomory_seconds:.2f}",
              f"{solver.pivots} pivots, {solver.cuts_generated} cuts")
    table.add("branch & bound", f"{bnb_seconds:.2f}", "LP relaxations")
    record_table("ablation_ilp_solvers", table.render())
