"""Related-work comparison (Section 1.3's critiques, quantified).

The dissertation argues two prior approaches waste pins:

* Gebotys'92 — uniform-width buses connected to every chip ("it would
  require more I/O pins than necessary for systems which contain more
  than two chips");
* De Micheli et al. — pin cost as the plain sum of a partition's I/O
  operation costs ("the design produced by this approach will require
  many more I/O pins than necessary").

This bench puts numbers on both critiques for the AR filter and for a
growing chip chain.
"""

import pytest

from conftest import one_shot
from repro import synthesize_connection_first
from repro.cdfg import Cdfg
from repro.cdfg.graph import make_io_node
from repro.core.baselines import gebotys_pin_cost, no_sharing_pin_cost
from repro.designs import AR_GENERAL_PINS_UNIDIR, ar_general_design
from repro.modules.library import ar_filter_timing
from repro.partition.model import ChipSpec, OUTSIDE_WORLD, Partitioning
from repro.reporting import TextTable


def test_pin_cost_comparison_ar(benchmark, record_table):
    graph = ar_general_design()
    table = TextTable(
        ["rate", "this work (Ch 4)", "Gebotys-style uniform buses",
         "De Micheli-style no sharing"],
        title="total data pins, AR filter (Section 1.3 critiques)")

    def sweep():
        rows = []
        no_share = sum(no_sharing_pin_cost(
            graph, AR_GENERAL_PINS_UNIDIR).values())
        for rate in (3, 4, 5):
            ours = synthesize_connection_first(
                graph, AR_GENERAL_PINS_UNIDIR, ar_filter_timing(), rate)
            uniform = sum(gebotys_pin_cost(
                graph, AR_GENERAL_PINS_UNIDIR, rate).values())
            rows.append((rate, sum(ours.pins_used().values()),
                         uniform, no_share))
        return rows

    rows = one_shot(benchmark, sweep)
    for row in rows:
        table.add(*row)
    record_table("baseline_pin_costs", table.render())
    for _rate, ours, uniform, no_share in rows:
        assert ours < uniform
        assert ours < no_share


def test_uniform_bus_waste_grows_with_chips(benchmark, record_table):
    """The >2-chips critique on a chip chain of growing length."""

    def chain(n_chips):
        g = Cdfg()
        for i in range(1, n_chips):
            g.add_node(make_io_node(f"w{i}", f"v{i}", i, i + 1,
                                    bit_width=8))
        chips = {OUTSIDE_WORLD: ChipSpec(0)}
        chips.update({i: ChipSpec(10_000)
                      for i in range(1, n_chips + 1)})
        return g, Partitioning(chips)

    table = TextTable(["chips", "this work", "uniform buses", "ratio"],
                      title="pin cost of a chip chain (rate 2)")

    def sweep():
        rows = []
        for n_chips in (2, 3, 4, 6, 8):
            graph, partitioning = chain(n_chips)
            from repro.core.connection_search import ConnectionSearch
            ic, _ = ConnectionSearch(graph, partitioning, 2).run()
            ours = sum(ic.pins_used(p)
                       for p in partitioning.indices())
            uniform = sum(gebotys_pin_cost(graph, partitioning,
                                           2).values())
            rows.append((n_chips, ours, uniform))
        return rows

    rows = one_shot(benchmark, sweep)
    ratios = []
    for n_chips, ours, uniform in rows:
        ratio = uniform / ours if ours else float("inf")
        ratios.append(ratio)
        table.add(n_chips, ours, uniform, f"{ratio:.2f}x")
    record_table("baseline_chain_waste", table.render())
    # The waste ratio grows with chip count (the paper's claim).
    assert ratios[-1] > ratios[0]
