"""E4.1/E4.2 — Chapter 4: general AR filter, unidirectional ports.

Regenerates Tables 4.1-4.8 and the shapes of Figures 4.8-4.13: the
interchip connections, schedules, summarized pins/steps with and
without bus reassignment, and the initial-vs-final bus assignments for
initiation rates 3, 4, 5.

Paper reference points (Table 4.2): pins 109/133/87/87 at rate 3 down
to 85/125/79/79 at rate 5; control steps 11/15/17 with reassignment,
never fewer without; ~12 buses at rate 3.
"""

import pytest

from conftest import one_shot
from repro import synthesize_connection_first
from repro.designs import AR_GENERAL_PINS_UNIDIR, ar_general_design
from repro.errors import SchedulingError
from repro.modules.library import ar_filter_timing
from repro.reporting import (TextTable, bus_allocation_table,
                             bus_assignment_table, interconnect_listing,
                             schedule_listing)

RATES = (3, 4, 5)


@pytest.mark.parametrize("rate", RATES)
def test_fig_4_8_to_4_13_per_rate(rate, benchmark, record_table):
    graph = ar_general_design()

    def run():
        return synthesize_connection_first(
            graph, AR_GENERAL_PINS_UNIDIR, ar_filter_timing(), rate)

    result = one_shot(benchmark, run)
    assert result.verify() == []
    record_table(f"fig4.{7 + rate - 2}_connection_L{rate}",
                 interconnect_listing(result.interconnect))
    record_table(f"fig4.{10 + rate - 2}_schedule_L{rate}",
                 schedule_listing(result.schedule))
    record_table(
        f"table4.{2 * rate - 3}_bus_assignment_L{rate}",
        bus_assignment_table(result.stats["initial_assignment"],
                             result.assignment))
    record_table(
        f"table4.{2 * rate - 2}_bus_allocation_L{rate}",
        bus_allocation_table(graph, result.schedule,
                             result.interconnect, result.assignment))


def test_table_4_2_summary(benchmark, record_table):
    graph = ar_general_design()
    table = TextTable(
        ["rate", "pins P0", "P1", "P2", "P3",
         "steps w/ reassign", "w/o reassign"],
        title="Table 4.2 — AR filter, unidirectional ports "
              "(paper: pins shrink with rate; reassignment never "
              "lengthens the schedule)")

    def sweep():
        rows = []
        for rate in RATES:
            dyn = synthesize_connection_first(
                graph, AR_GENERAL_PINS_UNIDIR, ar_filter_timing(), rate,
                reassignment=True)
            try:
                static = synthesize_connection_first(
                    graph, AR_GENERAL_PINS_UNIDIR, ar_filter_timing(),
                    rate, reassignment=False)
                static_steps = static.pipe_length
            except SchedulingError:
                static_steps = "fail"
            pins = dyn.pins_used()
            rows.append((rate, pins, dyn.pipe_length, static_steps))
        return rows

    rows = one_shot(benchmark, sweep)
    for rate, pins, steps, static_steps in rows:
        table.add(rate, pins[0], pins[1], pins[2], pins[3], steps,
                  static_steps)
    record_table("table4.2_summary", table.render())

    # Shape assertions: rates trade pins for pipeline depth, and
    # reassignment helps in aggregate (single rates can wobble — the
    # greedy scheduler sometimes spends a reassigned slot poorly).
    totals = [sum(pins.values()) for _r, pins, _s, _w in rows]
    assert totals[0] >= totals[-1]
    steps = [s for _r, _p, s, _w in rows]
    assert steps == sorted(steps)
    dyn_total = sum(s for _r, _p, s, _w in rows)
    static_total = sum(w if isinstance(w, int) else s + 5
                       for _r, _p, s, w in rows)
    assert dyn_total <= static_total


def test_branching_factor_ablation(benchmark, record_table):
    """Section 4.1.2: the branching factor trades time vs success."""
    import time

    graph = ar_general_design()
    table = TextTable(["branching factor", "search steps", "seconds",
                       "buses", "total pins"],
                      title="heuristic search branching ablation (L=3)")

    def run_bf(bf):
        start = time.perf_counter()
        result = synthesize_connection_first(
            graph, AR_GENERAL_PINS_UNIDIR, ar_filter_timing(), 3,
            branching_factor=bf)
        return (time.perf_counter() - start, result)

    def run():
        return run_bf(2)

    one_shot(benchmark, run)
    for bf in (1, 2, 4):
        elapsed, result = run_bf(bf)
        table.add(bf, result.stats["search_steps"], f"{elapsed:.2f}",
                  len(result.interconnect.buses),
                  sum(result.pins_used().values()))
    record_table("ablation_branching_factor", table.render())
