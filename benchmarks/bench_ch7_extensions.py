"""E7.1-E7.4 — Chapter 7 extensions.

* E7.1 (Figure 7.4): an interchip connection that forces two
  loop-coupled transfers onto one bus admits no pipelined schedule,
  while a two-bus connection does.
* E7.2 (Figure 7.7): conditional I/O sharing groups mutually exclusive
  transfers; the connection synthesizer then shares slots and pins.
* E7.3 (Eq 7.5 / Figure 7.10): the multi-cycle lower bound is tight and
  the allocation-wheel safety check prevents fragmentation losses.
* E7.4 (Figure 7.8): time-division multiplexing halves transfer pins at
  the cost of extra cycles.
"""

import pytest

from conftest import one_shot
from repro import CdfgBuilder, synthesize_connection_first
from repro.cdfg.analysis import UnitTiming
from repro.cdfg.transform import insert_time_division_multiplexing
from repro.core.bus_assignment import BusAllocator
from repro.core.conditional import share_conditionally
from repro.core.interconnect import Bus, BusAssignment, Interconnect
from repro.errors import ReproError, SchedulingError
from repro.modules.allocation import min_units_multi_cycle
from repro.modules.library import (DesignTiming, HardwareModule,
                                   ModuleSet)
from repro.partition.model import ChipSpec, OUTSIDE_WORLD, Partitioning
from repro.reporting import TextTable
from repro.scheduling.list_scheduler import ListScheduler

UNIT = DesignTiming(
    clock_period=100.0,
    default=ModuleSet.of(HardwareModule("adder", "add", delay_ns=90.0)),
    io_delay_ns=10.0,
    chaining=False,
)


def loop_design():
    """Figure 7.4's shape: transfers X and Y coupled by a recursive
    loop whose slack is exactly zero, forcing ``t_Y = t_X + L`` — the
    same control-step group.  A connection that makes X and Y share
    one bus then excludes every pipelined schedule."""
    b = CdfgBuilder("fig7.4")
    x = b.io("X", "v.x", source=b.op("p1op", "add", 1), dests=[],
             source_partition=1, dest_partition=2)
    mid1 = b.op("mid1", "add", 2, inputs=[x])
    mid2 = b.op("mid2", "add", 2, inputs=[mid1])
    y = b.io("Y", "v.y", source=mid2, dests=[], source_partition=2,
             dest_partition=1)
    tail = b.op("tail", "add", 1, inputs=[y])
    # Degree-2 feedback at L=3: t_tail <= t_p1op + 2*3 - 1 = +5, and
    # the forward chain needs exactly +5 -> zero slack.
    b.edge("tail", "p1op", degree=2)
    return b.build()


def test_e7_1_connection_can_exclude_all_schedules(benchmark,
                                                   record_table):
    graph = loop_design()
    L = 3
    resources = {(1, "add"): 2, (2, "add"): 2}

    shared_bus = Interconnect([
        Bus(1, out_widths={1: 8, 2: 8}, in_widths={1: 8, 2: 8}),
    ])
    shared_assignment = BusAssignment()
    shared_assignment.assign("X", 1)
    shared_assignment.assign("Y", 1)

    split_buses = Interconnect([
        Bus(1, out_widths={1: 8}, in_widths={2: 8}),
        Bus(2, out_widths={2: 8}, in_widths={1: 8}),
    ])
    split_assignment = BusAssignment()
    split_assignment.assign("X", 1)
    split_assignment.assign("Y", 2)

    def attempt(interconnect, assignment):
        allocator = BusAllocator(graph, interconnect, assignment, L,
                                 reassignment=True)
        try:
            ListScheduler(graph, UNIT, L, resources,
                          io_hooks=allocator, max_steps=24).run()
            return "schedules"
        except SchedulingError:
            return "no schedule"

    def run():
        return (attempt(shared_bus, shared_assignment),
                attempt(split_buses, split_assignment))

    shared_out, split_out = one_shot(benchmark, run)
    table = TextTable(["interchip connection", "outcome"],
                      title="Figure 7.4 — a bad connection excludes "
                            "every pipelined schedule")
    table.add("one shared bus for X and Y", shared_out)
    table.add("dedicated bus per transfer", split_out)
    record_table("fig7.4_connection_exclusion", table.render())
    assert shared_out == "no schedule"
    assert split_out == "schedules"


def test_e7_2_conditional_sharing(benchmark, record_table):
    b = CdfgBuilder("cond")
    W = OUTSIDE_WORLD
    a = b.io("a", "v.a", source=b.const("src", partition=W), dests=[],
             source_partition=W, dest_partition=1)
    cond = b.op("cond", "add", 1, inputs=[a])
    for idx, guard in enumerate(({"c": True}, {"c": False})):
        op = b.op(f"br{idx}", "add", 1, inputs=[cond], guard=guard)
        b.io(f"w{idx}", f"v{idx}", source=op, dests=[],
             source_partition=1, dest_partition=2, guard=guard)
    b.op("join", "add", 2, inputs=["w0", "w1"])
    graph = b.build()

    pins = Partitioning({OUTSIDE_WORLD: ChipSpec(32),
                         1: ChipSpec(24), 2: ChipSpec(16)})

    def run():
        sharing = share_conditionally(graph, UNIT, pipe_length=8,
                                      initiation_rate=2)
        return synthesize_connection_first(
            graph, pins, UNIT, 2, share_groups=sharing.share_groups())

    result = one_shot(benchmark, run)
    shared = (result.assignment.bus_of["w0"]
              == result.assignment.bus_of["w1"])
    table = TextTable(["metric", "value"],
                      title="Figure 7.7 — conditional transfers share "
                            "a communication slot")
    table.add("branch transfers on one bus", shared)
    table.add("pins P1", result.pins_used()[1])
    record_table("fig7.7_conditional_sharing", table.render())
    assert shared


@pytest.mark.parametrize("rate,cycles,n_ops,expected", [
    (6, 2, 3, 1),   # floor(6/2)=3 slots -> one unit
    (5, 2, 3, 2),   # floor(5/2)=2 slots -> two units
    (4, 3, 2, 2),   # floor(4/3)=1 slot  -> two units
])
def test_e7_3_eq_7_5_bound_is_achievable(rate, cycles, n_ops, expected,
                                         benchmark, record_table):
    bound = min_units_multi_cycle(n_ops, rate, cycles)
    assert bound == expected

    timing = DesignTiming(
        clock_period=1.0,
        default=ModuleSet.of(HardwareModule(
            "mul", "mul", delay_ns=float(cycles), cycles=cycles)),
        io_delay_ns=1.0, chaining=False)
    b = CdfgBuilder("wheel")
    src = b.op("src", "mul", 1)
    for i in range(n_ops - 1):
        b.op(f"m{i}", "mul", 1, inputs=["src"])
    graph = b.build()

    def run():
        return ListScheduler(graph, timing, rate,
                             {(1, "mul"): bound}).run()

    schedule = one_shot(benchmark, run)
    assert schedule.verify({(1, "mul"): bound}) == []
    record_table(
        f"eq7.5_L{rate}_m{cycles}_n{n_ops}",
        f"Eq 7.5: {n_ops} non-pipelined {cycles}-cycle ops at rate "
        f"{rate} need {bound} unit(s); the allocation-wheel scheduler "
        f"achieves the bound (pipe {schedule.pipe_length}).")


def test_e7_4_time_division_multiplexing(benchmark, record_table):
    def build(split):
        b = CdfgBuilder("tdm")
        W = OUTSIDE_WORLD
        a = b.io("a", "v.a", source=b.const("src", partition=W),
                 dests=[], source_partition=W, dest_partition=1,
                 bit_width=8)
        acc = b.op("acc", "add", 1, inputs=[a], bit_width=32)
        wide = b.io("wide", "v.w", source=acc, dests=[],
                    source_partition=1, dest_partition=2, bit_width=32)
        b.op("sink", "add", 2, inputs=[wide], bit_width=32)
        graph = b.build()
        if split:
            insert_time_division_multiplexing(graph, "wide", [16, 16])
        return graph

    roomy = Partitioning({OUTSIDE_WORLD: ChipSpec(16),
                          1: ChipSpec(48), 2: ChipSpec(40)})
    tight = Partitioning({OUTSIDE_WORLD: ChipSpec(16),
                          1: ChipSpec(32), 2: ChipSpec(24)})

    def run():
        whole = synthesize_connection_first(build(False), roomy, UNIT, 2)
        try:
            synthesize_connection_first(build(False), tight, UNIT, 2)
            tight_whole = "fits"
        except ReproError:
            tight_whole = "does not fit"
        multiplexed = synthesize_connection_first(build(True), tight,
                                                  UNIT, 2)
        return whole, tight_whole, multiplexed

    whole, tight_whole, multiplexed = one_shot(benchmark, run)
    table = TextTable(["variant", "pins P1", "pipe"],
                      title="Figure 7.8 — time-division multiplexing "
                            "trades cycles for pins")
    table.add("32-bit whole transfer (roomy pins)",
              whole.pins_used()[1], whole.pipe_length)
    table.add("32-bit whole transfer (tight pins)", tight_whole, "-")
    table.add("2 x 16-bit multiplexed (tight pins)",
              multiplexed.pins_used()[1], multiplexed.pipe_length)
    record_table("fig7.8_tdm", table.render())
    assert tight_whole == "does not fit"
    assert multiplexed.pins_used()[1] < whole.pins_used()[1]
    assert multiplexed.pipe_length >= whole.pipe_length


def test_e7_5_tdm_advisor(benchmark, record_table):
    """Automated Section 7.3 decision-making (thesis future work)."""
    from repro.core.tdm_advisor import advise_tdm, apply_advice
    from repro.cdfg.builder import CdfgBuilder

    def build():
        b = CdfgBuilder("adv")
        a = b.io("a", "v.a", source=b.const("s", partition=OUTSIDE_WORLD,
                                            bit_width=8),
                 dests=[], source_partition=OUTSIDE_WORLD,
                 dest_partition=1, bit_width=8)
        acc = b.op("acc", "add", 1, inputs=[a], bit_width=32)
        b.io("wide", "v.w", source=acc, dests=[], source_partition=1,
             dest_partition=2, bit_width=32)
        b.op("sink", "add", 2, inputs=["wide"], bit_width=32)
        return b.build()

    tight = Partitioning({OUTSIDE_WORLD: ChipSpec(16),
                          1: ChipSpec(40), 2: ChipSpec(24)})

    def run():
        graph = build()
        plan = advise_tdm(graph, tight, 2)
        apply_advice(graph, plan)
        return plan, synthesize_connection_first(graph, tight, UNIT, 2)

    plan, result = one_shot(benchmark, run)
    table = TextTable(["metric", "value"],
                      title="Section 7.3 advisor: automatic TDM "
                            "decision")
    table.add("splits proposed", dict(plan.splits))
    table.add("demand before (chip 2)", plan.demand_before.get(2))
    table.add("demand after (chip 2)", plan.demand_after.get(2))
    table.add("pipe length", result.pipe_length)
    record_table("sec7.3_tdm_advisor", table.render())
    assert plan.splits
    assert result.verify() == []


def test_e7_6_postponement_rescues_rate_6(benchmark, record_table):
    """The Section 5.3 'constrain and rerun' loop, automated."""
    from repro.core.connection_search import ConnectionSearch
    from repro.designs import (ELLIPTIC_PINS_UNIDIR, elliptic_design,
                               elliptic_resources)
    from repro.modules.library import elliptic_filter_timing
    from repro.scheduling import schedule_with_postponement

    graph = elliptic_design()
    timing = elliptic_filter_timing()
    ic, init = ConnectionSearch(graph, ELLIPTIC_PINS_UNIDIR, 6).run()

    def run():
        return schedule_with_postponement(
            graph, timing, 6, elliptic_resources(6),
            hooks_factory=lambda: BusAllocator(graph, ic, init.copy(),
                                               6))

    schedule = one_shot(benchmark, run)
    assert schedule.verify(elliptic_resources(6)) == []
    record_table(
        "sec5.3_postponement",
        f"elliptic rate 6 with automated postponement: pipe "
        f"{schedule.pipe_length} (plain greedy list scheduling on the "
        f"same connection can miss the loop deadline)")
