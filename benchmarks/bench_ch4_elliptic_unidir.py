"""E4.4 — Chapter 4.4.2: elliptic wave filter, unidirectional ports.

Regenerates Tables 4.14-4.16 and the Figures 4.21-4.24 shapes at
initiation rates 5, 6 and 7.

Paper reference point: "The schedule for the design with an initiation
rate of 5 cannot be obtained under the resource constraints even if one
exists because of the very tight time constraints imposed by data
dependencies between execution instances and the greedy heuristic of
the list scheduling" — rates 6 and 7 succeed.
"""

import pytest

from conftest import one_shot
from repro import synthesize_connection_first
from repro.designs import (ELLIPTIC_PINS_UNIDIR, elliptic_design,
                           elliptic_resources)
from repro.errors import ReproError
from repro.modules.library import elliptic_filter_timing
from repro.reporting import (TextTable, bus_allocation_table,
                             interconnect_listing, schedule_listing)


def run_rate(rate, **kwargs):
    return synthesize_connection_first(
        elliptic_design(), ELLIPTIC_PINS_UNIDIR,
        elliptic_filter_timing(), rate,
        resources=elliptic_resources(rate), **kwargs)


def test_rate_5_list_scheduling_fails(benchmark, record_table):
    def attempt():
        try:
            run_rate(5)
            return "scheduled (unexpected)"
        except ReproError as exc:
            return f"failed: {type(exc).__name__}"

    outcome = one_shot(benchmark, attempt)
    record_table(
        "sec4.4.2_rate5_failure",
        f"initiation rate 5 (minimum): list scheduling {outcome}\n"
        f"(paper: the same failure — a schedule exists but the greedy "
        f"heuristic misses the recursive-loop deadline)")
    assert outcome.startswith("failed")


@pytest.mark.parametrize("rate", (6, 7))
def test_fig_4_21_to_4_24_per_rate(rate, benchmark, record_table):
    def run():
        return run_rate(rate)

    result = one_shot(benchmark, run)
    assert result.verify() == []
    record_table(f"fig4.{21 + rate - 6}_connection_ewf_L{rate}",
                 interconnect_listing(result.interconnect))
    record_table(f"fig4.{23 + rate - 6}_schedule_ewf_L{rate}",
                 schedule_listing(result.schedule))
    record_table(
        f"table4.{15 + rate - 6}_bus_allocation_ewf_L{rate}",
        bus_allocation_table(result.graph, result.schedule,
                             result.interconnect, result.assignment))


def test_table_4_14_summary(benchmark, record_table):
    table = TextTable(
        ["rate", "outcome", "pipe", "buses", "pins"],
        title="Table 4.14 companion — elliptic filter, unidirectional "
              "(paper: rate 5 unschedulable by list scheduling, "
              "6 and 7 succeed)")

    def sweep():
        rows = []
        for rate in (5, 6, 7):
            try:
                result = run_rate(rate)
                rows.append((rate, "ok", result.pipe_length,
                             len(result.interconnect.buses),
                             sum(result.pins_used().values())))
            except ReproError:
                rows.append((rate, "fail", "-", "-", "-"))
        return rows

    rows = one_shot(benchmark, sweep)
    for row in rows:
        table.add(*row)
    record_table("table4.14_summary", table.render())
    assert rows[0][1] == "fail" and rows[1][1] == "ok"
