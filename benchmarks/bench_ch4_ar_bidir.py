"""E4.3 — Chapter 4.3: general AR filter, bidirectional I/O ports.

Regenerates Tables 4.9-4.13 and the Figures 4.14-4.19 shapes.

Paper reference point (Table 4.10 vs 4.2): "the designs with
bidirectional I/O ports require less I/O pins than the corresponding
designs with only unidirectional I/O ports."
"""

import pytest

from conftest import one_shot
from repro import synthesize_connection_first
from repro.designs import (AR_GENERAL_PINS_BIDIR, AR_GENERAL_PINS_UNIDIR,
                           ar_general_design)
from repro.modules.library import ar_filter_timing
from repro.reporting import (TextTable, bus_assignment_table,
                             interconnect_listing, schedule_listing)

RATES = (3, 4, 5)


@pytest.mark.parametrize("rate", RATES)
def test_fig_4_14_to_4_19_per_rate(rate, benchmark, record_table):
    graph = ar_general_design()

    def run():
        return synthesize_connection_first(
            graph, AR_GENERAL_PINS_BIDIR, ar_filter_timing(), rate)

    result = one_shot(benchmark, run)
    assert result.verify() == []
    record_table(f"fig4.{13 + rate - 2}_connection_bidir_L{rate}",
                 interconnect_listing(result.interconnect))
    record_table(f"fig4.{16 + rate - 2}_schedule_bidir_L{rate}",
                 schedule_listing(result.schedule))
    record_table(
        f"table4.{11 + rate - 3}_bus_assignment_bidir_L{rate}",
        bus_assignment_table(result.stats["initial_assignment"],
                             result.assignment))


def test_table_4_10_summary_and_pin_comparison(benchmark, record_table):
    graph = ar_general_design()
    table = TextTable(
        ["rate", "bidir pins (per chip)", "bidir total", "unidir total",
         "bidir steps"],
        title="Table 4.10 — bidirectional ports vs Table 4.2 "
              "(paper: bidirectional needs fewer pins)")

    def sweep():
        rows = []
        for rate in RATES:
            bi = synthesize_connection_first(
                graph, AR_GENERAL_PINS_BIDIR, ar_filter_timing(), rate)
            uni = synthesize_connection_first(
                graph, AR_GENERAL_PINS_UNIDIR, ar_filter_timing(), rate)
            rows.append((rate, bi.pins_used(),
                         sum(bi.pins_used().values()),
                         sum(uni.pins_used().values()),
                         bi.pipe_length))
        return rows

    rows = one_shot(benchmark, sweep)
    for rate, pins, bi_total, uni_total, steps in rows:
        table.add(rate, pins, bi_total, uni_total, steps)
    record_table("table4.10_summary", table.render())

    bi_sum = sum(r[2] for r in rows)
    uni_sum = sum(r[3] for r in rows)
    assert bi_sum < uni_sum, "bidirectional should save pins overall"
