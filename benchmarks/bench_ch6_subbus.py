"""E6.1/E6.2 — Chapter 6: sub-bus sharing on the AR filter.

Regenerates Tables 6.1-6.3 (I/O-to-bus assignments with split buses,
Figures 6.2-6.7 shapes) and Table 6.4 (pins and pipe length with vs
without sharing).

Paper reference point (Table 6.4): "a smaller number of I/O pins are
required if two values are allowed to be transferred on a communication
bus at the same time", possibly at some pipe-length cost.  The effect
shows under pin pressure, so the comparison also runs on a tightened
budget where only the sharing flow fits.
"""

import pytest

from conftest import one_shot
from repro import synthesize_connection_first
from repro.designs import AR_GENERAL_PINS_BIDIR, ar_general_design
from repro.errors import ReproError
from repro.modules.library import ar_filter_timing
from repro.partition.model import ChipSpec, OUTSIDE_WORLD, Partitioning
from repro.reporting import (TextTable, bus_assignment_table,
                             interconnect_listing, schedule_listing)

RATES = (3, 4, 5)

#: Tightened bidirectional budgets (about 20% below Table 4.9) — the
#: regime where splitting buses pays.
TIGHT_PINS = Partitioning({
    OUTSIDE_WORLD: ChipSpec(68, bidirectional=True),
    1: ChipSpec(56, bidirectional=True),
    2: ChipSpec(44, bidirectional=True),
    3: ChipSpec(56, bidirectional=True),
})


@pytest.mark.parametrize("rate", RATES)
def test_fig_6_2_to_6_7_per_rate(rate, benchmark, record_table):
    graph = ar_general_design()

    def run():
        return synthesize_connection_first(
            graph, AR_GENERAL_PINS_BIDIR, ar_filter_timing(), rate,
            subbus_sharing=True)

    result = one_shot(benchmark, run)
    assert result.verify() == []
    record_table(f"fig6.{rate - 1}_connection_subbus_L{rate}",
                 interconnect_listing(result.interconnect))
    record_table(f"fig6.{rate + 2}_schedule_subbus_L{rate}",
                 schedule_listing(result.schedule))
    record_table(
        f"table6.{rate - 2}_bus_assignment_L{rate}",
        bus_assignment_table(result.stats["initial_assignment"],
                             result.assignment))


def test_table_6_4_sharing_comparison(benchmark, record_table):
    graph = ar_general_design()
    table = TextTable(
        ["rate", "no-sharing pins", "no-sharing pipe",
         "sharing pins", "sharing pipe", "split buses"],
        title="Table 6.4 — bidirectional, no sharing vs sub-bus "
              "sharing (normal budgets)")

    def sweep():
        rows = []
        for rate in RATES:
            plain = synthesize_connection_first(
                graph, AR_GENERAL_PINS_BIDIR, ar_filter_timing(), rate)
            shared = synthesize_connection_first(
                graph, AR_GENERAL_PINS_BIDIR, ar_filter_timing(), rate,
                subbus_sharing=True)
            splits = sum(1 for b in shared.interconnect.buses
                         if len(b.effective_segments()) > 1)
            rows.append((rate, sum(plain.pins_used().values()),
                         plain.pipe_length,
                         sum(shared.pins_used().values()),
                         shared.pipe_length, splits))
        return rows

    rows = one_shot(benchmark, sweep)
    for row in rows:
        table.add(*row)
    record_table("table6.4_comparison", table.render())

    # Tight-budget companion: sharing fits where no-sharing can't.
    tight = TextTable(["rate", "no sharing", "sharing"],
                      title="Table 6.4 companion — tightened budgets")
    for rate in (5,):
        try:
            plain = synthesize_connection_first(
                graph, TIGHT_PINS, ar_filter_timing(), rate)
            plain_out = f"pipe {plain.pipe_length}"
        except ReproError:
            plain_out = "does not fit"
        try:
            shared = synthesize_connection_first(
                graph, TIGHT_PINS, ar_filter_timing(), rate,
                subbus_sharing=True)
            shared_out = (f"pipe {shared.pipe_length}, pins "
                          f"{sum(shared.pins_used().values())}")
        except ReproError:
            shared_out = "does not fit"
        tight.add(rate, plain_out, shared_out)
    record_table("table6.4_tight_budget", tight.render())
