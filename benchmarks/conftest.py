"""Shared helpers for the benchmark harness.

Every bench regenerates one of the dissertation's tables or figures and
records the rendered text under ``benchmarks/results/`` so the output
survives pytest's capture; timings come from pytest-benchmark.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def record_table():
    """Write (and echo) a named result table."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n[{name}]\n{text}")

    return _record


def one_shot(benchmark, fn):
    """Run a flow once under pytest-benchmark (no warmup repeats)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
