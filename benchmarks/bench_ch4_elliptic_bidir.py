"""E4.5 — Chapter 4.4.2.2: elliptic wave filter, bidirectional ports.

Regenerates Tables 4.17-4.19 and the Figures 4.25-4.28 shapes.

Paper reference points: rate 5 unschedulable by list scheduling; "the
designs with bidirectional I/O ports require less I/O pins than the
corresponding designs with only unidirectional I/O ports."  At rate 6
the bus bandwidth is the binding constraint, so the connection phase
runs with reserved slots (the Objective 4.6 bandwidth lever).
"""

import pytest

from conftest import one_shot
from repro import synthesize_connection_first
from repro.designs import (ELLIPTIC_PINS_BIDIR, ELLIPTIC_PINS_UNIDIR,
                           elliptic_design, elliptic_resources)
from repro.errors import ReproError
from repro.modules.library import elliptic_filter_timing
from repro.reporting import (TextTable, interconnect_listing,
                             schedule_listing)

#: Slot reservation per rate (rate 6 needs extra buses to spread the
#: recursive loop's transfers).
RESERVE = {5: 0, 6: 3, 7: 0}


def run_rate(rate, pins=ELLIPTIC_PINS_BIDIR):
    return synthesize_connection_first(
        elliptic_design(), pins, elliptic_filter_timing(), rate,
        resources=elliptic_resources(rate),
        slot_reserve=RESERVE.get(rate, 0))


def test_rate_5_fails(benchmark, record_table):
    def attempt():
        try:
            run_rate(5)
            return "scheduled (unexpected)"
        except ReproError as exc:
            return f"failed: {type(exc).__name__}"

    outcome = one_shot(benchmark, attempt)
    record_table("sec4.4.2.2_rate5_failure",
                 f"bidirectional, rate 5: list scheduling {outcome}")
    assert outcome.startswith("failed")


@pytest.mark.parametrize("rate", (6, 7))
def test_fig_4_25_to_4_28_per_rate(rate, benchmark, record_table):
    def run():
        return run_rate(rate)

    result = one_shot(benchmark, run)
    assert result.verify() == []
    record_table(f"fig4.{25 + rate - 6}_connection_ewf_bidir_L{rate}",
                 interconnect_listing(result.interconnect))
    record_table(f"fig4.{27 + rate - 6}_schedule_ewf_bidir_L{rate}",
                 schedule_listing(result.schedule))


def test_table_4_17_pin_comparison(benchmark, record_table):
    table = TextTable(
        ["rate", "bidir pins", "unidir pins"],
        title="Tables 4.17/4.14 comparison — elliptic filter "
              "(paper: bidirectional needs fewer pins)")

    def sweep():
        rows = []
        for rate in (6, 7):
            bi = run_rate(rate)
            uni = synthesize_connection_first(
                elliptic_design(), ELLIPTIC_PINS_UNIDIR,
                elliptic_filter_timing(), rate,
                resources=elliptic_resources(rate),
                slot_reserve=RESERVE.get(rate, 0))
            rows.append((rate, sum(bi.pins_used().values()),
                         sum(uni.pins_used().values())))
        return rows

    rows = one_shot(benchmark, sweep)
    for row in rows:
        table.add(*row)
    record_table("table4.17_comparison", table.render())
    assert sum(r[1] for r in rows) < sum(r[2] for r in rows)
