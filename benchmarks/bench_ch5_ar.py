"""E5.1/E5.2 — Chapter 5: AR filter, scheduling before connection.

Regenerates Table 5.1 (FDS + clique-partitioning resources over the
initiation-rate x pipe-length grid) and Table 5.2 (the Chapter-4 flow's
pipe lengths for comparison).

Paper reference points: for a fixed rate, longer pipes do not
monotonically reduce hardware; the Chapter-5 flow "usually produces a
design that requires more I/O pins" while the Chapter-4 flow "usually
produces a schedule with a longer input to output delay".
"""

import pytest

from conftest import one_shot
from repro import synthesize_connection_first, synthesize_schedule_first
from repro.designs import AR_GENERAL_PINS_UNIDIR, ar_general_design
from repro.errors import ReproError
from repro.modules.library import ar_filter_timing
from repro.reporting import TextTable

RATES = (3, 4, 5)
PIPES = (6, 7, 8, 9, 10)


def test_table_5_1_resource_grid(benchmark, record_table):
    graph = ar_general_design()
    table = TextTable(
        ["rate", "pipe budget", "pipe", "pins P0/P1/P2/P3",
         "adders", "multipliers"],
        title="Table 5.1 — AR filter via FDS + clique partitioning")

    def sweep():
        rows = []
        for rate in RATES:
            for pipe in PIPES:
                try:
                    result = synthesize_schedule_first(
                        graph, AR_GENERAL_PINS_UNIDIR,
                        ar_filter_timing(), rate, pipe_length=pipe)
                except ReproError:
                    rows.append((rate, pipe, None))
                    continue
                rows.append((rate, pipe, result))
        return rows

    rows = one_shot(benchmark, sweep)
    per_rate_pins = {}
    for rate, pipe, result in rows:
        if result is None:
            table.add(rate, pipe, "infeasible", "-", "-", "-")
            continue
        pins = result.pins_used()
        adders = sum(n for (p, t), n in result.resources.items()
                     if t == "add")
        muls = sum(n for (p, t), n in result.resources.items()
                   if t == "mul")
        table.add(rate, pipe, result.pipe_length,
                  "/".join(str(pins[i]) for i in range(4)),
                  adders, muls)
        per_rate_pins.setdefault(rate, []).append(sum(pins.values()))
    record_table("table5.1_fds_grid", table.render())
    assert per_rate_pins, "at least some grid points must schedule"


def test_table_5_2_chapter4_comparison(benchmark, record_table):
    graph = ar_general_design()
    table = TextTable(
        ["rate", "ch4 pipe", "ch4 pins", "ch5 best pipe", "ch5 pins"],
        title="Table 5.2 — connection-first (Ch 4) vs schedule-first "
              "(Ch 5); paper: Ch 5 saves steps, spends pins")

    def sweep():
        rows = []
        for rate in RATES:
            ch4 = synthesize_connection_first(
                graph, AR_GENERAL_PINS_UNIDIR, ar_filter_timing(), rate)
            best = None
            for pipe in PIPES:
                try:
                    ch5 = synthesize_schedule_first(
                        graph, AR_GENERAL_PINS_UNIDIR,
                        ar_filter_timing(), rate, pipe_length=pipe)
                except ReproError:
                    continue
                if best is None or ch5.pipe_length < best.pipe_length:
                    best = ch5
            rows.append((rate, ch4, best))
        return rows

    rows = one_shot(benchmark, sweep)
    for rate, ch4, ch5 in rows:
        table.add(rate, ch4.pipe_length,
                  sum(ch4.pins_used().values()),
                  ch5.pipe_length if ch5 else "-",
                  sum(ch5.pins_used().values()) if ch5 else "-")
    record_table("table5.2_comparison", table.render())

    # Shape: the schedule-first flow achieves shorter (or equal) pipes
    # at the cost of more (or equal) pins, aggregated over rates.
    ch4_steps = sum(r[1].pipe_length for r in rows)
    ch5_steps = sum(r[2].pipe_length for r in rows if r[2])
    ch4_pins = sum(sum(r[1].pins_used().values()) for r in rows)
    ch5_pins = sum(sum(r[2].pins_used().values())
                   for r in rows if r[2])
    assert ch5_steps <= ch4_steps
    assert ch5_pins >= ch4_pins
