"""E5.3/E5.4 — Chapter 5: elliptic filter, scheduling before connection.

Regenerates Table 5.3 (FDS resources over rate x pipe) and Table 5.4
(the Chapter-4 flow comparison).

Paper reference point: "The previous approach can not produce any
schedule for several designs with tight time and resource constraints
even [though] there exists a schedule" — the schedule-first flow covers
initiation rate 5 where list scheduling fails.
"""

import pytest

from conftest import one_shot
from repro import synthesize_connection_first, synthesize_schedule_first
from repro.designs import (ELLIPTIC_PINS_UNIDIR, elliptic_design,
                           elliptic_resources)
from repro.errors import ReproError
from repro.modules.library import elliptic_filter_timing
from repro.reporting import TextTable

RATES = (5, 6, 7)
PIPES = (22, 23, 24, 25, 26)


def test_table_5_3_resource_grid(benchmark, record_table):
    table = TextTable(
        ["rate", "pipe budget", "pipe", "total pins",
         "adders", "multipliers"],
        title="Table 5.3 — elliptic filter via FDS + clique "
              "partitioning")

    def sweep():
        rows = []
        for rate in RATES:
            for pipe in PIPES:
                try:
                    result = synthesize_schedule_first(
                        elliptic_design(), ELLIPTIC_PINS_UNIDIR,
                        elliptic_filter_timing(), rate,
                        pipe_length=pipe)
                except ReproError:
                    rows.append((rate, pipe, None))
                    continue
                rows.append((rate, pipe, result))
        return rows

    rows = one_shot(benchmark, sweep)
    scheduled_at_5 = False
    for rate, pipe, result in rows:
        if result is None:
            table.add(rate, pipe, "infeasible", "-", "-", "-")
            continue
        if rate == 5:
            scheduled_at_5 = True
        adders = sum(n for (p, t), n in result.resources.items()
                     if t == "add")
        muls = sum(n for (p, t), n in result.resources.items()
                   if t == "mul")
        table.add(rate, pipe, result.pipe_length,
                  sum(result.pins_used().values()), adders, muls)
    record_table("table5.3_fds_grid", table.render())
    assert scheduled_at_5, \
        "FDS must cover the minimum rate list scheduling misses"


def test_table_5_4_chapter4_comparison(benchmark, record_table):
    table = TextTable(
        ["rate", "ch4 (list sched)", "ch5 (FDS)"],
        title="Table 5.4 — elliptic filter: flow comparison "
              "(paper: Ch 4 fails at the minimum rate, Ch 5 covers it)")

    def sweep():
        rows = []
        for rate in RATES:
            try:
                ch4 = synthesize_connection_first(
                    elliptic_design(), ELLIPTIC_PINS_UNIDIR,
                    elliptic_filter_timing(), rate,
                    resources=elliptic_resources(rate))
                ch4_out = f"pipe {ch4.pipe_length}"
            except ReproError:
                ch4_out = "no schedule"
            try:
                ch5 = synthesize_schedule_first(
                    elliptic_design(), ELLIPTIC_PINS_UNIDIR,
                    elliptic_filter_timing(), rate, pipe_length=24)
                ch5_out = f"pipe {ch5.pipe_length}"
            except ReproError:
                ch5_out = "no schedule"
            rows.append((rate, ch4_out, ch5_out))
        return rows

    rows = one_shot(benchmark, sweep)
    for row in rows:
        table.add(*row)
    record_table("table5.4_comparison", table.render())
    assert rows[0][1] == "no schedule"
    assert rows[0][2].startswith("pipe")
