"""RTL-level accounting and dynamic storage validation.

The dissertation notes that saving pins costs chip area — "an extra
register used to store the input value" per latched transfer (Section
2.2.1), control for multiplexed values (Section 7.3), register control
signals.  This bench makes the area side visible: functional units,
registers (and bits), multiplexer inputs and controller signals per
chip for both flows on the AR filter, and a register-level simulation
pass over every design (overwrite hazards would abort it).
"""

import pytest

from conftest import one_shot
from repro import synthesize_connection_first, synthesize_schedule_first
from repro.designs import AR_GENERAL_PINS_UNIDIR, ar_general_design
from repro.modules.library import ar_filter_timing
from repro.reporting import TextTable
from repro.rtl import (allocate_registers, bind_functional_units,
                       build_control_tables, build_netlist)
from repro.sim import simulate_result_registers


def _account(result):
    binding = bind_functional_units(result.schedule)
    registers = allocate_registers(result.graph, result.schedule)
    netlist = build_netlist(result.graph, result.schedule,
                            result.interconnect, result.assignment,
                            binding, registers)
    tables = build_control_tables(result.graph, result.schedule,
                                  binding, registers,
                                  result.interconnect,
                                  result.assignment)
    units = sum(len(chip.units) for chip in netlist.chips.values())
    regs = sum(len(chip.registers) for chip in netlist.chips.values())
    reg_bits = sum(sum(chip.registers.values())
                   for chip in netlist.chips.values())
    mux_inputs = sum(chip.mux_input_total()
                     for chip in netlist.chips.values())
    signals = sum(t.total_signals() for t in tables.values())
    area = sum(chip.area_estimate() for chip in netlist.chips.values())
    return units, regs, reg_bits, mux_inputs, signals, area


def test_rtl_accounting_both_flows(benchmark, record_table):
    graph = ar_general_design()
    table = TextTable(
        ["flow", "pipe", "pins", "units", "regs (bits)", "mux inputs",
         "ctrl signals", "area est."],
        title="RTL cost accounting, AR filter at rate 3 "
              "(Section 2.2.1's pins-vs-area trade)")

    def run():
        ch4 = synthesize_connection_first(
            graph, AR_GENERAL_PINS_UNIDIR, ar_filter_timing(), 3)
        ch5 = synthesize_schedule_first(
            graph, AR_GENERAL_PINS_UNIDIR, ar_filter_timing(), 3,
            pipe_length=8)
        return ch4, ch5

    ch4, ch5 = one_shot(benchmark, run)
    for label, result in (("Ch 4 (connection first)", ch4),
                          ("Ch 5 (schedule first)", ch5)):
        units, regs, bits, muxes, signals, area = _account(result)
        table.add(label, result.pipe_length,
                  sum(result.pins_used().values()), units,
                  f"{regs} ({bits})", muxes, signals, f"{area:.0f}")
    record_table("rtl_accounting", table.render())


@pytest.mark.parametrize("rate", (3, 4, 5))
def test_register_level_simulation(rate, benchmark, record_table):
    """Every benched AR design survives register-level execution."""
    graph = ar_general_design()

    def run():
        result = synthesize_connection_first(
            graph, AR_GENERAL_PINS_UNIDIR, ar_filter_timing(), rate)
        return result, simulate_result_registers(result, n_instances=6,
                                                 seed=rate)

    result, report = one_shot(benchmark, run)
    assert report.register_reads > 0
    record_table(f"rtl_sim_L{rate}",
                 f"AR rate {rate}: {report}")
