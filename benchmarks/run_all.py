#!/usr/bin/env python
"""Solver benchmark runner — emits machine-readable ``BENCH_ilp.json``,
``BENCH_explore.json``, ``BENCH_schedulers.json``, and
``BENCH_service.json`` (service + cluster sections).

Runs the ILP-heavy synthesis flows plus a pin-allocation checker
microbenchmark, recording wall time and the :mod:`repro.perf` counter
deltas (pivots, cuts, rollbacks, cache hits) for each, then a
design-space-explorer sweep measured cold (empty result cache) and
warm (second identical run), recording points/sec and the cache hit
rate, then a synthesis-service storm (concurrent clients, repeated
design points) against a live ``repro serve`` instance, recording the
throughput gain coalescing buys over sequential ``synthesize()``
calls, then the cluster tier (shard-count scaling, batched
admission, rolling drain) against in-process fleets.  The JSON lands
at the repo root by default so successive PRs accumulate a perf
trajectory that CI can archive.

Usage::

    python benchmarks/run_all.py              # full set
    python benchmarks/run_all.py --smoke      # quick subset (CI)
    python benchmarks/run_all.py --cross-check  # shadow-verified (slow)

``--cross-check`` runs every benchmark with the dense-Fraction shadow
tableau enabled (``repro.ilp.set_cross_check``): each sparse tableau
mutation is mirrored and compared cell-for-cell, so a passing run is a
machine-checked proof that the fast path computes the same tableaus as
the reference implementation.  Wall times are meaningless in that mode;
the JSON marks them as such.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.core.flow import (synthesize_connection_first,  # noqa: E402
                             synthesize_simple)
from repro.core.pin_allocation import PinAllocationChecker  # noqa: E402
from repro.designs import (AR_GENERAL_PINS_UNIDIR,  # noqa: E402
                           AR_SIMPLE_PINS, ar_general_design,
                           ar_simple_design)
from repro.ilp import set_cross_check  # noqa: E402
from repro.modules.library import ar_filter_timing  # noqa: E402
from repro.perf import PERF  # noqa: E402
from repro.scheduling.base import Schedule  # noqa: E402


# ---------------------------------------------------------------------
def bench_ch3_ar_simple_L2():
    result = synthesize_simple(ar_simple_design(), AR_SIMPLE_PINS,
                               ar_filter_timing(), 2)
    return {"pipe_length": result.pipe_length,
            "pin_checks": result.stats["pin_checks"],
            "pin_cache_hits": result.stats["pin_cache_hits"]}


def _bench_ch4_unidir(rate):
    result = synthesize_connection_first(
        ar_general_design(), AR_GENERAL_PINS_UNIDIR, ar_filter_timing(),
        rate)
    return {"pipe_length": result.pipe_length,
            "total_pins": sum(result.pins_used().values()),
            "search_steps": result.stats["search_steps"]}


def bench_ch4_ar_unidir_L3():
    return _bench_ch4_unidir(3)


def bench_ch4_ar_unidir_L4():
    return _bench_ch4_unidir(4)


def bench_ch4_ar_unidir_L5():
    return _bench_ch4_unidir(5)


def _bench_kernel(graph, pins, rate):
    from repro.core.flow import synthesize
    result = synthesize(graph, pins, ar_filter_timing(), rate)
    return {"pipe_length": result.pipe_length,
            "total_pins": sum(result.pins_used().values())}


def bench_kernel_fir_L2():
    """16-tap transposed FIR over its 4-chip tap chain (rate 2 is the
    floor: the degree-1 delay edges cannot close at rate 1)."""
    from repro.designs import FIR_PINS, fir_design
    return _bench_kernel(fir_design(), FIR_PINS, 2)


def bench_kernel_dct_L2():
    """8-point DCT (Loeffler op profile: 29 adds, 11 muls) over
    3 chips; pure feed-forward, so any rate schedules."""
    from repro.designs import DCT_PINS, dct_design
    return _bench_kernel(dct_design(), DCT_PINS, 2)


def bench_micro_pin_checker():
    """Pin-allocation checker microbench: repeated probe passes.

    Probes every (io node, step) pair against an empty schedule for
    several passes.  Pass 1 is all cache misses (cold cutting-plane
    probes); later passes replay the identical committed-bound state and
    should be near-total cache hits — the list scheduler's actual access
    pattern in miniature.
    """
    graph = ar_simple_design()
    timing = ar_filter_timing()
    L = 2
    checker = PinAllocationChecker(graph, AR_SIMPLE_PINS, L)
    schedule = Schedule(graph, timing, L)
    ios = list(graph.io_nodes())
    verdicts = 0
    for _ in range(5):
        for node in ios:
            for step in range(2 * L):
                if checker.can_schedule(node, step, schedule):
                    verdicts += 1
    return {"probes": checker.checks,
            "cache_hits": checker.cache_hits,
            "feasible_verdicts": verdicts}


def bench_obs_overhead():
    """Tracing-on vs tracing-off wall for a fixed solve workload.

    The two modes are interleaved *per solve* — pairs of identical
    ar-simple Chapter 3 solves, one traced and one not, with the order
    inside each pair alternating — and the gated number is ``ratio``
    = total-on / total-off.  Machine-wide drift (noisy neighbours,
    CPU frequency scaling) moves on timescales much longer than one
    ~40 ms solve, so adjacent paired solves see the same conditions
    and the drift cancels in the totals; coarser designs (whole legs
    per mode, even min- or median-over-legs) compare measurements
    from different moments and were observed to turn several percent
    of ambient wall noise into false breaches of the hard cap.
    Tracing on means sample rate 1.0 with no exporter — every solver
    phase becomes a recorded span — which is the worst case the
    "<5% overhead" budget promises; benchmarks/compare.py enforces a
    hard 1.05 cap on the ratio.
    """
    from repro.obs import TRACER

    pairs = 24

    def solve():
        start = time.perf_counter()
        synthesize_simple(ar_simple_design(), AR_SIMPLE_PINS,
                          ar_filter_timing(), 2)
        return time.perf_counter() - start

    def traced_solve():
        TRACER.configure(enabled=True, sample_rate=1.0,
                         export_path="")
        TRACER.reset()
        elapsed = solve()
        recorded = TRACER.stats()["recorded"]
        TRACER.configure(enabled=False)
        return elapsed, recorded

    solve()  # warm-up: fault in both code paths before timing either
    off_s = on_s = 0.0
    spans_per_solve = 0
    try:
        for index in range(pairs):
            if index % 2:  # alternate order to cancel ordering bias
                on, recorded = traced_solve()
                off = solve()
            else:
                off = solve()
                on, recorded = traced_solve()
            off_s += off
            on_s += on
            spans_per_solve = max(spans_per_solve, recorded)
    finally:
        TRACER.configure(enabled=False, sample_rate=1.0,
                         export_path="")
        TRACER.reset()
    ratio = round(on_s / off_s, 4) if off_s else 0.0
    print(f"  obs_overhead  off={off_s:.4f}s  on={on_s:.4f}s  "
          f"ratio={ratio} ({pairs} interleaved pairs)  "
          f"spans/solve={spans_per_solve}")
    return {"pairs": pairs, "off_s": round(off_s, 4),
            "on_s": round(on_s, 4),
            "spans_per_solve": spans_per_solve, "ratio": ratio}


FULL = [bench_ch3_ar_simple_L2, bench_micro_pin_checker,
        bench_ch4_ar_unidir_L3, bench_ch4_ar_unidir_L4,
        bench_ch4_ar_unidir_L5, bench_kernel_fir_L2,
        bench_kernel_dct_L2, bench_obs_overhead]
SMOKE = [bench_ch3_ar_simple_L2, bench_micro_pin_checker,
         bench_ch4_ar_unidir_L3, bench_kernel_fir_L2,
         bench_kernel_dct_L2, bench_obs_overhead]


# ---------------------------------------------------------------------
def bench_explore(smoke: bool, workers: int):
    """Explorer sweep benchmarked cold (empty cache) then warm.

    The warm run replays the identical sweep against the cache the cold
    run populated, so its hit rate is the fraction of points whose
    content hash survived the round trip — 1.0 unless a point failed
    (failures are deliberately never cached).
    """
    import tempfile

    from repro.designs import AR_GENERAL_PINS_UNIDIR, ar_general_design
    from repro.explore import (DesignSpace, Executor, ResultCache,
                               SweepSpec)

    design = DesignSpace(name="ar-general", graph=ar_general_design(),
                         partitioning=AR_GENERAL_PINS_UNIDIR,
                         timing="ar")
    axes = {"rate": [3, 4] if smoke else [3, 4, 5],
            "flow": ["connection-first", "schedule-first"],
            "pin_scale": [1.0, 0.9]}
    spec = SweepSpec(axes=axes)
    jobs = spec.expand(design)

    runs = {}
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "cache.jsonl")
        for label in ("cold", "warm"):
            executor = Executor(workers=workers,
                                cache=ResultCache(path))
            result = executor.run(jobs)
            seconds = result.wall_ms / 1000.0
            stats = result.cache_stats
            runs[label] = {
                "seconds": round(seconds, 4),
                "points": len(result.points),
                "points_per_sec": round(
                    len(result.points) / seconds, 2) if seconds else 0.0,
                "statuses": result.status_counts(),
                "cache_hit_rate": stats["hit_rate"],
                "pareto_size": len(result.pareto_indices()),
            }
            print(f"  explore[{label}]  {seconds:8.3f}s  "
                  f"{runs[label]['points_per_sec']:8.1f} points/s  "
                  f"hit_rate={stats['hit_rate']}")
    return {"design": "ar-general", "workers": workers,
            "axes": spec.to_dict()["axes"], "n_points": len(jobs),
            "runs": runs}


# ---------------------------------------------------------------------
def bench_warm_neighbors(smoke: bool):
    """The warm-start tier on near-duplicate solves, cold vs warm.

    Sweeps the stacked AR design (four copies sharing one chip set, so
    the pin ILP dominates each solve) over 21 neighboring pin budgets —
    non-identical points whose content hashes all differ, so the result
    cache never helps.  The cold run solves every point from scratch;
    the warm run chains the points onto one worker in descending budget
    order with a shared pin-oracle store, so after the chain head the
    store's witness/dominance shortcuts answer whole solve trajectories
    without building a tableau.  Both runs use one worker: the metric
    is per-point work, not parallelism.

    The budget grid starts at 1.75x: below that the budgets constrain
    the schedule, each point takes a different commit trajectory, and
    the warm tier degrades toward cold (by design — warm answers must
    stay bit-identical, so divergent points re-solve).
    """
    from repro.core.oracle_store import OracleStore
    from repro.designs import ar_stacked_design, ar_stacked_pins
    from repro.explore import (DesignSpace, Executor, ResultCache,
                               SweepSpec)

    copies = 4
    design = DesignSpace(name=f"ar-stacked-{copies}",
                         graph=ar_stacked_design(copies),
                         partitioning=ar_stacked_pins(copies),
                         timing="ar")
    scales = [round(1.75 + 0.025 * i, 4) for i in range(21)]
    spec = SweepSpec(axes={"rate": [2], "flow": ["simple"],
                           "pin_scale": scales})
    jobs = spec.expand(design)

    runs = {}
    for label in ("cold", "warm_neighbors"):
        warm = label != "cold"
        executor = Executor(workers=1, cache=ResultCache(),
                            warm=warm,
                            oracle_store=OracleStore() if warm else None)
        before = PERF.snapshot()
        start = time.perf_counter()
        result = executor.run(jobs)
        seconds = time.perf_counter() - start
        counters = PERF.delta_since(before)["counters"]
        runs[label] = {
            "seconds": round(seconds, 4),
            "points": len(result.points),
            "points_per_sec": round(
                len(result.points) / seconds, 2) if seconds else 0.0,
            "statuses": result.status_counts(),
            "counters": {
                "warm_accepted": counters.get("gomory.warm_accepted", 0),
                "warm_rejected": counters.get("gomory.warm_rejected", 0),
                "pin_store_hits": counters.get("pin.store_hits", 0),
                "pin_store_dominance_hits": counters.get(
                    "pin.store_dominance_hits", 0),
                "tableau_pivots": counters.get("tableau.pivots", 0),
            },
        }
        print(f"  warm_neighbors[{label}]  {seconds:8.3f}s  "
              f"{runs[label]['points_per_sec']:8.1f} points/s  "
              f"pivots={runs[label]['counters']['tableau_pivots']}")
    cold_pps = runs["cold"]["points_per_sec"]
    warm_pps = runs["warm_neighbors"]["points_per_sec"]
    speedup = round(warm_pps / cold_pps, 2) if cold_pps else 0.0
    print(f"  warm_neighbors speedup {speedup}x")
    return {"design": design.name, "workers": 1,
            "axes": spec.to_dict()["axes"], "n_points": len(jobs),
            "speedup": speedup, "runs": runs}


# ---------------------------------------------------------------------
def bench_schedulers(smoke: bool):
    """Every registered scheduler backend on two fixed workloads.

    Drives each backend through the flow it supports — ``ar-general``
    under connection-first (rate 3), ``ar-stacked-4`` under the
    Chapter 3 simple flow (rate 2, four AR copies so the pin ILP
    dominates) — and records solve throughput (points/sec over
    ``repeats`` identical solves) plus the quality metrics that
    distinguish backends: schedule latency (pipe length) and total
    pins.  Throughput is wall-based; latency and pins are
    deterministic for a fixed workload, so the regression gate holds
    backends to their QoR, not just their speed.
    """
    from repro.core.flow import synthesize
    from repro.designs import ar_stacked_design, ar_stacked_pins
    from repro.pipeline import scheduler_names

    repeats = 2 if smoke else 5
    workloads = [
        ("ar-general", ar_general_design(), AR_GENERAL_PINS_UNIDIR,
         "connection-first", 3),
        ("ar-stacked-4", ar_stacked_design(4), ar_stacked_pins(4),
         "simple", 2),
    ]
    timing = ar_filter_timing()
    out = {}
    for name, graph, pins, flow, rate in workloads:
        backends = {}
        for backend in scheduler_names(flow):
            start = time.perf_counter()
            for _ in range(repeats):
                result = synthesize(graph, pins, timing, rate,
                                    flow=flow, scheduler=backend)
            seconds = time.perf_counter() - start
            backends[backend] = {
                "seconds": round(seconds, 4),
                "points_per_sec": round(repeats / seconds, 2)
                if seconds else 0.0,
                "latency": result.pipe_length,
                "total_pins": sum(result.pins_used().values()),
            }
            print(f"  schedulers[{name}/{backend}]  {seconds:8.3f}s  "
                  f"{backends[backend]['points_per_sec']:8.1f} "
                  f"points/s  latency={result.pipe_length}")
        out[name] = {"flow": flow, "rate": rate, "repeats": repeats,
                     "backends": backends}
    return out


# ---------------------------------------------------------------------
def bench_service(smoke: bool, workers: int):
    """The serving layer vs sequential ``synthesize()`` calls.

    Fires N requests (round-robin over 5 distinct design points, so
    identical requests arrive interleaved from 16 client threads) at a
    live ``repro serve`` instance and times the storm end-to-end over
    HTTP.  Request coalescing collapses the storm to 5 solves shared
    across the warm worker pool; the baseline is the same N solves run
    sequentially in-process with no service in the way.  Server startup
    (pool fork + warmup) happens before the clock starts — the
    benchmark measures serving, not booting.
    """
    import threading

    from repro.core.flow import synthesize
    from repro.explore.worker import resolve_timing
    from repro.service import ServiceClient, ServiceConfig, \
        ThreadedServer
    from repro.service.catalog import design_space

    combos = [("ar-simple", 2, "simple"),
              ("ar-general", 3, "connection-first"),
              ("ar-general", 4, "connection-first"),
              ("ar-general", 3, "schedule-first"),
              ("ar-general", 4, "schedule-first")]
    repeats = 4 if smoke else 10
    requests = combos * repeats
    client_threads = 16

    spaces = {name: design_space(name) for name, _, _ in combos}
    start = time.perf_counter()
    for name, rate, flow in requests:
        space = spaces[name]
        synthesize(space.graph, space.partitioning,
                   resolve_timing(space.timing), rate, flow=flow)
    sequential_s = time.perf_counter() - start
    print(f"  service[sequential]  {sequential_s:8.3f}s  "
          f"{len(requests) / sequential_s:8.1f} req/s")

    config = ServiceConfig(port=0, workers=workers, max_queue=128,
                           pool_mode="process", cache_sync=False)
    statuses = {}
    lock = threading.Lock()
    with ThreadedServer(config) as server:
        client = ServiceClient(port=server.port, timeout_s=300.0)
        client.wait_until_ready()
        work = list(requests)

        def pump():
            while True:
                with lock:
                    if not work:
                        return
                    name, rate, flow = work.pop()
                response = client.synthesize(name, rate=rate,
                                             flow=flow,
                                             timeout_ms=120000)
                with lock:
                    outcome = response["status"]
                    statuses[outcome] = statuses.get(outcome, 0) + 1

        pumps = [threading.Thread(target=pump)
                 for _ in range(client_threads)]
        start = time.perf_counter()
        for thread in pumps:
            thread.start()
        for thread in pumps:
            thread.join()
        service_s = time.perf_counter() - start
        payload = client.metrics()
        metrics = payload["service"]
        oracle = payload.get("oracle", {})
        perf_counters = payload.get("perf", {}).get("counters", {})
    print(f"  service[coalesced]   {service_s:8.3f}s  "
          f"{len(requests) / service_s:8.1f} req/s  "
          f"speedup={sequential_s / service_s:.1f}x  "
          f"coalesced={metrics['counters']['coalesced']}  "
          f"shed={metrics['counters']['shed']}")

    return {
        "combos": [{"design": name, "rate": rate, "flow": flow}
                   for name, rate, flow in combos],
        "requests": len(requests),
        "distinct_jobs": len(combos),
        "client_threads": client_threads,
        "service_workers": workers,
        "sequential": {
            "seconds": round(sequential_s, 4),
            "requests_per_sec": round(len(requests) / sequential_s, 2),
        },
        "service": {
            "seconds": round(service_s, 4),
            "requests_per_sec": round(len(requests) / service_s, 2),
            "statuses": statuses,
            "latency": metrics["latency"],
        },
        "speedup": round(sequential_s / service_s, 2),
        "counters": metrics["counters"],
        "oracle_store": oracle,
        "pin_counters": {
            "pin_store_hits": perf_counters.get("pin.store_hits", 0),
            "pin_store_dominance_hits": perf_counters.get(
                "pin.store_dominance_hits", 0),
            "pin_cache_hits": perf_counters.get("pin.cache_hits", 0),
            "pin_cache_misses": perf_counters.get("pin.cache_misses", 0),
        },
    }


# ---------------------------------------------------------------------
class _SleepSolve:
    """Synthetic job runner for the cluster scaling benchmark.

    Sleeping instead of solving makes shard-count scaling measurable
    on any machine: ``time.sleep`` releases the GIL, so N shards'
    worker threads genuinely overlap even on one core, while a real
    ILP solve would serialize on the interpreter lock and measure the
    CPU, not the cluster.  The sleep length is recorded in the output
    (``synthetic_solve_ms``) so nobody mistakes the req/s figures for
    solver throughput; what IS real is every other hop — HTTP framing,
    ring routing, batching, coalescing, and the shared-cache frames.
    """

    def __init__(self, solve_s: float) -> None:
        import threading
        self.solve_s = solve_s
        self.keys = []
        self._lock = threading.Lock()

    def __call__(self, payload):
        with self._lock:
            self.keys.append(payload.get("key", ""))
        time.sleep(self.solve_s)
        return {"status": "ok", "key": payload.get("key", ""),
                "metrics": {"chips": 2, "buses": 3, "total_pins": 100,
                            "latency": 6,
                            "wall_ms": self.solve_s * 1000.0},
                "stats": {}, "wall_ms": self.solve_s * 1000.0,
                "diagnostics": {"degraded": False, "events": []}}

    @property
    def calls(self) -> int:
        with self._lock:
            return len(self.keys)


def bench_cluster(smoke: bool):
    """Shard-count scaling, batched admission, and rolling drain.

    Spins a complete in-process cluster per shard count — one shared
    cache server, N single-worker thread-pool shards mounting it
    ``remote://``, one front tier — and storms it with a 50-request
    mixed workload (20 distinct design points) from 16 client
    threads.  Fleet-wide coalescing means each distinct point solves
    exactly once no matter the shard count, so aggregate req/s scales
    with how evenly the ring spreads the 20 keys.  Two more sections
    exercise the admission batcher (distinct-rate requests folded into
    per-owner sweeps) and a rolling drain (one shard stopped
    mid-storm; the front's failover must lose zero requests).
    """
    import threading

    from repro.cluster import (ClusterConfig, ShardAddress,
                               ThreadedCacheServer, ThreadedFrontTier)
    from repro.service import (ServiceClient, ServiceConfig,
                               ShardIdentity, ThreadedServer)

    solve_s = 0.15 if smoke else 0.3
    designs = ["ar-simple", "ar-general", "ar-general-bidir",
               "elliptic", "elliptic-bidir"]
    rates = [3, 4, 5, 6]
    keys = [(design, rate) for design in designs for rate in rates]
    requests = (keys * 3)[:50]
    client_threads = 16
    shard_counts = [1, 2] if smoke else [1, 2, 4]

    def build(n_shards, runner, batch_window_ms=0.0,
              probe_interval_s=0.5):
        cache = ThreadedCacheServer().start()
        shards = []
        for index in range(n_shards):
            shard = ThreadedServer(ServiceConfig(
                port=0, workers=1, pool_mode="thread",
                cache_sync=False,
                cache_path=f"remote://{cache.address}",
                job_runner=runner,
                shard=ShardIdentity(f"shard-{index}", index, n_shards)))
            shard.start()
            shards.append(shard)
        front = ThreadedFrontTier(ClusterConfig(
            shards=tuple(ShardAddress(f"shard-{i}", "127.0.0.1",
                                      s.port)
                         for i, s in enumerate(shards)),
            port=0, cache_address=cache.address,
            batch_window_ms=batch_window_ms,
            probe_interval_s=probe_interval_s)).start()
        return cache, shards, front

    def teardown(cache, shards, front):
        front.stop()
        for shard in shards:
            shard.stop()
        cache.stop()

    def storm(port, work, retries=0, failures=None, threads=None):
        client = ServiceClient(port=port, timeout_s=120.0,
                               retries=retries)
        lock = threading.Lock()
        statuses = {}

        def pump():
            while True:
                with lock:
                    if not work:
                        return
                    design, rate = work.pop()
                try:
                    response = client.synthesize(
                        design, rate=rate, timeout_ms=60000)
                    outcome = response["status"]
                except Exception as exc:
                    outcome = f"lost:{type(exc).__name__}"
                    if failures is not None:
                        failures.append(exc)
                with lock:
                    statuses[outcome] = statuses.get(outcome, 0) + 1

        pumps = [threading.Thread(target=pump)
                 for _ in range(threads or client_threads)]
        start = time.perf_counter()
        for thread in pumps:
            thread.start()
        for thread in pumps:
            thread.join()
        return time.perf_counter() - start, statuses

    # -- shard-count scaling -------------------------------------------
    scaling = {}
    for n_shards in shard_counts:
        runner = _SleepSolve(solve_s)
        cache, shards, front = build(n_shards, runner)
        try:
            seconds, statuses = storm(front.port, list(requests))
            counters = front.front.metrics.snapshot()["counters"]
        finally:
            teardown(cache, shards, front)
        label = f"shards-{n_shards}"
        scaling[label] = {
            "shards": n_shards,
            "seconds": round(seconds, 4),
            "requests_per_sec": round(len(requests) / seconds, 2),
            "statuses": statuses,
            "executed": runner.calls,
            "exactly_once": runner.calls <= len(keys),
            "front_counters": counters,
        }
        print(f"  cluster[{label}]  {seconds:8.3f}s  "
              f"{scaling[label]['requests_per_sec']:8.1f} req/s  "
              f"executed={runner.calls}/{len(keys)} distinct")

    base = scaling[f"shards-{shard_counts[0]}"]["requests_per_sec"]
    peak_label = f"shards-{shard_counts[-1]}"
    peak = scaling[peak_label]["requests_per_sec"]
    speedup = round(peak / base, 2) if base else 0.0
    print(f"  cluster scaling {speedup}x "
          f"({peak_label} vs shards-{shard_counts[0]})")

    # -- batched admission ---------------------------------------------
    # One design, 8 distinct rates, all admitted inside one batching
    # window (a barrier lines the clients up): the front folds them
    # into one sweep per owner shard.  The keys are content-derived,
    # so the per-owner grouping — and with it the batched/requests
    # ratio — is deterministic for a fixed shard count.
    runner = _SleepSolve(0.05)
    cache, shards, front = build(2, runner, batch_window_ms=120.0)
    try:
        client = ServiceClient(port=front.port, timeout_s=120.0)
        barrier = threading.Barrier(8)
        outcomes = []
        lock = threading.Lock()

        def batched_call(rate):
            barrier.wait()
            response = client.synthesize("ar-general", rate=rate,
                                         timeout_ms=60000)
            with lock:
                outcomes.append(response["status"])

        callers = [threading.Thread(target=batched_call, args=(rate,))
                   for rate in range(2, 10)]
        for thread in callers:
            thread.start()
        for thread in callers:
            thread.join()
        counters = front.front.metrics.snapshot()["counters"]
    finally:
        teardown(cache, shards, front)
    batching = {
        "requests": len(callers),
        "batched": counters.get("batched", 0),
        "batch_windows": counters.get("batch_windows", 0),
        "ratio": round(counters.get("batched", 0) / len(callers), 4),
        "statuses": {s: outcomes.count(s) for s in set(outcomes)},
    }
    print(f"  cluster[batching]  batched={batching['batched']}"
          f"/{batching['requests']}  "
          f"windows={batching['batch_windows']}  "
          f"ratio={batching['ratio']}")

    # -- rolling drain -------------------------------------------------
    # Stop one of two shards mid-storm.  The front's failover re-aims
    # that shard's keys at the survivor; with client retries as a
    # backstop for any 503 caught in the closing door, zero requests
    # may be lost.
    # A slow prober forces the REACTIVE path: the front discovers the
    # dead shard by tripping over it mid-request, not by probing.
    runner = _SleepSolve(0.15)
    cache, shards, front = build(2, runner, probe_interval_s=60.0)
    try:
        failures = []
        work = list((keys * 2)[:40])
        stopper = threading.Timer(0.4, shards[0].stop)
        stopper.start()
        # Only 4 pumps, so the tail of the storm arrives after the
        # shard dies and must be re-routed, not just drained.
        seconds, statuses = storm(front.port, work, retries=5,
                                  failures=failures, threads=4)
        stopper.join()
        counters = front.front.metrics.snapshot()["counters"]
    finally:
        teardown(cache, shards, front)
    lost = sum(count for status, count in statuses.items()
               if status.startswith("lost:"))
    drain = {
        "requests": 40,
        "seconds": round(seconds, 4),
        "statuses": statuses,
        "lost": lost,
        "failovers": counters.get("failovers", 0),
    }
    print(f"  cluster[rolling-drain]  {seconds:8.3f}s  lost={lost}  "
          f"failovers={drain['failovers']}")

    return {
        "workload": {
            "requests": len(requests),
            "distinct_jobs": len(keys),
            "designs": designs,
            "rates": rates,
            "client_threads": client_threads,
            "workers_per_shard": 1,
            "synthetic_solve_ms": solve_s * 1000.0,
        },
        "scaling": scaling,
        "speedup": speedup,
        "batching": batching,
        "rolling_drain": drain,
    }


# ---------------------------------------------------------------------
def run(benches, cross_check: bool):
    results = {}
    for fn in benches:
        name = fn.__name__.removeprefix("bench_")
        before = PERF.snapshot()
        start = time.perf_counter()
        payload = fn()
        elapsed = time.perf_counter() - start
        delta = PERF.delta_since(before)
        results[name] = {
            "seconds": round(elapsed, 4),
            "result": payload,
            "counters": delta["counters"],
            "timings": {k: round(v, 4)
                        for k, v in delta["timings"].items()},
        }
        print(f"  {name:28s} {elapsed:8.3f}s  "
              f"pivots={delta['counters'].get('tableau.pivots', 0)}")
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="quick CI subset")
    parser.add_argument("--cross-check", action="store_true",
                        help="mirror every tableau op onto the dense "
                             "Fraction reference and compare (slow)")
    parser.add_argument("--out", default=os.path.join(REPO_ROOT,
                                                      "BENCH_ilp.json"),
                        help="output JSON path")
    parser.add_argument("--explore-out",
                        default=os.path.join(REPO_ROOT,
                                             "BENCH_explore.json"),
                        help="explorer benchmark output JSON path")
    parser.add_argument("--explore-workers", type=int,
                        default=min(2, os.cpu_count() or 1),
                        help="worker processes for the explorer sweep")
    parser.add_argument("--schedulers-out",
                        default=os.path.join(
                            REPO_ROOT, "BENCH_schedulers.json"),
                        help="scheduler-backend benchmark output JSON "
                             "path")
    parser.add_argument("--service-out",
                        default=os.path.join(REPO_ROOT,
                                             "BENCH_service.json"),
                        help="service benchmark output JSON path")
    parser.add_argument("--service-workers", type=int,
                        default=min(4, os.cpu_count() or 1),
                        help="worker processes for the service pool")
    args = parser.parse_args(argv)

    benches = SMOKE if args.smoke else FULL
    mode = "smoke" if args.smoke else "full"
    if args.cross_check:
        set_cross_check(True)
        print("cross-check mode: shadow tableau enabled "
              "(timings not representative)")
    try:
        print(f"running {len(benches)} benchmarks ({mode}) ...")
        results = run(benches, args.cross_check)
    finally:
        if args.cross_check:
            set_cross_check(False)

    doc = {
        "schema": "repro-bench-ilp/1",
        "mode": mode,
        "cross_check": args.cross_check,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "benchmarks": results,
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")

    if not args.cross_check:  # shadow tableaus make sweeps crawl
        print("running explorer benchmark (cold + warm cache) ...")
        explore_doc = {
            "schema": "repro-bench-explore/1",
            "mode": mode,
            "python": platform.python_version(),
            "platform": platform.platform(),
            "explore": bench_explore(args.smoke, args.explore_workers),
            "warm_neighbors": bench_warm_neighbors(args.smoke),
        }
        with open(args.explore_out, "w", encoding="utf-8") as fh:
            json.dump(explore_doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.explore_out}")

        print("running scheduler-backend benchmark ...")
        schedulers_doc = {
            "schema": "repro-bench-schedulers/1",
            "mode": mode,
            "python": platform.python_version(),
            "platform": platform.platform(),
            "schedulers": bench_schedulers(args.smoke),
        }
        with open(args.schedulers_out, "w", encoding="utf-8") as fh:
            json.dump(schedulers_doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.schedulers_out}")

        print("running service benchmark "
              "(coalescing vs sequential) ...")
        service_doc = {
            "schema": "repro-bench-service/1",
            "mode": mode,
            "python": platform.python_version(),
            "platform": platform.platform(),
            "service": bench_service(args.smoke, args.service_workers),
        }
        print("running cluster benchmark "
              "(shard scaling + batching + drain) ...")
        service_doc["cluster"] = bench_cluster(args.smoke)
        with open(args.service_out, "w", encoding="utf-8") as fh:
            json.dump(service_doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.service_out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
