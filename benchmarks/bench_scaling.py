"""Scaling behaviour on growing random designs.

The dissertation's run-time discussion (0.5 s on a Sun 3/280 for the
AR filter; connection ILPs too slow beyond toy sizes; heuristics that
stay usable) motivates checking how the *heuristic* pipeline scales:
connection search + list scheduling with bus reassignment on random
partitioned designs of growing operation counts and chip counts.
"""

import time

import pytest

from conftest import one_shot
from repro import synthesize_connection_first
from repro.designs import random_partitioned_design
from repro.errors import ReproError
from repro.modules.library import DesignTiming, HardwareModule, ModuleSet
from repro.reporting import TextTable


def timing():
    return DesignTiming(
        clock_period=250.0,
        default=ModuleSet.of(
            HardwareModule("adder", "add", 30.0),
            HardwareModule("multiplier", "mul", 210.0)),
        io_delay_ns=10.0)


SIZES = [(3, 20), (4, 40), (5, 60), (6, 90)]


def test_scaling_sweep(benchmark, record_table):
    table = TextTable(
        ["chips", "ops", "I/O ops", "seconds", "pipe", "buses"],
        title="heuristic pipeline scaling (rate 3, random designs)")

    def sweep():
        rows = []
        for n_chips, n_ops in SIZES:
            graph, partitioning = random_partitioned_design(
                seed=n_ops, n_chips=n_chips, n_ops=n_ops,
                pin_budget=1024)
            start = time.perf_counter()
            try:
                result = synthesize_connection_first(
                    graph, partitioning, timing(), 3)
                elapsed = time.perf_counter() - start
                rows.append((n_chips, n_ops, len(graph.io_nodes()),
                             elapsed, result.pipe_length,
                             len(result.interconnect.buses)))
            except ReproError:
                rows.append((n_chips, n_ops, len(graph.io_nodes()),
                             time.perf_counter() - start, "fail", "-"))
        return rows

    rows = one_shot(benchmark, sweep)
    for n_chips, n_ops, n_ios, elapsed, pipe, buses in rows:
        table.add(n_chips, n_ops, n_ios, f"{elapsed:.2f}", pipe, buses)
    record_table("scaling_sweep", table.render())
    # Everything under a second per design keeps the tool interactive.
    finished = [r for r in rows if isinstance(r[4], int)]
    assert finished, "at least some sizes must synthesize"
    assert all(r[3] < 30.0 for r in rows)
