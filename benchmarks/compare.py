#!/usr/bin/env python
"""Benchmark regression gate: current BENCH_*.json vs a baseline set.

Compares the metrics that matter for the solver's performance story —
explorer points/sec, service req/s, and tableau pivot counts — and
exits non-zero when any of them regresses by more than the tolerance
(default 20%).  Pivot counts are deterministic for a fixed workload, so
they catch algorithmic regressions (a lost warm-start, a broken cut
pool) that wall-clock noise would hide; the wall-based rates catch the
rest.

Usage::

    python benchmarks/compare.py --baseline-dir <dir> [--current-dir .]
        [--tolerance 0.20] [--skip-wall]

``--baseline-dir`` typically points at a git checkout (or ``git show``
dump) of the committed BENCH files; ``--current-dir`` at a fresh
``run_all.py`` output.  ``--skip-wall`` restricts the gate to the
deterministic counters plus same-run speedup ratios — use it when the
baseline was produced on different hardware, where absolute rates are
not comparable but pivot counts and cold/warm ratios still are.

Files missing on either side are skipped with a note (so the gate
degrades gracefully when a benchmark is added or retired), but a
baseline/current ``mode`` mismatch (smoke vs full) is an error: the
workloads differ, so the numbers are not comparable.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, List, Optional, Tuple

#: (name, higher_is_better, wall_based) for every gated metric; the
#: extractors below yield (name, value) pairs keyed into this table.
DIRECTIONS = {
    "rate": (True, True),       # points/sec, req/s: higher is better
    "speedup": (True, False),   # same-run ratio: hardware-independent
    "pivots": (False, False),   # deterministic work counter
    "quality": (False, False),  # latency/pins: deterministic, lower
    "overhead": (False, False),  # same-run ratio against a hard cap
}

#: Hard ceiling for "overhead"-kind metrics (tracing-on wall must stay
#: within 5% of tracing-off).  Unlike the relative tolerance, the cap
#: binds against an absolute contract, so it applies even when the
#: baseline side predates the metric.
OVERHEAD_CAP = 1.05


class Metric:
    def __init__(self, name: str, kind: str, value: float) -> None:
        self.name = name
        self.kind = kind
        self.value = float(value)


def _load(path: str) -> Optional[Dict[str, Any]]:
    if not os.path.exists(path):
        return None
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


# ---------------------------------------------------------------------
# Extractors: one per BENCH file, tolerant of absent sections so the
# gate keeps working against baselines that predate a benchmark.
# ---------------------------------------------------------------------
def metrics_ilp(doc: Dict[str, Any]) -> List[Metric]:
    out = []
    for name, bench in sorted(doc.get("benchmarks", {}).items()):
        pivots = bench.get("counters", {}).get("tableau.pivots")
        if pivots is not None:
            out.append(Metric(f"ilp.{name}.tableau_pivots",
                              "pivots", pivots))
    ratio = (doc.get("benchmarks", {}).get("obs_overhead", {})
             .get("result", {}).get("ratio"))
    if ratio is not None:
        out.append(Metric("ilp.obs_overhead.ratio", "overhead", ratio))
    return out


def metrics_explore(doc: Dict[str, Any]) -> List[Metric]:
    out = []
    explore = doc.get("explore", {})
    cold = explore.get("runs", {}).get("cold", {})
    if "points_per_sec" in cold:
        out.append(Metric("explore.cold.points_per_sec", "rate",
                          cold["points_per_sec"]))
    warm = doc.get("warm_neighbors", {})
    if warm:
        out.append(Metric("warm_neighbors.speedup", "speedup",
                          warm.get("speedup", 0.0)))
        for label, run in sorted(warm.get("runs", {}).items()):
            pps = run.get("points_per_sec")
            if pps is not None:
                out.append(Metric(f"warm_neighbors.{label}."
                                  "points_per_sec", "rate", pps))
            pivots = run.get("counters", {}).get("tableau_pivots")
            if pivots is not None:
                out.append(Metric(f"warm_neighbors.{label}."
                                  "tableau_pivots", "pivots", pivots))
    return out


def metrics_service(doc: Dict[str, Any]) -> List[Metric]:
    out = []
    service = doc.get("service", {})
    rps = service.get("service", {}).get("requests_per_sec")
    if rps is not None:
        out.append(Metric("service.requests_per_sec", "rate", rps))
    if "speedup" in service:
        out.append(Metric("service.speedup", "speedup",
                          service["speedup"]))
    cluster = doc.get("cluster", {})
    for label, run in sorted(cluster.get("scaling", {}).items()):
        rps = run.get("requests_per_sec")
        if rps is not None:
            out.append(Metric(f"cluster.{label}.requests_per_sec",
                              "rate", rps))
    if "speedup" in cluster:
        # Shard-count scaling is a same-run ratio, but both legs are
        # sleep-paced storms, so it is wall-noise-sensitive enough to
        # treat as a rate (skipped under --skip-wall).
        out.append(Metric("cluster.scaling_speedup", "rate",
                          cluster["speedup"]))
    ratio = cluster.get("batching", {}).get("ratio")
    if ratio is not None:
        # Deterministic for a fixed workload: content-derived keys
        # make the per-owner batch grouping reproducible.
        out.append(Metric("cluster.batching.ratio", "speedup", ratio))
    return out


def metrics_schedulers(doc: Dict[str, Any]) -> List[Metric]:
    out = []
    for design, workload in sorted(doc.get("schedulers", {}).items()):
        for name, run in sorted(workload.get("backends", {}).items()):
            prefix = f"schedulers.{design}.{name}"
            pps = run.get("points_per_sec")
            if pps is not None:
                out.append(Metric(f"{prefix}.points_per_sec",
                                  "rate", pps))
            for quality in ("latency", "total_pins"):
                value = run.get(quality)
                if value is not None:
                    out.append(Metric(f"{prefix}.{quality}",
                                      "quality", value))
    return out


EXTRACTORS = {
    "BENCH_ilp.json": metrics_ilp,
    "BENCH_explore.json": metrics_explore,
    "BENCH_schedulers.json": metrics_schedulers,
    "BENCH_service.json": metrics_service,
}


# ---------------------------------------------------------------------
def compare(baseline: List[Metric], current: List[Metric],
            tolerance: float, skip_wall: bool
            ) -> Tuple[List[str], List[str]]:
    """Returns (report lines, regression lines)."""
    base = {m.name: m for m in baseline}
    cur = {m.name: m for m in current}
    lines: List[str] = []
    failures: List[str] = []
    for name in sorted(set(base) & set(cur)):
        b, c = base[name], cur[name]
        higher_better, wall_based = DIRECTIONS[c.kind]
        if skip_wall and wall_based:
            lines.append(f"  skip  {name:48s} (wall-based)")
            continue
        if c.kind == "overhead":
            # Absolute contract, not a relative drift check: the
            # current ratio must sit under the cap no matter what the
            # baseline measured.
            regressed = c.value > OVERHEAD_CAP
            verdict = "FAIL" if regressed else "ok"
            lines.append(f"  {verdict:4s}  {name:48s} "
                         f"{b.value:12.2f} -> {c.value:12.2f}  "
                         f"(cap {OVERHEAD_CAP})")
            if regressed:
                failures.append(name)
            continue
        if b.value == 0:
            lines.append(f"  skip  {name:48s} (baseline is 0)")
            continue
        change = (c.value - b.value) / b.value
        regressed = (change < -tolerance if higher_better
                     else change > tolerance)
        verdict = "FAIL" if regressed else "ok"
        lines.append(f"  {verdict:4s}  {name:48s} "
                     f"{b.value:12.2f} -> {c.value:12.2f}  "
                     f"({change:+.1%})")
        if regressed:
            failures.append(name)
    for name in sorted(set(base) - set(cur)):
        lines.append(f"  skip  {name:48s} (absent in current)")
    for name in sorted(set(cur) - set(base)):
        c = cur[name]
        if c.kind == "overhead" and c.value > OVERHEAD_CAP:
            lines.append(f"  FAIL  {name:48s} "
                         f"{c.value:12.2f} (cap {OVERHEAD_CAP}, "
                         f"no baseline)")
            failures.append(name)
            continue
        lines.append(f"  new   {name:48s} "
                     f"{c.value:12.2f} (no baseline)")
    return lines, failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="fail on benchmark regressions vs a baseline")
    parser.add_argument("--baseline-dir", required=True,
                        help="directory holding baseline BENCH_*.json")
    parser.add_argument("--current-dir", default=".",
                        help="directory holding current BENCH_*.json")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed relative regression (default 0.20)")
    parser.add_argument("--skip-wall", action="store_true",
                        help="gate only deterministic counters and "
                             "same-run speedups (cross-hardware mode)")
    args = parser.parse_args(argv)

    any_compared = False
    failures: List[str] = []
    for filename, extract in EXTRACTORS.items():
        base_doc = _load(os.path.join(args.baseline_dir, filename))
        cur_doc = _load(os.path.join(args.current_dir, filename))
        if base_doc is None or cur_doc is None:
            side = "baseline" if base_doc is None else "current"
            print(f"{filename}: missing on {side} side, skipped")
            continue
        if base_doc.get("mode") != cur_doc.get("mode"):
            print(f"{filename}: mode mismatch "
                  f"({base_doc.get('mode')} vs {cur_doc.get('mode')}); "
                  f"workloads differ, refusing to compare")
            return 2
        print(f"{filename}:")
        lines, failed = compare(extract(base_doc), extract(cur_doc),
                                args.tolerance, args.skip_wall)
        for line in lines:
            print(line)
        any_compared = any_compared or bool(lines)
        failures.extend(failed)

    if not any_compared:
        print("no comparable benchmarks found")
        return 2
    if failures:
        print(f"\nREGRESSIONS ({len(failures)}, "
              f"tolerance {args.tolerance:.0%}):")
        for name in failures:
            print(f"  {name}")
        return 1
    print("\nno regressions beyond tolerance "
          f"({args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
