"""Tests for the table/report renderers."""

from repro import synthesize_connection_first
from repro.designs import AR_GENERAL_PINS_UNIDIR, ar_general_design
from repro.modules.library import ar_filter_timing
from repro.reporting import (TextTable, bus_allocation_table,
                             bus_assignment_table, interconnect_listing,
                             pins_summary, schedule_listing)

import pytest


class TestTextTable:
    def test_renders_aligned(self):
        table = TextTable(["a", "long header"], title="t")
        table.add(1, "x")
        table.add("wide cell", 2)
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "t"
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1  # all rows same width

    def test_wrong_arity_rejected(self):
        table = TextTable(["a", "b"])
        with pytest.raises(ValueError):
            table.add(1)


@pytest.fixture(scope="module")
def ar_result():
    return synthesize_connection_first(
        ar_general_design(), AR_GENERAL_PINS_UNIDIR,
        ar_filter_timing(), 3)


class TestReports:
    def test_schedule_listing(self, ar_result):
        text = schedule_listing(ar_result.schedule)
        assert "step" in text
        assert "O1" in text or "O2" in text

    def test_bus_allocation_table(self, ar_result):
        text = bus_allocation_table(
            ar_result.graph, ar_result.schedule,
            ar_result.interconnect, ar_result.assignment)
        assert "C1" in text
        # L=3: three step-group rows.
        assert text.count("...") == 3

    def test_bus_assignment_table(self, ar_result):
        initial = ar_result.stats["initial_assignment"]
        text = bus_assignment_table(initial, ar_result.assignment)
        assert "initial assignment" in text
        assert "final assignment" in text

    def test_interconnect_listing(self, ar_result):
        text = interconnect_listing(ar_result.interconnect)
        assert "P0" in text and "->" in text

    def test_pins_summary(self, ar_result):
        text = pins_summary(ar_result.partitioning,
                            ar_result.pins_used(),
                            pipe_length=ar_result.pipe_length)
        assert "pipe length" in text
        assert "P1" in text
