"""Shared cache protocol: framing, versioning, server, read-through.

The protocol layer is exercised both in pure form (frame bytes,
``dispatch`` on a server instance) and over real sockets through
:class:`ThreadedCacheServer`, including the degradation contract: a
shard with a dead cache server keeps serving from its local index and
counts the failures instead of raising.
"""

import socket
import time

import pytest

from repro.cluster import (CacheClient, CacheClientError,
                           ProtocolError, ReadThroughCache,
                           ThreadedCacheServer, parse_address)
from repro.cluster.cache_server import CacheServer
from repro.cluster.protocol import (MAX_FRAME_BYTES, decode_body,
                                    encode_frame, recv_frame,
                                    send_frame)
from repro.explore.cache import ResultCache, open_result_cache
from repro.io_json import SCHEMA_VERSION


def record(status="ok", pins=100):
    return {"status": status,
            "metrics": {"total_pins": pins, "buses": 2, "latency": 5,
                        "chips": 2, "wall_ms": 1.0},
            "wall_ms": 1.0}


# ---------------------------------------------------------------------
class TestFraming:
    def test_round_trip_over_socketpair(self):
        a, b = socket.socketpair()
        try:
            payload = {"op": "get", "key": "k" * 100,
                       "nested": {"deep": [1, 2, 3]}}
            send_frame(a, payload)
            assert recv_frame(b) == payload
        finally:
            a.close()
            b.close()

    def test_clean_eof_is_none(self):
        a, b = socket.socketpair()
        a.close()
        try:
            assert recv_frame(b) is None
        finally:
            b.close()

    def test_truncated_frame_raises(self):
        a, b = socket.socketpair()
        try:
            a.sendall(encode_frame({"op": "ping"})[:5])
            a.close()
            with pytest.raises(ProtocolError):
                recv_frame(b)
        finally:
            b.close()

    def test_oversized_header_refused_without_reading(self):
        a, b = socket.socketpair()
        try:
            a.sendall((MAX_FRAME_BYTES + 1).to_bytes(4, "big"))
            with pytest.raises(ProtocolError):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_non_object_payload_refused(self):
        with pytest.raises(ProtocolError):
            decode_body(b"[1, 2, 3]")
        with pytest.raises(ProtocolError):
            decode_body(b"not json at all")


class TestDispatch:
    def setup_method(self):
        self.server = CacheServer(ResultCache())

    def test_newer_schema_version_refused(self):
        out = self.server.dispatch({"op": "ping",
                                    "schema_version":
                                        SCHEMA_VERSION + 1})
        assert out["ok"] is False
        assert "newer" in out["error"]

    def test_only_completed_statuses_stored(self):
        for status, expect in (("ok", True), ("degraded", True),
                               ("error", False),
                               ("budget_exhausted", False)):
            out = self.server.dispatch(
                {"op": "put", "key": f"k-{status}",
                 "record": record(status)})
            assert out["ok"] is True
            assert out["stored"] is expect, status

    def test_get_put_and_counters(self):
        missed = self.server.dispatch({"op": "get", "key": "k1"})
        assert missed["found"] is False
        self.server.dispatch({"op": "put", "key": "k1",
                              "record": record()})
        found = self.server.dispatch({"op": "get", "key": "k1"})
        assert found["found"] is True
        assert found["record"]["status"] == "ok"
        stats = self.server.dispatch({"op": "stats"})
        assert stats["server"]["gets"] == 2
        assert stats["server"]["hits"] == 1
        assert stats["server"]["stored"] == 1

    def test_malformed_ops_are_errors_not_crashes(self):
        for request in ({"op": "get"}, {"op": "get", "key": ""},
                        {"op": "put", "key": "k"},
                        {"op": "put", "key": "", "record": {}},
                        {"op": "nope"}, {}):
            out = self.server.dispatch(request)
            assert out["ok"] is False, request


# ---------------------------------------------------------------------
class TestOverSockets:
    def test_client_round_trip_and_compact(self, tmp_path):
        path = str(tmp_path / "cache.jsonl")
        with ThreadedCacheServer(ResultCache(path)) as served:
            client = CacheClient("127.0.0.1", served.port)
            try:
                assert client.ping()["entries"] == 0
                assert client.put("k1", record()) is True
                assert client.put("k1", record()) is False  # dup
                assert client.get("k1")["status"] == "ok"
                assert client.get("missing") is None
                summary = client.compact()
                assert summary["compacted"] is True
                assert summary["entries"] == 1
            finally:
                client.close()
        # The record survived on disk through the server's cache.
        assert ResultCache(path).get("k1") is not None

    def test_client_reconnects_after_server_restart(self):
        served = ThreadedCacheServer().start()
        client = CacheClient("127.0.0.1", served.port)
        try:
            client.put("k1", record())
            served.stop()
            # Same port is gone; a fresh server on a new port needs a
            # re-aimed client — but the old one must fail loudly, not
            # hang or return stale truth.
            with pytest.raises(CacheClientError):
                client.ping()
        finally:
            client.close()

    def test_parse_address(self):
        assert parse_address("127.0.0.1:8769") == ("127.0.0.1", 8769)
        assert parse_address("remote://h:1") == ("h", 1)
        from repro.errors import ReproError
        for bad in ("no-port", ":9", "h:"):
            with pytest.raises(ReproError):
                parse_address(bad)


class TestReadThrough:
    def test_miss_falls_through_and_backfills(self):
        with ThreadedCacheServer() as served:
            served.cache.put("k1", record())
            mounted = ReadThroughCache(served.address)
            got = mounted.get("k1")
            assert got is not None and got["status"] == "ok"
            assert mounted.remote_hits == 1
            # Second read is local: remote_hits stays put.
            assert mounted.get("k1") is not None
            assert mounted.remote_hits == 1
            mounted.client.close()

    def test_put_propagates_to_server(self):
        with ThreadedCacheServer() as served:
            a = ReadThroughCache(served.address)
            b = ReadThroughCache(served.address)
            assert a.put("k1", record()) is True
            assert b.get("k1") is not None  # b never solved it
            assert b.remote_hits == 1
            a.client.close()
            b.client.close()

    def test_remote_down_degrades_to_local(self):
        served = ThreadedCacheServer().start()
        mounted = ReadThroughCache(served.address)
        mounted.put("k1", record())
        served.stop()
        # Local index still serves; failures are counted, not raised.
        assert mounted.get("k1") is not None
        assert mounted.get("k2") is None
        assert mounted.put("k3", record()) is True
        assert mounted.remote_errors >= 2
        summary = mounted.compact()
        assert summary["compacted"] is False
        stats = mounted.stats()
        assert stats["remote"]["errors"] >= 2
        mounted.client.close()

    def test_open_result_cache_dispatches_on_scheme(self, tmp_path):
        local = open_result_cache(str(tmp_path / "c.jsonl"))
        assert type(local) is ResultCache
        with ThreadedCacheServer() as served:
            remote = open_result_cache(f"remote://{served.address}")
            assert isinstance(remote, ReadThroughCache)
            assert remote.address == served.address
            remote.client.close()


# ---------------------------------------------------------------------
class TestReconnect:
    """Interval-based re-probing of a dead cache server (issue 10).

    The read-through layer must degrade to local-only while the
    server is away — without paying a connect timeout on every call —
    and come back on its own once the server returns, mirroring the
    front tier's shard-prober cadence.
    """

    def test_down_marking_skips_remote_until_interval(self):
        served = ThreadedCacheServer().start()
        mounted = ReadThroughCache(served.address,
                                   probe_interval_s=30.0)
        served.stop()
        assert mounted.get("missing") is None     # probe fails
        errors = mounted.remote_errors
        assert errors == 1
        assert mounted.stats()["remote"]["down"] is True
        # Inside the interval: no further connection attempts on the
        # read path, so no new errors accumulate.
        assert mounted.get("missing") is None
        assert mounted.remote_errors == errors
        mounted.client.close()

    def test_recovered_server_is_picked_up_after_interval(self):
        served = ThreadedCacheServer().start()
        port = served.port
        shared = served.cache
        mounted = ReadThroughCache(served.address,
                                   probe_interval_s=0.05)
        served.stop()
        assert mounted.get("k1") is None          # marks remote down
        assert mounted.stats()["remote"]["down"] is True
        # Revive the server on the same port with the same store.
        shared.put("k1", record())
        revived = ThreadedCacheServer(shared, port=port).start()
        try:
            deadline = time.monotonic() + 5.0
            got = None
            while got is None and time.monotonic() < deadline:
                time.sleep(0.06)                  # let the probe window lapse
                got = mounted.get("k1")
            assert got is not None, "never re-probed revived server"
            assert mounted.remote_hits == 1
            assert mounted.stats()["remote"]["down"] is False
        finally:
            revived.stop()
            mounted.client.close()
