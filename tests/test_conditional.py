"""Tests for conditional I/O sharing (Section 7.2, Figure 7.7)."""

import pytest

from repro.cdfg import CdfgBuilder
from repro.cdfg.analysis import UnitTiming
from repro.core.conditional import ConditionalSharer, share_conditionally
from repro.errors import CdfgError


def conditional_design():
    """Two mutually exclusive branches each sending a value cross-chip."""
    b = CdfgBuilder()
    src = b.op("src", "add", 1)
    then_op = b.op("t", "add", 1, inputs=[src], guard={"c": True})
    else_op = b.op("e", "add", 1, inputs=[src], guard={"c": False})
    b.io("wt", "vt", source=then_op, dests=[], source_partition=1,
         dest_partition=2, guard={"c": True})
    b.io("we", "ve", source=else_op, dests=[], source_partition=1,
         dest_partition=2, guard={"c": False})
    return b.build()


class TestSharer:
    def test_exclusive_branches_grouped(self):
        g = conditional_design()
        result = share_conditionally(g, UnitTiming(), pipe_length=6)
        groups = [s for s in result.groups if len(s) > 1]
        assert groups == [frozenset({"we", "wt"})]
        share = result.share_groups()
        assert share["wt"] == share["we"]

    def test_same_branch_not_grouped(self):
        b = CdfgBuilder()
        src = b.op("src", "add", 1)
        x = b.op("x", "add", 1, inputs=[src], guard={"c": True})
        y = b.op("y", "add", 1, inputs=[src], guard={"c": True})
        b.io("wx", "vx", source=x, dests=[], source_partition=1,
             dest_partition=2, guard={"c": True})
        b.io("wy", "vy", source=y, dests=[], source_partition=1,
             dest_partition=2, guard={"c": True})
        g = b.build()
        result = share_conditionally(g, UnitTiming(), pipe_length=6)
        assert all(len(s) == 1 for s in result.groups)

    def test_disjoint_frames_not_grouped(self):
        # Mutually exclusive but time frames cannot overlap.
        b = CdfgBuilder()
        src = b.op("src", "add", 1)
        early = b.io("we", "ve", source=src, dests=[],
                     source_partition=1, dest_partition=2,
                     guard={"c": True})
        late_src = b.op("l1", "add", 1, inputs=[src])
        l2 = b.op("l2", "add", 1, inputs=[late_src])
        l3 = b.op("l3", "add", 1, inputs=[l2])
        b.io("wl", "vl", source=l3, dests=[], source_partition=1,
             dest_partition=2, guard={"c": False})
        # Force the early transfer's ALAP before the late one's ASAP by
        # consuming it immediately.
        sink = b.op("sink", "add", 2, inputs=["we"])
        b.edge("sink", "l2")  # cross-partition? no: sink in 2, l2 in 1
        g = b.build()
        # The synthetic edge above is partition-crossing; keep the test
        # structural by not validating the CDFG here.
        # Critical path is 6 steps; at pipe length 6 every frame is a
        # single step and the two transfers land at steps 1 and 5.
        sharer = ConditionalSharer(g, UnitTiming(), pipe_length=6)
        result = sharer.run()
        assert all(len(s) == 1 for s in result.groups)

    def test_unguarded_ops_excluded(self):
        b = CdfgBuilder()
        src = b.op("src", "add", 1)
        b.io("w", "v", source=src, dests=[], source_partition=1,
             dest_partition=2)
        g = b.build()
        result = share_conditionally(g, UnitTiming(), pipe_length=4)
        assert result.groups == []

    def test_three_way_exclusivity(self):
        b = CdfgBuilder()
        src = b.op("src", "add", 1)
        for idx, guard in enumerate((
                {"c1": True},
                {"c1": False, "c2": True},
                {"c1": False, "c2": False})):
            op = b.op(f"op{idx}", "add", 1, inputs=[src], guard=guard)
            b.io(f"w{idx}", f"v{idx}", source=op, dests=[],
                 source_partition=1, dest_partition=2, guard=guard)
        g = b.build()
        result = share_conditionally(g, UnitTiming(), pipe_length=8)
        merged = [s for s in result.groups if len(s) > 1]
        # All three are pairwise exclusive: one group of three.
        assert merged == [frozenset({"w0", "w1", "w2"})]

    def test_bad_exclusion_factor_rejected(self):
        g = conditional_design()
        with pytest.raises(CdfgError):
            ConditionalSharer(g, UnitTiming(), 6, exclusion_factor=2.0)

    def test_penalty_discourages_tight_merges(self):
        # With a huge penalty factor, merging nodes whose frames barely
        # overlap becomes unattractive.
        g = conditional_design()
        relaxed = share_conditionally(g, UnitTiming(), pipe_length=6,
                                      penalty_factor=0.0)
        assert any(len(s) > 1 for s in relaxed.groups)


class TestIntegrationWithSearch:
    def test_share_groups_save_slots(self):
        from repro.core.connection_search import ConnectionSearch
        from repro.partition.model import (ChipSpec, OUTSIDE_WORLD,
                                           Partitioning)
        g = conditional_design()
        result = share_conditionally(g, UnitTiming(), pipe_length=6)
        p = Partitioning({OUTSIDE_WORLD: ChipSpec(64),
                          1: ChipSpec(8), 2: ChipSpec(8)})
        # At L=1, one slot: only possible because wt/we share it.
        ic, assignment = ConnectionSearch(
            g, p, 1, share_groups=result.share_groups()).run()
        assert assignment.bus_of["wt"] == assignment.bus_of["we"]
