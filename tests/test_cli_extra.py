"""Additional CLI coverage: simulate, emit-rtl, flows, options."""

import pytest

from repro.cli import main


class TestSimulateCommand:
    def test_simulate_ar(self, capsys):
        assert main(["simulate", "ar-general", "-L", "3",
                     "--instances", "3"]) == 0
        out = capsys.readouterr().out
        assert "conflict-free" in out

    def test_simulate_schedule_first(self, capsys):
        assert main(["simulate", "ar-general", "-L", "3",
                     "--flow", "schedule-first", "--pipe-length", "8",
                     "--instances", "2"]) == 0
        assert "verified" in capsys.readouterr().out


class TestEmitRtl:
    def test_emit_to_stdout(self, capsys):
        assert main(["emit-rtl", "ar-general", "-L", "4"]) == 0
        out = capsys.readouterr().out
        assert "module chip_p1" in out

    def test_emit_to_file(self, tmp_path, capsys):
        path = str(tmp_path / "design.v")
        assert main(["emit-rtl", "ar-general", "-L", "4",
                     "--output", path]) == 0
        assert "module" in open(path).read()


class TestFlows:
    def test_simple_flow(self, capsys):
        assert main(["synthesize", "ar-simple", "-L", "2",
                     "--flow", "simple"]) == 0
        assert "pipe length" in capsys.readouterr().out

    def test_subbus_option(self, capsys):
        assert main(["synthesize", "ar-general-bidir", "-L", "5",
                     "--subbus"]) == 0

    def test_slot_reserve_rescues_elliptic(self, capsys):
        assert main(["synthesize", "elliptic", "-L", "5",
                     "--slot-reserve", "3"]) == 0

    def test_unknown_design_fails(self, capsys):
        assert main(["synthesize", "/nonexistent.json"]) != 0


class TestBudgetedCli:
    def test_json_output_conforms_to_schema(self, capsys):
        import json
        from pathlib import Path
        import sys
        sys.path.insert(0, str(Path(__file__).resolve().parent.parent
                               / "tools"))
        try:
            from validate_synth_json import DEFAULT_SCHEMA, validate
        finally:
            sys.path.pop(0)
        assert main(["synthesize", "ar-general", "--flow", "auto",
                     "--timeout-ms", "2000", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        schema = json.loads(DEFAULT_SCHEMA.read_text())
        assert validate(payload, schema) == []
        assert payload["valid"] and not payload["degraded"]
        assert payload["flow"] == "auto"

    def test_auto_flow_is_the_default(self, capsys):
        assert main(["synthesize", "ar-general", "-L", "3"]) == 0
        assert "pipe length" in capsys.readouterr().out

    def test_budget_exhaustion_exits_nonzero_with_trail(self, capsys):
        # A 0 ms deadline exhausts every fallback rung immediately.
        rc = main(["synthesize", "ar-general", "-L", "3",
                   "--timeout-ms", "0"])
        assert rc == 1
        err = capsys.readouterr().err
        assert "solve budget exhausted" in err
        assert "fallback" in err

    def test_json_mode_reports_problems_not_tracebacks(self, capsys):
        import json
        rc = main(["synthesize", "ar-general", "-L", "3",
                   "--flow", "schedule-first", "--pipe-length", "8",
                   "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["flow"] == "schedule-first"
        assert rc in (0, 2)
