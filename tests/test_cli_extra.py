"""Additional CLI coverage: simulate, emit-rtl, flows, options."""

import pytest

from repro.cli import main


class TestSimulateCommand:
    def test_simulate_ar(self, capsys):
        assert main(["simulate", "ar-general", "-L", "3",
                     "--instances", "3"]) == 0
        out = capsys.readouterr().out
        assert "conflict-free" in out

    def test_simulate_schedule_first(self, capsys):
        assert main(["simulate", "ar-general", "-L", "3",
                     "--flow", "schedule-first", "--pipe-length", "8",
                     "--instances", "2"]) == 0
        assert "verified" in capsys.readouterr().out


class TestEmitRtl:
    def test_emit_to_stdout(self, capsys):
        assert main(["emit-rtl", "ar-general", "-L", "4"]) == 0
        out = capsys.readouterr().out
        assert "module chip_p1" in out

    def test_emit_to_file(self, tmp_path, capsys):
        path = str(tmp_path / "design.v")
        assert main(["emit-rtl", "ar-general", "-L", "4",
                     "--output", path]) == 0
        assert "module" in open(path).read()


class TestFlows:
    def test_simple_flow(self, capsys):
        assert main(["synthesize", "ar-simple", "-L", "2",
                     "--flow", "simple"]) == 0
        assert "pipe length" in capsys.readouterr().out

    def test_subbus_option(self, capsys):
        assert main(["synthesize", "ar-general-bidir", "-L", "5",
                     "--subbus"]) == 0

    def test_slot_reserve_rescues_elliptic(self, capsys):
        assert main(["synthesize", "elliptic", "-L", "5",
                     "--slot-reserve", "3"]) == 0

    def test_unknown_design_fails(self, capsys):
        assert main(["synthesize", "/nonexistent.json"]) != 0
