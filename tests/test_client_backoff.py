"""Client retry policy: capped jittered exponential backoff + redirects.

The schedule is pinned numerically (``jitter=0`` makes it exact), the
Retry-After floor and the cap are exercised at their boundaries, and
the redirect path is driven through a monkeypatched ``_request_once``
so no sockets are involved — these must stay fast and deterministic.
"""

import pytest

from repro.service import (ServiceClient, ServiceUnavailable,
                           backoff_delay_s)


class TestSchedule:
    def test_deterministic_exponential_schedule(self):
        delays = [backoff_delay_s(a, jitter=0) for a in range(7)]
        assert delays == [0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 30.0]

    def test_cap_holds_forever(self):
        assert backoff_delay_s(50, jitter=0) == 30.0
        assert backoff_delay_s(50, jitter=0, cap_s=5.0) == 5.0

    def test_retry_after_is_an_uncapped_floor(self):
        # Below the computed delay the hint does nothing...
        assert backoff_delay_s(4, retry_after_s=1.0, jitter=0) == 8.0
        # ...above it, the server's ask wins...
        assert backoff_delay_s(0, retry_after_s=7.0, jitter=0) == 7.0
        # ...even past the cap: the server knows its drain schedule.
        assert backoff_delay_s(0, retry_after_s=120.0,
                               jitter=0) == 120.0

    def test_jitter_bounds(self):
        # rng pinned at the extremes: delay spans base*(1 +/- jitter).
        low = backoff_delay_s(1, jitter=0.1, rng=lambda: 0.0)
        high = backoff_delay_s(1, jitter=0.1, rng=lambda: 1.0)
        assert low == pytest.approx(0.9)
        assert high == pytest.approx(1.1)
        # And a mid draw is strictly inside.
        mid = backoff_delay_s(1, jitter=0.1, rng=lambda: 0.5)
        assert low < mid < high or mid == pytest.approx(1.0)

    def test_negative_attempt_clamps_to_base(self):
        assert backoff_delay_s(-3, jitter=0) == 0.5


class FlakyTransport:
    """Stands in for ServiceClient._request_once."""

    def __init__(self, failures, redirect=None, retry_after=None):
        self.failures = failures
        self.redirect = redirect
        self.retry_after = retry_after
        self.calls = []  # (host, port) per attempt

    def __call__(self, host, port, method, path, body):
        self.calls.append((host, port))
        if len(self.calls) <= self.failures:
            payload = {"error": "shed"}
            if self.redirect is not None:
                payload["redirect"] = self.redirect
            raise ServiceUnavailable(
                "shed", status=429, payload=payload,
                retry_after_s=(self.retry_after or 1),
                retry_after_hint=self.retry_after)
        return 200, {"status": "ok", "host": host, "port": port}


def make_client(transport, **kwargs):
    sleeps = []
    client = ServiceClient(host="front", port=1000, retries=3,
                           backoff_jitter=0.0, sleep=sleeps.append,
                           **kwargs)
    client._request_once = transport
    return client, sleeps


class TestRetries:
    def test_retries_then_succeeds_with_backoff_sleeps(self):
        transport = FlakyTransport(failures=2)
        client, sleeps = make_client(transport)
        status, payload = client.request("POST", "/v1/synthesize", {})
        assert status == 200
        assert len(transport.calls) == 3
        assert sleeps == [0.5, 1.0]  # attempts 0 and 1, jitter off

    def test_retry_after_hint_floors_the_sleep(self):
        transport = FlakyTransport(failures=1, retry_after=5)
        client, sleeps = make_client(transport)
        client.request("POST", "/v1/synthesize", {})
        assert sleeps == [5.0]

    def test_no_hint_means_pure_exponential(self):
        # Absent Retry-After must NOT inject the legacy default of 1s
        # as a floor — attempt 0 sleeps the 0.5s base.
        transport = FlakyTransport(failures=1, retry_after=None)
        client, sleeps = make_client(transport)
        client.request("POST", "/v1/synthesize", {})
        assert sleeps == [0.5]

    def test_exhausted_retries_reraise(self):
        transport = FlakyTransport(failures=99)
        client, _sleeps = make_client(transport)
        with pytest.raises(ServiceUnavailable):
            client.request("POST", "/v1/synthesize", {})
        assert len(transport.calls) == 4  # first try + 3 retries

    def test_redirect_hint_reaims_subsequent_attempts(self):
        transport = FlakyTransport(
            failures=1, redirect={"host": "owner-shard", "port": 2222})
        client, _sleeps = make_client(transport)
        _status, payload = client.request("POST", "/v1/synthesize", {})
        assert transport.calls == [("front", 1000),
                                   ("owner-shard", 2222)]
        assert payload["port"] == 2222

    def test_malformed_redirect_is_ignored(self):
        for redirect in ({"host": "x"}, {"port": "2222"}, "x:1", 7):
            transport = FlakyTransport(failures=1, redirect=redirect)
            client, _sleeps = make_client(transport)
            client.request("POST", "/v1/synthesize", {})
            assert transport.calls == [("front", 1000),
                                       ("front", 1000)], redirect

    def test_zero_retries_raises_immediately(self):
        transport = FlakyTransport(failures=1)
        sleeps = []
        client = ServiceClient(host="front", port=1000, retries=0,
                               sleep=sleeps.append)
        client._request_once = transport
        with pytest.raises(ServiceUnavailable):
            client.request("POST", "/v1/synthesize", {})
        assert sleeps == []

    def test_per_call_override_beats_constructor(self):
        transport = FlakyTransport(failures=2)
        sleeps = []
        client = ServiceClient(host="front", port=1000, retries=0,
                               backoff_jitter=0.0, sleep=sleeps.append)
        client._request_once = transport
        status, _payload = client.request("POST", "/v1/synthesize",
                                          {}, retries=5)
        assert status == 200
        assert len(sleeps) == 2
