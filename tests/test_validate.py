"""Tests for CDFG validation against the model assumptions."""

import pytest

from repro.cdfg import Cdfg, CdfgBuilder
from repro.cdfg.graph import make_functional_node, make_io_node, Node
from repro.cdfg.ops import OpKind
from repro.cdfg.validate import validate_cdfg
from repro.errors import ValidationError


def valid_two_chip():
    b = CdfgBuilder()
    x = b.op("x", "add", 1)
    y = b.op("y", "add", 2)
    b.io("w", "v", source=x, dests=[y], source_partition=1,
         dest_partition=2)
    return b.build()


def test_valid_graph_passes():
    validate_cdfg(valid_two_chip())


def test_io_to_same_partition_rejected():
    g = Cdfg()
    g.add_node(make_functional_node("x", "add", 1))
    g.add_node(Node(name="w", kind=OpKind.IO, op_type="io", value="v",
                    source_partition=1, dest_partition=1))
    with pytest.raises(ValidationError, match="to itself"):
        validate_cdfg(g)


def test_io_without_value_name_rejected():
    g = Cdfg()
    g.add_node(Node(name="w", kind=OpKind.IO, op_type="io", value="",
                    source_partition=1, dest_partition=2))
    with pytest.raises(ValidationError, match="no value name"):
        validate_cdfg(g)


def test_zero_width_io_rejected():
    g = Cdfg()
    g.add_node(Node(name="w", kind=OpKind.IO, op_type="io", value="v",
                    bit_width=0, source_partition=1, dest_partition=2))
    with pytest.raises(ValidationError, match="bit width"):
        validate_cdfg(g)


def test_value_from_two_partitions_rejected():
    g = Cdfg()
    g.add_node(make_io_node("w1", "v", 1, 3))
    g.add_node(make_io_node("w2", "v", 2, 4))
    with pytest.raises(ValidationError, match="several partitions"):
        validate_cdfg(g)


def test_value_inconsistent_widths_rejected():
    g = Cdfg()
    g.add_node(make_io_node("w1", "v", 1, 2, bit_width=8))
    g.add_node(make_io_node("w2", "v", 1, 3, bit_width=16))
    with pytest.raises(ValidationError, match="inconsistent widths"):
        validate_cdfg(g)


def test_duplicate_dest_for_value_rejected():
    g = Cdfg()
    g.add_node(make_io_node("w1", "v", 1, 2))
    g.add_node(make_io_node("w2", "v", 1, 2))
    with pytest.raises(ValidationError, match="duplicate I/O nodes"):
        validate_cdfg(g)


def test_io_chained_to_io_rejected():
    # Values transfer directly, never through another partition.
    g = Cdfg()
    g.add_node(make_io_node("w1", "v", 1, 2))
    g.add_node(make_io_node("w2", "u", 2, 3))
    g.add_edge("w1", "w2")
    with pytest.raises(ValidationError, match="directly"):
        validate_cdfg(g)


def test_producer_in_wrong_partition_rejected():
    g = Cdfg()
    g.add_node(make_functional_node("x", "add", 9))
    g.add_node(make_io_node("w", "v", 1, 2))
    g.add_edge("x", "w")
    with pytest.raises(ValidationError, match="claims source partition"):
        validate_cdfg(g)


def test_consumer_in_wrong_partition_rejected():
    g = Cdfg()
    g.add_node(make_functional_node("y", "add", 9))
    g.add_node(make_io_node("w", "v", 1, 2))
    g.add_edge("w", "y")
    with pytest.raises(ValidationError, match="claims dest partition"):
        validate_cdfg(g)


def test_cross_partition_edge_without_io_rejected():
    g = Cdfg()
    g.add_node(make_functional_node("x", "add", 1))
    g.add_node(make_functional_node("y", "add", 2))
    g.add_edge("x", "y")
    with pytest.raises(ValidationError, match="without an I/O node"):
        validate_cdfg(g)


def test_functional_without_partition_flagged_when_required():
    g = Cdfg()
    g.add_node(Node(name="x", kind=OpKind.FUNCTIONAL, op_type="add"))
    with pytest.raises(ValidationError, match="no partition"):
        validate_cdfg(g, require_partitions=True)
    validate_cdfg(g, require_partitions=False)  # tolerated


def test_all_benchmark_designs_validate():
    from repro.designs import (ar_general_design, ar_simple_design,
                               elliptic_design)
    for factory in (ar_simple_design, ar_general_design, elliptic_design):
        validate_cdfg(factory(), require_partitions=False)
