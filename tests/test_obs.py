"""Observability primitives: tracer, histograms, exposition, render.

These exercise the :mod:`repro.obs` layer in isolation — ambient span
parenting, the deterministic sampler, the PerfRegistry-shaped
mark/delta/merge path, histogram bucket arithmetic, the Prometheus
text renderer, and the ``repro trace`` tree renderer.  End-to-end
propagation across fork workers and cluster hops lives in
``test_obs_propagation.py``.
"""

import json

import pytest

from repro.obs import HUB, TRACER, SpanContext, configure
from repro.obs.context import (extract_headers, extract_payload,
                               inject_headers, inject_payload)
from repro.obs.metrics import DEFAULT_BUCKETS_MS, Histogram, MetricsHub
from repro.obs.prometheus import (render_cluster_metrics,
                                  render_service_metrics)
from repro.obs.render import build_traces, load_spans, render_file
from repro.obs.trace import (PARENT_HEADER, SAMPLED_HEADER,
                             TRACE_HEADER, Tracer)
from repro.perf import PerfRegistry


@pytest.fixture(autouse=True)
def _clean_obs():
    """Every test starts and ends with a disabled, empty tracer/hub."""
    TRACER.configure(enabled=False, sample_rate=1.0, export_path="")
    TRACER.reset()
    HUB.reset()
    yield
    TRACER.configure(enabled=False, sample_rate=1.0, export_path="")
    TRACER.reset()
    HUB.reset()


def enable(**kwargs):
    configure(enabled=True, sync_env=False, **kwargs)


# ---------------------------------------------------------------------
class TestTracer:
    def test_disabled_is_a_null_span(self):
        with TRACER.span("work") as sp:
            sp.set(key="value")  # must not raise
        assert TRACER.spans() == []
        assert sp.context is None and not sp.sampled

    def test_nesting_builds_a_tree(self):
        enable()
        with TRACER.span("root", layer="pipeline", flow="auto") as root:
            with TRACER.span("child") as child:
                assert child.trace_id == root.trace_id
                assert child.parent_id == root.span_id
        spans = TRACER.spans()
        assert [s["name"] for s in spans] == ["child", "root"]
        assert spans[1]["parent_id"] is None
        assert spans[1]["attrs"] == {"flow": "auto"}
        assert spans[1]["layer"] == "pipeline"
        assert all(s["status"] == "ok" for s in spans)

    def test_exception_marks_status_error(self):
        enable()
        with pytest.raises(ValueError):
            with TRACER.span("boom"):
                raise ValueError("nope")
        (span,) = TRACER.spans()
        assert span["status"] == "error"

    def test_deterministic_sampling_is_exact(self):
        enable(sample_rate=0.25)
        for _ in range(8):
            with TRACER.span("root"):
                with TRACER.span("child"):
                    pass
        spans = TRACER.spans()
        # Exactly 2 of 8 roots sampled, children follow their root.
        assert sum(1 for s in spans if s["name"] == "root") == 2
        assert sum(1 for s in spans if s["name"] == "child") == 2

    def test_unsampled_root_suppresses_descendants(self):
        enable(sample_rate=0.0)
        with TRACER.span("root") as root:
            assert not root.sampled
            # The unsampled decision propagates: nothing to send on.
            assert TRACER.current_dict() is None
            assert TRACER.current_headers() == {}
            with TRACER.span("child") as child:
                assert not child.sampled
        assert TRACER.spans() == []

    def test_mark_delta_merge_round_trip(self):
        enable()
        with TRACER.span("before"):
            pass
        mark = TRACER.mark()
        with TRACER.span("after"):
            pass
        delta = TRACER.spans_since(mark)
        assert [s["name"] for s in delta] == ["after"]
        assert "seq" not in delta[0]

        other = Tracer()
        other.configure(enabled=True)
        assert other.merge(delta) == 1
        assert [s["name"] for s in other.spans()] == ["after"]
        # Garbage entries are skipped, not crashed on.
        assert other.merge([None, {}, {"trace_id": "t"}]) == 0

    def test_ring_is_bounded_and_counts_drops(self):
        tracer = Tracer(ring_size=4)
        tracer.configure(enabled=True)
        for i in range(6):
            with tracer.span(f"s{i}"):
                pass
        assert len(tracer.spans()) == 4
        assert tracer.stats()["dropped"] == 2
        assert tracer.stats()["recorded"] == 6

    def test_attach_parents_under_foreign_context(self):
        enable()
        ctx = {"trace_id": "aaaa000000000001",
               "span_id": "bbbb000000000001", "sampled": True}
        with TRACER.attach(ctx):
            with TRACER.span("adopted"):
                pass
        (span,) = TRACER.spans()
        assert span["trace_id"] == "aaaa000000000001"
        assert span["parent_id"] == "bbbb000000000001"

    def test_attach_none_and_disabled_are_noops(self):
        with TRACER.attach(None):
            assert TRACER.current() is None
        enable()
        with TRACER.attach(None):
            assert TRACER.current() is None


class TestContextPropagation:
    def test_payload_round_trip(self):
        enable()
        with TRACER.span("submit") as sp:
            payload = inject_payload({"design": "x"})
            assert payload["trace"]["trace_id"] == sp.trace_id
        ctx = extract_payload(payload)
        assert isinstance(ctx, SpanContext)
        assert ctx.span_id == sp.span_id
        assert extract_payload({"design": "x"}) is None

    def test_payload_not_stamped_when_disabled(self):
        payload = inject_payload({"design": "x"})
        assert "trace" not in payload

    def test_header_round_trip(self):
        enable()
        with TRACER.span("request") as sp:
            headers = inject_headers({"content-type": "x"})
            assert headers[TRACE_HEADER] == sp.trace_id
            assert headers[PARENT_HEADER] == sp.span_id
            assert headers[SAMPLED_HEADER] == "1"
        ctx = extract_headers(headers)
        assert ctx.trace_id == sp.trace_id
        assert extract_headers({}) is None
        assert extract_headers(None) is None


# ---------------------------------------------------------------------
class TestHistogram:
    def test_bucket_placement_and_overflow(self):
        hist = Histogram(bounds=(1, 10, 100))
        for value in (0.5, 5, 50, 500):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["counts"] == [1, 1, 1, 1]
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(555.5)

    def test_delta_and_merge_are_inverse(self):
        hist = Histogram(bounds=(1, 10))
        hist.observe(5)
        before = hist.snapshot()
        hist.observe(0.5)
        hist.observe(20)
        delta = hist.delta_since(before)
        assert delta["counts"] == [1, 0, 1]
        assert delta["count"] == 2

        other = Histogram(bounds=(1, 10))
        assert other.merge(delta)
        assert other.snapshot()["counts"] == [1, 0, 1]
        # Mismatched bounds refuse rather than corrupt.
        assert not Histogram(bounds=(2, 4)).merge(delta)

    def test_empty_delta_is_none(self):
        hist = Histogram()
        snap = hist.snapshot()
        assert hist.delta_since(snap) is None


class TestMetricsHub:
    def test_histograms_and_gauges(self):
        hub = MetricsHub(perf=PerfRegistry())
        hub.observe("solve_ms", 12.0)
        hub.observe("solve_ms", 700.0)
        hub.gauge("queue_depth", 3)
        hub.gauges({"inflight": 2, "skipped": None})
        snap = hub.snapshot()
        assert snap["histograms"]["solve_ms"]["count"] == 2
        assert snap["gauges"] == {"queue_depth": 3.0, "inflight": 2.0}

    def test_delta_ships_histograms_only(self):
        hub = MetricsHub(perf=PerfRegistry())
        hub.inc("jobs")
        before = hub.snapshot()
        hub.observe("solve_ms", 5.0)
        hub.inc("jobs")
        hub.gauge("queue_depth", 9)
        delta = hub.delta_since(before)
        assert set(delta) == {"histograms"}
        assert delta["histograms"]["solve_ms"]["count"] == 1

    def test_merge_creates_missing_histograms(self):
        source = MetricsHub(perf=PerfRegistry())
        source.observe("solve_ms", 5.0)
        delta = source.delta_since({})
        target = MetricsHub(perf=PerfRegistry())
        assert target.merge(delta) == 1
        assert target.snapshot()["histograms"]["solve_ms"]["count"] == 1
        assert target.merge(None) == 0

    def test_counters_delegate_to_perf(self):
        perf = PerfRegistry()
        hub = MetricsHub(perf=perf)
        hub.inc("jobs", 3)
        with hub.phase("solve"):
            pass
        snap = perf.snapshot()
        assert snap["counters"]["jobs"] == 3
        assert "solve" in snap["timings"]


# ---------------------------------------------------------------------
class TestPerfPhaseHook:
    def test_perf_phase_emits_a_span(self):
        enable()
        from repro.perf import PERF
        with TRACER.span("root"):
            with PERF.phase("gomory.solve"):
                pass
            with PERF.phase("flow.simple"):
                pass
        spans = {s["name"]: s for s in TRACER.spans()}
        assert spans["gomory.solve"]["layer"] == "solver"
        assert spans["flow.simple"]["layer"] == "pipeline"
        assert spans["gomory.solve"]["parent_id"] \
            == spans["root"]["span_id"]

    def test_perf_phase_still_times_when_disabled(self):
        from repro.perf import PERF
        before = PERF.snapshot()
        with PERF.phase("obs.test.phase"):
            pass
        delta = PERF.delta_since(before)
        assert "obs.test.phase" in delta["timings"]
        assert TRACER.spans() == []


# ---------------------------------------------------------------------
class TestPrometheus:
    def test_service_rendering(self):
        payload = {
            "service": {"counters": {"accepted": 3, "shed": 1},
                        "queue_depth": 2, "inflight": 1,
                        "draining": False, "jobs_retained": 4,
                        "ema_job_ms": 12.5,
                        "latency": {"p50_ms": 5.0, "p95_ms": 9.0,
                                    "max_ms": 11.0, "count": 3}},
            "workers": {"count": 2, "mode": "process"},
            "cache": {"hits": 5, "misses": 2},
            "oracle": {"entries": 7},
            "perf": {"counters": {"tableau.pivots": 42},
                     "timings": {"gomory.solve": 0.25}},
            "obs": {"histograms": {"service.job_wall_ms": {
                        "buckets": [1, 10], "counts": [1, 2, 1],
                        "sum": 30.0, "count": 4}},
                    "gauges": {"service.queue_depth": 2}},
            "tracer": {"enabled": True, "recorded": 9, "dropped": 0},
        }
        text = render_service_metrics(payload)
        assert "# TYPE repro_service_accepted_total counter" in text
        assert "repro_service_accepted_total 3" in text
        assert "repro_service_queue_depth 2" in text
        assert 'repro_perf_counter_total{key="tableau.pivots"} 42' \
            in text
        assert "# TYPE repro_service_job_wall_ms histogram" in text
        # Cumulative buckets: [1, 3], +Inf carries the total.
        assert 'repro_service_job_wall_ms_bucket{le="1"} 1' in text
        assert 'repro_service_job_wall_ms_bucket{le="10"} 3' in text
        assert 'repro_service_job_wall_ms_bucket{le="+Inf"} 4' in text
        assert "repro_service_job_wall_ms_count 4" in text
        assert 'repro_service_latency_ms{quantile="0.95"} 9' in text
        assert "repro_tracer_enabled 1" in text
        assert text.endswith("\n")

    def test_cluster_rendering_has_per_shard_gauges(self):
        payload = {
            "front": {"counters": {"requests": 10, "proxied": 8},
                      "ema_job_ms": 3.0, "latency": {"p95_ms": 7.0}},
            "cluster": {"counters": {"accepted": 8}, "queue_depth": 1,
                        "inflight": 2, "workers": 4, "shards": 2,
                        "shards_healthy": 1, "latency_p95_ms": 9.5},
            "shards": {
                "shard-0": {"healthy": True, "draining": False,
                            "queue_depth": 1, "inflight": 2,
                            "workers": 2, "ema_job_ms": 4.5},
                "shard-1": {"healthy": False, "draining": True},
            },
            "cache": {"hits": 3},
            "obs": {"histograms": {}, "gauges": {
                "front.batch_windows_open": 0}},
        }
        text = render_cluster_metrics(payload)
        assert "repro_front_requests_total 10" in text
        assert "repro_cluster_queue_depth 1" in text
        assert "repro_cluster_inflight 2" in text
        assert 'repro_shard_up{shard="shard-0"} 1' in text
        assert 'repro_shard_up{shard="shard-1"} 0' in text
        assert 'repro_shard_draining{shard="shard-1"} 1' in text
        assert 'repro_shard_queue_depth{shard="shard-0"} 1' in text
        assert 'repro_shard_ema_job_ms{shard="shard-0"} 4.5' in text
        assert "repro_front_cache_hits 3" in text
        assert "repro_front_batch_windows_open 0" in text

    def test_names_and_label_values_are_escaped(self):
        payload = {"service": {"counters": {"weird-name": 1}},
                   "perf": {"counters": {'k"ey\n': 2}}}
        text = render_service_metrics(payload)
        assert "repro_service_weird_name_total 1" in text
        assert 'repro_perf_counter_total{key="k\\"ey\\n"} 2' in text


# ---------------------------------------------------------------------
class TestTraceRender:
    def _export(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        enable(export_path=path)
        with TRACER.span("request", layer="front"):
            with TRACER.span("solve", layer="solver"):
                pass
        TRACER.configure(export_path="")
        return path

    def test_render_file_builds_a_tree(self, tmp_path):
        path = self._export(tmp_path)
        text, count = render_file(path)
        assert count == 1
        assert "request" in text and "solve" in text
        # Child indented under the root; per-layer table present.
        assert "  - solve (solver)" in text
        assert "front" in text and "solver" in text

    def test_corrupt_lines_are_skipped_not_fatal(self, tmp_path):
        path = self._export(tmp_path)
        with open(path, "a") as handle:
            handle.write("not json\n")
            handle.write('{"no": "ids"}\n')
        spans, corrupt = load_spans(path)
        assert len(spans) == 2
        assert corrupt == 2
        text, count = render_file(path)
        assert count == 1
        assert "2 corrupt lines skipped" in text

    def test_orphan_spans_fall_back_to_roots(self, tmp_path):
        path = str(tmp_path / "orphans.jsonl")
        with open(path, "w") as handle:
            handle.write(json.dumps({
                "trace_id": "t1", "span_id": "s2",
                "parent_id": "missing", "name": "orphan",
                "layer": "worker", "start_ns": 10,
                "dur_ns": 1000, "status": "ok"}) + "\n")
        trees = build_traces(load_spans(path)[0])
        assert len(trees) == 1
        assert [s["name"] for s in trees[0].roots] == ["orphan"]

    def test_trace_id_filter_and_limit(self, tmp_path):
        path = str(tmp_path / "many.jsonl")
        with open(path, "w") as handle:
            for i in range(3):
                handle.write(json.dumps({
                    "trace_id": f"t{i}", "span_id": f"s{i}",
                    "parent_id": None, "name": f"root{i}",
                    "layer": "app", "start_ns": i,
                    "dur_ns": 100, "status": "ok"}) + "\n")
        _text, count = render_file(path, limit=2)
        assert count == 2
        text, count = render_file(path, trace_id="t1")
        assert count == 1 and "root1" in text

    def test_empty_export_renders_nothing(self, tmp_path):
        path = str(tmp_path / "empty.jsonl")
        open(path, "w").close()
        text, count = render_file(path)
        assert count == 0 and text == ""


# ---------------------------------------------------------------------
class TestDiagnosticsCorrelation:
    def test_round_trip_without_trace_is_unchanged(self):
        from repro.robustness.diagnostics import Diagnostics
        diag = Diagnostics()
        diag.record("phase", "event")
        data = diag.to_dict()
        assert "trace_id" not in data
        assert Diagnostics.from_dict(data).trace_id is None

    def test_bind_span_stamps_ids(self):
        from repro.robustness.diagnostics import Diagnostics
        enable()
        diag = Diagnostics()
        with TRACER.span("synthesize") as sp:
            diag.bind_span(sp)
        data = diag.to_dict()
        assert data["trace_id"] == sp.trace_id
        assert data["span_id"] == sp.span_id
        restored = Diagnostics.from_dict(data)
        assert restored.trace_id == sp.trace_id

    def test_bind_null_span_is_noop(self):
        from repro.robustness.diagnostics import Diagnostics
        diag = Diagnostics()
        with TRACER.span("untraced") as sp:  # tracing disabled
            diag.bind_span(sp)
        assert diag.trace_id is None
