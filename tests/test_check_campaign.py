"""Campaign fuzzing: fault schedules, case streams, live-fleet runs.

The end-to-end tests here run real (tiny) campaigns against the same
in-process fleet the ``repro fuzz --serve`` / ``--cluster`` commands
drive; CI's campaign-smoke job runs the full-size version.
"""

import random

import pytest

from repro.check.campaign import (CampaignCase, CampaignHarness,
                                  append_campaign_corpus,
                                  generate_campaign_cases,
                                  load_campaign_corpus, run_campaign,
                                  run_campaign_case,
                                  _campaign_shrink_candidates)
from repro.check.faults import (CLUSTER_KINDS, SERVE_KINDS,
                                FaultEvent, FaultInjector,
                                generate_events)
from repro.check.fuzz import FuzzCase


# ---------------------------------------------------------------------
class TestFaultEvents:
    def test_roundtrip(self):
        event = FaultEvent(kind="shard-kill", at=2, arg=1)
        assert FaultEvent.from_dict(event.to_dict()) == event

    def test_generation_is_deterministic(self):
        draws = [generate_events(random.Random("x"), 5, "cluster")
                 for _ in range(2)]
        assert draws[0] == draws[1]

    def test_serve_mode_never_kills_shards(self):
        for seed in range(50):
            events = generate_events(random.Random(seed), 4, "serve")
            assert all(e.kind in SERVE_KINDS for e in events)

    def test_cluster_mode_draws_shard_faults_eventually(self):
        kinds = set()
        for seed in range(80):
            kinds.update(e.kind for e in generate_events(
                random.Random(seed), 4, "cluster"))
        assert "shard-kill" in kinds
        assert kinds <= set(CLUSTER_KINDS)

    def test_events_sorted_by_request_index(self):
        for seed in range(30):
            events = generate_events(random.Random(seed), 6, "cluster")
            assert list(events) == sorted(
                events, key=lambda e: (e.at, e.kind, e.arg))


class _RecordingHarness:
    """Duck-typed stand-in recording what the injector did."""

    n_shards = 2
    host = "127.0.0.1"
    port = 1  # port 1 never listens: connection attempts fail fast
    cache_file = None

    def __init__(self):
        self.calls = []
        self.dead_shards = set()
        self.cache_up = True

    def kill_shard(self, index):
        index %= self.n_shards
        self.calls.append(("kill", index))
        if index in self.dead_shards:
            return False
        self.dead_shards.add(index)
        return True

    def restart_shard(self, index):
        self.calls.append(("restart", index))
        if index not in self.dead_shards:
            return False
        self.dead_shards.discard(index)
        return True

    def kill_cache(self):
        self.calls.append(("cache-kill",))
        was_up, self.cache_up = self.cache_up, False
        return was_up

    def revive_cache(self):
        self.calls.append(("cache-revive",))
        was_up, self.cache_up = self.cache_up, True
        return not was_up

    def storm(self, count):
        self.calls.append(("storm", count))


class TestFaultInjector:
    def test_fires_at_request_index_and_heals(self):
        harness = _RecordingHarness()
        injector = FaultInjector((
            FaultEvent("shard-kill", at=0, arg=1),
            FaultEvent("cache-kill", at=1),
            FaultEvent("retry-storm", at=1, arg=4),
        ), harness)
        assert injector.before_request(0) == 0.0
        assert harness.dead_shards == {1}
        injector.before_request(1)
        assert not harness.cache_up
        assert ("storm", 4) in harness.calls
        injector.finish()
        assert harness.dead_shards == set()
        assert harness.cache_up

    def test_client_delay_returns_seconds_without_firing(self):
        harness = _RecordingHarness()
        injector = FaultInjector(
            (FaultEvent("client-delay", at=2, arg=25),), harness)
        assert injector.before_request(2) == pytest.approx(0.025)
        assert harness.calls == []

    def test_restart_only_after_a_kill(self):
        harness = _RecordingHarness()
        injector = FaultInjector(
            (FaultEvent("shard-restart", at=0, arg=0),), harness)
        injector.before_request(0)
        assert ("restart", 0) not in harness.calls

    def test_disruptive_and_kill_accounting(self):
        quiet = FaultInjector(
            (FaultEvent("client-delay", at=0, arg=5),
             FaultEvent("cache-torn", at=1)), _RecordingHarness())
        assert not quiet.disruptive
        assert quiet.shard_kills == 0
        rough = FaultInjector(
            (FaultEvent("shard-kill", at=0, arg=0),), _RecordingHarness())
        assert rough.disruptive
        assert rough.shard_kills == 1


# ---------------------------------------------------------------------
class TestCampaignCases:
    def test_roundtrip_with_embedded_fuzz_case(self):
        case = CampaignCase(
            seed=7, design="random", requests=5, rate=3,
            fuzz=FuzzCase(seed=42, n_chips=2, n_ops=8, rate=3),
            faults=(FaultEvent("cache-kill", at=1),))
        assert CampaignCase.from_dict(case.to_dict()) == case

    def test_roundtrip_named(self):
        case = CampaignCase(seed=3, design="dct", requests=4, rate=2)
        assert CampaignCase.from_dict(case.to_dict()) == case

    def test_stream_is_deterministic_and_prefix_stable(self):
        long = list(generate_campaign_cases("s", 10, "cluster"))
        short = list(generate_campaign_cases("s", 4, "cluster"))
        assert long[:4] == short

    def test_named_designs_draw_feasible_rates(self):
        for case in generate_campaign_cases("rates", 60, "serve"):
            if case.design == "elliptic":
                assert case.rate >= 6  # recursion cannot close below
            elif case.design == "fir":
                assert case.rate >= 2
            params = [case.request_params(i)
                      for i in range(case.requests)]
            if case.design == "elliptic":
                assert all(p["rate"] >= 6 for p in params)

    def test_faults_off_yields_empty_schedules(self):
        cases = generate_campaign_cases("s", 10, "serve", faults=False)
        assert all(c.faults == () for c in cases)

    def test_storm_front_half_repeats_the_same_rate(self):
        case = CampaignCase(seed=0, design="dct", requests=5, rate=2)
        rates = [case.request_params(i)["rate"] for i in range(5)]
        assert rates[:3] == [2, 2, 2]  # coalescing pressure
        assert len(set(rates)) > 1     # plus some fan-out

    def test_design_body_inline_for_random(self):
        case = next(iter(
            c for c in generate_campaign_cases("s", 20, "serve")
            if c.design == "random"))
        body = case.design_body()
        assert set(body) >= {"graph", "partitioning"}
        named = CampaignCase(seed=0, design="fir", requests=3, rate=2)
        assert named.design_body() == "fir"

    def test_shrink_candidates_only_shrink(self):
        case = CampaignCase(
            seed=1, design="random", requests=5, rate=2,
            fuzz=FuzzCase(seed=9, n_chips=3, n_ops=10, rate=2),
            faults=(FaultEvent("cache-kill", at=0),
                    FaultEvent("retry-storm", at=2, arg=8)))
        for candidate in _campaign_shrink_candidates(case):
            assert (len(candidate.faults) < len(case.faults)
                    or candidate.requests < case.requests
                    or candidate.fuzz != case.fuzz)


class TestCorpus:
    def test_roundtrip(self, tmp_path):
        from repro.check.campaign import CampaignCaseResult
        path = str(tmp_path / "corpus.jsonl")
        case = CampaignCase(seed=5, design="dct", requests=3, rate=2,
                            faults=(FaultEvent("cache-torn", at=0),))
        append_campaign_corpus(path, CampaignCaseResult(
            case, violations=["exactly-once: boom"]))
        assert load_campaign_corpus(path) == [case]

    def test_missing_and_corrupt_are_tolerated(self, tmp_path):
        assert load_campaign_corpus(None) == []
        assert load_campaign_corpus(str(tmp_path / "nope")) == []
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        assert load_campaign_corpus(str(path)) == []


# ---------------------------------------------------------------------
class TestLiveCampaign:
    def test_serve_campaign_tiny_clean(self):
        report = run_campaign("pytest-serve", cases=2, mode="serve",
                              timeout_ms=4000.0, do_shrink=False)
        assert report.ok, [f.to_dict() for f in report.failures]
        assert report.cases_run == 2
        assert report.requests_sent >= 2
        assert sum(report.outcomes.values()) >= 2

    def test_cluster_campaign_tiny_clean(self):
        report = run_campaign("pytest-cluster", cases=2,
                              mode="cluster", timeout_ms=4000.0,
                              do_shrink=False)
        assert report.ok, [f.to_dict() for f in report.failures]
        assert report.cases_run == 2

    def test_harness_fault_surface(self):
        """Every injector entry point works against the real fleet."""
        with CampaignHarness("cluster", timeout_ms=4000.0) as harness:
            assert harness.kill_shard(0)
            assert not harness.kill_shard(0)   # already dead
            assert harness.restart_shard(0)
            assert not harness.restart_shard(0)  # already up
            assert harness.kill_cache()
            assert harness.revive_cache()
            harness.storm(2)
            assert harness.await_ready() == []

    def test_corpus_replays_first(self, tmp_path):
        from repro.check.campaign import CampaignCaseResult
        path = str(tmp_path / "corpus.jsonl")
        pinned = CampaignCase(seed=999, design="dct", requests=3,
                              rate=2)
        append_campaign_corpus(path, CampaignCaseResult(
            pinned, violations=["drain-clean: x"]))
        seen = []
        report = run_campaign("pytest-replay", cases=1, mode="serve",
                              faults=False, timeout_ms=4000.0,
                              corpus_path=path, do_shrink=False,
                              progress=seen.append)
        assert report.cases_run == 2
        assert seen[0].startswith("[corpus]")
        assert report.ok
