"""Tests for the ILP modelling layer (variables, expressions, model)."""

from fractions import Fraction

import pytest

from repro.errors import IlpError
from repro.ilp import Constraint, LinExpr, Model, Sense, lsum


class TestLinExpr:
    def test_var_addition_builds_terms(self):
        m = Model()
        x = m.add_var("x")
        y = m.add_var("y")
        expr = x + 2 * y + 3
        assert expr.terms == {0: Fraction(1), 1: Fraction(2)}
        assert expr.const == 3

    def test_subtraction_cancels_terms(self):
        m = Model()
        x = m.add_var("x")
        expr = (x + 1) - x
        assert expr.terms == {}
        assert expr.const == 1

    def test_scalar_multiplication_distributes(self):
        m = Model()
        x = m.add_var("x")
        y = m.add_var("y")
        expr = 3 * (x + y + 1)
        assert expr.terms == {0: Fraction(3), 1: Fraction(3)}
        assert expr.const == 3

    def test_negation(self):
        m = Model()
        x = m.add_var("x")
        expr = -(x + 5)
        assert expr.terms == {0: Fraction(-1)}
        assert expr.const == -5

    def test_zero_coefficients_dropped(self):
        m = Model()
        x = m.add_var("x")
        expr = x * 0
        assert expr.terms == {}

    def test_value_evaluates(self):
        m = Model()
        x = m.add_var("x")
        y = m.add_var("y")
        expr = 2 * x + y + 1
        assert expr.value({0: Fraction(3), 1: Fraction(4)}) == 11

    def test_float_coefficients_become_fractions(self):
        m = Model()
        x = m.add_var("x")
        expr = 0.5 * x
        assert expr.terms[0] == Fraction(1, 2)

    def test_lsum(self):
        m = Model()
        xs = [m.add_var(f"x{i}") for i in range(4)]
        expr = lsum(xs)
        assert len(expr.terms) == 4

    def test_rsub(self):
        m = Model()
        x = m.add_var("x")
        expr = 5 - x
        assert expr.const == 5
        assert expr.terms[0] == Fraction(-1)


class TestConstraints:
    def test_le_constraint_folds_rhs(self):
        m = Model()
        x = m.add_var("x")
        c = x + 1 <= 4
        assert isinstance(c, Constraint)
        assert c.op == "<="
        assert c.expr.const == -3

    def test_eq_constraint(self):
        m = Model()
        x = m.add_var("x")
        c = x == 2
        assert c.op == "=="

    def test_satisfied(self):
        m = Model()
        x = m.add_var("x")
        assert (x <= 3).satisfied({0: Fraction(3)})
        assert not (x <= 3).satisfied({0: Fraction(4)})
        assert (x >= 3).satisfied({0: Fraction(3)})
        assert (x == 3).satisfied({0: Fraction(3)})

    def test_bad_operator_rejected(self):
        m = Model()
        x = m.add_var("x")
        with pytest.raises(IlpError):
            Constraint(LinExpr({0: Fraction(1)}), "<")


class TestModel:
    def test_duplicate_variable_name_rejected(self):
        m = Model()
        m.add_var("x")
        with pytest.raises(IlpError):
            m.add_var("x")

    def test_bad_bounds_rejected(self):
        m = Model()
        with pytest.raises(IlpError):
            m.add_var("x", lb=2, ub=1)

    def test_binary_bounds(self):
        m = Model()
        b = m.binary("b")
        assert b.lb == 0 and b.ub == 1 and b.integer

    def test_var_by_name(self):
        m = Model()
        x = m.add_var("x")
        assert m.var_by_name("x") is x
        with pytest.raises(IlpError):
            m.var_by_name("nope")

    def test_stats(self):
        m = Model()
        m.add_var("x")
        m.add_var("y", integer=False)
        m.add(m.vars[0] + m.vars[1] <= 1)
        assert m.stats() == (2, 1, 1)

    def test_check_assignment(self):
        m = Model()
        x = m.binary("x")
        y = m.binary("y")
        m.add(x + y <= 1)
        assert m.check({0: Fraction(1), 1: Fraction(0)})
        assert not m.check({0: Fraction(1), 1: Fraction(1)})
        assert not m.check({0: Fraction(2), 1: Fraction(0)})  # ub
        assert not m.check({0: Fraction(1, 2), 1: Fraction(0)})  # int

    def test_sense_switches(self):
        m = Model()
        x = m.add_var("x")
        m.maximize(x)
        assert m.sense is Sense.MAXIMIZE
        m.minimize(x)
        assert m.sense is Sense.MINIMIZE
