"""White-box tests for force-directed scheduling internals."""

import pytest

from repro.cdfg import CdfgBuilder
from repro.cdfg.analysis import UnitTiming, compute_time_frames
from repro.scheduling.fds import ForceDirectedScheduler


def fan(n=3):
    b = CdfgBuilder()
    src = b.op("s", "add", 1)
    for i in range(n):
        b.op(f"a{i}", "add", 1, inputs=[src])
    return b.build()


class TestDistributionGraphs:
    def test_mass_conserved_per_node(self):
        g = fan(3)
        fds = ForceDirectedScheduler(g, UnitTiming(), 2, 4)
        frames = compute_time_frames(g, UnitTiming(), 4,
                                     initiation_rate=2)
        dgs = fds._distribution_graphs(frames, {})
        # Each single-cycle add contributes exactly 1 unit of mass.
        total = sum(dgs[("fu", 1, "add")])
        assert total == pytest.approx(4.0)  # s + a0 + a1 + a2

    def test_fixed_node_concentrates_mass(self):
        g = fan(1)
        fds = ForceDirectedScheduler(g, UnitTiming(), 2, 4)
        frames = compute_time_frames(g, UnitTiming(), 4,
                                     initiation_rate=2)
        dgs = fds._distribution_graphs(frames, {"a0": 3})
        probability = fds._probability("a0", frames, {"a0": 3})
        assert probability == {3 % 2: 1.0}

    def test_io_mass_weighted_by_bits(self):
        b = CdfgBuilder()
        src = b.op("s", "add", 1)
        b.io("w", "v", source=src, dests=[], source_partition=1,
             dest_partition=2, bit_width=16)
        g = b.build()
        fds = ForceDirectedScheduler(g, UnitTiming(), 2, 4)
        frames = compute_time_frames(g, UnitTiming(), 4,
                                     initiation_rate=2)
        dgs = fds._distribution_graphs(frames, {})
        assert sum(dgs[("out", 1)]) == pytest.approx(16.0)
        assert sum(dgs[("in", 2)]) == pytest.approx(16.0)

    def test_multicycle_occupies_consecutive_groups(self):
        b = CdfgBuilder()
        b.op("m", "mul", 1)
        g = b.build()
        timing = UnitTiming(cycles_by_op_type={"mul": 2})
        fds = ForceDirectedScheduler(g, timing, 4, 6)
        node = g.node("m")
        assert fds._occupied_groups(node, 3) == [3, 0]


class TestForceSelection:
    def test_balancing_prefers_empty_group(self):
        # With a0 fixed in group 0, the next op should feel lower force
        # in group 1.
        g = fan(2)
        fds = ForceDirectedScheduler(g, UnitTiming(), 2, 4)
        frames = compute_time_frames(g, UnitTiming(), 4,
                                     initiation_rate=2, fixed={"a0": 1})
        dgs = fds._distribution_graphs(frames, {"a0": 1})
        force_same = fds._self_force("a1", 1, frames, dgs, {"a0": 1})
        force_other = fds._self_force("a1", 2, frames, dgs, {"a0": 1})
        assert force_other < force_same

    def test_infeasible_neighbor_restriction_is_infinite(self):
        b = CdfgBuilder()
        x = b.op("x", "add", 1)
        y = b.op("y", "add", 1, inputs=[x])
        g = b.build()
        fds = ForceDirectedScheduler(g, UnitTiming(), 2, 2)
        frames = compute_time_frames(g, UnitTiming(), 2,
                                     initiation_rate=2)
        # Restricting y's frame below x's start would empty it.
        assert fds._restrict_force("y", None, -1, frames, {},
                                   {}) == float("inf")
