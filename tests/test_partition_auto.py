"""Tests for the automatic partitioner and its feedback loop."""

import pytest

from repro.cdfg import CdfgBuilder
from repro.cdfg.validate import validate_cdfg
from repro.errors import PartitionError
from repro.modules.library import DesignTiming, HardwareModule, ModuleSet
from repro.partition.auto import (PartitionResult, _cut_bits,
                                  partition_and_synthesize,
                                  partition_cdfg, partition_variants)
from repro.partition.model import ChipSpec, OUTSIDE_WORLD, Partitioning


def two_cluster_graph():
    """Two dense 4-op clusters joined by a single 8-bit value."""
    b = CdfgBuilder("clusters")
    a_in = b.inp("a", partition=None) if False else None
    # cluster A
    a0 = b.op("a0", "add", 1, bit_width=8)
    a1 = b.op("a1", "add", 1, inputs=[a0], bit_width=8)
    a2 = b.op("a2", "add", 1, inputs=[a0, a1], bit_width=8)
    a3 = b.op("a3", "add", 1, inputs=[a1, a2], bit_width=8)
    # cluster B
    b0 = b.op("b0", "add", 1, inputs=[a3], bit_width=8)
    b1 = b.op("b1", "add", 1, inputs=[b0], bit_width=8)
    b2 = b.op("b2", "add", 1, inputs=[b0, b1], bit_width=8)
    b.op("b3", "add", 1, inputs=[b1, b2], bit_width=8)
    g = b.build()
    # Strip partitions: the partitioner decides them.
    from repro.cdfg.graph import Node
    for node in list(g.nodes()):
        g.replace_node(Node(name=node.name, kind=node.kind,
                            op_type=node.op_type, partition=None,
                            bit_width=node.bit_width))
    return g


class TestPartitioner:
    def test_finds_the_natural_cut(self):
        g = two_cluster_graph()
        plan = partition_cdfg(g, 2, seed=1)
        # The single a3->b0 arc is the min cut: 16 weighted bits
        # (8 at the source port + 8 at the destination port).
        assert plan.cut_bits == 16
        chips_a = {plan.assignment[f"a{i}"] for i in range(4)}
        chips_b = {plan.assignment[f"b{i}"] for i in range(4)}
        assert len(chips_a) == 1 and len(chips_b) == 1
        assert chips_a != chips_b

    def test_balance_respected(self):
        g = two_cluster_graph()
        plan = partition_cdfg(g, 2, balance_slack=0.2)
        assert set(plan.loads.values()) == {4}

    def test_apply_inserts_io_nodes(self):
        g = two_cluster_graph()
        plan = partition_cdfg(g, 2, seed=1)
        partitioned = plan.apply(g)
        validate_cdfg(partitioned, require_partitions=False)
        assert len(partitioned.io_nodes()) == 1

    def test_too_few_chips_rejected(self):
        with pytest.raises(PartitionError):
            partition_cdfg(two_cluster_graph(), 1)

    def test_weights_steer_cuts_away(self):
        g = two_cluster_graph()
        free = partition_cdfg(g, 2, seed=1)
        # Heavily penalize chip 1: the weighted objective rises for
        # cuts touching it, but the min cut stays structurally forced.
        heavy = partition_cdfg(g, 2, seed=1, weights={1: 10.0})
        assert heavy.cut_bits >= free.cut_bits

    def test_deterministic_per_seed(self):
        g = two_cluster_graph()
        p1 = partition_cdfg(g, 2, seed=3)
        p2 = partition_cdfg(g, 2, seed=3)
        assert p1.assignment == p2.assignment

    def test_variants_deduped_by_assignment(self):
        g = two_cluster_graph()
        variants = partition_variants(g, 2, range(10))
        # The natural cut is strongly forced, so many seeds collapse
        # onto few distinct assignments — and none may repeat.
        assert 1 <= len(variants) <= 10
        assignments = [tuple(sorted(p.assignment.items()))
                       for p in variants.values()]
        assert len(set(assignments)) == len(assignments)
        # Keyed by the *first* seed that found each assignment.
        first_seed = min(variants)
        assert variants[first_seed].assignment \
            == partition_cdfg(g, 2, seed=first_seed).assignment


class TestFeedbackLoop:
    def timing(self):
        return DesignTiming(
            clock_period=100.0,
            default=ModuleSet.of(
                HardwareModule("adder", "add", delay_ns=40.0)),
            io_delay_ns=10.0)

    def test_end_to_end_from_unpartitioned(self):
        g = two_cluster_graph()
        pins = Partitioning({OUTSIDE_WORLD: ChipSpec(32),
                             1: ChipSpec(32), 2: ChipSpec(32)})
        result, plan = partition_and_synthesize(g, pins, self.timing(),
                                                initiation_rate=2)
        assert result.verify() == []
        assert plan.cut_bits <= 32

    def test_infeasible_budget_raises_after_rounds(self):
        g = two_cluster_graph()
        pins = Partitioning({OUTSIDE_WORLD: ChipSpec(0),
                             1: ChipSpec(4), 2: ChipSpec(4)})
        with pytest.raises(Exception):
            partition_and_synthesize(g, pins, self.timing(), 2,
                                     max_rounds=2)
