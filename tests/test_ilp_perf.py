"""Properties of the fast ILP kernel: oracle cache, undo log, shadow.

Three guarantees the performance work must not erode:

1. the memoized feasibility oracle in :class:`PinAllocationChecker`
   returns exactly what a cold, from-scratch solve returns, at every
   point of a randomized commit walk;
2. rejected probes roll the solver tableau back to byte-identical
   sparse state (not merely equivalent values);
3. cross-check mode — every sparse mutation mirrored onto the dense
   Fraction reference tableau — passes on small models end to end.
"""

from fractions import Fraction

import pytest

from repro.core.pin_allocation import PinAllocationChecker
from repro.designs import (AR_SIMPLE_PINS, ar_simple_design,
                           random_partitioned_design)
from repro.errors import ReproError
from repro.ilp import (DualAllIntegerSolver, Model, SolveStatus,
                       cross_check_enabled, lsum, set_cross_check,
                       solve_ilp, solve_lp)
from repro.modules.library import ar_filter_timing
from repro.scheduling.base import Schedule


def _packing_model(n_items, caps):
    m = Model()
    xs = {}
    for w in range(n_items):
        for k in range(len(caps)):
            xs[w, k] = m.binary(f"x{w}_{k}")
        m.add(lsum(xs[w, k] for k in range(len(caps))) >= 1)
    for k, cap in enumerate(caps):
        m.add(lsum(xs[w, k] for w in range(n_items)) <= cap)
    m.minimize(0)
    return m, xs


# ---------------------------------------------------------------------
class TestOracleCache:
    def _walk(self, graph, partitioning, L):
        """Greedy commit walk over io nodes, probing twice per state."""
        checker = PinAllocationChecker(graph, partitioning, L)
        schedule = Schedule(graph, ar_filter_timing(), L)
        for node in graph.io_nodes():
            for step in range(2 * L):
                cached = checker.can_schedule(node, step, schedule)
                again = checker.can_schedule(node, step, schedule)
                assert again == cached, "cache is not idempotent"
                # Independent reference: a cold branch & bound solve of
                # the same model with the same committed + probed bounds.
                tentative = dict(checker.fixed)
                tentative[node.name] = step % L
                cold = checker.problem.solve_with_fixed(tentative)
                assert cached == cold, (
                    f"oracle/cold disagreement at {node.name} "
                    f"step {step} with fixed={checker.fixed}")
                if cached:
                    checker.commit(node, step, schedule)
                    break
        assert checker.cache_hits > 0

    def test_ar_simple_walk(self):
        self._walk(ar_simple_design(), AR_SIMPLE_PINS, 2)

    @pytest.mark.parametrize("seed", range(5))
    def test_random_design_walk(self, seed):
        graph, partitioning = random_partitioned_design(seed, n_chips=2,
                                                        n_ops=8)
        try:
            self._walk(graph, partitioning, 2)
        except ReproError:
            pytest.skip("random instance infeasible from the start")

    def test_cache_distinguishes_commit_states(self):
        """Same probe, different committed set -> separate entries."""
        graph = ar_simple_design()
        checker = PinAllocationChecker(graph, AR_SIMPLE_PINS, 2)
        schedule = Schedule(graph, ar_filter_timing(), 2)
        ios = list(graph.io_nodes())
        probe = ios[0]
        checker.can_schedule(probe, 0, schedule)
        checker.commit(ios[1], 0, schedule)
        before = len(checker._oracle)
        checker.can_schedule(probe, 0, schedule)
        assert len(checker._oracle) == before + 1


# ---------------------------------------------------------------------
def _sparse_state(tableau):
    """The complete internal sparse representation, for byte-equality."""
    return (list(tableau._nums), list(tableau._rhs_num),
            list(tableau._dens), dict(tableau._cost_nums),
            tableau._cost_rhs, tableau._cost_den, list(tableau.basis))


class TestUndoLog:
    def test_rejected_probes_restore_identical_state(self):
        m, xs = _packing_model(3, [2, 1])
        solver = DualAllIntegerSolver(m)
        assert solver.reoptimize()
        solver.commit_lower_bound(xs[0, 0])
        solver.commit_lower_bound(xs[1, 0])
        state = _sparse_state(solver.tableau)
        shifts = dict(solver._shifts)
        # Feasible and infeasible probes alike must leave no trace.
        assert not solver.try_lower_bound(xs[2, 0])
        assert solver.try_lower_bound(xs[2, 1])
        assert not solver.try_lower_bound(xs[2, 0])
        assert _sparse_state(solver.tableau) == state
        assert solver._shifts == shifts

    def test_failed_commit_rolls_back(self):
        m, xs = _packing_model(2, [1, 1])
        solver = DualAllIntegerSolver(m)
        assert solver.reoptimize()
        solver.commit_lower_bound(xs[0, 0])
        state = _sparse_state(solver.tableau)
        with pytest.raises(ReproError):
            solver.commit_lower_bound(xs[1, 0])  # bin 0 is full
        assert _sparse_state(solver.tableau) == state
        # ... and the solver is still usable afterwards.
        assert solver.try_lower_bound(xs[1, 1])

    def test_journal_truncated_after_commit(self):
        """Commits are permanent: the undo journal must not keep them."""
        m, xs = _packing_model(3, [2, 2])
        solver = DualAllIntegerSolver(m)
        assert solver.reoptimize()
        solver.commit_lower_bound(xs[0, 0])
        assert not solver.tableau._journal, \
            "journal should be empty right after a commit"


# ---------------------------------------------------------------------
class TestCrossCheck:
    """Shadow-verified runs on small models (the debug mode itself)."""

    def _with_shadow(self, fn):
        was_on = cross_check_enabled()
        set_cross_check(True)
        try:
            return fn()
        finally:
            set_cross_check(was_on)

    def test_gomory_probe_cycle(self):
        def run():
            m, xs = _packing_model(3, [2, 1])
            solver = DualAllIntegerSolver(m)
            assert solver.reoptimize()
            solver.commit_lower_bound(xs[0, 0])
            assert not solver.try_lower_bound(xs[1, 0]) \
                or solver.try_lower_bound(xs[1, 0])
            solver.commit_lower_bound(xs[1, 1])
            assert solver.check_feasible()
        self._with_shadow(run)

    def test_lp_and_ilp(self):
        def run():
            m, xs = _packing_model(3, [2, 2])
            lp = solve_lp(m)
            assert lp.status is SolveStatus.OPTIMAL
            ilp = solve_ilp(m)
            assert ilp.status is SolveStatus.OPTIMAL
            assert all(v.denominator == 1 for v in ilp.values.values())
        self._with_shadow(run)

    def test_fractional_pivot_path(self):
        """An LP whose optimum is fractional exercises den != 1 rows."""
        def run():
            m = Model()
            x = m.add_var("x", lb=0)
            y = m.add_var("y", lb=0)
            m.add(2 * x + y <= 3)
            m.add(x + 2 * y <= 3)
            m.maximize(x + y)
            lp = solve_lp(m)
            assert lp.status is SolveStatus.OPTIMAL
            assert lp.objective == Fraction(2)
        self._with_shadow(run)
