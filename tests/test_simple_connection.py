"""Tests for the Theorem 3.1 constructive connection builder."""

import pytest

from repro.cdfg import Cdfg
from repro.cdfg.graph import make_io_node
from repro.core.simple_connection import (build_simple_connection,
                                          verify_simple_allocation)
from repro.errors import ConnectionError_
from repro.modules.library import ar_filter_timing
from repro.scheduling.base import Schedule


def schedule_for(graph, placements, L=2):
    s = Schedule(graph, ar_filter_timing(), L)
    for name, step in placements.items():
        s.place(name, step)
    return s


class TestPlainPair:
    def test_bundle_sized_to_peak_group(self):
        g = Cdfg()
        g.add_node(make_io_node("w0", "v0", 1, 2, bit_width=8))
        g.add_node(make_io_node("w1", "v1", 1, 2, bit_width=8))
        g.add_node(make_io_node("w2", "v2", 1, 2, bit_width=8))
        # Two transfers in group 0, one in group 1 -> 16-wire bundle.
        s = schedule_for(g, {"w0": 0, "w1": 2, "w2": 1})
        result = build_simple_connection(g, s)
        assert result.pins_used(1) == 16
        assert result.pins_used(2) == 16
        assert verify_simple_allocation(g, s, result) == []


class TestFanoutStar:
    def graph(self):
        g = Cdfg()
        # P4 -> {P1, P2}: two values, each to both destinations.
        g.add_node(make_io_node("a1", "v5", 4, 1, bit_width=8))
        g.add_node(make_io_node("a2", "v5", 4, 2, bit_width=8))
        g.add_node(make_io_node("b1", "v6", 4, 1, bit_width=8))
        g.add_node(make_io_node("b2", "v6", 4, 2, bit_width=8))
        return g

    def test_shared_values_share_bundle(self):
        g = self.graph()
        # v5 in step 0 (both transfers), v6 in step 1: one shared
        # 8-wire bundle C suffices (M_a = M_b = O_f = 8).
        s = schedule_for(g, {"a1": 0, "a2": 0, "b1": 1, "b2": 1})
        result = build_simple_connection(g, s)
        assert result.pins_used(4) == 8
        assert result.pins_used(1) == 8
        assert result.pins_used(2) == 8
        assert verify_simple_allocation(g, s, result) == []

    def test_unshared_schedule_needs_more_output(self):
        g = self.graph()
        # v5 to P1 in step 0 but to P2 in step 1 (and vice versa for
        # v6): nothing shares, so O_f = 16.
        s = schedule_for(g, {"a1": 0, "a2": 1, "b1": 1, "b2": 0})
        result = build_simple_connection(g, s)
        assert result.pins_used(4) == 16
        assert verify_simple_allocation(g, s, result) == []


class TestFaninStar:
    def test_shared_input_bundle(self):
        g = Cdfg()
        # {P1, P2} -> P3, two transfers each.
        g.add_node(make_io_node("x1", "v1", 1, 3, bit_width=8))
        g.add_node(make_io_node("x2", "v2", 1, 3, bit_width=8))
        g.add_node(make_io_node("x3", "v3", 2, 3, bit_width=8))
        g.add_node(make_io_node("x4", "v4", 2, 3, bit_width=8))
        # Peak per group into P3: 16 bits (one from each driver).
        s = schedule_for(g, {"x1": 0, "x2": 1, "x3": 0, "x4": 1})
        result = build_simple_connection(g, s)
        assert result.pins_used(3) == 16
        assert verify_simple_allocation(g, s, result) == []

    def test_overflow_rides_shared_bundle(self):
        g = Cdfg()
        g.add_node(make_io_node("x1", "v1", 1, 3, bit_width=8))
        g.add_node(make_io_node("x2", "v2", 1, 3, bit_width=8))
        g.add_node(make_io_node("x3", "v3", 2, 3, bit_width=8))
        # Group 0 carries x1+x3 (16 bits), group 1 carries x2 (8).
        # M_a = 16? No: from P1 peak is 8 (x1 g0, x2 g1); from P2 8.
        s = schedule_for(g, {"x1": 0, "x2": 1, "x3": 0})
        result = build_simple_connection(g, s)
        assert verify_simple_allocation(g, s, result) == []
        assert result.pins_used(3) == 16


class TestRejections:
    def test_non_simple_partitioning_rejected(self):
        g = Cdfg()
        for i, dst in enumerate((2, 3, 4)):
            g.add_node(make_io_node(f"w{i}", f"v{i}", 1, dst))
        s = schedule_for(g, {"w0": 0, "w1": 0, "w2": 1})
        with pytest.raises(ConnectionError_):
            build_simple_connection(g, s)


class TestEndToEnd:
    def test_ar_simple_flow_fits_budgets(self):
        from repro import synthesize_simple
        from repro.designs import AR_SIMPLE_PINS, ar_simple_design
        result = synthesize_simple(ar_simple_design(), AR_SIMPLE_PINS,
                                   ar_filter_timing(), 2)
        pins = result.pins_used()
        assert pins[1] <= 48 and pins[2] <= 48
        assert pins[3] <= 32 and pins[4] <= 32
        assert result.verify() == []
        # The budgets are tight: the design uses them fully.
        assert pins[1] == 48 and pins[3] == 32
