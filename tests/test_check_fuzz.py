"""Fuzz harness mechanics: determinism, shrinking, corpus replay."""

import json

import pytest

import importlib

#: The submodule itself (the package re-exports the ``fuzz`` function
#: under the same name, shadowing attribute-style module access).
fuzz_pkg = importlib.import_module("repro.check.fuzz")

from repro.check.fuzz import (CaseResult, FuzzCase, append_corpus,
                              fuzz, generate_cases, load_corpus,
                              run_case, shrink)
from repro.check.oracle import OracleReport


def test_generate_cases_deterministic():
    a = list(generate_cases("seed-a", 10))
    b = list(generate_cases("seed-a", 10))
    assert a == b
    c = list(generate_cases("seed-b", 10))
    assert a != c


def test_generate_cases_prefix_stable():
    # Asking for more cases must not reshuffle the earlier ones.
    short = list(generate_cases("seed-a", 5))
    long = list(generate_cases("seed-a", 10))
    assert long[:5] == short


def test_case_round_trip():
    case = FuzzCase(seed=7, n_chips=2, n_ops=9, widths=(4, 8),
                    pin_budget=24, bidirectional=False,
                    output_pins=6, rate=2)
    data = json.loads(json.dumps(case.to_dict()))
    assert FuzzCase.from_dict(data) == case


def test_from_dict_ignores_signature_and_unknown_keys():
    data = {"seed": 1, "signature": ["disagreement"], "future": True}
    case = FuzzCase.from_dict(data)
    assert case.seed == 1


def test_case_builds_fixed_split_design():
    case = FuzzCase(seed=3, n_chips=2, n_ops=8, widths=(8,),
                    pin_budget=32, output_pins=8)
    _graph, pins = case.build()
    spec = pins.chip(1)
    assert spec.split_fixed
    assert spec.output_pins == 8
    assert spec.input_pins == 24


def test_run_case_clean():
    case = FuzzCase(seed=5, n_chips=2, n_ops=6, widths=(8,),
                    pin_budget=256, rate=1)
    result = run_case(case, timeout_ms=8000)
    assert not result.failed
    assert result.signature() == []


# ---------------------------------------------------------------------
def _fake_runner(failing):
    """run_case stand-in: fails (signature ['x']) iff failing(case)."""
    def runner(case, timeout_ms=None):
        report = OracleReport()
        if failing(case):
            report.disagreements.append("x")
        result = CaseResult(case, report)
        return result
    return runner


def test_shrink_reduces_while_preserving_signature(monkeypatch):
    monkeypatch.setattr(
        fuzz_pkg, "run_case",
        _fake_runner(lambda c: c.n_ops >= 5 and c.rate >= 2))
    case = FuzzCase(seed=1, n_chips=4, n_ops=16, widths=(4, 8, 16),
                    pin_budget=32, output_pins=8, rate=4)
    small = shrink(case, ["disagreement"], timeout_ms=None)
    assert small.n_ops == 5
    assert small.rate == 2
    assert small.n_chips == 2
    assert small.widths == (4,)
    assert small.output_pins is None


def test_shrink_keeps_case_when_nothing_smaller_fails(monkeypatch):
    monkeypatch.setattr(fuzz_pkg, "run_case",
                        _fake_runner(lambda c: c.n_ops == 12))
    case = FuzzCase(seed=1, n_chips=2, n_ops=12, widths=(8,),
                    pin_budget=16, rate=1)
    assert shrink(case, ["disagreement"]) == case


# ---------------------------------------------------------------------
def test_corpus_round_trip(tmp_path):
    path = str(tmp_path / "corpus.jsonl")
    case = FuzzCase(seed=9, n_ops=7, output_pins=4, pin_budget=16)
    report = OracleReport()
    report.disagreements.append("boom")
    append_corpus(path, CaseResult(case, report))
    loaded = load_corpus(path)
    assert loaded == [case]


def test_load_corpus_tolerates_corrupt_lines(tmp_path):
    path = tmp_path / "corpus.jsonl"
    path.write_text('{"seed": 1}\nnot json\n\n{"seed": 2}\n')
    loaded = load_corpus(str(path))
    assert [c.seed for c in loaded] == [1, 2]


def test_load_corpus_missing_file():
    assert load_corpus("/nonexistent/corpus.jsonl") == []


def test_fuzz_records_and_replays_failures(tmp_path, monkeypatch):
    monkeypatch.setattr(fuzz_pkg, "run_case",
                        _fake_runner(lambda c: c.seed % 2 == 1))
    path = str(tmp_path / "corpus.jsonl")
    odd = [c for c in generate_cases("t", 8) if c.seed % 2 == 1]
    report = fuzz("t", cases=8, corpus_path=path, do_shrink=False)
    assert len(report.failures) == len(odd)
    assert not report.ok
    # Replay: corpus failures run first, then the stream repeats them.
    corpus_before = len(load_corpus(path))
    assert corpus_before == len(odd)
    replay = fuzz("t", cases=8, corpus_path=path, do_shrink=False)
    assert replay.cases_run == 8 + corpus_before


def test_fuzz_clean_smoke():
    report = fuzz("smoke-clean", cases=2, timeout_ms=8000)
    assert report.cases_run == 2
    assert report.ok, report.to_dict()
