"""The pass-pipeline API: the flow registry, the scheduler-backend
registry, and the shared :class:`ResourceTable`/:class:`PinLedger`
accounting every pass reads."""

import pytest

from repro import synthesize
from repro.designs import (AR_GENERAL_PINS_UNIDIR, AR_SIMPLE_PINS,
                           ar_general_design, ar_simple_design)
from repro.errors import SchedulingError
from repro.modules.allocation import min_module_counts
from repro.modules.library import ar_filter_timing
from repro.partition.model import OUTSIDE_WORLD, ChipSpec, Partitioning
from repro.pipeline import (DEPRECATED_SCHEDULER_ALIASES, FlowContext,
                            PinLedger, ResourceTable, fits, flow_spec,
                            pin_caps, register_scheduler,
                            registered_flows, resolve_scheduler,
                            run_flow, scheduler_backend,
                            scheduler_names, usage_row)
from repro.pipeline.registry import _SCHEDULERS
from repro.robustness.diagnostics import Diagnostics


# ---------------------------------------------------------------------
# Flow registry
# ---------------------------------------------------------------------
class TestFlowRegistry:

    def test_all_three_chapter_flows_registered(self):
        assert registered_flows() == ["connection-first",
                                      "schedule-first", "simple"]

    def test_unknown_flow_raises(self):
        with pytest.raises(KeyError, match="unknown flow"):
            flow_spec("chapter-9")

    @pytest.mark.parametrize("flow,phased_subset", [
        ("simple", {"schedule", "simple-connect"}),
        ("connection-first", {"connect-search", "schedule"}),
        ("schedule-first", {"schedule", "post-connect"}),
    ])
    def test_pass_lists(self, flow, phased_subset):
        spec = flow_spec(flow)
        names = spec.pass_names()
        assert names[0] == "validate"
        assert phased_subset <= set(p.name for p in spec.phased)
        assert spec.perf_phase.startswith("flow.")

    def test_run_flow_matches_front_door(self):
        graph, timing = ar_simple_design(), ar_filter_timing()
        front = synthesize(graph, AR_SIMPLE_PINS, timing, 2,
                           flow="simple")
        from repro.core.flow import SynthesisOptions
        ctx = FlowContext(graph=ar_simple_design(),
                          partitioning=AR_SIMPLE_PINS,
                          timing=ar_filter_timing(), initiation_rate=2,
                          options=SynthesisOptions(flow="simple"),
                          token=None, diag=Diagnostics())
        result = run_flow("simple", ctx)
        assert result is ctx.result
        assert result.schedule.start_step == front.schedule.start_step
        assert result.pins_used() == front.pins_used()


# ---------------------------------------------------------------------
# Scheduler-backend registry
# ---------------------------------------------------------------------
class TestSchedulerRegistry:

    def test_builtins_registered(self):
        assert {"list", "heap", "postpone", "modulo",
                "fds"} <= set(scheduler_names())

    def test_names_filtered_by_flow(self):
        assert scheduler_names("simple") == ["heap", "list", "modulo"]
        assert scheduler_names("connection-first") == [
            "heap", "list", "modulo", "postpone"]
        assert scheduler_names("schedule-first") == ["fds"]

    def test_resolve_alias_records_diagnostics(self):
        diag = Diagnostics()
        assert resolve_scheduler("postponement", diag) == "postpone"
        events = [e for e in diag.events
                  if e.event == "deprecated_alias"]
        assert len(events) == 1
        assert events[0].detail == {"alias": "postponement",
                                    "canonical": "postpone"}

    def test_resolve_canonical_is_silent(self):
        diag = Diagnostics()
        assert resolve_scheduler("list", diag) == "list"
        assert not diag.events

    def test_every_alias_resolves_to_a_registered_backend(self):
        for alias, canonical in DEPRECATED_SCHEDULER_ALIASES.items():
            assert resolve_scheduler(alias) == canonical
            assert scheduler_backend(canonical) is not None

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_scheduler("list", lambda *a: None)

    def test_alias_name_registration_rejected(self):
        with pytest.raises(ValueError, match="deprecated alias"):
            register_scheduler("postponement", lambda *a: None)

    def test_third_party_backend_end_to_end(self):
        """A freshly registered backend is immediately usable through
        the front door and produces a checkable result."""
        from repro.scheduling.list_scheduler import ListScheduler

        def tutorial(graph, timing, rate, resources, hooks_factory,
                     budget, diagnostics):
            return ListScheduler(graph, timing, rate, resources,
                                 io_hooks=hooks_factory(),
                                 budget=budget).run()

        register_scheduler("tutorial-backend", tutorial,
                           description="docs example")
        try:
            graph, timing = ar_general_design(), ar_filter_timing()
            baseline = synthesize(graph, AR_GENERAL_PINS_UNIDIR,
                                  timing, 3, flow="connection-first")
            result = synthesize(graph, AR_GENERAL_PINS_UNIDIR, timing,
                                3, flow="connection-first",
                                scheduler="tutorial-backend")
            assert not result.verify()
            assert (result.schedule.start_step
                    == baseline.schedule.start_step)
        finally:
            _SCHEDULERS.pop("tutorial-backend")

    def test_unknown_scheduler_fails_fast(self):
        graph, timing = ar_general_design(), ar_filter_timing()
        with pytest.raises(SchedulingError, match="unknown scheduler"):
            synthesize(graph, AR_GENERAL_PINS_UNIDIR, timing, 3,
                       flow="connection-first", scheduler="sjf")

    def test_flow_mismatch_fails_fast(self):
        graph, timing = ar_general_design(), ar_filter_timing()
        with pytest.raises(SchedulingError, match="not available"):
            synthesize(graph, AR_GENERAL_PINS_UNIDIR, timing, 3,
                       flow="connection-first", scheduler="fds")

    def test_deprecated_spelling_still_synthesizes(self):
        graph, timing = ar_general_design(), ar_filter_timing()
        canonical = synthesize(graph, AR_GENERAL_PINS_UNIDIR, timing,
                               3, flow="connection-first",
                               scheduler="postpone")
        aliased = synthesize(graph, AR_GENERAL_PINS_UNIDIR, timing, 3,
                             flow="connection-first",
                             scheduler="postponement")
        assert (aliased.schedule.start_step
                == canonical.schedule.start_step)
        assert any(e.event == "deprecated_alias"
                   for e in aliased.diagnostics.events)


# ---------------------------------------------------------------------
# Pin accounting primitives
# ---------------------------------------------------------------------
def _mixed_partitioning():
    return Partitioning({
        OUTSIDE_WORLD: ChipSpec(64),
        1: ChipSpec(32),                                   # pooled
        2: ChipSpec(32, input_pins=12, output_pins=20),    # split
    })


class TestPinPrimitives:

    def test_pin_caps(self):
        pins = _mixed_partitioning()
        assert pin_caps(pins.chip(1)) == (32, None, None)
        assert pin_caps(pins.chip(2)) == (32, 20, 12)

    def test_fits_pooled_only_bounds_total(self):
        spec = _mixed_partitioning().chip(1)
        assert fits(spec, 32, 0)
        assert fits(spec, 0, 32)
        assert not fits(spec, 20, 13)

    def test_fits_split_bounds_each_side(self):
        spec = _mixed_partitioning().chip(2)
        assert fits(spec, 20, 12)
        assert not fits(spec, 21, 0)
        assert not fits(spec, 0, 13)

    def test_usage_row_encodings(self):
        pins = _mixed_partitioning()
        assert usage_row(pins.chip(1), 5, 7) == [12, -1, -1]
        assert usage_row(pins.chip(2), 5, 7) == [0, 5, 7]


class TestPinLedger:

    def test_book_and_free_pins(self):
        ledger = PinLedger(_mixed_partitioning())
        assert ledger.free_pins(1) == 32
        ledger.book({1: (8, 4), 2: (16, 0)})
        assert ledger.free_pins(1) == 20
        assert ledger.used[2] == 16
        assert ledger.out_used[2] == 16

    def test_delta_fits_respects_split(self):
        ledger = PinLedger(_mixed_partitioning())
        assert ledger.delta_fits({2: (20, 12)})
        assert not ledger.delta_fits({2: (21, 0)})
        ledger.book({2: (20, 0)})
        assert not ledger.delta_fits({2: (1, 0)})
        assert ledger.delta_fits({2: (0, 12)})

    def test_snapshot_restore_roundtrip(self):
        ledger = PinLedger(_mixed_partitioning())
        ledger.book({1: (3, 3)})
        snap = ledger.snapshot()
        ledger.book({1: (10, 10), 2: (5, 5)})
        ledger.restore(snap)
        assert ledger.used[1] == 6 and ledger.used[2] == 0

    def test_violation_messages_are_the_checker_contract(self):
        ledger = PinLedger(_mixed_partitioning())
        ledger.book({1: (33, 0), 2: (21, 13)})
        problems = ledger.violations()
        assert "partition 1 uses 33 pins (> budget 32)" in problems
        assert ("partition 2 uses 21 output pins "
                "(> output-pin budget 20)") in problems
        assert ("partition 2 uses 13 input pins "
                "(> input-pin budget 12)") in problems

    def test_from_interconnect_matches_check_budget(self):
        graph, timing = ar_general_design(), ar_filter_timing()
        result = synthesize(graph, AR_GENERAL_PINS_UNIDIR, timing, 3,
                            flow="connection-first")
        ledger = PinLedger.from_interconnect(result.interconnect,
                                             AR_GENERAL_PINS_UNIDIR)
        assert ledger.violations() == \
            result.interconnect.check_budget(AR_GENERAL_PINS_UNIDIR)
        for index in AR_GENERAL_PINS_UNIDIR.indices():
            out_used, in_used = \
                result.interconnect.pins_used_split(index)
            assert ledger.used[index] == out_used + in_used


class TestResourceTable:

    def test_modules_default_lazily(self):
        graph, timing = ar_general_design(), ar_filter_timing()
        table = ResourceTable(graph, AR_GENERAL_PINS_UNIDIR, timing, 3)
        assert table._modules is None
        assert table.modules == min_module_counts(graph, timing, 3)

    def test_explicit_modules_win(self):
        graph, timing = ar_general_design(), ar_filter_timing()
        vector = min_module_counts(graph, timing, 3)
        table = ResourceTable(graph, AR_GENERAL_PINS_UNIDIR, timing, 3,
                              modules=vector)
        assert table.modules == vector
        override = dict(vector)
        first = next(iter(override))
        override[first] += 1
        table.set_modules(override)
        assert table.modules[first] == vector[first] + 1

    def test_module_pool_is_fresh_per_call(self):
        graph, timing = ar_general_design(), ar_filter_timing()
        table = ResourceTable(graph, AR_GENERAL_PINS_UNIDIR, timing, 3)
        assert table.module_pool() is not table.module_pool()
