"""Tests for the bus/port/sub-bus interconnect model."""

import pytest

from repro.cdfg import Cdfg
from repro.cdfg.graph import make_io_node
from repro.core.interconnect import (Bus, BusAssignment, Interconnect,
                                     verify_bus_allocation)
from repro.errors import ConnectionError_
from repro.partition.model import ChipSpec, OUTSIDE_WORLD, Partitioning


class TestBus:
    def test_capability_unidirectional(self):
        bus = Bus(1, out_widths={1: 16, 2: 8}, in_widths={3: 16})
        wide = make_io_node("w", "v", 1, 3, bit_width=16)
        narrow = make_io_node("n", "u", 2, 3, bit_width=8)
        too_wide = make_io_node("t", "t", 2, 3, bit_width=16)
        assert bus.capable(wide)
        assert bus.capable(narrow)
        assert not bus.capable(too_wide)  # P2's port is 8 wide

    def test_capability_bidirectional(self):
        bus = Bus(1, bi_widths={1: 8, 2: 8})
        fwd = make_io_node("f", "v", 1, 2, bit_width=8)
        bwd = make_io_node("b", "u", 2, 1, bit_width=8)
        assert bus.capable(fwd) and bus.capable(bwd)

    def test_width_from_ports(self):
        bus = Bus(1, out_widths={1: 16}, in_widths={2: 12})
        assert bus.width == 16

    def test_segments(self):
        bus = Bus(1, out_widths={1: 16}, in_widths={2: 16},
                  segments=[8, 8])
        assert bus.n_segments == 2
        assert bus.segment_offset(1) == 8
        narrow = make_io_node("n", "v", 1, 2, bit_width=8)
        wide = make_io_node("w", "u", 1, 2, bit_width=16)
        assert bus.fitting_segments(narrow) == [0, 1]
        assert bus.fitting_segments(wide) == [0]
        assert bus.segments_spanned(narrow, 1) == [1]
        assert bus.segments_spanned(wide, 0) == [0, 1]

    def test_segment_overflow_raises(self):
        bus = Bus(1, out_widths={1: 16}, in_widths={2: 16},
                  segments=[8, 8])
        wide = make_io_node("w", "v", 1, 2, bit_width=16)
        with pytest.raises(ConnectionError_):
            bus.segments_spanned(wide, 1)

    def test_second_segment_needs_prefix_ports(self):
        # Eq 6.9: using segment 1 requires ports covering segment 0.
        bus = Bus(1, out_widths={1: 16, 3: 8}, in_widths={2: 16},
                  segments=[8, 8])
        narrow_full = make_io_node("n", "v", 1, 2, bit_width=8)
        narrow_partial = make_io_node("m", "u", 3, 2, bit_width=8)
        assert bus.capable(narrow_full, segment=1)
        assert not bus.capable(narrow_partial, segment=1)  # 8 < 16
        assert bus.capable(narrow_partial, segment=0)

    def test_topology(self):
        a = Bus(1, out_widths={1: 8}, in_widths={2: 8})
        b = Bus(2, out_widths={1: 16}, in_widths={2: 16})
        c = Bus(3, out_widths={2: 8}, in_widths={1: 8})
        assert a.topology() == b.topology()
        assert a.topology() != c.topology()


class TestInterconnect:
    def test_pin_accounting_unidirectional(self):
        ic = Interconnect([
            Bus(1, out_widths={1: 8}, in_widths={2: 8}),
            Bus(2, out_widths={1: 16}, in_widths={2: 16, 3: 16}),
        ])
        assert ic.pins_used(1) == 24
        assert ic.pins_used(2) == 24
        assert ic.pins_used(3) == 16

    def test_pin_accounting_bidirectional(self):
        ic = Interconnect([Bus(1, bi_widths={1: 8, 2: 8})],
                          bidirectional=True)
        assert ic.pins_used(1) == 8

    def test_budget_check(self):
        ic = Interconnect([Bus(1, out_widths={1: 32},
                               in_widths={2: 32})])
        p = Partitioning({OUTSIDE_WORLD: ChipSpec(0),
                          1: ChipSpec(16), 2: ChipSpec(64)})
        problems = ic.check_budget(p)
        assert len(problems) == 1 and "partition 1" in problems[0]

    def test_unknown_bus(self):
        with pytest.raises(ConnectionError_):
            Interconnect([]).bus(7)


class TestVerifyAllocation:
    def setup_case(self):
        g = Cdfg()
        g.add_node(make_io_node("w0", "v0", 1, 2, bit_width=8))
        g.add_node(make_io_node("w1", "v1", 1, 2, bit_width=8))
        ic = Interconnect([Bus(1, out_widths={1: 8}, in_widths={2: 8})])
        assignment = BusAssignment()
        assignment.assign("w0", 1)
        assignment.assign("w1", 1)
        return g, ic, assignment

    def test_clean_allocation(self):
        g, ic, assignment = self.setup_case()
        steps = {"w0": 0, "w1": 1}
        assert verify_bus_allocation(g, ic, assignment, steps, 2) == []

    def test_group_conflict_detected(self):
        g, ic, assignment = self.setup_case()
        steps = {"w0": 0, "w1": 2}  # same group at L=2
        problems = verify_bus_allocation(g, ic, assignment, steps, 2)
        assert any("conflicts" in p for p in problems)

    def test_same_value_same_step_allowed(self):
        g = Cdfg()
        g.add_node(make_io_node("wa", "v", 1, 2, bit_width=8))
        g.add_node(make_io_node("wb", "v", 1, 3, bit_width=8))
        ic = Interconnect([Bus(1, out_widths={1: 8},
                               in_widths={2: 8, 3: 8})])
        assignment = BusAssignment()
        assignment.assign("wa", 1)
        assignment.assign("wb", 1)
        steps = {"wa": 0, "wb": 0}
        assert verify_bus_allocation(g, ic, assignment, steps, 2) == []

    def test_incapable_bus_detected(self):
        g = Cdfg()
        g.add_node(make_io_node("w", "v", 1, 2, bit_width=16))
        ic = Interconnect([Bus(1, out_widths={1: 8}, in_widths={2: 8})])
        assignment = BusAssignment()
        assignment.assign("w", 1)
        problems = verify_bus_allocation(g, ic, assignment, {"w": 0}, 2)
        assert any("cannot carry" in p for p in problems)

    def test_missing_assignment_detected(self):
        g = Cdfg()
        g.add_node(make_io_node("w", "v", 1, 2))
        ic = Interconnect([])
        problems = verify_bus_allocation(g, ic, BusAssignment(),
                                         {"w": 0}, 2)
        assert any("no bus" in p for p in problems)
