"""Tests for the Section 6.1.1.4 linearization helpers.

Each helper is validated by brute force: enumerate all binary inputs,
solve the tiny ILP with the constraint set, and compare against the
logical definition.
"""

import itertools

import pytest

from repro.ilp import Model, lsum, solve_ilp
from repro.ilp.linearize import (
    linearize_implies_ge,
    linearize_implies_zero,
    linearize_max_binary,
    linearize_min_binary,
    linearize_positive_iff,
    linearize_xor,
)


def _force(model, var, value):
    model.add(var >= value)
    model.add(var <= value)


@pytest.mark.parametrize("bits", list(itertools.product([0, 1], repeat=3)))
def test_max_binary_exact(bits):
    m = Model()
    items = [m.binary(f"b{i}") for i in range(3)]
    target = m.binary("t")
    linearize_max_binary(m, target, items, exact=True)
    for var, value in zip(items, bits):
        _force(m, var, value)
    m.minimize(0)
    s = solve_ilp(m)
    assert s.feasible
    assert s.as_int(target) == max(bits)


@pytest.mark.parametrize("bits", list(itertools.product([0, 1], repeat=3)))
def test_min_binary_exact(bits):
    m = Model()
    items = [m.binary(f"b{i}") for i in range(3)]
    target = m.binary("t")
    linearize_min_binary(m, target, items, exact=True)
    for var, value in zip(items, bits):
        _force(m, var, value)
    m.minimize(0)
    s = solve_ilp(m)
    assert s.feasible
    assert s.as_int(target) == min(bits)


@pytest.mark.parametrize("x,y", list(itertools.product([0, 1], repeat=2)))
def test_xor(x, y):
    m = Model()
    bx, by, bz = m.binary("x"), m.binary("y"), m.binary("z")
    linearize_xor(m, bz, bx, by)
    _force(m, bx, x)
    _force(m, by, y)
    m.minimize(0)
    s = solve_ilp(m)
    assert s.feasible
    assert s.as_int(bz) == (x ^ y)


def test_implies_zero_fires_at_threshold():
    m = Model()
    counter = m.add_var("c", 0, 2)
    amount = m.add_var("i", 0, 10)
    linearize_implies_zero(m, counter, amount, threshold=2, big_m=100)
    _force(m, counter, 2)
    m.maximize(amount)
    s = solve_ilp(m)
    assert s.as_int(amount) == 0


def test_implies_zero_inactive_below_threshold():
    m = Model()
    counter = m.add_var("c", 0, 2)
    amount = m.add_var("i", 0, 10)
    linearize_implies_zero(m, counter, amount, threshold=2, big_m=100)
    _force(m, counter, 1)
    m.maximize(amount)
    s = solve_ilp(m)
    assert s.as_int(amount) == 10


@pytest.mark.parametrize("value", [0, 1, 7])
def test_positive_iff(value):
    m = Model()
    amount = m.add_var("i", 0, 10)
    flag = m.binary("b")
    linearize_positive_iff(m, amount, flag, big_m=100)
    _force(m, amount, value)
    m.minimize(0)
    s = solve_ilp(m)
    assert s.feasible
    assert s.as_int(flag) == (1 if value > 0 else 0)


def test_positive_iff_flag_forces_positive():
    m = Model()
    amount = m.add_var("i", 0, 10)
    flag = m.binary("b")
    linearize_positive_iff(m, amount, flag, big_m=100)
    _force(m, flag, 1)
    m.minimize(amount)
    s = solve_ilp(m)
    assert s.as_int(amount) >= 1


def test_implies_ge_active():
    m = Model()
    flag = m.binary("b")
    x = m.add_var("x", 0, 20)
    y = m.add_var("y", 0, 20)
    linearize_implies_ge(m, flag, x, y, big_m=100)
    _force(m, flag, 1)
    _force(m, y, 7)
    m.minimize(x)
    s = solve_ilp(m)
    assert s.as_int(x) == 7


def test_implies_ge_inactive():
    m = Model()
    flag = m.binary("b")
    x = m.add_var("x", 0, 20)
    y = m.add_var("y", 0, 20)
    linearize_implies_ge(m, flag, x, y, big_m=100)
    _force(m, flag, 0)
    _force(m, y, 7)
    m.minimize(x)
    s = solve_ilp(m)
    assert s.as_int(x) == 0
