"""Tests for iterative rescheduling with postponement (Sec 5.3/8.2)."""

import pytest

from repro.cdfg import CdfgBuilder
from repro.cdfg.analysis import UnitTiming
from repro.core.bus_assignment import BusAllocator
from repro.core.connection_search import ConnectionSearch
from repro.designs import (ELLIPTIC_PINS_UNIDIR, elliptic_design,
                           elliptic_resources)
from repro.errors import SchedulingError
from repro.modules.library import elliptic_filter_timing
from repro.scheduling import (DeadlineMissed, ListScheduler,
                              schedule_with_postponement)


class TestMinSteps:
    def test_constraint_delays_operation(self):
        b = CdfgBuilder()
        b.op("a", "add", 1)
        b.op("b", "add", 1)
        g = b.build()
        s = ListScheduler(g, UnitTiming(), 4, {(1, "add"): 2},
                          min_steps={"b": 2}).run()
        assert s.step("b") >= 2
        assert s.step("a") == 0


class TestDeadlineMissed:
    def loop_graph(self):
        # Loop x -> y -> z with zero slack at L=2, plus a greedy
        # competitor hogging the single adder at step 0.
        b = CdfgBuilder()
        x = b.op("x", "add", 1)
        y = b.op("y", "add", 1, inputs=[x])
        z = b.op("z", "add", 1, inputs=[y])
        b.recursive(z, x, degree=1)  # t_z <= t_x + 2L-1... degree 1,
        b.op("hog", "add", 1)        # L=3: t_z <= t_x + 2
        return b.build()

    def test_exception_carries_diagnostics(self):
        g = self.loop_graph()
        # One adder: 'hog' (alphabetically after nothing, but EDF puts
        # deadline ops first) — force the failure with min_steps that
        # pin the loop late... simpler: one adder and L=3 is actually
        # schedulable; use a contrived hooks object to starve the loop.
        class RefuseEarly:
            def can_schedule(self, node, step, schedule):
                return step >= 5

            def commit(self, node, step, schedule):
                pass

        b = CdfgBuilder()
        x = b.io("X", "v", source=b.op("p", "add", 1), dests=[],
                 source_partition=1, dest_partition=2)
        tail = b.op("t", "add", 2, inputs=[x])
        b.recursive("t", "p", degree=1)
        g2 = b.build()
        with pytest.raises(DeadlineMissed) as excinfo:
            ListScheduler(g2, UnitTiming(), 2,
                          {(1, "add"): 1, (2, "add"): 1},
                          io_hooks=RefuseEarly()).run()
        assert excinfo.value.failed_op
        assert excinfo.value.partial.start_step  # partial progress


class TestPostponementLoop:
    def test_elliptic_rate_6_schedules(self):
        graph = elliptic_design()
        timing = elliptic_filter_timing()
        ic, init = ConnectionSearch(graph, ELLIPTIC_PINS_UNIDIR, 6).run()
        schedule = schedule_with_postponement(
            graph, timing, 6, elliptic_resources(6),
            hooks_factory=lambda: BusAllocator(graph, ic, init.copy(),
                                               6))
        assert schedule.verify(elliptic_resources(6)) == []

    def test_rate_5_needs_bandwidth_not_postponement(self):
        # Postponement alone cannot beat a bandwidth-starved
        # connection (zero-slack loop + serialized buses)...
        graph = elliptic_design()
        timing = elliptic_filter_timing()
        ic, init = ConnectionSearch(graph, ELLIPTIC_PINS_UNIDIR, 5).run()
        with pytest.raises(SchedulingError):
            schedule_with_postponement(
                graph, timing, 5, elliptic_resources(5),
                hooks_factory=lambda: BusAllocator(graph, ic,
                                                   init.copy(), 5))
        # ...but with reserved bus slots it closes the gap.
        ic2, init2 = ConnectionSearch(graph, ELLIPTIC_PINS_UNIDIR, 5,
                                      slot_reserve=3).run()
        schedule = schedule_with_postponement(
            graph, timing, 5, elliptic_resources(5),
            hooks_factory=lambda: BusAllocator(graph, ic2, init2.copy(),
                                               5))
        assert schedule.verify() == []
