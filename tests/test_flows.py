"""End-to-end tests of the three synthesis flows."""

import pytest

from repro import (synthesize_connection_first, synthesize_schedule_first,
                   synthesize_simple)
from repro.designs import (AR_GENERAL_PINS_BIDIR, AR_GENERAL_PINS_UNIDIR,
                           AR_SIMPLE_PINS, ELLIPTIC_PINS_UNIDIR,
                           ar_general_design, ar_simple_design,
                           elliptic_design, elliptic_resources)
from repro.errors import ConnectionError_, ReproError, SchedulingError
from repro.modules.library import ar_filter_timing, elliptic_filter_timing


class TestSimpleFlow:
    def test_ar_simple(self):
        result = synthesize_simple(ar_simple_design(), AR_SIMPLE_PINS,
                                   ar_filter_timing(), 2)
        assert result.verify() == []
        assert result.stats["pin_checks"] > 0
        # Inputs every 2 cycles with chained mul+add: short pipe.
        assert result.pipe_length <= 10

    def test_general_partition_rejected(self):
        with pytest.raises(ConnectionError_):
            synthesize_simple(ar_general_design(),
                              AR_GENERAL_PINS_UNIDIR,
                              ar_filter_timing(), 3)


class TestConnectionFirstFlow:
    @pytest.mark.parametrize("L", [3, 4, 5])
    def test_ar_unidirectional(self, L):
        result = synthesize_connection_first(
            ar_general_design(), AR_GENERAL_PINS_UNIDIR,
            ar_filter_timing(), L)
        assert result.verify() == []
        assert result.pins_used()[1] <= 135

    def test_ar_bidirectional_fewer_pins_overall(self):
        # The dissertation's observation: bidirectional ports need
        # fewer pins (Section 4.4.1.2).  The heuristic can wobble at a
        # single rate, so the claim is checked across the sweep.
        uni_total = bi_total = 0
        for L in (3, 4, 5):
            uni = synthesize_connection_first(
                ar_general_design(), AR_GENERAL_PINS_UNIDIR,
                ar_filter_timing(), L)
            bi = synthesize_connection_first(
                ar_general_design(), AR_GENERAL_PINS_BIDIR,
                ar_filter_timing(), L)
            assert bi.verify() == []
            uni_total += sum(uni.pins_used().values())
            bi_total += sum(bi.pins_used().values())
        assert bi_total < uni_total

    def test_reassignment_helps_overall(self):
        # Table 4.2's columns: schedules with reassignment are never
        # longer in aggregate than static-assignment schedules.
        dynamic_total = static_total = 0
        for L in (3, 4, 5):
            dynamic = synthesize_connection_first(
                ar_general_design(), AR_GENERAL_PINS_UNIDIR,
                ar_filter_timing(), L, reassignment=True)
            dynamic_total += dynamic.pipe_length
            try:
                static = synthesize_connection_first(
                    ar_general_design(), AR_GENERAL_PINS_UNIDIR,
                    ar_filter_timing(), L, reassignment=False)
                static_total += static.pipe_length
            except SchedulingError:
                # Static assignment failing outright is the strongest
                # form of "reassignment helps".
                static_total += dynamic.pipe_length + 5
        assert dynamic_total <= static_total

    def test_elliptic_fails_at_rate_5_succeeds_at_6(self):
        # Section 4.4.2: list scheduling cannot meet the critical loop
        # at the minimum rate even though a schedule exists.
        with pytest.raises(ReproError):
            synthesize_connection_first(
                elliptic_design(), ELLIPTIC_PINS_UNIDIR,
                elliptic_filter_timing(), 5,
                resources=elliptic_resources(5))
        ok = synthesize_connection_first(
            elliptic_design(), ELLIPTIC_PINS_UNIDIR,
            elliptic_filter_timing(), 6,
            resources=elliptic_resources(6))
        assert ok.verify() == []

    def test_slot_reserve_recovers_rate_5(self):
        result = synthesize_connection_first(
            elliptic_design(), ELLIPTIC_PINS_UNIDIR,
            elliptic_filter_timing(), 5,
            resources=elliptic_resources(5), slot_reserve=3)
        assert result.verify() == []


class TestScheduleFirstFlow:
    def test_elliptic_at_minimum_rate(self):
        result = synthesize_schedule_first(
            elliptic_design(), ELLIPTIC_PINS_UNIDIR,
            elliptic_filter_timing(), 5, pipe_length=24)
        hard = [p for p in result.verify() if "budget" not in p]
        assert hard == []
        assert result.interconnect is not None

    def test_longer_pipe_never_more_constrained(self):
        short = synthesize_schedule_first(
            ar_general_design(), AR_GENERAL_PINS_UNIDIR,
            ar_filter_timing(), 3, pipe_length=7)
        long = synthesize_schedule_first(
            ar_general_design(), AR_GENERAL_PINS_UNIDIR,
            ar_filter_timing(), 3, pipe_length=10)
        assert short.pipe_length <= 7
        assert long.pipe_length <= 10


class TestResultInvariants:
    def test_pins_report_covers_all_partitions(self):
        result = synthesize_connection_first(
            ar_general_design(), AR_GENERAL_PINS_UNIDIR,
            ar_filter_timing(), 4)
        assert sorted(result.pins_used()) == [0, 1, 2, 3]

    def test_stats_present(self):
        result = synthesize_connection_first(
            ar_general_design(), AR_GENERAL_PINS_UNIDIR,
            ar_filter_timing(), 4)
        assert "search_steps" in result.stats
        assert "reassignments" in result.stats


class TestConditionalSharingFlag:
    def design(self):
        from repro.cdfg import CdfgBuilder
        b = CdfgBuilder("cond")
        a = b.io("a", "v.a", source=b.const("src", partition=0),
                 dests=[], source_partition=0, dest_partition=1)
        cond = b.op("cond", "add", 1, inputs=[a])
        for idx, guard in enumerate(({"c": True}, {"c": False})):
            op = b.op(f"br{idx}", "add", 1, inputs=[cond], guard=guard)
            b.io(f"w{idx}", f"v{idx}", source=op, dests=[],
                 source_partition=1, dest_partition=2, guard=guard)
        b.op("join", "add", 2, inputs=["w0", "w1"])
        return b.build()

    def pins(self):
        from repro.partition.model import (ChipSpec, OUTSIDE_WORLD,
                                           Partitioning)
        return Partitioning({OUTSIDE_WORLD: ChipSpec(32),
                             1: ChipSpec(24), 2: ChipSpec(24)})

    def test_flag_shares_branch_transfers(self):
        result = synthesize_connection_first(
            self.design(), self.pins(), ar_filter_timing(), 2,
            conditional_sharing=True)
        assert result.assignment.bus_of["w0"] \
            == result.assignment.bus_of["w1"]
        assert result.verify() == []

    def test_flag_conflicts_with_explicit_groups(self):
        with pytest.raises(ConnectionError_):
            synthesize_connection_first(
                self.design(), self.pins(), ar_filter_timing(), 2,
                conditional_sharing=True,
                share_groups={"w0": "g", "w1": "g"})


class TestSchedulerOption:
    def test_postpone_scheduler_through_flow(self):
        from repro.designs import elliptic_resources
        result = synthesize_connection_first(
            elliptic_design(), ELLIPTIC_PINS_UNIDIR,
            elliptic_filter_timing(), 6,
            resources=elliptic_resources(6), scheduler="postpone")
        assert result.verify() == []

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(SchedulingError):
            synthesize_connection_first(
                ar_general_design(), AR_GENERAL_PINS_UNIDIR,
                ar_filter_timing(), 3, scheduler="magic")
