"""Meta-tests: the static verifier must catch random corruptions.

A verifier that always returns [] would pass every flow test; these
tests mutate valid results in targeted ways and demand complaints.
"""

import pytest

from repro import synthesize_connection_first
from repro.designs import AR_GENERAL_PINS_UNIDIR, ar_general_design
from repro.modules.library import ar_filter_timing


@pytest.fixture()
def result():
    return synthesize_connection_first(
        ar_general_design(), AR_GENERAL_PINS_UNIDIR,
        ar_filter_timing(), 3)


def test_clean_result_verifies(result):
    assert result.verify() == []


def test_precedence_corruption_caught(result):
    # Pull a consumer before its producer.
    graph = result.graph
    schedule = result.schedule
    for edge in graph.edges():
        if edge.is_recursive():
            continue
        src, dst = edge.src, edge.dst
        if schedule.is_scheduled(src) and schedule.is_scheduled(dst) \
                and schedule.step(dst) > schedule.step(src):
            schedule.start_step[dst] = schedule.step(src) - 1 \
                if schedule.step(src) > 0 else 0
            schedule.start_ns[dst] = schedule.start_step[dst] \
                * schedule.timing.clock_period
            break
    problems = result.verify()
    assert problems, "verifier missed a precedence violation"


def test_resource_overload_caught(result):
    # Cram two same-type ops of one chip into one group beyond the
    # unit count by shrinking the resource vector.
    key = next(iter(result.resources))
    result.resources[key] = 0
    assert any("functional units" in p for p in result.verify())


def test_pin_budget_overrun_caught(result):
    tight = result.partitioning.with_pins({1: 8})
    result.partitioning = tight
    assert any("budget" in p for p in result.verify())


def test_bus_conflict_caught(result):
    # Move every transfer onto bus 1 (widening it so capability holds):
    # group collisions are inevitable.
    bus1 = result.interconnect.bus(1)
    for node in result.graph.io_nodes():
        bus1.out_widths[node.source_partition] = max(
            bus1.out_widths.get(node.source_partition, 0),
            node.bit_width)
        bus1.in_widths[node.dest_partition] = max(
            bus1.in_widths.get(node.dest_partition, 0), node.bit_width)
        result.assignment.assign(node.name, 1)
    problems = [p for p in result.verify() if "conflicts" in p]
    assert problems


def test_missing_transfer_caught(result):
    victim = next(iter(result.assignment.bus_of))
    del result.assignment.bus_of[victim]
    assert any("no bus" in p for p in result.verify())


def test_recursive_violation_caught():
    from repro.designs import (ELLIPTIC_PINS_UNIDIR, elliptic_design,
                               elliptic_resources)
    from repro.modules.library import elliptic_filter_timing
    res = synthesize_connection_first(
        elliptic_design(), ELLIPTIC_PINS_UNIDIR,
        elliptic_filter_timing(), 6, resources=elliptic_resources(6))
    # Push the loop producer past its deadline.
    schedule = res.schedule
    schedule.start_step["add26"] = schedule.step("X33") + 4 * 6 + 1
    schedule.start_ns["add26"] = schedule.start_step["add26"] * 1.0
    assert any("max-time" in p for p in res.verify())
