"""Tests for the Chapter 4/6 ILP generators (verification scale)."""

import pytest

from repro.cdfg import Cdfg
from repro.cdfg.graph import make_io_node
from repro.core.connection_ilp import (build_connection_model,
                                       build_subbus_model)
from repro.core.connection_search import ConnectionSearch
from repro.core.interconnect import verify_bus_allocation
from repro.ilp import SolveStatus, solve_ilp
from repro.partition.model import ChipSpec, OUTSIDE_WORLD, Partitioning


def pins(bidirectional=False, **totals):
    chips = {OUTSIDE_WORLD: ChipSpec(totals.pop("world", 64),
                                     bidirectional=bidirectional)}
    for key, total in totals.items():
        chips[int(key[1:])] = ChipSpec(total, bidirectional=bidirectional)
    return Partitioning(chips)


def tiny_graph():
    g = Cdfg()
    g.add_node(make_io_node("w0", "a", 1, 2, bit_width=4))
    g.add_node(make_io_node("w1", "b", 1, 2, bit_width=4))
    g.add_node(make_io_node("w2", "c", 2, 1, bit_width=4))
    return g


class TestChapter4Ilp:
    def test_solves_and_decodes(self):
        g = tiny_graph()
        p = pins(p1=16, p2=16)
        ilp = build_connection_model(g, p, initiation_rate=2,
                                     max_buses=3)
        solution = solve_ilp(ilp.model, node_limit=20_000)
        assert solution.status is SolveStatus.OPTIMAL
        interconnect, assignment = ilp.decode(solution, g)
        assert set(assignment.bus_of) == {"w0", "w1", "w2"}
        for node in g.io_nodes():
            bus = interconnect.bus(assignment.bus_of[node.name])
            assert bus.capable(node)
        assert interconnect.check_budget(p) == []

    def test_infeasible_budget(self):
        g = tiny_graph()
        p = pins(p1=4, p2=4)  # cannot carry both directions
        ilp = build_connection_model(g, p, 1, max_buses=3)
        solution = solve_ilp(ilp.model, node_limit=20_000)
        assert solution.status is SolveStatus.INFEASIBLE

    def test_heuristic_within_budgets_of_ilp(self):
        # The ILP verifies the heuristic (Section 4.1.2's stated role).
        g = tiny_graph()
        p = pins(p1=16, p2=16)
        interconnect, _ = ConnectionSearch(g, p, 2).run()
        assert interconnect.check_budget(p) == []
        ilp = build_connection_model(g, p, 2, max_buses=3)
        assert solve_ilp(ilp.model, node_limit=20_000).feasible

    def test_bidirectional_model(self):
        g = Cdfg()
        g.add_node(make_io_node("fwd", "a", 1, 2, bit_width=4))
        g.add_node(make_io_node("bwd", "b", 2, 1, bit_width=4))
        p = pins(bidirectional=True, p1=4, p2=4)
        ilp = build_connection_model(g, p, 2, max_buses=2)
        solution = solve_ilp(ilp.model, node_limit=20_000)
        assert solution.feasible
        interconnect, assignment = ilp.decode(solution, g)
        # 4 pins per chip: both transfers must share one bidi bus.
        assert assignment.bus_of["fwd"] == assignment.bus_of["bwd"]


class TestChapter6Ilp:
    def test_model_builds_with_expected_scale(self):
        g = Cdfg()
        g.add_node(make_io_node("w0", "a", 1, 2, bit_width=4))
        g.add_node(make_io_node("w1", "b", 1, 2, bit_width=4))
        p = pins(bidirectional=True, p1=8, p2=8)
        ilp = build_subbus_model(g, p, initiation_rate=1, max_buses=1,
                                 n_segments=2)
        n_vars, n_int, n_cons = ilp.model.stats()
        # x and z per (op, bus, group, segment): 2*1*1*2 each.
        assert len(ilp.x) == 4 and len(ilp.z) == 4
        assert n_cons > 10

    def test_sharing_feasible_where_unshared_is_not(self):
        # Two 4-bit values, one 8-bit bus, one cycle: only sub-bus
        # sharing fits both.
        g = Cdfg()
        g.add_node(make_io_node("w0", "a", 1, 2, bit_width=4))
        g.add_node(make_io_node("w1", "b", 1, 2, bit_width=4))
        p = pins(bidirectional=True, p1=8, p2=8)
        ilp = build_subbus_model(g, p, initiation_rate=1, max_buses=1,
                                 n_segments=2)
        solution = solve_ilp(ilp.model, node_limit=60_000)
        assert solution.feasible
        # Both assigned, necessarily to different segments of the one
        # slot: check the x variables directly.
        seg_of = {}
        for (op, h, l, s), var in ilp.x.items():
            if solution.as_int(var):
                seg_of.setdefault(op, []).append(s)
        assert seg_of["w0"] != seg_of["w1"]

    def test_bits_conserved(self):
        g = Cdfg()
        g.add_node(make_io_node("w0", "a", 1, 2, bit_width=6))
        p = pins(bidirectional=True, p1=8, p2=8)
        ilp = build_subbus_model(g, p, 1, max_buses=1, n_segments=2)
        solution = solve_ilp(ilp.model, node_limit=60_000)
        assert solution.feasible
        total_bits = sum(solution.as_int(var)
                         for key, var in ilp.z.items())
        assert total_bits == 6


class TestOptimalityGap:
    """Heuristic pin usage vs the exact pin-minimizing ILP."""

    @pytest.mark.parametrize("seed", range(4))
    def test_heuristic_near_optimal_on_tiny_instances(self, seed):
        import random
        rng = random.Random(seed)
        g = Cdfg()
        n = rng.randrange(2, 4)
        for i in range(n):
            src = rng.choice([1, 2])
            dst = 2 if src == 1 else 1
            g.add_node(make_io_node(f"w{i}", f"v{i}", src, dst,
                                    bit_width=rng.choice([4, 8])))
        p = pins(p1=48, p2=48)
        L = 2
        ilp = build_connection_model(g, p, L, max_buses=n,
                                     objective="pins")
        optimum = solve_ilp(ilp.model, node_limit=40_000)
        if not optimum.feasible:
            return
        interconnect, _ = ConnectionSearch(g, p, L).run()
        heuristic_pins = sum(interconnect.pins_used(i)
                             for i in p.indices())
        # The heuristic may pay for bandwidth, but never more than
        # twice the optimum on these toy instances.
        assert heuristic_pins <= 2 * int(optimum.objective)

    def test_pins_objective_tighter_than_buses(self):
        g = tiny_graph()
        p = pins(p1=24, p2=24)
        by_pins = build_connection_model(g, p, 2, max_buses=3,
                                         objective="pins")
        best = solve_ilp(by_pins.model, node_limit=40_000)
        assert best.feasible
        interconnect, _ = by_pins.decode(best, g)
        assert sum(interconnect.pins_used(i)
                   for i in p.indices()) == int(best.objective)
