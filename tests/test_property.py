"""Property-based tests (hypothesis) on core invariants."""

from fractions import Fraction

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cdfg.analysis import UnitTiming, asap_schedule, topological_order
from repro.designs import random_partitioned_design
from repro.errors import SchedulingError
from repro.graphs.hungarian import hungarian_max_weight
from repro.ilp import DualAllIntegerSolver, Model, lsum, solve_ilp, solve_lp
from repro.ilp.model import SolveStatus
from repro.scheduling.constraints import AllocationWheel
from repro.scheduling.list_scheduler import ListScheduler
from repro.modules.allocation import min_module_counts
from repro.modules.library import (DesignTiming, HardwareModule,
                                   ModuleSet)

settings.register_profile(
    "repro", deadline=None,
    suppress_health_check=[HealthCheck.too_slow])
settings.load_profile("repro")


# ---------------------------------------------------------------------
# LP/ILP: solutions always satisfy the model they came from.
# ---------------------------------------------------------------------
@st.composite
def small_ilp(draw):
    n_vars = draw(st.integers(2, 4))
    n_cons = draw(st.integers(1, 4))
    model = Model()
    xs = [model.add_var(f"x{i}", 0, draw(st.integers(1, 6)))
          for i in range(n_vars)]
    for _ in range(n_cons):
        coeffs = [draw(st.integers(-3, 3)) for _ in xs]
        rhs = draw(st.integers(-5, 12))
        op = draw(st.sampled_from(["<=", ">="]))
        expr = lsum(c * x for c, x in zip(coeffs, xs))
        model.add(expr <= rhs if op == "<=" else expr >= rhs)
    obj = lsum(draw(st.integers(-2, 2)) * x for x in xs)
    if draw(st.booleans()):
        model.maximize(obj)
    else:
        model.minimize(obj)
    return model


@given(small_ilp())
@settings(max_examples=40)
def test_ilp_solutions_satisfy_model(model):
    solution = solve_ilp(model, node_limit=5_000)
    if solution.status is SolveStatus.OPTIMAL:
        assert model.check(solution.values)


@given(small_ilp())
@settings(max_examples=40)
def test_lp_relaxation_bounds_ilp(model):
    lp = solve_lp(model)
    ilp = solve_ilp(model, node_limit=5_000)
    if lp.status is SolveStatus.OPTIMAL and \
            ilp.status is SolveStatus.OPTIMAL:
        if model.sense.value == "max":
            assert lp.objective >= ilp.objective
        else:
            assert lp.objective <= ilp.objective


@st.composite
def packing_instance(draw):
    n_items = draw(st.integers(1, 5))
    n_bins = draw(st.integers(1, 3))
    loads = [draw(st.integers(1, 4)) for _ in range(n_items)]
    caps = [draw(st.integers(0, 8)) for _ in range(n_bins)]
    return loads, caps


@given(packing_instance())
@settings(max_examples=30)
def test_gomory_agrees_with_branch_and_bound(instance):
    loads, caps = instance
    model = Model()
    xs = {}
    for w, load in enumerate(loads):
        for k in range(len(caps)):
            xs[w, k] = model.binary(f"x{w}_{k}")
        model.add(lsum(xs[w, k] for k in range(len(caps))) >= 1)
    for k, cap in enumerate(caps):
        model.add(lsum(loads[w] * xs[w, k]
                       for w in range(len(loads))) <= cap)
    model.minimize(0)
    gomory = DualAllIntegerSolver(model).check_feasible()
    bnb = solve_ilp(model, node_limit=20_000).feasible
    assert gomory == bnb


# ---------------------------------------------------------------------
# Hungarian: never worse than any single-edge matching.
# ---------------------------------------------------------------------
@given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 3),
                          st.integers(0, 9)),
                min_size=1, max_size=10))
@settings(max_examples=40)
def test_hungarian_at_least_best_edge(edges):
    lefts = sorted({f"l{u}" for u, _v, _w in edges})
    rights = sorted({f"r{v}" for _u, v, _w in edges})
    weights = {}
    for u, v, w in edges:
        key = (f"l{u}", f"r{v}")
        weights[key] = max(weights.get(key, 0), w)

    def weight(a, b):
        w = weights.get((a, b))
        return None if w is None else Fraction(w)

    matching = hungarian_max_weight(lefts, rights, weight)
    total = sum(weights[(a, b)] for a, b in matching.items())
    assert total >= max(w for _u, _v, w in edges) - 0  # best single edge
    # Matching must be injective and use only real edges.
    assert len(set(matching.values())) == len(matching)
    assert all((a, b) in weights for a, b in matching.items())


# ---------------------------------------------------------------------
# Allocation wheel: capacity is consistent with actual packing.
# ---------------------------------------------------------------------
@given(st.integers(2, 10), st.integers(1, 4),
       st.lists(st.integers(0, 9), max_size=4))
@settings(max_examples=50)
def test_wheel_capacity_honest(length, cycles, starts):
    if cycles > length:
        return
    wheel = AllocationWheel(length)
    placed = 0
    for start in starts:
        if wheel.fits(start % length, cycles):
            wheel.occupy(start % length, cycles)
            placed += 1
    capacity = wheel.capacity(cycles)
    # The capacity must be *achievable*: a greedy pass that starts at
    # the beginning of each free run packs optimally within runs, so
    # try every rotation and take the best.
    import copy
    best = 0
    for rotation in range(length):
        trial = copy.deepcopy(wheel)
        extra = 0
        for offset in range(length):
            start = (rotation + offset) % length
            if trial.fits(start, cycles):
                trial.occupy(start, cycles)
                extra += 1
        best = max(best, extra)
    assert best >= capacity  # capacity never over-promises


# ---------------------------------------------------------------------
# Scheduling random designs: verify() must hold whenever run() returns.
# ---------------------------------------------------------------------
@given(st.integers(0, 40), st.integers(2, 4), st.integers(1, 3))
@settings(max_examples=25)
def test_random_designs_schedule_validly(seed, initiation_rate, n_chips):
    graph, _p = random_partitioned_design(seed, n_chips=n_chips)
    default = ModuleSet.of(
        HardwareModule("adder", "add", 30.0),
        HardwareModule("multiplier", "mul", 210.0),
    )
    timing = DesignTiming(250.0, default=default, io_delay_ns=10.0)
    resources = min_module_counts(graph, timing, initiation_rate)
    try:
        schedule = ListScheduler(graph, timing, initiation_rate,
                                 resources).run()
    except SchedulingError:
        return  # minimal resources can be too greedy-tight; that's ok
    assert schedule.verify(resources) == []


@given(st.integers(0, 40))
@settings(max_examples=25)
def test_asap_respects_precedence(seed):
    graph, _p = random_partitioned_design(seed)
    asap = asap_schedule(graph, UnitTiming())
    for edge in graph.edges():
        if edge.is_recursive():
            continue
        src = graph.node(edge.src)
        if src.is_free():
            continue
        assert asap[edge.dst] >= asap[edge.src]


@given(st.integers(0, 40))
@settings(max_examples=25)
def test_topological_order_sound(seed):
    graph, _p = random_partitioned_design(seed)
    order = topological_order(graph)
    position = {name: i for i, name in enumerate(order)}
    for edge in graph.edges():
        if not edge.is_recursive():
            assert position[edge.src] < position[edge.dst]
