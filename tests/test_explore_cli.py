"""The ``repro explore`` subcommand, end to end and in-process."""

import importlib.util
import json
import os

import pytest

from repro.cli import EXIT_DEGRADED, main

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SCHEMA = os.path.join(REPO, "docs", "schema",
                      "explore_report.schema.json")

FAST = ["explore", "ar-simple", "--rates", "2",
        "--flows", "simple,schedule-first", "--workers", "1"]


def _validate(report):
    spec = importlib.util.spec_from_file_location(
        "validate_synth_json",
        os.path.join(REPO, "tools", "validate_synth_json.py"))
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    with open(SCHEMA) as handle:
        schema = json.load(handle)
    return module.validate(report, schema)


class TestExploreCommand:
    def test_clean_sweep_exits_zero(self, capsys):
        assert main(FAST) == 0
        out = capsys.readouterr().out
        assert "pareto" in out.lower()

    def test_json_output_is_the_report(self, capsys):
        assert main(FAST + ["--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["schema"] == "repro-explore-report/1"
        assert report["design"] == "ar-simple"
        assert len(report["points"]) == 2
        assert _validate(report) == []

    def test_report_file_validates(self, tmp_path, capsys):
        out = str(tmp_path / "report.json")
        assert main(FAST + ["--out", out]) == 0
        capsys.readouterr()
        with open(out) as handle:
            assert _validate(json.load(handle)) == []

    def test_degraded_sweep_exits_two(self, capsys):
        # rate=1 is infeasible for the simple AR design.
        code = main(["explore", "ar-simple", "--rates", "1,2",
                     "--flows", "simple", "--workers", "1", "--json"])
        assert code == EXIT_DEGRADED
        report = json.loads(capsys.readouterr().out)
        statuses = {p["status"] for p in report["points"]}
        assert "error" in statuses
        assert _validate(report) == []

    def test_second_run_serves_from_cache(self, tmp_path, capsys):
        cache = str(tmp_path / "cache.jsonl")
        assert main(FAST + ["--cache", cache, "--json"]) == 0
        cold = json.loads(capsys.readouterr().out)
        assert cold["cache"]["hits"] == 0
        assert main(FAST + ["--cache", cache, "--json"]) == 0
        warm = json.loads(capsys.readouterr().out)
        assert warm["cache"]["hits"] == len(warm["points"])
        assert warm["cache"]["hit_rate"] == 1.0
        assert all(p["cached"] for p in warm["points"])

    def test_compact_cache_flag_drops_dead_lines(self, tmp_path,
                                                 capsys):
        cache = str(tmp_path / "cache.jsonl")
        assert main(FAST + ["--cache", cache]) == 0
        capsys.readouterr()
        with open(cache) as handle:
            live = handle.readlines()
        # Simulate another writer's stale duplicate plus a torn write.
        with open(cache, "a") as handle:
            handle.write(live[0])
            handle.write("{torn line\n")
        assert main(FAST + ["--cache", cache,
                            "--compact-cache"]) == 0
        out = capsys.readouterr().out
        assert "cache compacted" in out
        assert "2 dead lines removed" in out
        with open(cache) as handle:
            assert len(handle.readlines()) == len(live)

    def test_bad_flow_axis_exits_one(self, capsys):
        code = main(["explore", "ar-simple", "--rates", "2",
                     "--flows", "imaginary-flow", "--workers", "1"])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_empty_rates_exits_one(self, capsys):
        code = main(["explore", "ar-simple", "--rates", ""])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_elliptic_rate_axis_uses_per_rate_resources(self, capsys):
        # The elliptic design's module allocation depends on the rate;
        # the sweep must carry resources per point rather than
        # whatever rates[0] loaded.
        code = main(["explore", "elliptic", "--rates", "17,19",
                     "--flows", "schedule-first", "--workers", "1",
                     "--json"])
        assert code in (0, EXIT_DEGRADED)
        report = json.loads(capsys.readouterr().out)
        assert len(report["points"]) == 2
        assert _validate(report) == []
