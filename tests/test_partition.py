"""Tests for the partitioning model and simple-partitioning checks."""

import pytest

from repro.cdfg import Cdfg, CdfgBuilder
from repro.cdfg.graph import make_io_node
from repro.errors import PartitionError
from repro.partition import (ChipSpec, OUTSIDE_WORLD, Partitioning,
                             driver_graph, externalize_world_io,
                             insert_io_nodes, is_simple_partitioning,
                             simple_partitioning_violations)
from repro.cdfg.ops import OpKind


class TestChipSpec:
    def test_split_must_sum(self):
        with pytest.raises(PartitionError):
            ChipSpec(48, input_pins=30, output_pins=20)
        spec = ChipSpec(48, input_pins=40, output_pins=8)
        assert spec.split_fixed

    def test_partial_split_rejected(self):
        with pytest.raises(PartitionError):
            ChipSpec(48, input_pins=40)

    def test_bidirectional_excludes_split(self):
        with pytest.raises(PartitionError):
            ChipSpec(48, input_pins=40, output_pins=8, bidirectional=True)

    def test_negative_pins_rejected(self):
        with pytest.raises(PartitionError):
            ChipSpec(-1)


class TestPartitioning:
    def test_requires_world(self):
        with pytest.raises(PartitionError):
            Partitioning({1: ChipSpec(48)})

    def test_queries(self):
        p = Partitioning({OUTSIDE_WORLD: ChipSpec(100), 1: ChipSpec(48)})
        assert p.total_pins(1) == 48
        assert p.real_chips() == [1]
        assert 1 in p and 7 not in p
        with pytest.raises(PartitionError):
            p.chip(7)

    def test_with_pins_copies(self):
        p = Partitioning({OUTSIDE_WORLD: ChipSpec(100), 1: ChipSpec(48)})
        q = p.with_pins({1: 64})
        assert q.total_pins(1) == 64
        assert p.total_pins(1) == 48


def star(edges):
    """Graph with one IO node per (src, dst) chip pair."""
    g = Cdfg()
    for i, (src, dst) in enumerate(edges):
        g.add_node(make_io_node(f"w{i}", f"v{i}", src, dst))
    return g


class TestSimplePartitioning:
    def test_chain_is_simple(self):
        assert is_simple_partitioning(star([(1, 2), (2, 3), (3, 4)]))

    def test_fanout_star_is_simple(self):
        assert is_simple_partitioning(star([(4, 1), (4, 2)]))

    def test_fanin_star_is_simple(self):
        assert is_simple_partitioning(star([(1, 3), (2, 3)]))

    def test_three_way_fanout_violates(self):
        problems = simple_partitioning_violations(
            star([(1, 2), (1, 3), (1, 4)]))
        assert any("drives 3" in p for p in problems)

    def test_three_drivers_violate(self):
        problems = simple_partitioning_violations(
            star([(1, 4), (2, 4), (3, 4)]))
        assert any("driven by 3" in p for p in problems)

    def test_condition3_driver_exclusivity(self):
        # P3 driven by {P1, P2}, but P1 also drives P4.
        problems = simple_partitioning_violations(
            star([(1, 3), (2, 3), (1, 4)]))
        assert problems

    def test_condition4_sole_driver(self):
        # P1 drives {P2, P3}, but P3 also driven by P4.
        problems = simple_partitioning_violations(
            star([(1, 2), (1, 3), (4, 3)]))
        assert problems

    def test_world_edges_ignored(self):
        g = star([(OUTSIDE_WORLD, 1), (OUTSIDE_WORLD, 2),
                  (OUTSIDE_WORLD, 3), (1, 2)])
        assert is_simple_partitioning(g)
        drives = driver_graph(g, include_world=True)
        assert len(drives[OUTSIDE_WORLD]) == 3

    def test_benchmark_classification(self):
        from repro.designs import ar_general_design, ar_simple_design
        assert is_simple_partitioning(ar_simple_design())
        assert not is_simple_partitioning(ar_general_design())


class TestIoInsertion:
    def test_cross_partition_edge_spliced(self):
        b = CdfgBuilder()
        x = b.op("x", "add", 1, bit_width=16)
        y = b.op("y", "add", 2)
        z = b.op("z", "add", 2)
        b.edge(x, y)
        b.edge(x, z)
        g = b.build()
        created = insert_io_nodes(g)
        assert len(created) == 1  # one io per (value, dest chip)
        io = g.node(created[0])
        assert io.source_partition == 1 and io.dest_partition == 2
        assert io.bit_width == 16
        assert set(g.successors(created[0])) == {"y", "z"}

    def test_two_dest_chips_two_ios(self):
        b = CdfgBuilder()
        x = b.op("x", "add", 1)
        y = b.op("y", "add", 2)
        z = b.op("z", "add", 3)
        b.edge(x, y)
        b.edge(x, z)
        g = b.build()
        created = insert_io_nodes(g)
        assert len(created) == 2
        values = {g.node(c).value for c in created}
        assert values == {"x"}  # same value, two transfers

    def test_same_partition_edge_untouched(self):
        b = CdfgBuilder()
        x = b.op("x", "add", 1)
        y = b.op("y", "add", 1, inputs=[x])
        g = b.build()
        assert insert_io_nodes(g) == []

    def test_externalize_world_io(self):
        b = CdfgBuilder()
        i = b.inp("i", partition=1, bit_width=16)
        x = b.op("x", "add", 1, inputs=[i])
        b.out("o", x, partition=1)
        g = b.build()
        converted = externalize_world_io(g)
        assert sorted(converted) == ["i", "o"]
        assert g.node("i").kind is OpKind.IO
        assert g.node("i").source_partition == OUTSIDE_WORLD
        assert g.node("o").dest_partition == OUTSIDE_WORLD
        assert g.node("i").bit_width == 16


class TestHelpers:
    def test_fanout_fanin_shape(self):
        from repro.partition.simple import fanout_fanin_shape
        g = star([(1, 2), (1, 3), (4, 3)])
        shape = fanout_fanin_shape(g)
        assert shape[1] == (2, 0)   # drives two, driven by none
        assert shape[3] == (0, 2)   # drives none, driven by two

    def test_uniform_partitioning(self):
        from repro.partition.model import uniform_partitioning
        p = uniform_partitioning(3, pins=64, world_pins=128)
        assert p.real_chips() == [1, 2, 3]
        assert p.total_pins(2) == 64
        assert p.total_pins(OUTSIDE_WORLD) == 128
        bi = uniform_partitioning(2, 32, 32, bidirectional=True)
        assert bi.chip(1).bidirectional
