"""Tests for the behavioral and cycle-accurate simulators."""

import pytest

from repro import synthesize_connection_first, synthesize_schedule_first
from repro.cdfg import CdfgBuilder
from repro.designs import (AR_GENERAL_PINS_UNIDIR, ELLIPTIC_PINS_UNIDIR,
                           ar_general_design, elliptic_design)
from repro.modules.library import ar_filter_timing, elliptic_filter_timing
from repro.sim import PipelineSimulator, evaluate_behavior, simulate_result
from repro.sim.behavioral import external_input_names
from repro.sim.pipeline import SimulationError


class TestBehavioral:
    def graph(self):
        b = CdfgBuilder("beh")
        a = b.io("a", "v.a", source=b.const("s", partition=0, bit_width=8),
                 dests=[], source_partition=0, dest_partition=1,
                 bit_width=8)
        m = b.op("m", "mul", 1, inputs=[a, a], bit_width=8)
        s = b.op("s1", "add", 1, inputs=[m, a], bit_width=8)
        b.io("o", "v.o", source=s, dests=[], source_partition=1,
             dest_partition=0, bit_width=8)
        return b.build()

    def test_arithmetic(self):
        g = self.graph()
        trace = evaluate_behavior(g, {"a": [3, 5]}, 2)
        assert trace[0]["m"] == 9 and trace[0]["s1"] == 12
        assert trace[1]["m"] == 25 and trace[1]["s1"] == 30
        assert trace[0]["o"] == 12

    def test_masking_to_bit_width(self):
        g = self.graph()
        trace = evaluate_behavior(g, {"a": [200]}, 1)
        assert trace[0]["m"] == (200 * 200) % 256

    def test_recursive_edge_reads_past_instance(self):
        b = CdfgBuilder("rec")
        x = b.op("x", "add", 1, bit_width=8)
        y = b.op("y", "add", 1, inputs=[x], bit_width=8)
        b.recursive(y, x, degree=1)  # x also consumes y from n-1
        g = b.build()
        trace = evaluate_behavior(g, {}, 3)
        # instance 0: x = 0 (no past y); y = x.
        assert trace[0]["x"] == 0
        # instance 1: x = y[0]; y = x + ...
        assert trace[1]["x"] == trace[0]["y"]
        assert trace[2]["x"] == trace[1]["y"]

    def test_missing_input_raises(self):
        g = self.graph()
        with pytest.raises(Exception):
            evaluate_behavior(g, {"a": [1]}, 2)

    def test_external_input_names(self):
        g = self.graph()
        assert external_input_names(g) == ["a"]


class TestPipelineSimulation:
    def test_ar_general_full_check(self):
        result = synthesize_connection_first(
            ar_general_design(), AR_GENERAL_PINS_UNIDIR,
            ar_filter_timing(), 3)
        report = simulate_result(result, n_instances=5, seed=1)
        assert report.transfers_checked > 0
        assert report.bus_drives > 0

    def test_elliptic_with_recursion(self):
        result = synthesize_schedule_first(
            elliptic_design(), ELLIPTIC_PINS_UNIDIR,
            elliptic_filter_timing(), 6, pipe_length=24)
        report = simulate_result(result, n_instances=6, seed=2)
        # 18 transfers per instance.
        assert report.transfers_checked == 18 * 6

    def test_subbus_design_simulates(self):
        from repro.designs import AR_GENERAL_PINS_BIDIR
        result = synthesize_connection_first(
            ar_general_design(), AR_GENERAL_PINS_BIDIR,
            ar_filter_timing(), 5, subbus_sharing=True)
        report = simulate_result(result, n_instances=4, seed=3)
        assert report.bus_drives > 0

    def test_corrupted_assignment_detected(self):
        # Force two different values onto one bus slot: the simulator
        # must catch the conflict that verify_bus_allocation would.
        result = synthesize_connection_first(
            ar_general_design(), AR_GENERAL_PINS_UNIDIR,
            ar_filter_timing(), 3)
        # Find two transfers of different values in the same group on
        # different buses and force them onto one bus.
        schedule = result.schedule
        by_group = {}
        for node in result.graph.io_nodes():
            by_group.setdefault(schedule.group(node.name), []).append(
                node)
        victim = None
        for group, nodes in by_group.items():
            wide_enough = [n for n in nodes
                           if n.bit_width <= 8 and len(nodes) > 1]
            if len(wide_enough) >= 2:
                a, b = wide_enough[:2]
                if (a.value != b.value and result.assignment.bus_of[
                        a.name] != result.assignment.bus_of[b.name]):
                    victim = (a, b)
                    break
        if victim is None:
            pytest.skip("no overlapping pair found in this schedule")
        a, b = victim
        bus_a = result.interconnect.bus(result.assignment.bus_of[a.name])
        # Widen the bus so capability holds, then alias b onto it.
        bus_a.out_widths[b.source_partition] = max(
            bus_a.out_widths.get(b.source_partition, 0), b.bit_width)
        bus_a.in_widths[b.dest_partition] = max(
            bus_a.in_widths.get(b.dest_partition, 0), b.bit_width)
        result.assignment.assign(b.name, bus_a.index)
        if schedule.step(a.name) % 3 != schedule.step(b.name) % 3:
            pytest.skip("pair no longer aligned")
        with pytest.raises(SimulationError, match="simultaneously"):
            simulate_result(result, n_instances=4)

    def test_interconnect_and_assignment_must_pair(self):
        result = synthesize_connection_first(
            ar_general_design(), AR_GENERAL_PINS_UNIDIR,
            ar_filter_timing(), 4)
        with pytest.raises(SimulationError):
            PipelineSimulator(result.graph, result.schedule,
                              result.interconnect, None)


class TestSimpleBundleSimulation:
    def test_ch3_flow_simulates(self):
        from repro import synthesize_simple
        from repro.designs import AR_SIMPLE_PINS, ar_simple_design
        result = synthesize_simple(ar_simple_design(), AR_SIMPLE_PINS,
                                   ar_filter_timing(), 2)
        report = simulate_result(result, n_instances=5, seed=4)
        assert report.transfers_checked == 34 * 5
        assert report.bus_drives > 0

    def test_bundle_overflow_detected(self):
        from repro import synthesize_simple
        from repro.designs import AR_SIMPLE_PINS, ar_simple_design
        result = synthesize_simple(ar_simple_design(), AR_SIMPLE_PINS,
                                   ar_filter_timing(), 2)
        # Corrupt the allocation: pile a transfer onto an unrelated,
        # already-busy bundle.
        alloc = result.simple_allocation.allocation
        donors = sorted(alloc)
        victim = donors[0]
        other = next(n for n in donors
                     if alloc[n] and alloc[n][0][0] != alloc[victim][0][0]
                     and result.schedule.group(n)
                     == result.schedule.group(victim))
        bus_index = alloc[other][0][0]
        width = result.simple_allocation.interconnect.bus(bus_index).width
        alloc[victim] = [(bus_index, width)]  # guaranteed overflow
        with pytest.raises(SimulationError):
            simulate_result(result, n_instances=3)

    def test_cannot_mix_modes(self):
        from repro import synthesize_simple, synthesize_connection_first
        from repro.designs import (AR_GENERAL_PINS_UNIDIR,
                                   AR_SIMPLE_PINS, ar_general_design,
                                   ar_simple_design)
        ch3 = synthesize_simple(ar_simple_design(), AR_SIMPLE_PINS,
                                ar_filter_timing(), 2)
        ch4 = synthesize_connection_first(
            ar_general_design(), AR_GENERAL_PINS_UNIDIR,
            ar_filter_timing(), 3)
        with pytest.raises(SimulationError):
            PipelineSimulator(ch4.graph, ch4.schedule,
                              ch4.interconnect, ch4.assignment,
                              simple_allocation=ch3.simple_allocation)


class TestRegisterLevelSimulation:
    def test_ar_design_register_reads_verified(self):
        from repro.sim import simulate_result_registers
        result = synthesize_connection_first(
            ar_general_design(), AR_GENERAL_PINS_UNIDIR,
            ar_filter_timing(), 3)
        report = simulate_result_registers(result, n_instances=6)
        assert report.register_reads > 0
        assert report.register_writes > 0

    def test_deep_pipeline_needs_register_copies(self):
        # Elliptic at its minimum rate: lifetimes exceed L, so some
        # values carry several register copies — and they must all be
        # exercised cleanly.
        from repro.rtl import allocate_registers
        from repro.sim import simulate_result_registers
        result = synthesize_schedule_first(
            elliptic_design(), ELLIPTIC_PINS_UNIDIR,
            elliptic_filter_timing(), 5, pipe_length=24)
        regs = allocate_registers(result.graph, result.schedule)
        assert any(len(r) > 1 for r in regs.regs_of.values())
        report = simulate_result_registers(result, n_instances=8)
        assert report.register_reads > 0

    def test_underallocation_detected(self):
        # Strip a long-lived value down to one register copy: the
        # pipeline must trip an overwrite hazard.
        from repro.rtl import allocate_registers
        from repro.sim.rtl_sim import (RegisterHazard,
                                       simulate_registers)
        result = synthesize_schedule_first(
            elliptic_design(), ELLIPTIC_PINS_UNIDIR,
            elliptic_filter_timing(), 5, pipe_length=24)
        regs = allocate_registers(result.graph, result.schedule)
        victim = next(name for name, r in regs.regs_of.items()
                      if len(r) > 1)
        regs.regs_of[victim] = regs.regs_of[victim][:1]
        inputs = {n.name: [1] * 8 for n in result.graph.io_nodes()
                  if n.source_partition == 0}
        with pytest.raises(RegisterHazard):
            simulate_registers(result.graph, result.schedule, inputs,
                               8, registers=regs)


class TestConditionalSimulation:
    def cond_design(self):
        b = CdfgBuilder("cond")
        a = b.io("a", "v.a", source=b.const("src", partition=0),
                 dests=[], source_partition=0, dest_partition=1)
        cond = b.op("cond", "add", 1, inputs=[a])
        for idx, guard in enumerate(({"c": True}, {"c": False})):
            op = b.op(f"br{idx}", "add", 1, inputs=[cond], guard=guard)
            b.io(f"w{idx}", f"v{idx}", source=op, dests=[],
                 source_partition=1, dest_partition=2, guard=guard)
        b.op("join", "add", 2, inputs=["w0", "w1"])
        return b.build()

    def test_behavioral_skips_untaken_branch(self):
        g = self.cond_design()
        trace = evaluate_behavior(
            g, {"a": [5, 5]}, 2,
            branch_outcome=lambda i, var: i == 0)
        assert "br0" in trace[0] and "br1" not in trace[0]
        assert "br1" in trace[1] and "br0" not in trace[1]
        # The join consumes whichever branch executed.
        assert trace[0]["join"] == trace[0]["w0"]
        assert trace[1]["join"] == trace[1]["w1"]

    def test_shared_slot_design_simulates(self):
        # Conditionally shared transfers on one bus, same step: the
        # exclusivity guarantees at most one drive per instance.
        from repro.partition.model import (ChipSpec, OUTSIDE_WORLD,
                                           Partitioning)
        g = self.cond_design()
        pins = Partitioning({OUTSIDE_WORLD: ChipSpec(32),
                             1: ChipSpec(24), 2: ChipSpec(24)})
        result = synthesize_connection_first(
            g, pins, ar_filter_timing(), 2, conditional_sharing=True)
        assert result.assignment.bus_of["w0"] \
            == result.assignment.bus_of["w1"]
        report = simulate_result(result, n_instances=8, seed=11)
        assert report.values_checked > 0
