"""Warm-start tier: basis reuse, the shared pin-oracle store, and the
monotonicity/witness shortcuts (DESIGN.md §12).

The soundness contract under test: every warm-started or
store-answered solve must be *bit-identical* to a cold solve — the
warm tier may only skip work, never change answers.
"""

import json

import pytest

from repro.core.flow import synthesize
from repro.core.oracle_store import (INIT_GROUP, INIT_NODE, OracleStore,
                                     activate, budget_vector)
from repro.core.pin_allocation import (PinAllocationProblem,
                                       assignment_usage,
                                       design_signature)
from repro.designs import (AR_SIMPLE_PINS, ar_simple_design,
                           ar_stacked_design, ar_stacked_pins)
from repro.explore import DesignSpace, Executor, ResultCache, SweepSpec
from repro.ilp import DualAllIntegerSolver, Model, lsum
from repro.modules.library import ar_filter_timing
from repro.perf import PERF
from repro.service.catalog import design_space


def _packing_model(n_items, caps):
    """Assign each item to one bin under capacity; minimize 0."""
    m = Model()
    xs = {}
    for w in range(n_items):
        for k in range(len(caps)):
            xs[w, k] = m.binary(f"x{w}_{k}")
        m.add(lsum(xs[w, k] for k in range(len(caps))) >= 1)
    for k, cap in enumerate(caps):
        m.add(lsum(xs[w, k] for w in range(n_items)) <= cap)
    m.minimize(0)
    return m, xs


KEY = ("a" * 32, (("op1", 0),), "op2", 1)


# ---------------------------------------------------------------------
class TestOracleStore:
    def test_exact_hit(self):
        store = OracleStore()
        store.record(KEY, (10, -1, -1), True)
        assert store.lookup(KEY, (10, -1, -1)) == (True, "exact")
        assert store.exact_hits == 1

    def test_miss_on_unknown_key_and_budgets(self):
        store = OracleStore()
        store.record(KEY, (10, -1, -1), True)
        other = (KEY[0], KEY[1], "op3", 1)
        assert store.lookup(other, (10, -1, -1)) is None
        assert store.lookup(KEY, (9, -1, -1)) is None
        assert store.misses == 2

    def test_feasible_transfers_to_larger_budgets(self):
        store = OracleStore()
        store.record(KEY, (10, 4, 4), True)
        assert store.lookup(KEY, (12, 4, 5)) == (True, "dominance")
        assert store.dominance_hits == 1

    def test_infeasible_transfers_to_smaller_budgets(self):
        store = OracleStore()
        store.record(KEY, (10, 4, 4), False)
        assert store.lookup(KEY, (9, 4, 3)) == (False, "dominance")

    def test_no_unsound_transfer(self):
        store = OracleStore()
        store.record(KEY, (10, 4, 4), True)
        store.record(KEY, (4, 2, 2), False)
        # Feasible does not transfer down, infeasible not up; (6, 3, 3)
        # sits strictly between the two recorded vectors.
        assert store.lookup(KEY, (6, 3, 3)) is None
        # Incomparable vectors transfer nothing either.
        assert store.lookup(KEY, (20, 1, 20)) is None

    def test_witness_transfers_beyond_budget_dominance(self):
        store = OracleStore()
        # Proved feasible at a big budget, but the feasible point only
        # used (3, 1, 2): the verdict travels to every budget vector
        # the *usage* fits, far below the proving budget.
        store.record(KEY, (100, 50, 50), True, witness=(3, 1, 2))
        assert store.lookup(KEY, (4, 1, 2)) == (True, "dominance")
        assert store.lookup(KEY, (2, 1, 2)) is None  # usage too big

    def test_witness_skips_unconstrained_slots(self):
        store = OracleStore()
        store.record(KEY, (100, -1, -1), True, witness=(3, -1, -1))
        # -1 on either side means "unconstrained": only the total-pin
        # slot participates in the fit.
        assert store.lookup(KEY, (5, 2, 2)) == (True, "dominance")

    def test_persistence_roundtrip(self, tmp_path):
        path = str(tmp_path / "oracle.jsonl")
        store = OracleStore(path)
        store.record(KEY, (10, -1, -1), True, witness=(3, -1, -1))
        store.record(KEY, (2, -1, -1), False)
        reloaded = OracleStore(path)
        assert len(reloaded) == 2
        assert reloaded.lookup(KEY, (10, -1, -1)) == (True, "exact")
        assert reloaded.lookup(KEY, (1, -1, -1)) == (False, "dominance")
        # The witness survived the roundtrip.
        assert reloaded.lookup(KEY, (4, -1, -1)) == (True, "dominance")

    def test_corrupt_lines_tolerated(self, tmp_path):
        path = str(tmp_path / "oracle.jsonl")
        store = OracleStore(path)
        store.record(KEY, (10, -1, -1), True)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("not json at all\n")
            handle.write(json.dumps({"v": 999, "sig": "x"}) + "\n")
            handle.write(json.dumps({"v": 1, "sig": "x"}) + "\n")
        reloaded = OracleStore(path)
        assert len(reloaded) == 1
        assert reloaded.corrupt_lines == 3
        assert reloaded.lookup(KEY, (10, -1, -1)) == (True, "exact")

    def test_duplicate_records_collapse(self):
        store = OracleStore()
        store.record(KEY, (10, -1, -1), True)
        store.record(KEY, (10, -1, -1), True)
        assert len(store) == 1

    def test_delta_and_merge(self):
        worker = OracleStore()
        worker.record(KEY, (10, -1, -1), True)
        mark = worker.mark()
        worker.record(KEY, (2, -1, -1), False)
        delta = worker.delta_since(mark)
        assert len(delta) == 1

        parent = OracleStore()
        assert parent.merge(delta) == 1
        assert parent.merge(delta) == 0  # idempotent
        assert parent.lookup(KEY, (2, -1, -1)) == (False, "exact")
        # Merged entries are re-logged, so deltas propagate one more
        # level up (worker -> sweep store -> service store).
        grandparent = OracleStore()
        assert grandparent.merge(parent.delta_since(0)) == 1

    def test_merge_tolerates_garbage_entries(self):
        parent = OracleStore()
        assert parent.merge([{"nonsense": 1}]) == 0
        assert parent.corrupt_lines == 1

    def test_stats_shape(self):
        store = OracleStore()
        store.record(KEY, (10, -1, -1), True)
        store.lookup(KEY, (10, -1, -1))
        store.lookup(KEY, (99, 99, 99))
        stats = store.stats()
        assert stats["entries"] == 1
        assert stats["exact_hits"] == 1
        assert stats["dominance_hits"] == 1  # witnessless dominance
        assert 0.0 <= stats["hit_rate"] <= 1.0


# ---------------------------------------------------------------------
class TestWarmBasis:
    def test_roundtrip_and_refusal_after_commit(self):
        m, xs = _packing_model(3, [2, 2])
        solver = DualAllIntegerSolver(m)
        assert solver.reoptimize()
        warm = solver.export_warm_basis()
        assert warm is not None
        clone = type(warm).from_dict(
            json.loads(json.dumps(warm.to_dict())))
        assert clone == warm
        # After a committed bound the tableau is parent-specific and
        # the export must refuse.
        solver.commit_lower_bound(xs[0, 0])
        assert solver.export_warm_basis() is None

    def test_tightening_is_sound_relaxation_is_suspect(self):
        m, _ = _packing_model(3, [2, 2])
        parent = DualAllIntegerSolver(m)
        assert parent.reoptimize()
        warm = parent.export_warm_basis()

        tighter, _ = _packing_model(3, [2, 1])
        ws = DualAllIntegerSolver.warm_start(tighter, warm)
        assert ws is not None and ws.warm_sound

        looser, _ = _packing_model(3, [2, 3])
        ws = DualAllIntegerSolver.warm_start(looser, warm)
        assert ws is not None and not ws.warm_sound

    def test_structure_mismatch_rejected(self):
        m, _ = _packing_model(3, [2, 2])
        parent = DualAllIntegerSolver(m)
        assert parent.reoptimize()
        warm = parent.export_warm_basis()
        other, _ = _packing_model(4, [2, 2])
        before = PERF.snapshot()
        assert DualAllIntegerSolver.warm_start(other, warm) is None
        counters = PERF.delta_since(before)["counters"]
        assert counters.get("gomory.warm_rejected", 0) == 1

    def test_warm_feasibility_matches_cold(self):
        m, _ = _packing_model(4, [3, 2])
        parent = DualAllIntegerSolver(m)
        assert parent.reoptimize()
        warm = parent.export_warm_basis()
        for caps in ([3, 2], [3, 1], [2, 2], [4, 3], [1, 1]):
            sibling, _ = _packing_model(4, caps)
            cold = DualAllIntegerSolver(sibling).check_feasible()
            ws = DualAllIntegerSolver.warm_start(sibling, warm)
            if ws is None:
                # Rejection is only allowed when the model really is
                # infeasible (inherited cuts cannot prove it).
                assert not cold, caps
            else:
                assert cold, caps


# ---------------------------------------------------------------------
def _solve_simple(store):
    previous = activate(store)
    try:
        return synthesize(ar_simple_design(), AR_SIMPLE_PINS,
                          ar_filter_timing(), 2, flow="simple")
    finally:
        activate(previous)


class TestCheckerStoreIntegration:
    def test_second_solve_replays_from_store(self):
        store = OracleStore()
        first = _solve_simple(store)
        before = PERF.snapshot()
        second = _solve_simple(store)
        counters = PERF.delta_since(before)["counters"]
        # Same budgets, hot store: every probe is answered from the
        # store and no tableau is ever materialized.
        assert counters.get("tableau.pivots", 0) == 0
        assert counters.get("pin.store_hits", 0) > 0
        assert second.stats["pin_store_hits"] > 0
        assert second.pipe_length == first.pipe_length
        assert second.pins_used() == first.pins_used()

    def test_flow_stats_surface_cache_misses(self):
        result = _solve_simple(OracleStore())
        assert result.stats["pin_cache_misses"] > 0
        assert result.stats["pin_checks"] >= (
            result.stats["pin_cache_hits"]
            + result.stats["pin_cache_misses"])

    def test_finalize_records_full_trajectory(self):
        graph = ar_simple_design()
        store = OracleStore()
        result = _solve_simple(store)
        sig = design_signature(graph, AR_SIMPLE_PINS, 2)
        budgets = budget_vector(AR_SIMPLE_PINS)
        io_names = {n.name for n in graph.io_nodes()}

        entries = dict(store.items())
        init_key = (sig, (), INIT_NODE, INIT_GROUP)
        assert init_key in entries
        # The finalize pass re-records the init verdict with the
        # finished schedule's usage as witness.
        witnessed = [w for vec, v, w in entries[init_key]
                     if v and w is not None]
        assert witnessed
        for witness in witnessed:
            assert all(w <= b for w, b in zip(witness, budgets)
                       if w >= 0 and b >= 0)
        # Every io op appears as a commit step of the trajectory.
        committed = {key[2] for key in entries
                     if key[0] == sig and key[2] != INIT_NODE}
        assert io_names <= committed
        assert result.schedule is not None

    def test_store_verdicts_match_direct_solves(self):
        graph = ar_simple_design()
        store = OracleStore()
        _solve_simple(store)
        problem = PinAllocationProblem(graph, AR_SIMPLE_PINS, 2)
        checked = 0
        for key, bucket in store.items():
            _sig, fingerprint, node, group = key
            if node == INIT_NODE or checked >= 8:
                continue
            fixed = dict(fingerprint)
            fixed[node] = group
            for _budgets, verdict, _witness in bucket:
                assert problem.solve_with_fixed(fixed) == verdict, key
            checked += 1
        assert checked >= 4

    def test_assignment_usage_fits_budgets(self):
        graph = ar_simple_design()
        result = _solve_simple(OracleStore())
        assignment = {n.name: result.schedule.group(n.name)
                      for n in graph.io_nodes()}
        usage = assignment_usage(graph, AR_SIMPLE_PINS, 2, assignment)
        budgets = budget_vector(AR_SIMPLE_PINS)
        assert len(usage) == len(budgets)
        assert all(u <= b for u, b in zip(usage, budgets)
                   if u >= 0 and b >= 0)


# ---------------------------------------------------------------------
class TestWarmExecutorEqualsCold:
    def test_warm_chain_is_bit_identical_to_cold(self):
        copies = 2
        space = DesignSpace(name=f"ar-stacked-{copies}",
                            graph=ar_stacked_design(copies),
                            partitioning=ar_stacked_pins(copies),
                            timing="ar")
        spec = SweepSpec(axes={"rate": [2], "flow": ["simple"],
                               "pin_scale": [1.8, 1.9, 2.0]})
        jobs = spec.expand(space)

        def run(warm):
            executor = Executor(
                workers=1, cache=ResultCache(), warm=warm,
                oracle_store=OracleStore() if warm else None)
            points = executor.run(jobs).points
            out = {}
            for record in points:
                metrics = {k: v for k, v in record["metrics"].items()
                           if k != "wall_ms"}
                out[record["key"]] = (record["status"], metrics)
            return out

        cold = run(False)
        warm = run(True)
        assert warm == cold
        assert len(cold) == len(jobs)
        assert all(status == "ok" for status, _ in cold.values())


# ---------------------------------------------------------------------
class TestStackedDesign:
    def test_copies_scale_structure(self):
        one = ar_stacked_design(1)
        three = ar_stacked_design(3)
        assert len(list(three.nodes())) == 3 * len(list(one.nodes()))

    def test_invalid_copies_rejected(self):
        with pytest.raises(ValueError):
            ar_stacked_design(0)

    def test_pins_scale_with_copies_and_scale(self):
        pins = ar_stacked_pins(2, scale=1.0)
        assert pins.chip(1).total_pins == 96
        scaled = ar_stacked_pins(2, scale=1.5)
        assert scaled.chip(1).total_pins == 144

    def test_catalog_resolves_stacked_names(self):
        space = design_space("ar-stacked-3")
        assert space.name == "ar-stacked-3"
        assert len(list(space.graph.nodes())) == \
            3 * len(list(ar_stacked_design(1).nodes()))

    def test_catalog_rejects_bad_suffix(self):
        from repro.errors import ReproError
        with pytest.raises(ReproError):
            design_space("ar-stacked-zero")
