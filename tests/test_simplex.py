"""Tests for the exact two-phase primal simplex."""

from fractions import Fraction

import pytest

from repro.ilp import Model, SolveStatus, solve_lp


def test_basic_maximization():
    m = Model()
    x = m.add_var("x", 0, None, integer=False)
    y = m.add_var("y", 0, None, integer=False)
    m.add(x + 2 * y <= 4)
    m.add(3 * x + y <= 6)
    m.maximize(x + y)
    s = solve_lp(m)
    assert s.status is SolveStatus.OPTIMAL
    assert s.objective == Fraction(14, 5)
    assert s[x] == Fraction(8, 5)
    assert s[y] == Fraction(6, 5)


def test_minimization_with_ge_constraints():
    m = Model()
    x = m.add_var("x", 0, None, integer=False)
    y = m.add_var("y", 0, None, integer=False)
    m.add(x + y >= 4)
    m.add(x + 3 * y >= 6)
    m.minimize(2 * x + y)
    s = solve_lp(m)
    assert s.status is SolveStatus.OPTIMAL
    # optimum at intersection x+y=4, x+3y=6 -> x=3, y=1, obj=7;
    # or x=0,y=4 -> obj 4; or x=0,y=2 infeasible (x+y=2<4).
    assert s.objective == Fraction(4)


def test_infeasible_detected():
    m = Model()
    x = m.add_var("x", 0, None, integer=False)
    m.add(x <= 1)
    m.add(x >= 2)
    m.minimize(x)
    assert solve_lp(m).status is SolveStatus.INFEASIBLE


def test_unbounded_detected():
    m = Model()
    x = m.add_var("x", 0, None, integer=False)
    m.maximize(x)
    assert solve_lp(m).status is SolveStatus.UNBOUNDED


def test_equality_constraints():
    m = Model()
    x = m.add_var("x", 0, None, integer=False)
    y = m.add_var("y", 0, None, integer=False)
    m.add(x + y == 10)
    m.add(x - y == 2)
    m.minimize(x)
    s = solve_lp(m)
    assert s.status is SolveStatus.OPTIMAL
    assert s[x] == 6 and s[y] == 4


def test_variable_upper_bounds_respected():
    m = Model()
    x = m.add_var("x", 0, 3, integer=False)
    m.maximize(x)
    s = solve_lp(m)
    assert s.objective == 3


def test_nonzero_lower_bounds_shifted_back():
    m = Model()
    x = m.add_var("x", 2, 5, integer=False)
    y = m.add_var("y", 1, None, integer=False)
    m.add(x + y <= 6)
    m.maximize(x + 2 * y)
    s = solve_lp(m)
    assert s.status is SolveStatus.OPTIMAL
    assert s[x] == 2 and s[y] == 4
    assert s.objective == 10


def test_negative_lower_bound():
    m = Model()
    x = m.add_var("x", -5, None, integer=False)
    m.add(x <= -1)
    m.minimize(x)
    s = solve_lp(m)
    assert s[x] == -5


def test_degenerate_problem_terminates():
    # Classic degeneracy: multiple constraints through one vertex.
    m = Model()
    x = m.add_var("x", 0, None, integer=False)
    y = m.add_var("y", 0, None, integer=False)
    m.add(x + y <= 1)
    m.add(x + y <= 1)
    m.add(2 * x + 2 * y <= 2)
    m.maximize(x)
    s = solve_lp(m)
    assert s.objective == 1


def test_zero_objective_feasibility_probe():
    m = Model()
    x = m.add_var("x", 0, 1, integer=False)
    m.add(x >= 1)
    m.minimize(0)
    s = solve_lp(m)
    assert s.status is SolveStatus.OPTIMAL
    assert s[x] == 1


def test_exactness_no_roundoff():
    # A problem where floats would accumulate error.
    m = Model()
    xs = [m.add_var(f"x{i}", 0, None, integer=False) for i in range(6)]
    for i in range(5):
        m.add(xs[i] * Fraction(1, 3) + xs[i + 1] * Fraction(1, 7) <= 1)
    m.maximize(sum(xs[1:], xs[0]))
    s = solve_lp(m)
    assert s.status is SolveStatus.OPTIMAL
    # x5 unconstrained from above except row 4... actually x5 appears
    # only in row 4 with coefficient 1/7 -> bounded; all exact.
    assert all(v.denominator >= 1 for v in s.values.values())
    for c in m.constraints:
        assert c.satisfied(s.values)
