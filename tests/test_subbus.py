"""Tests for Chapter 6 sub-bus sharing."""

import pytest

from repro.cdfg import Cdfg
from repro.cdfg.graph import make_io_node
from repro.core.interconnect import verify_bus_allocation
from repro.core.subbus import (SubBusConnectionSearch,
                               synthesize_connection_subbus)
from repro.errors import ConnectionError_
from repro.partition.model import ChipSpec, OUTSIDE_WORLD, Partitioning


def pins(bidirectional=True, **totals):
    chips = {OUTSIDE_WORLD: ChipSpec(totals.pop("world", 256),
                                     bidirectional=bidirectional)}
    for key, total in totals.items():
        chips[int(key[1:])] = ChipSpec(total, bidirectional=bidirectional)
    return Partitioning(chips)


def transfers(*specs):
    g = Cdfg()
    for name, value, src, dst, width in specs:
        g.add_node(make_io_node(name, value, src, dst, bit_width=width))
    return g


class TestSplitting:
    def test_split_shares_bus_under_pin_pressure(self):
        # Values of 16, 8, 8 bits at L=2 on a 16-pin budget: without
        # sharing, three values need three slots but only one 16-wide
        # bus (2 slots) fits the pins; splitting the bus 8/8 lets the
        # two narrow values share one cycle.
        g = transfers(("wide", "a", 1, 2, 16), ("w1", "b", 1, 2, 8),
                      ("w2", "c", 1, 2, 8))
        p = pins(p1=16, p2=16)
        with pytest.raises(ConnectionError_):
            from repro.core.connection_search import ConnectionSearch
            ConnectionSearch(g, p, 2).run()
        ic, assignment = synthesize_connection_subbus(g, p, 2)
        assert ic.check_budget(p) == []
        split = [b for b in ic.buses if len(b.effective_segments()) > 1]
        assert split, "expected at least one split bus"

    def test_segment_geometry(self):
        g = transfers(("wide", "a", 1, 2, 16), ("narrow", "b", 1, 2, 8),
                      ("narrow2", "c", 1, 2, 8))
        p = pins(p1=16, p2=16)
        ic, assignment = synthesize_connection_subbus(g, p, 2)
        assert ic.check_budget(p) == []
        for bus in ic.buses:
            assert sum(bus.effective_segments()) == bus.width

    def test_assignment_capability_holds(self):
        g = transfers(("w0", "a", 1, 2, 12), ("w1", "b", 1, 2, 8),
                      ("w2", "c", 2, 3, 8), ("w3", "d", 1, 3, 16))
        p = pins(p1=40, p2=36, p3=28)
        ic, assignment = synthesize_connection_subbus(g, p, 2)
        for node in g.io_nodes():
            bus_index, segment = assignment.of(node.name)
            assert ic.bus(bus_index).capable(node, segment)

    def test_port_prefix_rule(self):
        # An op on the second segment needs ports spanning segment 1
        # too (Equation 6.9).
        g = transfers(("w0", "a", 1, 2, 8), ("w1", "b", 1, 2, 8),
                      ("w2", "c", 3, 2, 8))
        p = pins(p1=16, p2=24, p3=16)
        ic, assignment = synthesize_connection_subbus(g, p, 1)
        for node in g.io_nodes():
            bus_index, segment = assignment.of(node.name)
            bus = ic.bus(bus_index)
            if segment > 0:
                need = bus.segment_offset(segment) + node.bit_width
                assert bus.bi_widths[node.source_partition] >= need
                assert bus.bi_widths[node.dest_partition] >= need


class TestEndToEnd:
    def test_ch6_flow_on_ar(self):
        from repro import synthesize_connection_first
        from repro.designs import AR_GENERAL_PINS_BIDIR, ar_general_design
        from repro.modules.library import ar_filter_timing
        result = synthesize_connection_first(
            ar_general_design(), AR_GENERAL_PINS_BIDIR,
            ar_filter_timing(), 5, subbus_sharing=True)
        assert result.verify() == []

    def test_full_flow_fits_where_plain_does_not(self):
        # Table 6.4's core claim end-to-end: with sub-bus sharing the
        # same design fits a pin budget the unsplit flow cannot.
        from repro import synthesize_connection_first
        from repro.errors import ReproError
        from repro.modules.library import DesignTiming, HardwareModule, \
            ModuleSet
        b_timing = DesignTiming(
            clock_period=100.0,
            default=ModuleSet.of(
                HardwareModule("adder", "add", delay_ns=40.0)),
            io_delay_ns=10.0, chaining=False)
        from repro.cdfg.builder import CdfgBuilder
        bld = CdfgBuilder("t64")
        src16 = bld.op("s16", "add", 1, bit_width=16)
        src8a = bld.op("s8a", "add", 1, bit_width=8)
        src8b = bld.op("s8b", "add", 1, bit_width=8)
        bld.io("wide", "a", source=src16, dests=[], source_partition=1,
               dest_partition=2, bit_width=16)
        bld.io("n1", "b", source=src8a, dests=[], source_partition=1,
               dest_partition=2, bit_width=8)
        bld.io("n2", "c", source=src8b, dests=[], source_partition=1,
               dest_partition=2, bit_width=8)
        graph = bld.build()
        tight = Partitioning({
            OUTSIDE_WORLD: ChipSpec(0, bidirectional=True),
            1: ChipSpec(16, bidirectional=True),
            2: ChipSpec(16, bidirectional=True),
        })
        with pytest.raises(ReproError):
            synthesize_connection_first(graph, tight, b_timing, 2)
        shared = synthesize_connection_first(graph, tight, b_timing, 2,
                                             subbus_sharing=True)
        assert shared.verify() == []
        assert shared.pins_used()[1] <= 16
