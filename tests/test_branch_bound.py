"""Tests for the branch & bound ILP solver."""

from fractions import Fraction

from repro.ilp import Model, SolveStatus, lsum, solve_ilp


def test_integer_rounding_matters():
    # LP optimum is fractional; ILP must branch.
    m = Model()
    x = m.add_var("x", 0, None)
    y = m.add_var("y", 0, None)
    m.add(x + 2 * y <= 4)
    m.add(3 * x + y <= 6)
    m.maximize(x + y)
    s = solve_ilp(m)
    assert s.status is SolveStatus.OPTIMAL
    assert s.objective == 2
    assert all(v.denominator == 1 for v in s.values.values())


def test_knapsack():
    values = [60, 100, 120]
    weights = [10, 20, 30]
    m = Model()
    xs = [m.binary(f"x{i}") for i in range(3)]
    m.add(lsum(weights[i] * xs[i] for i in range(3)) <= 50)
    m.maximize(lsum(values[i] * xs[i] for i in range(3)))
    s = solve_ilp(m)
    assert s.objective == 220  # items 1 and 2
    assert s.as_int(xs[0]) == 0
    assert s.as_int(xs[1]) == 1
    assert s.as_int(xs[2]) == 1


def test_infeasible_ilp():
    m = Model()
    x = m.binary("x")
    y = m.binary("y")
    m.add(x + y >= 3)
    m.minimize(0)
    assert solve_ilp(m).status is SolveStatus.INFEASIBLE


def test_integrality_gap_infeasible():
    # 2x == 1 has an LP solution but no integer one.
    m = Model()
    x = m.add_var("x", 0, 5)
    m.add(2 * x == 1)
    m.minimize(x)
    assert solve_ilp(m).status is SolveStatus.INFEASIBLE


def test_minimization_covering():
    # Vertex cover of a triangle: optimum 2 (LP relaxation 3/2).
    m = Model()
    xs = [m.binary(f"x{i}") for i in range(3)]
    m.add(xs[0] + xs[1] >= 1)
    m.add(xs[0] + xs[2] >= 1)
    m.add(xs[1] + xs[2] >= 1)
    m.minimize(lsum(xs))
    s = solve_ilp(m)
    assert s.objective == 2


def test_equality_with_integers():
    m = Model()
    x = m.add_var("x", 0, None)
    y = m.add_var("y", 0, None)
    m.add(3 * x + 5 * y == 19)
    m.minimize(x + y)
    s = solve_ilp(m)
    assert s.status is SolveStatus.OPTIMAL
    assert 3 * s[x] + 5 * s[y] == 19
    assert s.objective == 5  # x=3, y=2


def test_mixed_integer():
    m = Model()
    x = m.add_var("x", 0, None)                     # integer
    y = m.add_var("y", 0, None, integer=False)       # continuous
    m.add(x + y <= Fraction(7, 2))
    m.maximize(2 * x + y)
    s = solve_ilp(m)
    assert s.status is SolveStatus.OPTIMAL
    assert s[x] == 3 and s[y] == Fraction(1, 2)
    assert s.objective == Fraction(13, 2)


def test_solution_verifies_against_model():
    m = Model()
    xs = [m.add_var(f"x{i}", 0, 3) for i in range(4)]
    m.add(lsum(xs) >= 5)
    m.add(xs[0] + 2 * xs[1] <= 4)
    m.minimize(lsum((i + 1) * xs[i] for i in range(4)))
    s = solve_ilp(m)
    assert s.status is SolveStatus.OPTIMAL
    assert m.check(s.values)
