"""Property-based tests of the synthesis theorems on random designs.

* Theorem 3.1: for any pin-feasible schedule of a simple partitioning,
  the constructive interchip connection is conflict-free.
* Chapter 4/5 flows: whatever they produce must verify statically *and*
  survive cycle-accurate simulation with random stimuli.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cdfg import Cdfg
from repro.cdfg.graph import make_io_node
from repro.core.post_sched import connect_after_scheduling
from repro.core.interconnect import verify_bus_allocation
from repro.core.simple_connection import (build_simple_connection,
                                          verify_simple_allocation)
from repro.designs import random_partitioned_design
from repro.errors import ReproError
from repro.modules.allocation import min_module_counts
from repro.modules.library import (DesignTiming, HardwareModule,
                                   ModuleSet)
from repro.partition.simple import is_simple_partitioning
from repro.scheduling.base import Schedule
from repro.sim import simulate_result

settings.register_profile(
    "repro-flows", deadline=None, max_examples=20,
    suppress_health_check=[HealthCheck.too_slow])
settings.load_profile("repro-flows")


def timing():
    return DesignTiming(
        clock_period=250.0,
        default=ModuleSet.of(
            HardwareModule("adder", "add", 30.0),
            HardwareModule("multiplier", "mul", 210.0)),
        io_delay_ns=10.0)


# ---------------------------------------------------------------------
@st.composite
def simple_star_design(draw):
    """Random fan-out star P3 -> {P1, P2} with random widths/schedule."""
    g = Cdfg()
    L = draw(st.integers(2, 4))
    n_values = draw(st.integers(1, 5))
    placements = {}
    for v in range(n_values):
        width = draw(st.sampled_from([4, 8, 16]))
        dests = draw(st.sampled_from([(1,), (2,), (1, 2)]))
        step_a = draw(st.integers(0, 2 * L - 1))
        for dst in dests:
            name = f"w{v}d{dst}"
            g.add_node(make_io_node(name, f"v{v}", 3, dst,
                                    bit_width=width))
            if len(dests) == 2:
                placements[name] = step_a  # shared: same step
            else:
                placements[name] = draw(st.integers(0, 2 * L - 1))
    return g, placements, L


@given(simple_star_design())
def test_theorem_3_1_construction_conflict_free(case):
    graph, placements, L = case
    assert is_simple_partitioning(graph)
    schedule = Schedule(graph, timing(), L)
    for name, step in placements.items():
        schedule.place(name, step)
    result = build_simple_connection(graph, schedule)
    assert verify_simple_allocation(graph, schedule, result) == []


@given(simple_star_design())
def test_post_schedule_connection_conflict_free(case):
    graph, placements, L = case
    schedule = Schedule(graph, timing(), L)
    for name, step in placements.items():
        schedule.place(name, step)
    interconnect, assignment = connect_after_scheduling(graph, schedule)
    assert verify_bus_allocation(graph, interconnect, assignment,
                                 schedule.start_step, L) == []


# ---------------------------------------------------------------------
@given(st.integers(0, 30), st.integers(2, 3))
def test_connection_first_flow_simulates(seed, rate):
    from repro import synthesize_connection_first
    graph, partitioning = random_partitioned_design(seed, n_chips=3,
                                                    n_ops=10)
    try:
        result = synthesize_connection_first(graph, partitioning,
                                             timing(), rate)
    except ReproError:
        return  # tight random instance; fine
    assert result.verify() == []
    report = simulate_result(result, n_instances=4,
                             seed=seed)
    assert report.values_checked > 0


@given(st.integers(0, 30))
def test_schedule_first_flow_simulates(seed):
    from repro import synthesize_schedule_first
    from repro.cdfg.analysis import critical_path_length
    graph, partitioning = random_partitioned_design(seed, n_chips=2,
                                                    n_ops=8)
    pipe = critical_path_length(graph, timing()) + 4
    try:
        result = synthesize_schedule_first(graph, partitioning,
                                           timing(), 3,
                                           pipe_length=pipe)
    except ReproError:
        return
    hard = [p for p in result.verify() if "budget" not in p]
    assert hard == []
    report = simulate_result(result, n_instances=3, seed=seed)
    assert report.transfers_checked > 0


# ---------------------------------------------------------------------
@st.composite
def subbus_instance(draw):
    """Random transfer mixes for the sub-bus search."""
    g = Cdfg()
    n = draw(st.integers(2, 6))
    for i in range(n):
        width = draw(st.sampled_from([4, 8, 12, 16]))
        src = draw(st.integers(1, 2))
        dst = 3 if src == 2 else draw(st.integers(2, 3))
        g.add_node(make_io_node(f"w{i}", f"v{i}", src, dst,
                                bit_width=width))
    L = draw(st.integers(1, 3))
    budget = draw(st.sampled_from([24, 32, 48]))
    return g, L, budget


@given(subbus_instance())
def test_subbus_search_invariants(case):
    from repro.core.subbus import SubBusConnectionSearch
    from repro.partition.model import ChipSpec, Partitioning
    graph, L, budget = case
    chips = {0: ChipSpec(0, bidirectional=True)}
    for chip in (1, 2, 3):
        chips[chip] = ChipSpec(budget, bidirectional=True)
    partitioning = Partitioning(chips)
    try:
        interconnect, assignment = SubBusConnectionSearch(
            graph, partitioning, L).run()
    except ReproError:
        return  # infeasible instances are fine
    # Invariants: budgets hold; every op rides a capable position;
    # the Eq 6.9 prefix rule holds on split buses.
    assert interconnect.check_budget(partitioning) == []
    for node in graph.io_nodes():
        bus_index, segment = assignment.of(node.name)
        bus = interconnect.bus(bus_index)
        assert bus.capable(node, segment)
        if segment > 0:
            need = bus.segment_offset(segment) + node.bit_width
            assert bus.bi_widths[node.source_partition] >= need
            assert bus.bi_widths[node.dest_partition] >= need
    for bus in interconnect.buses:
        assert sum(bus.effective_segments()) == bus.width
