"""Tests for RTL binding, register allocation, netlists, controllers."""

import pytest

from repro import synthesize_connection_first
from repro.cdfg import CdfgBuilder
from repro.cdfg.analysis import UnitTiming
from repro.designs import AR_GENERAL_PINS_UNIDIR, ar_general_design
from repro.modules.library import ar_filter_timing
from repro.rtl import (allocate_registers, bind_functional_units,
                       build_control_tables, build_netlist,
                       emit_structural)
from repro.scheduling.base import Schedule


def simple_schedule():
    b = CdfgBuilder("rtl")
    a1 = b.op("a1", "add", 1, bit_width=8)
    a2 = b.op("a2", "add", 1, inputs=[a1], bit_width=8)
    a3 = b.op("a3", "add", 1, inputs=[a1], bit_width=8)
    a4 = b.op("a4", "add", 1, inputs=[a2, a3], bit_width=8)
    g = b.build()
    s = Schedule(g, UnitTiming(), 2)
    s.place("a1", 0)
    s.place("a2", 1)
    s.place("a3", 2)
    s.place("a4", 3)
    return g, s


class TestFuBinding:
    def test_group_conflicts_need_distinct_units(self):
        g, s = simple_schedule()
        binding = bind_functional_units(s)
        # a1 (group 0) and a3 (group 0) overlap; a2/a4 (group 1) too.
        assert binding.unit_of["a1"] != binding.unit_of["a3"]
        assert binding.unit_of["a2"] != binding.unit_of["a4"]
        assert binding.unit_counts() == {(1, "add"): 2}

    def test_binding_matches_measured_resources(self):
        from repro.scheduling.base import measured_resources
        result = synthesize_connection_first(
            ar_general_design(), AR_GENERAL_PINS_UNIDIR,
            ar_filter_timing(), 3)
        binding = bind_functional_units(result.schedule)
        assert binding.unit_counts() == measured_resources(
            result.schedule)

    def test_multicycle_units_respect_wheels(self):
        b = CdfgBuilder("mc")
        b.op("m1", "mul", 1)
        b.op("m2", "mul", 1)
        g = b.build()
        timing = UnitTiming(cycles_by_op_type={"mul": 2})
        s = Schedule(g, timing, 4)
        s.place("m1", 0)
        s.place("m2", 1)  # overlaps m1's cells 0-1 -> new unit
        binding = bind_functional_units(s)
        assert binding.unit_of["m1"] != binding.unit_of["m2"]
        s2 = Schedule(g, timing, 4)
        s2.place("m1", 0)
        s2.place("m2", 2)  # disjoint cells -> same unit
        binding2 = bind_functional_units(s2)
        assert binding2.unit_of["m1"] == binding2.unit_of["m2"]


class TestRegisterAllocation:
    def test_disjoint_lifetimes_share_register(self):
        g, s = simple_schedule()
        regs = allocate_registers(g, s)
        # a2 lives [2,4), a3 lives [3,4): overlapping cells mod 2 ->
        # cannot share; a1 lives [1,3) span 2 = L -> dedicated.
        assert regs.count(1) >= 2

    def test_long_lifetime_gets_copies(self):
        b = CdfgBuilder("long")
        x = b.op("x", "add", 1, bit_width=8)
        y = b.op("y", "add", 1, inputs=[x], bit_width=8)
        g = b.build()
        s = Schedule(g, UnitTiming(), 2)
        s.place("x", 0)
        s.place("y", 5)  # x alive for 5 steps at L=2 -> 3 copies
        regs = allocate_registers(g, s)
        assert len(regs.regs_of["x"]) == 3

    def test_chained_value_needs_no_register(self):
        b = CdfgBuilder("chain")
        i = b.inp("i", partition=1)
        m = b.op("m", "mul", 1, inputs=[i])
        a = b.op("a", "add", 1, inputs=[m])
        g = b.build()
        from repro.scheduling import ListScheduler
        s = ListScheduler(g, ar_filter_timing(), 2,
                          {(1, "mul"): 1, (1, "add"): 1}).run()
        regs = allocate_registers(g, s)
        # m chains into a within the same step: no storage for m.
        assert "m" not in regs.regs_of

    def test_incoming_transfer_latched(self):
        result = synthesize_connection_first(
            ar_general_design(), AR_GENERAL_PINS_UNIDIR,
            ar_filter_timing(), 3)
        regs = allocate_registers(result.graph, result.schedule)
        schedule = result.schedule
        # Every transfer consumed in a *later* step than it arrives
        # must be latched on the destination chip (chained same-step
        # consumption legitimately needs no register).
        for node in result.graph.io_nodes():
            if node.dest_partition == 0:
                continue
            later_use = any(
                schedule.step(e.dst) > schedule.step(node.name)
                for e in result.graph.out_edges(node.name)
                if not e.is_recursive()
                and schedule.is_scheduled(e.dst))
            if later_use:
                assert node.name in regs.regs_of, node.name
                assert regs.regs_of[node.name][0][0] \
                    == node.dest_partition

    def test_register_widths_cover_values(self):
        result = synthesize_connection_first(
            ar_general_design(), AR_GENERAL_PINS_UNIDIR,
            ar_filter_timing(), 4)
        regs = allocate_registers(result.graph, result.schedule)
        for producer, reg_list in regs.regs_of.items():
            width = result.graph.node(producer).bit_width
            for reg in reg_list:
                assert regs.widths[reg] >= width


class TestNetlist:
    def test_mux_inserted_for_multi_source_port(self):
        g, s = simple_schedule()
        netlist = build_netlist(g, s)
        chip = netlist.chip(1)
        assert any(m.ways >= 2 for m in chip.muxes)

    def test_ports_match_interconnect(self):
        result = synthesize_connection_first(
            ar_general_design(), AR_GENERAL_PINS_UNIDIR,
            ar_filter_timing(), 3)
        netlist = build_netlist(result.graph, result.schedule,
                                result.interconnect, result.assignment)
        for bus in result.interconnect.buses:
            for partition, width in bus.out_widths.items():
                assert netlist.chip(partition).out_ports[bus.index] \
                    == width

    def test_area_estimate_positive(self):
        g, s = simple_schedule()
        netlist = build_netlist(g, s)
        assert netlist.chip(1).area_estimate() > 0


class TestController:
    def test_control_words_cover_all_ops(self):
        result = synthesize_connection_first(
            ar_general_design(), AR_GENERAL_PINS_UNIDIR,
            ar_filter_timing(), 3)
        netlist = build_netlist(result.graph, result.schedule,
                                result.interconnect, result.assignment)
        tables = build_control_tables(result.graph, result.schedule,
                                      netlist.binding,
                                      netlist.registers,
                                      result.interconnect,
                                      result.assignment)
        fired = {op for table in tables.values()
                 for word in table.words for _u, op in word.fire}
        functional = {n.name for n in result.graph.functional_nodes()}
        assert fired == functional

    def test_bus_drive_and_sample_paired(self):
        result = synthesize_connection_first(
            ar_general_design(), AR_GENERAL_PINS_UNIDIR,
            ar_filter_timing(), 4)
        netlist = build_netlist(result.graph, result.schedule,
                                result.interconnect, result.assignment)
        tables = build_control_tables(result.graph, result.schedule,
                                      netlist.binding,
                                      netlist.registers,
                                      result.interconnect,
                                      result.assignment)
        drives = {op for t in tables.values() for w in t.words
                  for _b, op in w.bus_drive}
        samples = {op for t in tables.values() for w in t.words
                   for _b, op in w.bus_sample}
        cross = {n.name for n in result.graph.io_nodes()
                 if n.source_partition != 0 and n.dest_partition != 0}
        assert cross <= drives
        assert cross <= samples


class TestEmit:
    def test_emission_contains_modules(self):
        result = synthesize_connection_first(
            ar_general_design(), AR_GENERAL_PINS_UNIDIR,
            ar_filter_timing(), 3)
        text = emit_structural(result.graph, result.schedule,
                               result.interconnect, result.assignment,
                               "ar")
        assert "module chip_p1" in text
        assert "module ar_top" in text
        assert "controller ROM" in text
        assert text.count("endmodule") == len(
            set(result.graph.partitions())) + 1
