"""Tests for the Figure 4.3 heuristic connection search."""

import pytest

from repro.cdfg import Cdfg
from repro.cdfg.graph import make_io_node
from repro.core.connection_search import ConnectionSearch
from repro.core.interconnect import verify_bus_allocation
from repro.errors import ConnectionError_
from repro.partition.model import ChipSpec, OUTSIDE_WORLD, Partitioning


def pins(bidirectional=False, **totals):
    chips = {OUTSIDE_WORLD: ChipSpec(totals.pop("world", 256),
                                     bidirectional=bidirectional)}
    for key, total in totals.items():
        chips[int(key[1:])] = ChipSpec(total, bidirectional=bidirectional)
    return Partitioning(chips)


def transfers(*specs):
    """specs: (name, value, src, dst, width)"""
    g = Cdfg()
    for name, value, src, dst, width in specs:
        g.add_node(make_io_node(name, value, src, dst, bit_width=width))
    return g


class TestBasics:
    def test_every_op_assigned_to_capable_bus(self):
        g = transfers(("w0", "a", 1, 2, 8), ("w1", "b", 1, 2, 16),
                      ("w2", "c", 2, 3, 8))
        ic, assignment = ConnectionSearch(g, pins(p1=64, p2=64, p3=64),
                                          2).run()
        for node in g.io_nodes():
            bus = ic.bus(assignment.bus_of[node.name])
            assert bus.capable(node)

    def test_pin_budgets_respected(self):
        g = transfers(*[(f"w{i}", f"v{i}", 1, 2, 8) for i in range(4)])
        p = pins(p1=16, p2=16)
        ic, _ = ConnectionSearch(g, p, 2).run()
        assert ic.check_budget(p) == []
        assert len(ic.buses) == 2  # 4 ops / 2 slots each

    def test_same_value_lands_on_one_bus(self):
        # g2 pushes sibling transfers onto a shared bus.
        g = transfers(("wa", "v", 1, 2, 8), ("wb", "v", 1, 3, 8),
                      ("wc", "u", 1, 2, 8))
        ic, assignment = ConnectionSearch(g, pins(p1=24, p2=16, p3=8),
                                          1).run()
        assert assignment.bus_of["wa"] == assignment.bus_of["wb"]

    def test_capacity_limits_values_per_bus(self):
        g = transfers(*[(f"w{i}", f"v{i}", 1, 2, 8) for i in range(6)])
        ic, assignment = ConnectionSearch(g, pins(p1=256, p2=256),
                                          3).run()
        per_bus = {}
        for op, bus in assignment.bus_of.items():
            per_bus.setdefault(bus, set()).add(g.node(op).value)
        assert all(len(v) <= 3 for v in per_bus.values())

    def test_infeasible_budget_raises(self):
        g = transfers(("w0", "a", 1, 2, 16))
        with pytest.raises(ConnectionError_):
            ConnectionSearch(g, pins(p1=8, p2=8), 2).run()

    def test_slot_reserve_opens_more_buses(self):
        g = transfers(*[(f"w{i}", f"v{i}", 1, 2, 8) for i in range(6)])
        base_ic, _ = ConnectionSearch(g, pins(p1=256, p2=256), 6).run()
        wide_ic, _ = ConnectionSearch(g, pins(p1=256, p2=256), 6,
                                      slot_reserve=4).run()
        assert len(wide_ic.buses) > len(base_ic.buses)


class TestBidirectional:
    def test_bidirectional_ports_shared_between_directions(self):
        g = transfers(("fwd", "a", 1, 2, 8), ("bwd", "b", 2, 1, 8))
        p = pins(bidirectional=True, p1=8, p2=8)
        ic, assignment = ConnectionSearch(g, p, 2).run()
        # One 8-bit bidirectional bus serves both transfers.
        assert len(ic.buses) == 1
        assert ic.pins_used(1) == 8
        assert ic.pins_used(2) == 8

    def test_unidirectional_needs_double(self):
        g = transfers(("fwd", "a", 1, 2, 8), ("bwd", "b", 2, 1, 8))
        with pytest.raises(ConnectionError_):
            ConnectionSearch(g, pins(p1=8, p2=8), 2).run()
        ic, _ = ConnectionSearch(g, pins(p1=16, p2=16), 2).run()
        assert ic.pins_used(1) == 16


class TestPortWidths:
    def test_port_narrower_than_bus(self):
        # The Figure 4.2 case: a bus carries 16-bit values from P1 and
        # 8-bit values from P2 to P3 — P2's output port stays 8 wide.
        g = transfers(("wide", "a", 1, 3, 16), ("narrow", "b", 2, 3, 8))
        ic, assignment = ConnectionSearch(g, pins(p1=16, p2=8, p3=24),
                                          2).run()
        if assignment.bus_of["wide"] == assignment.bus_of["narrow"]:
            bus = ic.bus(assignment.bus_of["wide"])
            assert bus.out_widths[1] == 16
            assert bus.out_widths[2] == 8

    def test_share_groups_treated_as_one_value(self):
        g = transfers(("c1", "u", 1, 2, 8), ("c2", "w", 1, 2, 8))
        groups = {"c1": "grp", "c2": "grp"}
        ic, assignment = ConnectionSearch(g, pins(p1=8, p2=8), 1,
                                          share_groups=groups).run()
        # One slot at L=1 suffices because the two conditional
        # transfers share it.
        assert assignment.bus_of["c1"] == assignment.bus_of["c2"]


class TestEndToEndAllocation:
    def test_full_flow_verifies(self):
        from repro import synthesize_connection_first
        from repro.designs import (AR_GENERAL_PINS_UNIDIR,
                                   ar_general_design)
        from repro.modules.library import ar_filter_timing
        result = synthesize_connection_first(
            ar_general_design(), AR_GENERAL_PINS_UNIDIR,
            ar_filter_timing(), 3)
        assert result.verify() == []
        problems = verify_bus_allocation(
            result.graph, result.interconnect, result.assignment,
            result.schedule.start_step, 3)
        assert problems == []
