"""Consistent-hash ring: determinism, balance, minimal remapping.

These are the properties the cluster's exactly-once guarantee rests
on, so they are pinned as tests rather than assumed: the ring must be
identical in every process (the front and any observer agree on
ownership), reasonably balanced (no shard absorbs the fleet), and
removal-minimal (draining one shard moves only that shard's keys).
"""

import hashlib

import pytest

from repro.cluster import DEFAULT_REPLICAS, HashRing, ring_position
from repro.errors import ReproError

SHARDS = ["shard-0", "shard-1", "shard-2", "shard-3"]


def keys(count):
    return [hashlib.sha256(f"key-{i}".encode()).hexdigest()
            for i in range(count)]


class TestDeterminism:
    def test_owner_is_stable_across_instances(self):
        a = HashRing(SHARDS)
        b = HashRing(SHARDS)
        assert all(a.owner(k) == b.owner(k) for k in keys(200))

    def test_construction_order_does_not_matter(self):
        # The ring is content-derived: seat positions come from shard
        # *names*, so shuffled construction yields identical ownership.
        a = HashRing(SHARDS)
        b = HashRing(list(reversed(SHARDS)))
        assert all(a.owner(k) == b.owner(k) for k in keys(200))

    def test_position_is_content_derived(self):
        # Pin the hash construction itself: first 8 sha256 bytes,
        # big-endian.  If this changes, running fronts and new fronts
        # would disagree on ownership mid-rollout.
        digest = hashlib.sha256(b"shard-0#0").digest()
        assert ring_position("shard-0#0") == int.from_bytes(
            digest[:8], "big")

    def test_validation(self):
        with pytest.raises(ReproError):
            HashRing([])
        with pytest.raises(ReproError):
            HashRing(["a", "a"])


class TestBalance:
    def test_1k_keys_over_4_shards_within_20_percent(self):
        # Deterministic sample shaped like real job keys (sha256 hex
        # digests); binomial noise on 1k keys is ~5.5% per shard, so
        # 20% is a loose but meaningful lid.
        ring = HashRing(SHARDS, replicas=DEFAULT_REPLICAS)
        counts = {name: 0 for name in SHARDS}
        for i in range(1000):
            digest = hashlib.sha256(str(i).encode()).hexdigest()
            counts[ring.owner(digest)] += 1
        mean = 1000 / len(SHARDS)
        for name, count in counts.items():
            assert abs(count - mean) <= 0.20 * mean, (name, counts)

    def test_share_sums_to_one(self):
        ring = HashRing(SHARDS)
        share = ring.share()
        assert abs(sum(share.values()) - 1.0) < 1e-12
        assert all(fraction > 0 for fraction in share.values())

    def test_to_dict_shape(self):
        out = HashRing(SHARDS).to_dict()
        assert out["replicas"] == DEFAULT_REPLICAS
        assert out["vnodes"] == DEFAULT_REPLICAS * len(SHARDS)
        assert [s["name"] for s in out["shards"]] == SHARDS


class TestRemoval:
    def test_removal_only_remaps_removed_shards_keys(self):
        full = HashRing(SHARDS)
        reduced = full.without("shard-2")
        moved = kept = 0
        for key in keys(1000):
            before = full.owner(key)
            after = reduced.owner(key)
            if before == "shard-2":
                assert after != "shard-2"
                moved += 1
            else:
                assert after == before, key
                kept += 1
        assert moved > 0 and kept > 0

    def test_removed_keys_spread_over_survivors(self):
        # The drained shard's load should redistribute, not pile onto
        # one neighbor — that is what virtual nodes buy.
        full = HashRing(SHARDS)
        reduced = full.without("shard-2")
        inherited = {}
        for key in keys(2000):
            if full.owner(key) == "shard-2":
                after = reduced.owner(key)
                inherited[after] = inherited.get(after, 0) + 1
        assert len(inherited) == len(SHARDS) - 1, inherited

    def test_cannot_empty_the_ring(self):
        with pytest.raises(ReproError):
            HashRing(["only"]).without("only")
