"""White-box tests for the Figure 4.3 gain function (g1/g2/g3)."""

import pytest

from repro.cdfg import Cdfg
from repro.cdfg.graph import make_io_node
from repro.core.connection_search import (ConnectionSearch, G1_WEIGHT,
                                          G2_WEIGHT, _BusState)
from repro.partition.model import ChipSpec, OUTSIDE_WORLD, Partitioning


def make_search(ops, budgets, L=2, **kwargs):
    g = Cdfg()
    for name, value, src, dst, width in ops:
        g.add_node(make_io_node(name, value, src, dst, bit_width=width))
    chips = {OUTSIDE_WORLD: ChipSpec(budgets.get(0, 0))}
    for chip, total in budgets.items():
        if chip != 0:
            chips[chip] = ChipSpec(total)
    return g, ConnectionSearch(g, Partitioning(chips), L, **kwargs)


class TestGainFactors:
    def test_fresh_bus_gain_is_pure_g3(self):
        g, search = make_search(
            [("w", "v", 1, 2, 8)], {1: 32, 2: 32}, L=3)
        fresh = _BusState(1)
        gain = search._gain(fresh, g.node("w"))
        assert gain == 3.0  # g1 = g2 = 0, g3 = free slots = L

    def test_existing_path_dominates(self):
        g, search = make_search(
            [("w0", "a", 1, 2, 8), ("w1", "b", 1, 2, 8)],
            {1: 32, 2: 32}, L=2)
        state = _BusState(1)
        search._apply(g.node("w0"), state)
        reuse_gain = search._gain(state, g.node("w1"))
        fresh_gain = search._gain(_BusState(2), g.node("w1"))
        # Both ports already connected: g1 = wf_1 + wf_2 > 0 and the
        # 10000x weight makes reuse dominate any g3 difference.
        assert reuse_gain > fresh_gain
        assert reuse_gain >= G1_WEIGHT * 0.1

    def test_same_value_bonus(self):
        g, search = make_search(
            [("wa", "v", 1, 2, 8), ("wb", "v", 1, 3, 8)],
            {1: 32, 2: 32, 3: 32}, L=2)
        state = _BusState(1)
        search._apply(g.node("wa"), state)
        with_value = search._gain(state, g.node("wb"))
        # Same situation but distinct values: only g2 differs.
        g_no_value, search2 = make_search(
            [("wa", "u", 1, 2, 8), ("wb", "v", 1, 3, 8)],
            {1: 32, 2: 32, 3: 32}, L=2)
        state2 = _BusState(1)
        search2._apply(g_no_value.node("wa"), state2)
        without_value = search2._gain(state2, g_no_value.node("wb"))
        assert with_value - without_value == pytest.approx(G2_WEIGHT)

    def test_wf_rises_as_pins_deplete(self):
        g, search = make_search(
            [("w0", "a", 1, 2, 16), ("w1", "b", 1, 2, 16)],
            {1: 32, 2: 64}, L=2)
        before = search._wf(1)
        state = _BusState(1)
        search._apply(g.node("w0"), state)
        after = search._wf(1)
        # Half the pins are gone and half the bits assigned: the
        # pressure ratio (bits / free pins) stays the binding signal
        # and must not decrease for the tight chip.
        assert after >= before / 2
        # The starved limit: zero free pins -> huge weight.
        search._pins_used[1] = 32
        assert search._wf(1) > 1000

    def test_capacity_reserve_lowers_g3(self):
        g, search = make_search([("w", "v", 1, 2, 8)],
                                {1: 32, 2: 32}, L=4,
                                slot_reserve=2)
        fresh = _BusState(1)
        assert search._gain(fresh, g.node("w")) == 2.0  # capacity 4-2


class TestApplyUndo:
    def test_apply_undo_roundtrip(self):
        g, search = make_search(
            [("w0", "a", 1, 2, 8), ("w1", "b", 2, 3, 16)],
            {1: 32, 2: 48, 3: 32}, L=2)
        state = _BusState(1)
        snapshot = (dict(search._pins_used),
                    dict(search._unassigned_bits))
        record = search._apply(g.node("w0"), state)
        assert search._pins_used[1] == 8
        search._undo(g.node("w0"), state, record)
        assert (search._pins_used, search._unassigned_bits) == snapshot
        assert state not in search._buses

    def test_port_widening_costs_only_delta(self):
        g, search = make_search(
            [("w0", "a", 1, 2, 8), ("w1", "b", 1, 2, 16)],
            {1: 32, 2: 32}, L=2)
        state = _BusState(1)
        search._apply(g.node("w0"), state)
        assert search._pins_used[1] == 8
        search._apply(g.node("w1"), state)
        # Widening 8 -> 16 costs 8 extra, not 16.
        assert search._pins_used[1] == 16
        assert state.out_w[1] == 16
