"""Tests for the resource-constrained pipelined list scheduler."""

import pytest

from repro.cdfg import CdfgBuilder
from repro.cdfg.analysis import UnitTiming
from repro.cdfg.graph import Node
from repro.cdfg.ops import OpKind
from repro.errors import SchedulingError
from repro.modules.library import ar_filter_timing
from repro.scheduling import ListScheduler
from repro.scheduling.list_scheduler import NullIoHooks


def diamond():
    b = CdfgBuilder()
    a = b.op("a", "add", 1)
    x = b.op("x", "add", 1, inputs=[a])
    y = b.op("y", "add", 1, inputs=[a])
    b.op("z", "add", 1, inputs=[x, y])
    return b.build()


class TestBasics:
    def test_diamond_respects_resources(self):
        s = ListScheduler(diamond(), UnitTiming(), 4,
                          {(1, "add"): 1}).run()
        assert s.verify({(1, "add"): 1}) == []
        # Serialized on one adder: 4 distinct steps.
        assert len(set(s.start_step.values())) == 4

    def test_two_adders_parallelize(self):
        s = ListScheduler(diamond(), UnitTiming(), 4,
                          {(1, "add"): 2}).run()
        assert s.step("x") == s.step("y") == 1
        assert s.pipe_length == 3

    def test_pipelined_group_conflict(self):
        # L=2: steps 0 and 2 are the same group; with one adder the
        # four ops need four distinct groups -> steps 0,1,2,3 with 2
        # units, or fail with 1 unit within default horizon? With L=2
        # only 2 groups exist, so 1 adder serves at most 2 ops.
        with pytest.raises(SchedulingError):
            ListScheduler(diamond(), UnitTiming(), 2,
                          {(1, "add"): 1}).run()
        s = ListScheduler(diamond(), UnitTiming(), 2,
                          {(1, "add"): 2}).run()
        assert s.verify({(1, "add"): 2}) == []

    def test_missing_resource_entry_fails(self):
        with pytest.raises(SchedulingError):
            ListScheduler(diamond(), UnitTiming(), 4, {}).run()


class TestChaining:
    def test_mul_add_chain_in_one_step(self):
        b = CdfgBuilder()
        i = b.inp("i", partition=1)
        m = b.op("m", "mul", 1, inputs=[i])
        a = b.op("a", "add", 1, inputs=[m])
        g = b.build()
        s = ListScheduler(g, ar_filter_timing(), 2,
                          {(1, "mul"): 1, (1, "add"): 1}).run()
        assert s.step("m") == 0 and s.step("a") == 0
        assert s.start_ns["a"] == pytest.approx(220.0)

    def test_io_waits_for_boundary(self):
        # An I/O op fed by a mid-cycle chain starts at the next edge.
        b = CdfgBuilder()
        i = b.inp("i", partition=1)
        a = b.op("a", "add", 1, inputs=[i])
        b.out("o", a, partition=1)
        g = b.build()
        s = ListScheduler(g, ar_filter_timing(), 2,
                          {(1, "add"): 1}).run()
        assert s.step("a") == 0          # chains after the input
        assert s.step("o") == 1          # boundary-start I/O


class TestMultiCycle:
    def timing(self):
        return UnitTiming(cycles_by_op_type={"mul": 2})

    def test_nonpipelined_multicycle_blocks_unit(self):
        b = CdfgBuilder()
        b.op("m1", "mul", 1)
        b.op("m2", "mul", 1)
        g = b.build()
        s = ListScheduler(g, self.timing(), 4, {(1, "mul"): 1}).run()
        steps = sorted(s.start_step.values())
        assert steps[1] - steps[0] >= 2  # no overlap on one unit

    def test_wheel_safety_postpones_fragmenting_placement(self):
        # L=6, one 2-cycle unit, three ops: naive placement at 0,2,4
        # works; placement at 0,3 would strand capacity — the safety
        # check (Section 7.4) must keep all three schedulable.
        b = CdfgBuilder()
        src = b.op("s", "add", 1)
        b.op("m1", "mul", 1, inputs=[src])
        b.op("m2", "mul", 1, inputs=[src])
        b.op("m3", "mul", 1, inputs=[src])
        g = b.build()
        s = ListScheduler(g, self.timing(), 6,
                          {(1, "add"): 1, (1, "mul"): 1}).run()
        assert s.verify({(1, "add"): 1, (1, "mul"): 1}) == []
        groups = sorted(s.step(n) % 6 for n in ("m1", "m2", "m3"))
        assert groups in ([0, 2, 4], [1, 3, 5])


class TestRecursion:
    def test_loop_scheduled_within_deadline(self):
        b = CdfgBuilder()
        x = b.op("x", "add", 1)
        y = b.op("y", "add", 1, inputs=[x])
        z = b.op("z", "add", 1, inputs=[y])
        b.recursive(z, x, degree=1)
        g = b.build()
        # L=4: t_z <= t_x + 3.
        s = ListScheduler(g, UnitTiming(), 4, {(1, "add"): 1}).run()
        assert s.step("z") - s.step("x") <= 3
        assert s.verify() == []

    def test_impossible_loop_raises(self):
        b = CdfgBuilder()
        prev = b.op("n0", "add", 1)
        for i in range(1, 6):
            prev = b.op(f"n{i}", "add", 1, inputs=[prev])
        b.recursive("n5", "n0", degree=1)
        g = b.build()
        with pytest.raises(SchedulingError):
            ListScheduler(g, UnitTiming(), 4, {(1, "add"): 6}).run()


class TestIoHooks:
    def test_hooks_can_postpone(self):
        class OddStepsOnly:
            def can_schedule(self, node, step, schedule):
                return step % 2 == 1

            def commit(self, node, step, schedule):
                pass

        b = CdfgBuilder()
        i = b.inp("i", partition=1)
        b.op("a", "add", 1, inputs=[i])
        g = b.build()
        s = ListScheduler(g, UnitTiming(), 2, {(1, "add"): 1},
                          io_hooks=OddStepsOnly()).run()
        assert s.step("i") == 1

    def test_hooks_commit_called(self):
        committed = []

        class Spy(NullIoHooks):
            def commit(self, node, step, schedule):
                committed.append((node.name, step))

        b = CdfgBuilder()
        i = b.inp("i", partition=1)
        b.op("a", "add", 1, inputs=[i])
        g = b.build()
        ListScheduler(g, UnitTiming(), 2, {(1, "add"): 1},
                      io_hooks=Spy()).run()
        assert committed == [("i", 0)]


class TestDesigns:
    def test_ar_simple_schedules_without_pin_hooks(self):
        from repro.designs import ar_simple_design
        from repro.modules.allocation import min_module_counts
        g = ar_simple_design()
        t = ar_filter_timing()
        res = min_module_counts(g, t, 2)
        s = ListScheduler(g, t, 2, res).run()
        assert s.verify(res) == []
