"""Every registered scheduler backend is a full citizen.

Two contracts:

* **property** — on the seeded fuzz design stream, whatever a backend
  produces must pass every unified design rule (pin-accounting
  violations are tolerated only when the result openly declares them
  via ``stats["budget_overruns"]``, the schedule-first contract);
* **differential** — on the built-in benchmarks, the cross-flow oracle
  widened along the scheduler axis must accept the new backends next
  to the list and FDS baselines: no dirty result, no feasibility
  disagreement, no checker gap.
"""

import pytest

from repro import synthesize
from repro.check import check_result, run_differential
from repro.check.fuzz import generate_cases
from repro.check.rules import PIN_RULES, rule_names
from repro.designs import (AR_GENERAL_PINS_BIDIR, AR_GENERAL_PINS_UNIDIR,
                           AR_SIMPLE_PINS, ELLIPTIC_PINS_BIDIR,
                           ELLIPTIC_PINS_UNIDIR, ar_general_design,
                           ar_simple_design, elliptic_design,
                           elliptic_resources)
from repro.errors import ReproError
from repro.modules.library import ar_filter_timing, elliptic_filter_timing
from repro.pipeline import scheduler_backend, scheduler_names
from repro.robustness import BudgetExhausted, SolveBudget

#: One driving flow per backend for the property test: random fuzz
#: partitionings are general, so resource-constrained backends run
#: through connection-first and time-constrained ones through
#: schedule-first.
def _driving_flow(name):
    backend = scheduler_backend(name)
    if "connection-first" in backend.flows:
        return "connection-first"
    return backend.flows[0]


def _acceptable(result):
    """All 14 rules ran; violations only where openly declared."""
    report = check_result(result)
    assert report.rules_run == rule_names()
    if report.ok:
        return
    assert result.stats.get("budget_overruns"), \
        [v.message for v in report.violations]
    assert all(v.rule in PIN_RULES for v in report.violations), \
        [f"[{v.rule}] {v.message}" for v in report.violations]


FUZZ_CASES = list(generate_cases("scheduler-backends", 6))


class TestEveryBackendPassesAllRules:

    @pytest.mark.parametrize("name", scheduler_names())
    @pytest.mark.parametrize("case", FUZZ_CASES,
                             ids=lambda c: f"seed{c.seed}")
    def test_fuzz_stream(self, name, case):
        graph, partitioning = case.build()
        from repro.explore.worker import resolve_timing
        try:
            result = synthesize(graph, partitioning, resolve_timing("ar"),
                                case.rate, flow=_driving_flow(name),
                                scheduler=name,
                                budget=SolveBudget(deadline_ms=4000))
        except (ReproError, BudgetExhausted):
            return  # gave up / infeasible / out of budget: proves nothing
        _acceptable(result)


BUILTINS = [
    ("ar-simple", ar_simple_design, AR_SIMPLE_PINS,
     ar_filter_timing, 2, False),
    ("ar-general", ar_general_design, AR_GENERAL_PINS_UNIDIR,
     ar_filter_timing, 3, False),
    ("ar-general-bidir", ar_general_design, AR_GENERAL_PINS_BIDIR,
     ar_filter_timing, 3, False),
    ("elliptic", elliptic_design, ELLIPTIC_PINS_UNIDIR,
     elliptic_filter_timing, 6, True),
    ("elliptic-bidir", elliptic_design, ELLIPTIC_PINS_BIDIR,
     elliptic_filter_timing, 7, True),
]


class TestOracleAcceptsNewBackends:

    @pytest.mark.parametrize(
        "name,design_fn,pins,timing_fn,rate,needs_res",
        BUILTINS, ids=[b[0] for b in BUILTINS])
    def test_builtin(self, name, design_fn, pins, timing_fn, rate,
                     needs_res):
        resources = elliptic_resources(rate) if needs_res else None
        oracle = run_differential(
            design_fn(), pins, timing_fn(), rate, resources=resources,
            timeout_ms=20000,
            schedulers=("list", "heap", "modulo"))
        assert oracle.ok, (oracle.disagreements + oracle.checker_gaps
                           + oracle.violations())
        labels = [o.label for o in oracle.outcomes]
        # The new backends actually participated.
        assert any("[heap]" in label for label in labels), labels
        assert any("[modulo]" in label for label in labels), labels
