"""Reporting edge cases: sub-bus segments, bidirectional listings."""

import pytest

from repro.core.interconnect import Bus, BusAssignment, Interconnect
from repro.reporting import interconnect_listing, pins_summary
from repro.reporting.schedule_report import bus_allocation_table
from repro.partition.model import ChipSpec, OUTSIDE_WORLD, Partitioning


def test_split_bus_segments_rendered():
    ic = Interconnect([Bus(1, out_widths={1: 16}, in_widths={2: 16},
                           segments=[8, 8])])
    text = interconnect_listing(ic)
    assert "8/8" in text


def test_bidirectional_ports_rendered():
    ic = Interconnect([Bus(1, bi_widths={1: 8, 2: 8})],
                      bidirectional=True)
    text = interconnect_listing(ic)
    assert "P1<->8" in text


def test_pins_summary_without_pipe():
    p = Partitioning({OUTSIDE_WORLD: ChipSpec(10), 1: ChipSpec(20)})
    text = pins_summary(p, {0: 5, 1: 10})
    assert "pipe length" not in text
    assert "| P1" in text


def test_bus_allocation_empty_groups():
    from repro.cdfg import Cdfg
    from repro.cdfg.graph import make_io_node
    from repro.cdfg.analysis import UnitTiming
    from repro.scheduling.base import Schedule

    g = Cdfg()
    g.add_node(make_io_node("w", "v", 1, 2))
    s = Schedule(g, UnitTiming(), 3)
    s.place("w", 0)
    ic = Interconnect([Bus(1, out_widths={1: 8}, in_widths={2: 8})])
    assignment = BusAssignment()
    assignment.assign("w", 1)
    text = bus_allocation_table(g, s, ic, assignment)
    # Three group rows even though two are empty.
    assert text.count("...") == 3


class TestGantt:
    def result(self):
        from repro import synthesize_connection_first
        from repro.designs import (AR_GENERAL_PINS_UNIDIR,
                                   ar_general_design)
        from repro.modules.library import ar_filter_timing
        return synthesize_connection_first(
            ar_general_design(), AR_GENERAL_PINS_UNIDIR,
            ar_filter_timing(), 3)

    def test_gantt_lanes_cover_units_and_buses(self):
        from repro.reporting import gantt_chart
        result = self.result()
        text = gantt_chart(result.schedule, result.interconnect,
                           result.assignment)
        assert "P1.add0" in text
        assert "bus C1" in text
        assert "initiation rate 3" in text

    def test_multicycle_ops_stretch(self):
        from repro.cdfg import CdfgBuilder
        from repro.cdfg.analysis import UnitTiming
        from repro.reporting import gantt_chart
        from repro.scheduling.base import Schedule
        b = CdfgBuilder()
        b.op("m", "mul", 1)
        g = b.build()
        timing = UnitTiming(cycles_by_op_type={"mul": 2})
        s = Schedule(g, timing, 4)
        s.place("m", 1)
        text = gantt_chart(s)
        assert "~m" in text  # continuation marker in the second cycle

    def test_synthesis_report_bundles_everything(self):
        from repro.reporting import synthesis_report
        result = self.result()
        text = synthesis_report(result)
        assert "schedule (L=3" in text
        assert "interchip connection" in text
        assert "bus allocation" in text
        assert "pipe length" in text
