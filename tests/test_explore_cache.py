"""Cache-key stability and the JSON-lines result cache."""

import json
import os
import subprocess
import sys

import pytest

from repro.core.flow import SynthesisOptions
from repro.designs import (AR_SIMPLE_PINS, ar_simple_design,
                           random_partitioned_design)
from repro.explore.cache import ResultCache
from repro.explore.keys import job_key, options_fingerprint
from repro.partition.model import ChipSpec, Partitioning

SRC = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src")

_KEY_SCRIPT = """
import json, sys
from repro.core.flow import SynthesisOptions
from repro.designs import ar_simple_design, AR_SIMPLE_PINS, \\
    random_partitioned_design
from repro.explore.keys import job_key

keys = [
    job_key(ar_simple_design(), AR_SIMPLE_PINS, 2,
            SynthesisOptions(flow="simple")),
    job_key(*random_partitioned_design(11), rate=3,
            options=SynthesisOptions(flow="connection-first")),
]
print(json.dumps(keys))
"""


def _keys_in_subprocess(hashseed: str):
    env = dict(os.environ, PYTHONPATH=SRC, PYTHONHASHSEED=hashseed)
    out = subprocess.run([sys.executable, "-c", _KEY_SCRIPT],
                         capture_output=True, text=True, env=env,
                         check=True)
    return json.loads(out.stdout)


class TestKeyStability:
    def test_same_inputs_same_key(self):
        k1 = job_key(ar_simple_design(), AR_SIMPLE_PINS, 2,
                     SynthesisOptions(flow="simple"))
        k2 = job_key(ar_simple_design(), AR_SIMPLE_PINS, 2,
                     SynthesisOptions(flow="simple"))
        assert k1 == k2
        assert len(k1) == 64

    def test_dict_insertion_order_irrelevant(self):
        graph = ar_simple_design()
        forward = Partitioning({i: ChipSpec(32) for i in range(5)})
        backward = Partitioning(
            {i: ChipSpec(32) for i in reversed(range(5))})
        opts = SynthesisOptions(flow="simple")
        assert job_key(graph, forward, 2, opts) \
            == job_key(graph, backward, 2, opts)

    def test_key_differs_on_rate_budget_and_options(self):
        graph = ar_simple_design()
        opts = SynthesisOptions(flow="simple")
        base = job_key(graph, AR_SIMPLE_PINS, 2, opts)
        assert job_key(graph, AR_SIMPLE_PINS, 3, opts) != base
        assert job_key(graph, AR_SIMPLE_PINS.with_pins({1: 40}), 2,
                       opts) != base
        assert job_key(graph, AR_SIMPLE_PINS, 2,
                       SynthesisOptions(flow="simple",
                                        pin_method="bnb")) != base

    def test_irrelevant_options_normalized_away(self):
        # branching_factor is a connection-first knob; schedule-first
        # points must share one cache entry regardless of its value.
        graph = ar_simple_design()
        a = SynthesisOptions(flow="schedule-first", branching_factor=1)
        b = SynthesisOptions(flow="schedule-first", branching_factor=3)
        assert job_key(graph, AR_SIMPLE_PINS, 2, a) \
            == job_key(graph, AR_SIMPLE_PINS, 2, b)
        # ... but for connection-first it is load-bearing.
        c = SynthesisOptions(flow="connection-first",
                             branching_factor=1)
        d = SynthesisOptions(flow="connection-first",
                             branching_factor=3)
        assert job_key(graph, AR_SIMPLE_PINS, 2, c) \
            != job_key(graph, AR_SIMPLE_PINS, 2, d)

    def test_auto_flow_keeps_every_field(self):
        fp = options_fingerprint(SynthesisOptions(flow="auto"))
        assert set(fp) == set(
            SynthesisOptions(flow="auto").to_dict())

    def test_stable_across_processes_and_hashseeds(self):
        # The contract that makes the on-disk cache valid across
        # worker pools: keys do not depend on PYTHONHASHSEED or on
        # per-process set/dict iteration order.  Covers the random
        # design generator's determinism as well.
        keys_a = _keys_in_subprocess("0")
        keys_b = _keys_in_subprocess("424242")
        assert keys_a == keys_b
        in_process = [
            job_key(ar_simple_design(), AR_SIMPLE_PINS, 2,
                    SynthesisOptions(flow="simple")),
            job_key(*random_partitioned_design(11), rate=3,
                    options=SynthesisOptions(flow="connection-first")),
        ]
        assert keys_a == in_process


class TestRandomDesignDeterminism:
    def test_no_module_rng_state_consumed(self):
        import random
        random.seed(123)
        before = random.getstate()
        random_partitioned_design(5)
        assert random.getstate() == before

    def test_independent_of_call_interleaving(self):
        g1, _ = random_partitioned_design(9)
        random_partitioned_design(1)  # interleaved other-seed call
        g2, _ = random_partitioned_design(9)
        assert sorted(g1.node_names()) == sorted(g2.node_names())
        assert [(e.src, e.dst) for e in g1.edges()] \
            == [(e.src, e.dst) for e in g2.edges()]


# ---------------------------------------------------------------------
def _record(status="ok", pins=100):
    return {"status": status, "cached": False, "wall_ms": 5.0,
            "metrics": {"chips": 2, "buses": 3, "total_pins": pins,
                        "latency": 6, "wall_ms": 5.0}}


class TestResultCache:
    def test_memory_only_roundtrip(self):
        cache = ResultCache(None)
        assert cache.get("k") is None
        assert cache.put("k", _record())
        got = cache.get("k")
        assert got["metrics"]["total_pins"] == 100
        assert "cached" not in got  # per-run flag is stripped
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_persistence_roundtrip(self, tmp_path):
        path = str(tmp_path / "cache.jsonl")
        first = ResultCache(path)
        first.put("a", _record(pins=10))
        first.put("b", _record(status="degraded", pins=20))
        second = ResultCache(path)
        assert len(second) == 2
        assert second.get("b")["metrics"]["total_pins"] == 20

    def test_failures_never_cached(self, tmp_path):
        path = str(tmp_path / "cache.jsonl")
        cache = ResultCache(path)
        assert not cache.put("e", _record(status="error"))
        assert not cache.put("x", _record(status="budget_exhausted"))
        assert not os.path.exists(path) or len(ResultCache(path)) == 0

    def test_duplicate_put_is_noop(self, tmp_path):
        path = str(tmp_path / "cache.jsonl")
        cache = ResultCache(path)
        assert cache.put("k", _record(pins=1))
        assert not cache.put("k", _record(pins=2))
        assert cache.get("k")["metrics"]["total_pins"] == 1
        with open(path) as handle:
            assert len(handle.readlines()) == 1

    def test_corrupt_lines_tolerated(self, tmp_path):
        path = str(tmp_path / "cache.jsonl")
        cache = ResultCache(path)
        cache.put("good", _record())
        with open(path, "a") as handle:
            handle.write("{not json at all\n")
            handle.write('{"v": 99, "key": "bad-version", '
                         '"record": {}}\n')
            handle.write('{"v": 1, "no_key": true}\n')
            handle.write('{"v": 1, "key": "trunc')  # torn final write
        reloaded = ResultCache(path)
        assert len(reloaded) == 1
        assert reloaded.get("good") is not None
        assert reloaded.corrupt_lines == 4

    def test_deep_copies_isolate_callers(self):
        cache = ResultCache(None)
        cache.put("k", _record())
        got = cache.get("k")
        got["metrics"]["total_pins"] = -1
        assert cache.get("k")["metrics"]["total_pins"] == 100


class TestSyncAppend:
    def test_sync_appends_survive_reload(self, tmp_path):
        path = str(tmp_path / "cache.jsonl")
        cache = ResultCache(path, sync=True)
        assert cache.sync is True
        assert cache.put("a", _record(pins=7))
        assert ResultCache(path).get("a")["metrics"]["total_pins"] == 7

    def test_sync_defaults_off(self):
        assert ResultCache(None).sync is False


def _raw_line(key, pins, version=1):
    return json.dumps({"v": version, "key": key,
                       "record": _record(pins=pins)}) + "\n"


class TestCompaction:
    def test_removes_dead_duplicates_and_corruption(self, tmp_path):
        path = str(tmp_path / "cache.jsonl")
        # Simulate a second writer's stale appends plus a torn write.
        with open(path, "w") as handle:
            handle.write(_raw_line("a", pins=1))
            handle.write(_raw_line("a", pins=2))   # dead: superseded
            handle.write(_raw_line("b", pins=3))
            handle.write("{torn line\n")
        cache = ResultCache(path)
        assert len(cache) == 2
        assert cache.corrupt_lines == 1

        summary = cache.compact()
        assert summary["compacted"] is True
        assert summary["lines_before"] == 4
        assert summary["entries"] == 2
        assert summary["removed"] == 2
        assert cache.corrupt_lines == 0

        reloaded = ResultCache(path)
        assert len(reloaded) == 2
        assert reloaded.corrupt_lines == 0
        # Last write won: key "a" kept the superseding record.
        assert reloaded.get("a")["metrics"]["total_pins"] == 2
        assert reloaded.get("b")["metrics"]["total_pins"] == 3
        with open(path) as handle:
            assert len(handle.readlines()) == 2

    def test_compact_is_idempotent(self, tmp_path):
        path = str(tmp_path / "cache.jsonl")
        cache = ResultCache(path)
        cache.put("k", _record())
        assert cache.compact()["removed"] == 0
        again = cache.compact()
        assert again["compacted"] is True
        assert again["removed"] == 0
        assert ResultCache(path).get("k") is not None

    def test_memory_only_cache_declines(self):
        cache = ResultCache(None)
        cache.put("k", _record())
        assert cache.compact()["compacted"] is False

    def test_missing_file_empty_index_declines(self, tmp_path):
        cache = ResultCache(str(tmp_path / "never-written.jsonl"))
        assert cache.compact()["compacted"] is False

    def test_no_temp_file_left_behind(self, tmp_path):
        path = str(tmp_path / "cache.jsonl")
        cache = ResultCache(path)
        cache.put("k", _record())
        cache.compact()
        leftovers = [name for name in os.listdir(str(tmp_path))
                     if ".compact." in name]
        assert leftovers == []
