"""Tests for the Chapter 3 pin-allocation ILP and checker."""

import pytest

from repro.cdfg import Cdfg
from repro.cdfg.graph import make_io_node
from repro.core.pin_allocation import (PinAllocationChecker,
                                       PinAllocationProblem)
from repro.errors import InfeasibleError
from repro.ilp import solve_ilp
from repro.modules.library import ar_filter_timing
from repro.partition.model import ChipSpec, OUTSIDE_WORLD, Partitioning
from repro.scheduling.base import Schedule


def two_chip_graph(n_transfers=4, width=8):
    g = Cdfg()
    for i in range(n_transfers):
        g.add_node(make_io_node(f"w{i}", f"v{i}", 1, 2, bit_width=width))
    return g


def pins(chip1, chip2, world=64):
    return Partitioning({
        OUTSIDE_WORLD: ChipSpec(world),
        1: ChipSpec(chip1),
        2: ChipSpec(chip2),
    })


class TestProblemFeasibility:
    def test_roomy_budget_feasible(self):
        g = two_chip_graph(4)
        prob = PinAllocationProblem(g, pins(64, 64), 2)
        assert prob.solve_with_fixed({})

    def test_tight_budget_feasible(self):
        # 4 transfers x 8 bits over 2 groups: 16 output pins on chip 1,
        # 16 input pins on chip 2.
        g = two_chip_graph(4)
        prob = PinAllocationProblem(g, pins(16, 16), 2)
        assert prob.solve_with_fixed({})

    def test_too_tight_infeasible(self):
        g = two_chip_graph(4)
        prob = PinAllocationProblem(g, pins(8, 8), 2)
        assert not prob.solve_with_fixed({})

    def test_fixed_assignments_consume_capacity(self):
        g = two_chip_graph(4)
        prob = PinAllocationProblem(g, pins(16, 16), 2)
        # Three transfers in group 0 exceeds 16 pins (2 x 8 fits).
        assert prob.solve_with_fixed({"w0": 0, "w1": 0})
        assert not prob.solve_with_fixed({"w0": 0, "w1": 0, "w2": 0})

    def test_multifanout_value_shares_output(self):
        # One value to two chips: output pins counted once per group.
        g = Cdfg()
        g.add_node(make_io_node("wa", "v", 1, 2, bit_width=8))
        g.add_node(make_io_node("wb", "v", 1, 3, bit_width=8))
        p = Partitioning({
            OUTSIDE_WORLD: ChipSpec(64),
            1: ChipSpec(8),   # exactly one 8-bit output bundle
            2: ChipSpec(8),
            3: ChipSpec(8),
        })
        prob = PinAllocationProblem(g, p, 1)
        # Both transfers must be in group 0 (L=1) sharing the output.
        assert prob.solve_with_fixed({"wa": 0, "wb": 0})

    def test_bundle_refinement_external_vs_star(self):
        # Chip 2 receives 8 bits from chip 1 and 8 bits from outside;
        # the per-group ILP would allow 8 pins (alternate groups), but
        # bundles are physical: 16 pins are required.
        g = Cdfg()
        g.add_node(make_io_node("ext", "ve", OUTSIDE_WORLD, 2,
                                bit_width=8))
        g.add_node(make_io_node("star", "vs", 1, 2, bit_width=8))
        tight = Partitioning({
            OUTSIDE_WORLD: ChipSpec(64),
            1: ChipSpec(16),
            2: ChipSpec(8),
        })
        prob = PinAllocationProblem(g, tight, 2)
        assert not prob.solve_with_fixed({})
        roomy = Partitioning({
            OUTSIDE_WORLD: ChipSpec(64),
            1: ChipSpec(16),
            2: ChipSpec(16),
        })
        assert PinAllocationProblem(g, roomy, 2).solve_with_fixed({})

    def test_tableau_size_reported(self):
        g = two_chip_graph(3)
        prob = PinAllocationProblem(g, pins(32, 32), 2)
        n_vars, n_cons = prob.tableau_size()
        assert n_vars >= 3 * 2  # x variables at least
        assert n_cons >= 3      # cover constraints at least


class TestChecker:
    def make(self, chip1=16, chip2=16, method="gomory"):
        g = two_chip_graph(4)
        checker = PinAllocationChecker(g, pins(chip1, chip2), 2,
                                       method=method)
        schedule = Schedule(g, ar_filter_timing(), 2)
        return g, checker, schedule

    @pytest.mark.parametrize("method", ["gomory", "bnb"])
    def test_accepts_then_rejects_full_group(self, method):
        g, checker, schedule = self.make(method=method)
        for name, step in (("w0", 0), ("w1", 0)):
            node = g.node(name)
            assert checker.can_schedule(node, step, schedule)
            checker.commit(node, step, schedule)
            schedule.place(name, step)
        node = g.node("w2")
        assert not checker.can_schedule(node, 0, schedule)
        assert checker.can_schedule(node, 1, schedule)

    def test_infeasible_design_raises_at_init(self):
        g = two_chip_graph(4)
        with pytest.raises(InfeasibleError):
            PinAllocationChecker(g, pins(8, 8), 2)

    def test_methods_agree(self):
        g = two_chip_graph(4)
        schedule = Schedule(g, ar_filter_timing(), 2)
        gom = PinAllocationChecker(g, pins(16, 16), 2, method="gomory")
        bnb = PinAllocationChecker(g, pins(16, 16), 2, method="bnb")
        for name, step in (("w0", 0), ("w1", 1), ("w2", 0)):
            node = g.node(name)
            a = gom.can_schedule(node, step, schedule)
            b = bnb.can_schedule(node, step, schedule)
            assert a == b
            gom.commit(node, step, schedule)
            bnb.commit(node, step, schedule)
            schedule.place(name, step)

    def test_sharing_requires_same_step(self):
        g = Cdfg()
        g.add_node(make_io_node("wa", "v", 1, 2, bit_width=8))
        g.add_node(make_io_node("wb", "v", 1, 3, bit_width=8))
        p = Partitioning({
            OUTSIDE_WORLD: ChipSpec(64), 1: ChipSpec(16),
            2: ChipSpec(16), 3: ChipSpec(16),
        })
        checker = PinAllocationChecker(g, p, 2)
        schedule = Schedule(g, ar_filter_timing(), 2)
        node_a, node_b = g.node("wa"), g.node("wb")
        assert checker.can_schedule(node_a, 0, schedule)
        checker.commit(node_a, 0, schedule)
        schedule.place("wa", 0)
        # Same group (0) but different step (2): forbidden.
        assert not checker.can_schedule(node_b, 2, schedule)
        # Same step: allowed (shared output drive).
        assert checker.can_schedule(node_b, 0, schedule)


class TestAggregatedModel:
    """Section 3.1.2: merging same-route single-fanout transfers."""

    def test_size_reduction(self):
        from repro.designs import AR_SIMPLE_PINS, ar_simple_design
        prob = PinAllocationProblem(ar_simple_design(),
                                    AR_SIMPLE_PINS, 2)
        full_vars, full_cons = prob.tableau_size()
        agg = prob.build_aggregated_model()
        agg_vars, _n_int, agg_cons = agg.stats()
        assert agg_vars < full_vars / 2
        assert agg_cons < full_cons

    def test_feasibility_agrees_with_full_model(self):
        for chip1, chip2 in ((16, 16), (8, 8), (24, 16)):
            g = two_chip_graph(4)
            prob = PinAllocationProblem(g, pins(chip1, chip2), 2)
            agg = prob.build_aggregated_model()
            assert solve_ilp(agg).feasible \
                == prob.solve_with_fixed({})

    def test_multifanout_values_stay_individual(self):
        from repro.cdfg import Cdfg
        g = Cdfg()
        g.add_node(make_io_node("wa", "v", 1, 2, bit_width=8))
        g.add_node(make_io_node("wb", "v", 1, 3, bit_width=8))
        g.add_node(make_io_node("wc", "u", 1, 2, bit_width=8))
        p = Partitioning({OUTSIDE_WORLD: ChipSpec(64), 1: ChipSpec(32),
                          2: ChipSpec(32), 3: ChipSpec(32)})
        prob = PinAllocationProblem(g, p, 2)
        agg = prob.build_aggregated_model()
        names = {v.name for v in agg.vars}
        assert "x[wa,0]" in names      # multi-fanout: per-op variable
        assert "x[1->2w8,0]" in names  # singles: class variable
