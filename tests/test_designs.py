"""Tests for the reconstructed benchmark designs."""

import pytest

from repro.cdfg.analysis import (asap_schedule, compute_time_frames,
                                 critical_path_length)
from repro.cdfg.validate import validate_cdfg
from repro.designs import (AR_GENERAL_PINS_BIDIR, AR_GENERAL_PINS_UNIDIR,
                           AR_SIMPLE_PINS, ELLIPTIC_PINS_BIDIR,
                           ELLIPTIC_PINS_UNIDIR, ar_general_design,
                           ar_simple_design, elliptic_design,
                           elliptic_resources, random_partitioned_design)
from repro.modules.allocation import min_module_counts
from repro.modules.library import ar_filter_timing, elliptic_filter_timing
from repro.partition.simple import is_simple_partitioning


class TestArSimple:
    def test_operation_profile(self):
        g = ar_simple_design()
        assert g.op_type_counts() == {"mul": 16, "add": 12}

    def test_partition_io_statistics(self):
        # Figure 3.5: P1/P2 have 10 input + 2 output operations,
        # P3/P4 have 6 input + 2 output operations.
        g = ar_simple_design()
        for chip, (n_in, n_out) in {1: (10, 2), 2: (10, 2),
                                    3: (6, 2), 4: (6, 2)}.items():
            ins = [n for n in g.io_nodes() if n.dest_partition == chip]
            out_values = {n.value for n in g.io_nodes()
                          if n.source_partition == chip}
            assert len(ins) == n_in, f"P{chip} inputs"
            assert len(out_values) == n_out, f"P{chip} outputs"

    def test_is_simple(self):
        assert is_simple_partitioning(ar_simple_design())

    def test_min_units_match_section_3_4(self):
        g = ar_simple_design()
        res = min_module_counts(g, ar_filter_timing(), 2)
        assert res[(1, "add")] == 2 and res[(1, "mul")] == 2
        assert res[(3, "add")] == 1 and res[(3, "mul")] == 2

    def test_validates(self):
        validate_cdfg(ar_simple_design(), require_partitions=False)


class TestArGeneral:
    def test_operation_profile(self):
        g = ar_general_design()
        assert g.op_type_counts() == {"mul": 16, "add": 12}

    def test_io_inventory(self):
        g = ar_general_design()
        names = {n.name for n in g.io_nodes()}
        # 26 external inputs, 6 interchip transfers, 2 outputs.
        externals = [n for n in g.io_nodes() if n.source_partition == 0]
        outputs = [n for n in g.io_nodes() if n.dest_partition == 0]
        cross = [n for n in g.io_nodes()
                 if 0 not in (n.source_partition, n.dest_partition)]
        assert len(externals) == 26
        assert len(outputs) == 2
        assert len(cross) == 6
        assert {"X1", "X2", "O1", "O2", "I1", "Iq"} <= names

    def test_width_variety(self):
        g = ar_general_design()
        widths = {n.bit_width for n in g.io_nodes()}
        assert widths == {8, 12, 16}

    def test_not_simple(self):
        assert not is_simple_partitioning(ar_general_design())


class TestElliptic:
    def test_operation_profile(self):
        g = elliptic_design()
        assert g.op_type_counts() == {"add": 26, "mul": 8}

    def test_recursive_edges_degree_4(self):
        g = elliptic_design()
        assert len(g.recursive_edges()) == 4
        assert all(e.degree == 4 for e in g.recursive_edges())

    def test_minimum_rate_is_5(self):
        # The Section 4.4.2 property: frames infeasible at rate 4,
        # boundary-feasible at rate 5.
        g = elliptic_design()
        t = elliptic_filter_timing()
        assert not compute_time_frames(g, t, 30,
                                       initiation_rate=4).feasible()
        assert compute_time_frames(g, t, 30,
                                   initiation_rate=5).feasible()

    def test_degree_parameter(self):
        g = elliptic_design(degree=1)
        assert all(e.degree == 1 for e in g.recursive_edges())
        t = elliptic_filter_timing()
        # Degree 1 pushes the minimum rate to ~20 (the unmodified
        # filter's critical loop, Section 4.4.2).
        assert not compute_time_frames(g, t, 40,
                                       initiation_rate=16).feasible()
        assert compute_time_frames(g, t, 40,
                                   initiation_rate=20).feasible()

    def test_multifanout_input_value(self):
        g = elliptic_design()
        values = g.values_map()
        assert len(values["v.in"]) == 2  # Ia and Ib

    def test_resources_cover_rates(self):
        for L in (5, 6, 7):
            res = elliptic_resources(L)
            assert all(count >= 1 for count in res.values())
            assert len(res) == 10  # 5 chips x 2 op types


class TestRandomDesigns:
    @pytest.mark.parametrize("seed", range(6))
    def test_generated_designs_validate(self, seed):
        g, p = random_partitioned_design(seed)
        validate_cdfg(g, require_partitions=False)
        assert len(g.io_nodes()) >= 3

    def test_deterministic(self):
        g1, _ = random_partitioned_design(7)
        g2, _ = random_partitioned_design(7)
        assert sorted(g1.node_names()) == sorted(g2.node_names())
        assert [(e.src, e.dst) for e in g1.edges()] == \
            [(e.src, e.dst) for e in g2.edges()]


class TestFir:
    def test_profile(self):
        from repro.designs import fir_design
        g = fir_design()
        assert g.op_type_counts() == {"mul": 16, "add": 16}
        assert len(g.recursive_edges()) == 15  # one delay per tap join

    def test_validates(self):
        from repro.designs import fir_design
        validate_cdfg(fir_design(), require_partitions=False)
        validate_cdfg(fir_design(taps=8, chips=2),
                      require_partitions=False)

    def test_input_fans_out_to_every_chip(self):
        from repro.designs import fir_design
        g = fir_design(chips=4)
        assert len(g.values_map()["v.x"]) == 4

    def test_uneven_split_rejected(self):
        from repro.designs import fir_design
        with pytest.raises(ValueError):
            fir_design(taps=10, chips=4)

    def test_synthesizes_and_simulates(self):
        from repro import synthesize_connection_first
        from repro.designs import FIR_PINS, fir_design
        from repro.sim import simulate_result
        result = synthesize_connection_first(
            fir_design(), FIR_PINS, elliptic_filter_timing(), 3)
        assert result.verify() == []
        report = simulate_result(result, n_instances=5, seed=9)
        assert report.transfers_checked == 8 * 5
