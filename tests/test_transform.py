"""Tests for CDFG transforms: TDM split/merge and loop unrolling."""

import pytest

from repro.cdfg import CdfgBuilder
from repro.cdfg.ops import OpKind
from repro.cdfg.transform import (insert_time_division_multiplexing,
                                  unroll_fixed_loop)
from repro.cdfg.validate import validate_cdfg
from repro.errors import CdfgError


def wide_transfer_graph():
    b = CdfgBuilder()
    x = b.op("x", "add", 1, bit_width=32)
    y = b.op("y", "add", 2, bit_width=32)
    b.io("w", "v", source=x, dests=[y], source_partition=1,
         dest_partition=2, bit_width=32)
    return b.build()


class TestTdm:
    def test_split_produces_sub_transfers(self):
        g = wide_transfer_graph()
        subs = insert_time_division_multiplexing(g, "w", [16, 16])
        assert subs == ["w.0", "w.1"]
        assert "w" not in g
        assert g.node("w.0").bit_width == 16
        assert g.node("w.split").kind is OpKind.SPLIT
        assert g.node("w.merge").kind is OpKind.MERGE
        validate_cdfg(g, require_partitions=False)

    def test_dataflow_rewired_through_split_merge(self):
        g = wide_transfer_graph()
        insert_time_division_multiplexing(g, "w", [24, 8])
        assert g.successors("x") == ["w.split"]
        assert g.predecessors("y") == ["w.merge"]
        assert sorted(g.successors("w.split")) == ["w.0", "w.1"]

    def test_widths_must_sum(self):
        g = wide_transfer_graph()
        with pytest.raises(CdfgError, match="sum"):
            insert_time_division_multiplexing(g, "w", [16, 8])

    def test_needs_two_components(self):
        g = wide_transfer_graph()
        with pytest.raises(CdfgError, match=">= 2"):
            insert_time_division_multiplexing(g, "w", [32])

    def test_only_io_nodes_splittable(self):
        g = wide_transfer_graph()
        with pytest.raises(CdfgError, match="not an I/O operation"):
            insert_time_division_multiplexing(g, "x", [16, 16])

    def test_uneven_widths(self):
        g = wide_transfer_graph()
        subs = insert_time_division_multiplexing(g, "w", [20, 8, 4])
        assert [g.node(s).bit_width for s in subs] == [20, 8, 4]


class TestUnroll:
    def body(self):
        b = CdfgBuilder()
        x = b.op("x", "add", 1)
        y = b.op("y", "mul", 1, inputs=[x])
        return b.build()

    def test_unroll_replicates_nodes(self):
        flat = unroll_fixed_loop(self.body(), 3)
        assert len(flat) == 6
        assert "x@0" in flat and "y@2" in flat

    def test_carried_dependence_links_iterations(self):
        flat = unroll_fixed_loop(self.body(), 3, carried={"y": "x"})
        assert "x@1" in flat.successors("y@0")
        assert "x@2" in flat.successors("y@1")

    def test_single_iteration(self):
        flat = unroll_fixed_loop(self.body(), 1, carried={"y": "x"})
        assert len(flat) == 2
        # No carried edges with a single iteration.
        assert flat.successors("y@0") == []

    def test_bad_carried_names_rejected(self):
        with pytest.raises(CdfgError):
            unroll_fixed_loop(self.body(), 2, carried={"nope": "x"})

    def test_zero_iterations_rejected(self):
        with pytest.raises(CdfgError):
            unroll_fixed_loop(self.body(), 0)
