"""Tests for the hardware module library and FU lower bounds."""

import pytest

from repro.cdfg.graph import make_functional_node, make_io_node
from repro.errors import ModuleLibraryError, SchedulingError
from repro.modules import (DesignTiming, HardwareModule, ModuleSet,
                           format_resource_vector, min_units_multi_cycle,
                           min_units_single_cycle)
from repro.modules.library import ar_filter_timing, elliptic_filter_timing


class TestModuleSet:
    def test_lookup(self):
        ms = ModuleSet.of(HardwareModule("adder", "add", 30.0))
        assert ms.module("add").delay_ns == 30.0
        assert "add" in ms and "mul" not in ms

    def test_missing_module_raises(self):
        ms = ModuleSet.of()
        with pytest.raises(ModuleLibraryError):
            ms.module("add")

    def test_registration_mismatch_rejected(self):
        with pytest.raises(ModuleLibraryError):
            ModuleSet({"mul": HardwareModule("adder", "add", 30.0)})

    def test_cycles_derived_from_delay(self):
        m = HardwareModule("big", "mul", delay_ns=210.0)
        assert m.cycles_at(250.0) == 1
        assert m.cycles_at(100.0) == 3

    def test_explicit_cycles_win(self):
        m = HardwareModule("mul2", "mul", delay_ns=2.0, cycles=2)
        assert m.cycles_at(1000.0) == 2


class TestDesignTiming:
    def test_ar_timing_values(self):
        t = ar_filter_timing()
        add = make_functional_node("a", "add", 1)
        mul = make_functional_node("m", "mul", 1)
        io = make_io_node("w", "v", 1, 2)
        assert t.delay_ns(add) == 30.0
        assert t.delay_ns(mul) == 210.0
        assert t.delay_ns(io) == 10.0
        assert t.cycles(mul) == 1  # 210 < 250
        assert t.chaining_allowed()
        assert t.must_start_at_boundary(io)
        assert not t.must_start_at_boundary(add)

    def test_elliptic_timing_multicycle(self):
        t = elliptic_filter_timing()
        mul = make_functional_node("m", "mul", 1)
        assert t.cycles(mul) == 2
        assert t.must_start_at_boundary(mul)
        assert not t.chaining_allowed()
        assert not t.is_pipelined_unit(mul)

    def test_per_partition_module_sets(self):
        fast = ModuleSet.of(HardwareModule("fadd", "add", 10.0))
        slow = ModuleSet.of(HardwareModule("sadd", "add", 90.0))
        t = DesignTiming(100.0, default=slow, module_sets={2: fast},
                         io_delay_ns=5.0)
        a1 = make_functional_node("a1", "add", 1)
        a2 = make_functional_node("a2", "add", 2)
        assert t.delay_ns(a1) == 90.0
        assert t.delay_ns(a2) == 10.0

    def test_io_must_fit_cycle(self):
        ms = ModuleSet.of(HardwareModule("adder", "add", 30.0))
        with pytest.raises(ModuleLibraryError):
            DesignTiming(100.0, default=ms, io_delay_ns=150.0)


class TestLowerBounds:
    def test_single_cycle_bound(self):
        assert min_units_single_cycle(5, 2) == 3
        assert min_units_single_cycle(4, 2) == 2
        assert min_units_single_cycle(0, 3) == 0

    def test_multi_cycle_bound_eq_7_5(self):
        # 3 two-cycle ops at L=6: floor(6/2)=3 slots per unit -> 1 unit.
        assert min_units_multi_cycle(3, 6, 2) == 1
        # At L=5: floor(5/2)=2 slots -> 2 units.
        assert min_units_multi_cycle(3, 5, 2) == 2
        # Tighter than the naive ceil(n*m/L) = ceil(6/5) = 2 in general:
        # 2 three-cycle ops at L=4: floor(4/3)=1 -> 2 units (naive: 2).
        assert min_units_multi_cycle(2, 4, 3) == 2

    def test_undefined_below_cycle_count(self):
        with pytest.raises(SchedulingError):
            min_units_multi_cycle(1, 1, 2)

    def test_pipelined_unit_uses_simple_bound(self):
        assert min_units_multi_cycle(4, 2, 3, pipelined=True) == 2

    def test_format_resource_vector(self):
        text = format_resource_vector({(1, "add"): 2, (1, "mul"): 1,
                                       (2, "add"): 1})
        assert text == "P1:(2+,1*) P2:(1+)"


class TestMinorClocks:
    """Section 2.2's two-minor-clock scheme (io_step_multiple)."""

    def test_io_step_gate(self):
        ms = ModuleSet.of(HardwareModule("adder", "add", 30.0))
        t = DesignTiming(100.0, default=ms, io_delay_ns=10.0,
                         io_step_multiple=2)
        assert t.io_step_allowed(0)
        assert not t.io_step_allowed(1)
        assert t.io_step_allowed(4)

    def test_invalid_multiple_rejected(self):
        ms = ModuleSet.of(HardwareModule("adder", "add", 30.0))
        with pytest.raises(ModuleLibraryError):
            DesignTiming(100.0, default=ms, io_step_multiple=0)

    def test_scheduler_respects_io_minor_clock(self):
        from repro.cdfg import CdfgBuilder
        from repro.scheduling import ListScheduler
        ms = ModuleSet.of(HardwareModule("adder", "add", 90.0))
        t = DesignTiming(100.0, default=ms, io_delay_ns=10.0,
                         chaining=False, io_step_multiple=2)
        b = CdfgBuilder()
        i = b.inp("i", partition=1)
        a = b.op("a", "add", 1, inputs=[i])
        b.out("o", a, partition=1)
        g = b.build()
        s = ListScheduler(g, t, 2, {(1, "add"): 1}).run()
        # 'a' finishes at step 1; the output transfer must wait for the
        # next I/O minor edge at step 2.
        assert s.step("i") % 2 == 0
        assert s.step("o") % 2 == 0
        assert s.step("o") >= 2
