"""Tests for the CDFG graph structure and builder."""

import pytest

from repro.cdfg import Cdfg, CdfgBuilder, OpKind
from repro.cdfg.graph import (Node, guards_mutually_exclusive,
                              make_functional_node, make_io_node)
from repro.errors import CdfgError


class TestGraphBasics:
    def test_add_and_query_nodes(self):
        g = Cdfg("t")
        g.add_node(make_functional_node("a", "add", 1))
        assert "a" in g
        assert g.node("a").op_type == "add"
        assert len(g) == 1

    def test_duplicate_node_rejected(self):
        g = Cdfg()
        g.add_node(make_functional_node("a", "add", 1))
        with pytest.raises(CdfgError):
            g.add_node(make_functional_node("a", "mul", 1))

    def test_edge_endpoints_must_exist(self):
        g = Cdfg()
        g.add_node(make_functional_node("a", "add", 1))
        with pytest.raises(CdfgError):
            g.add_edge("a", "missing")
        with pytest.raises(CdfgError):
            g.add_edge("missing", "a")

    def test_negative_degree_rejected(self):
        g = Cdfg()
        g.add_node(make_functional_node("a", "add", 1))
        g.add_node(make_functional_node("b", "add", 1))
        with pytest.raises(CdfgError):
            g.add_edge("a", "b", degree=-1)

    def test_successors_exclude_recursive_by_default(self):
        g = Cdfg()
        g.add_node(make_functional_node("a", "add", 1))
        g.add_node(make_functional_node("b", "add", 1))
        g.add_edge("a", "b", degree=1)
        assert g.successors("a") == []
        assert g.successors("a", include_recursive=True) == ["b"]
        assert g.predecessors("b") == []
        assert g.predecessors("b", include_recursive=True) == ["a"]

    def test_values_map_groups_same_value(self):
        g = Cdfg()
        g.add_node(make_io_node("w1", "v", 1, 2))
        g.add_node(make_io_node("w2", "v", 1, 3))
        g.add_node(make_io_node("w3", "u", 2, 3))
        groups = g.values_map()
        assert sorted(n.name for n in groups["v"]) == ["w1", "w2"]
        assert len(groups["u"]) == 1

    def test_partitions_collects_all_references(self):
        g = Cdfg()
        g.add_node(make_functional_node("a", "add", 1))
        g.add_node(make_io_node("w", "v", 2, 3))
        assert g.partitions() == [1, 2, 3]

    def test_copy_is_independent(self):
        g = Cdfg()
        g.add_node(make_functional_node("a", "add", 1))
        clone = g.copy()
        clone.add_node(make_functional_node("b", "add", 1))
        assert "b" not in g

    def test_subgraph(self):
        g = Cdfg()
        for name in "abc":
            g.add_node(make_functional_node(name, "add", 1))
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        sub = g.subgraph(["a", "b"])
        assert "c" not in sub
        assert len(list(sub.edges())) == 1

    def test_op_type_counts(self):
        g = Cdfg()
        g.add_node(make_functional_node("a", "add", 1))
        g.add_node(make_functional_node("b", "add", 1))
        g.add_node(make_functional_node("c", "mul", 1))
        assert g.op_type_counts() == {"add": 2, "mul": 1}


class TestGuards:
    def test_conflicting_guards_are_exclusive(self):
        a = frozenset({("c", True)})
        b = frozenset({("c", False)})
        assert guards_mutually_exclusive(a, b)

    def test_same_branch_not_exclusive(self):
        a = frozenset({("c", True)})
        b = frozenset({("c", True), ("d", False)})
        assert not guards_mutually_exclusive(a, b)

    def test_unguarded_never_exclusive(self):
        a = frozenset()
        b = frozenset({("c", True)})
        assert not guards_mutually_exclusive(a, b)

    def test_node_api(self):
        n1 = make_io_node("w1", "v", 1, 2, guard={"c": True})
        n2 = make_io_node("w2", "u", 1, 2, guard={"c": False})
        assert n1.mutually_exclusive_with(n2)


class TestBuilder:
    def test_builder_wires_inputs(self):
        b = CdfgBuilder()
        x = b.inp("x", partition=1)
        y = b.op("y", "add", 1, inputs=[x])
        b.out("o", y, partition=1)
        g = b.build()
        assert g.successors("x") == ["y"]
        assert g.successors("y") == ["o"]

    def test_io_splices_between_partitions(self):
        b = CdfgBuilder()
        x = b.op("x", "add", 1)
        y = b.op("y", "add", 2)
        b.io("w", "v", source=x, dests=[y], source_partition=1,
             dest_partition=2)
        g = b.build()
        node = g.node("w")
        assert node.kind is OpKind.IO
        assert g.successors("x") == ["w"]
        assert g.predecessors("y") == ["w"]

    def test_recursive_edge(self):
        b = CdfgBuilder()
        x = b.op("x", "add", 1)
        y = b.op("y", "add", 1, inputs=[x])
        b.recursive(y, x, degree=2)
        g = b.build()
        (edge,) = g.recursive_edges()
        assert edge.degree == 2

    def test_const_autonames(self):
        b = CdfgBuilder()
        c1 = b.const()
        c2 = b.const()
        assert c1 != c2
