"""Edge cases for I/O node insertion: recursion across cuts, reuse."""

import pytest

from repro.cdfg import CdfgBuilder
from repro.cdfg.validate import validate_cdfg
from repro.modules.library import DesignTiming, HardwareModule, ModuleSet
from repro.partition import insert_io_nodes
from repro.partition.model import ChipSpec, OUTSIDE_WORLD, Partitioning
from repro.scheduling import ListScheduler


def timing():
    return DesignTiming(
        clock_period=100.0,
        default=ModuleSet.of(
            HardwareModule("adder", "add", delay_ns=40.0)),
        io_delay_ns=10.0, chaining=False)


class TestRecursiveCutEdges:
    def test_recursive_cross_edge_spliced_with_degree(self):
        # producer on chip 1 feeds a consumer on chip 2 one instance
        # later: the splice keeps the recursion degree on the transfer
        # -> consumer leg (the transfer then belongs to the producer's
        # instance timeline).
        b = CdfgBuilder()
        x = b.op("x", "add", 1)
        y = b.op("y", "add", 2)
        b.edge(x, y, degree=1)
        g = b.build()
        created = insert_io_nodes(g)
        assert len(created) == 1
        io = created[0]
        (leg,) = [e for e in g.out_edges(io) if e.dst == "y"]
        assert leg.degree == 1
        (feed,) = g.in_edges(io)
        assert feed.degree == 0
        validate_cdfg(g, require_partitions=False)

    def test_spliced_recursive_design_schedules(self):
        b = CdfgBuilder()
        x = b.op("x", "add", 1)
        y = b.op("y", "add", 2)
        z = b.op("z", "add", 1, inputs=[])
        b.edge(x, y, degree=0)
        b.edge(y, z, degree=2)  # feedback two instances later
        g = b.build()
        insert_io_nodes(g)
        validate_cdfg(g, require_partitions=False)
        schedule = ListScheduler(g, timing(), 3,
                                 {(1, "add"): 1, (2, "add"): 1}).run()
        assert schedule.verify() == []

    def test_mixed_degrees_to_one_destination(self):
        # Same producer feeds chip 2 both directly and recursively:
        # one transfer per (value, destination), both legs kept.
        b = CdfgBuilder()
        x = b.op("x", "add", 1)
        y1 = b.op("y1", "add", 2)
        y2 = b.op("y2", "add", 2)
        b.edge(x, y1, degree=0)
        b.edge(x, y2, degree=1)
        g = b.build()
        created = insert_io_nodes(g)
        assert len(created) == 1
        io = created[0]
        degrees = sorted(e.degree for e in g.out_edges(io))
        assert degrees == [0, 1]


class TestNamingAndReuse:
    def test_fresh_names_avoid_collisions(self):
        b = CdfgBuilder()
        b.op("X1", "add", 1)  # collides with the default prefix
        x = b.op("x", "add", 1)
        y = b.op("y", "add", 2)
        b.edge(x, y)
        g = b.build()
        created = insert_io_nodes(g)
        assert created and created[0] != "X1"

    def test_multiple_consumers_one_transfer(self):
        b = CdfgBuilder()
        x = b.op("x", "add", 1, bit_width=12)
        consumers = [b.op(f"c{i}", "add", 2) for i in range(3)]
        for c in consumers:
            b.edge(x, c)
        g = b.build()
        created = insert_io_nodes(g)
        assert len(created) == 1
        io_node = g.node(created[0])
        assert io_node.bit_width == 12
        assert len(g.successors(created[0])) == 3
