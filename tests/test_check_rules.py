"""Every unified-checker rule must fire on a targeted corruption.

A checker that always returns a clean report would pass every flow
test; these tests take valid synthesis results, corrupt exactly the
invariant one rule guards, and demand a violation from that rule (and
a clean report beforehand).
"""

import pytest

from repro import synthesize, synthesize_connection_first
from repro.check import CheckError, check_result, rule_names
from repro.check.rules import RULES, enforceable_violations
from repro.designs import (AR_GENERAL_PINS_UNIDIR, AR_SIMPLE_PINS,
                           ar_general_design, ar_simple_design)
from repro.errors import ReproError
from repro.modules.library import ar_filter_timing
from repro.partition.model import ChipSpec, Partitioning


@pytest.fixture()
def result():
    return synthesize_connection_first(
        ar_general_design(), AR_GENERAL_PINS_UNIDIR,
        ar_filter_timing(), 3)


@pytest.fixture(scope="module")
def simple_result():
    return synthesize(ar_simple_design(), AR_SIMPLE_PINS,
                      ar_filter_timing(), 2, flow="simple")


def rules_hit(result):
    return set(check_result(result).by_rule())


def test_clean_result_is_clean(result):
    report = check_result(result)
    assert report.ok, report.messages()
    assert report.rules_run == rule_names()
    assert not report.rules_skipped


def test_scheduled_rule(result):
    victim = next(n.name for n in result.graph.functional_nodes())
    del result.schedule.start_step[victim]
    assert "scheduled" in rules_hit(result)


def test_precedence_rule(result):
    schedule = result.schedule
    for edge in result.graph.edges():
        if edge.is_recursive():
            continue
        if schedule.is_scheduled(edge.src) \
                and schedule.is_scheduled(edge.dst) \
                and schedule.step(edge.dst) > schedule.step(edge.src):
            schedule.start_step[edge.dst] = max(
                0, schedule.step(edge.src) - 1)
            schedule.start_ns[edge.dst] = schedule.start_step[edge.dst] \
                * schedule.timing.clock_period
            break
    assert "precedence" in rules_hit(result)


def test_recursion_rule():
    from repro.designs import (ELLIPTIC_PINS_UNIDIR, elliptic_design,
                               elliptic_resources)
    from repro.modules.library import elliptic_filter_timing
    res = synthesize_connection_first(
        elliptic_design(), ELLIPTIC_PINS_UNIDIR,
        elliptic_filter_timing(), 6, resources=elliptic_resources(6))
    res.schedule.start_step["add26"] = res.schedule.step("X33") \
        + 4 * 6 + 1
    res.schedule.start_ns["add26"] = res.schedule.start_step["add26"] \
        * res.schedule.timing.clock_period
    assert "recursion" in rules_hit(res)


def test_chaining_rule(result):
    schedule = result.schedule
    period = schedule.timing.clock_period
    for name in schedule.start_step:
        node = result.graph.node(name)
        if node.is_free():
            continue
        if schedule.timing.must_start_at_boundary(node):
            schedule.start_ns[name] += 0.4 * period
            break
    else:  # no boundary op: overrun a cycle window instead
        name = next(n.name for n in result.graph.functional_nodes()
                    if n.name in schedule.start_step)
        schedule.start_ns[name] += 10 * period
    assert "chaining" in rules_hit(result)


def test_resources_rule(result):
    key = next(iter(result.resources))
    result.resources[key] = 0
    assert "resources" in rules_hit(result)


def test_pin_budget_rule(result):
    result.partitioning = result.partitioning.with_pins({1: 8})
    assert "pin-budget" in rules_hit(result)


def test_pin_split_rule(result):
    # Re-declare chip 1 with a 4-pin output split: the existing ports
    # cannot possibly fit.
    chips = {i: result.partitioning.chip(i)
             for i in result.partitioning.indices()}
    total = chips[1].total_pins
    chips[1] = ChipSpec(total, input_pins=total - 4, output_pins=4)
    result.partitioning = Partitioning(chips)
    assert "pin-split" in rules_hit(result)


def test_pin_step_rule(result):
    # One pin total: the per-group transferred bits cannot fit no
    # matter what interconnect is built.
    result.partitioning = result.partitioning.with_pins({1: 1})
    assert "pin-step" in rules_hit(result)


def test_port_model_rule(result):
    bus = result.interconnect.buses[0]
    assert bus.out_widths or bus.in_widths
    bus.bi_widths[1] = 8
    assert "port-model" in rules_hit(result)


def test_assignment_rule_missing_bus(result):
    victim = next(iter(result.assignment.bus_of))
    del result.assignment.bus_of[victim]
    assert "assignment" in rules_hit(result)


def test_assignment_rule_unknown_op(result):
    result.assignment.assign("ghost-op", 1)
    assert "assignment" in rules_hit(result)


def test_bus_capable_rule(result):
    victim = next(iter(result.assignment.bus_of))
    result.assignment.assign(victim, 999)
    assert "bus-capable" in rules_hit(result)


def test_bus_conflict_rule(result):
    # Pile every transfer onto bus 1 (widening its ports so the
    # capability rule stays quiet): group collisions are inevitable.
    bus1 = result.interconnect.bus(1)
    for node in result.graph.io_nodes():
        bus1.out_widths[node.source_partition] = max(
            bus1.out_widths.get(node.source_partition, 0),
            node.bit_width)
        bus1.in_widths[node.dest_partition] = max(
            bus1.in_widths.get(node.dest_partition, 0),
            node.bit_width)
        result.assignment.assign(node.name, 1)
    assert "bus-conflict" in rules_hit(result)


def test_subbus_rule_bad_segment(result):
    result.interconnect.buses[0].segments = [0, 8]
    assert "subbus" in rules_hit(result)


def test_subbus_rule_port_exceeds_segments(result):
    bus = result.interconnect.buses[0]
    width = max(list(bus.out_widths.values())
                + list(bus.in_widths.values()))
    bus.segments = [1, 1]
    hit = check_result(result).by_rule()
    assert width > 2
    assert "subbus" in hit


def test_simple_alloc_rule_missing(simple_result):
    import copy
    res = copy.deepcopy(simple_result)
    victim = next(iter(res.simple_allocation.allocation))
    del res.simple_allocation.allocation[victim]
    assert "simple-alloc" in rules_hit(res)


def test_simple_alloc_rule_width_mismatch(simple_result):
    import copy
    res = copy.deepcopy(simple_result)
    victim = next(iter(res.simple_allocation.allocation))
    bus, bits = res.simple_allocation.allocation[victim][0]
    res.simple_allocation.allocation[victim] = [(bus, bits + 1)]
    assert "simple-alloc" in rules_hit(res)


def test_simple_result_is_clean(simple_result):
    assert check_result(simple_result).ok


# ---------------------------------------------------------------------
def test_rules_toggle_off(result):
    result.partitioning = result.partitioning.with_pins({1: 1})
    report = check_result(result,
                          disable=("pin-budget", "pin-step"))
    assert "pin-budget" not in report.by_rule()
    assert "pin-step" not in report.by_rule()
    assert set(report.rules_skipped) == {"pin-budget", "pin-step"}


def test_rules_subset(result):
    report = check_result(result, rules=("precedence", "resources"))
    assert report.rules_run == ["precedence", "resources"]


def test_unknown_rule_raises(result):
    with pytest.raises(ReproError):
        check_result(result, rules=("not-a-rule",))
    with pytest.raises(ReproError):
        check_result(result, disable=("not-a-rule",))


def test_every_rule_has_description():
    assert len({r.name for r in RULES}) == len(RULES)
    assert all(r.description for r in RULES)


def test_raise_if_violations(result):
    result.partitioning = result.partitioning.with_pins({1: 1})
    with pytest.raises(CheckError) as info:
        check_result(result).raise_if_violations()
    assert not info.value.report.ok


def test_enforceable_tolerates_declared_overruns(result):
    result.partitioning = result.partitioning.with_pins({1: 1})
    report = check_result(result)
    assert enforceable_violations(result, report)
    result.stats["budget_overruns"] = ["partition 1 over budget"]
    hard = enforceable_violations(result, report)
    assert all(v.rule not in ("pin-budget", "pin-step", "pin-split")
               for v in hard)


def test_synthesize_check_kwarg():
    res = synthesize(ar_general_design(), AR_GENERAL_PINS_UNIDIR,
                     ar_filter_timing(), 3, flow="connection-first",
                     check=True)
    assert check_result(res).ok
