"""Tests for the automatic TDM advisor (Section 7.3 future work)."""

import pytest

from repro.cdfg import CdfgBuilder
from repro.core.tdm_advisor import advise_tdm, apply_advice
from repro.modules.library import DesignTiming, HardwareModule, ModuleSet
from repro.partition.model import ChipSpec, OUTSIDE_WORLD, Partitioning


def wide_design(width=32):
    b = CdfgBuilder("tdm")
    a = b.io("a", "v.a", source=b.const("s", partition=OUTSIDE_WORLD,
                                        bit_width=8),
             dests=[], source_partition=OUTSIDE_WORLD,
             dest_partition=1, bit_width=8)
    acc = b.op("acc", "add", 1, inputs=[a], bit_width=width)
    b.io("wide", "v.w", source=acc, dests=[], source_partition=1,
         dest_partition=2, bit_width=width)
    b.op("sink", "add", 2, inputs=["wide"], bit_width=width)
    return b.build()


def budgets(chip1, chip2, world=32):
    return Partitioning({OUTSIDE_WORLD: ChipSpec(world),
                         1: ChipSpec(chip1), 2: ChipSpec(chip2)})


class TestAdvisor:
    def test_no_advice_when_roomy(self):
        plan = advise_tdm(wide_design(), budgets(64, 48), 2)
        assert not plan
        assert plan.demand_before == plan.demand_after

    def test_splits_widest_transfer_under_pressure(self):
        # Chip 2 has 24 pins but must receive a 32-bit value.
        plan = advise_tdm(wide_design(), budgets(40, 24), 2)
        assert "wide" in plan.splits
        assert sum(plan.splits["wide"]) == 32
        assert plan.demand_after[2] <= 24

    def test_respects_min_component_width(self):
        plan = advise_tdm(wide_design(width=16), budgets(24, 4), 4,
                          min_component=8)
        # 16 -> 2x8 allowed; 8 -> 2x4 would violate min_component.
        parts = plan.splits.get("wide", [16])
        assert min(parts) >= 8

    def test_pieces_bounded_by_rate(self):
        # At L=2 a transfer splits at most into 2 components (each
        # component needs its own cycle within the initiation window).
        plan = advise_tdm(wide_design(), budgets(40, 8), 2)
        for parts in plan.splits.values():
            assert len(parts) <= 2

    def test_apply_advice_rewrites_graph(self):
        g = wide_design()
        plan = advise_tdm(g, budgets(40, 24), 2)
        created = apply_advice(g, plan)
        assert created["wide"] == ["wide.0", "wide.1"]
        assert "wide" not in g
        from repro.cdfg.validate import validate_cdfg
        validate_cdfg(g, require_partitions=False)


class TestEndToEnd:
    def test_advised_design_fits_tight_budget(self):
        from repro import synthesize_connection_first
        from repro.errors import ReproError
        timing = DesignTiming(
            clock_period=100.0,
            default=ModuleSet.of(
                HardwareModule("adder", "add", delay_ns=40.0)),
            io_delay_ns=10.0, chaining=False)
        tight = budgets(40, 24)
        g_plain = wide_design()
        with pytest.raises(ReproError):
            synthesize_connection_first(g_plain, tight, timing, 2)
        g_advised = wide_design()
        plan = advise_tdm(g_advised, tight, 2)
        apply_advice(g_advised, plan)
        result = synthesize_connection_first(g_advised, tight, timing, 2)
        assert result.verify() == []
