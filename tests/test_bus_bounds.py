"""Tests for the Section 4.1.1 bus-count upper bound."""

from repro.cdfg import Cdfg
from repro.cdfg.graph import make_io_node
from repro.core.bus_bounds import max_buses_pipelined
from repro.partition.model import ChipSpec, OUTSIDE_WORLD, Partitioning


def partitioning(**pins):
    chips = {OUTSIDE_WORLD: ChipSpec(pins.pop("world", 256))}
    for key, total in pins.items():
        chips[int(key[1:])] = ChipSpec(total)
    return Partitioning(chips)


def test_no_ios_no_buses():
    g = Cdfg()
    assert max_buses_pipelined(g, partitioning(p1=64), 2) == 0


def test_bound_limited_by_pins():
    g = Cdfg()
    for i in range(4):
        g.add_node(make_io_node(f"w{i}", f"v{i}", 1, 2, bit_width=8))
    # Chip 1 has 16 output-capable pins -> at most 2 eight-bit output
    # ports; chip 2 could take 4 input ports, so min is 2.
    p = partitioning(p1=16, p2=64)
    assert max_buses_pipelined(g, p, 1) == 2


def test_bound_limited_by_op_count():
    g = Cdfg()
    g.add_node(make_io_node("w", "v", 1, 2, bit_width=8))
    # Plenty of pins but only one transfer: one output port max.
    p = partitioning(p1=256, p2=256)
    assert max_buses_pipelined(g, p, 1) == 1


def test_multifanout_counts_one_output_port():
    g = Cdfg()
    g.add_node(make_io_node("wa", "v", 1, 2, bit_width=8))
    g.add_node(make_io_node("wb", "v", 1, 3, bit_width=8))
    p = partitioning(p1=256, p2=256, p3=256)
    # One output value, two input ports -> min(1, 2) = 1.
    assert max_buses_pipelined(g, p, 1) == 1


def test_mixed_widths_reserve_min_for_other_direction():
    g = Cdfg()
    g.add_node(make_io_node("in1", "a", 2, 1, bit_width=16))
    g.add_node(make_io_node("out1", "b", 1, 2, bit_width=8))
    g.add_node(make_io_node("out2", "c", 1, 2, bit_width=8))
    # Chip 1: 32 pins; must reserve 16 for the input value at L=1,
    # leaving 16 for two 8-bit output ports.
    p = partitioning(p1=32, p2=256)
    bound = max_buses_pipelined(g, p, 1)
    assert bound == 3  # 2 output ports + 1 port for the reverse link

    # At L=2 the two outputs can share one port's two slots, but the
    # upper bound counts potential ports, which stays the same here.
    assert max_buses_pipelined(g, p, 2) >= 2


def test_bidirectional_halves_ports():
    g = Cdfg()
    for i in range(4):
        g.add_node(make_io_node(f"w{i}", f"v{i}", 1, 2, bit_width=8))
    chips = {
        OUTSIDE_WORLD: ChipSpec(64, bidirectional=True),
        1: ChipSpec(32, bidirectional=True),
        2: ChipSpec(32, bidirectional=True),
    }
    p = Partitioning(chips)
    # 4 ports per chip max -> 8 total -> 4 buses.
    assert max_buses_pipelined(g, p, 1) == 4


def test_bound_covers_benchmarks():
    from repro.core.connection_search import ConnectionSearch
    from repro.designs import (AR_GENERAL_PINS_UNIDIR,
                               ar_general_design)
    g = ar_general_design()
    bound = max_buses_pipelined(g, AR_GENERAL_PINS_UNIDIR, 3)
    search = ConnectionSearch(g, AR_GENERAL_PINS_UNIDIR, 3)
    interconnect, _ = search.run()
    assert len(interconnect.buses) <= bound
