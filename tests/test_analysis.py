"""Tests for ASAP/ALAP, critical path, and time-frame tightening."""

import pytest

from repro.cdfg import CdfgBuilder
from repro.cdfg.analysis import (UnitTiming, alap_schedule, asap_schedule,
                                 compute_time_frames, critical_path_length,
                                 topological_order)
from repro.errors import CdfgError, SchedulingError
from repro.modules.library import ar_filter_timing


def chain(n=3):
    b = CdfgBuilder()
    prev = b.op("n0", "add", 1)
    for i in range(1, n):
        prev = b.op(f"n{i}", "add", 1, inputs=[prev])
    return b.build()


class TestTopologicalOrder:
    def test_respects_edges(self):
        g = chain(4)
        order = topological_order(g)
        assert order.index("n0") < order.index("n3")

    def test_cycle_detected(self):
        b = CdfgBuilder()
        x = b.op("x", "add", 1)
        y = b.op("y", "add", 1, inputs=[x])
        b.edge(y, x)  # plain (non-recursive) back edge = cycle
        with pytest.raises(CdfgError):
            topological_order(b.build())

    def test_recursive_edges_do_not_count_as_cycles(self):
        b = CdfgBuilder()
        x = b.op("x", "add", 1)
        y = b.op("y", "add", 1, inputs=[x])
        b.recursive(y, x)
        topological_order(b.build())  # no exception


class TestUnitTiming:
    def test_chain_schedules_one_per_step(self):
        g = chain(3)
        asap = asap_schedule(g, UnitTiming())
        assert asap == {"n0": 0, "n1": 1, "n2": 2}

    def test_multicycle_table(self):
        b = CdfgBuilder()
        m = b.op("m", "mul", 1)
        a = b.op("a", "add", 1, inputs=[m])
        g = b.build()
        timing = UnitTiming(cycles_by_op_type={"mul": 2})
        asap = asap_schedule(g, timing)
        assert asap == {"m": 0, "a": 2}

    def test_critical_path(self):
        g = chain(5)
        assert critical_path_length(g, UnitTiming()) == 5

    def test_alap_against_deadline(self):
        g = chain(3)
        alap = alap_schedule(g, UnitTiming(), pipe_length=5)
        assert alap == {"n0": 2, "n1": 3, "n2": 4}

    def test_alap_too_tight_raises(self):
        g = chain(3)
        with pytest.raises(SchedulingError):
            alap_schedule(g, UnitTiming(), pipe_length=2)


class TestChainingTiming:
    def test_mul_add_chain_shares_step(self):
        # 10ns io + 210ns mul + 30ns add = 250ns: all in step 0.
        b = CdfgBuilder()
        i = b.inp("i", partition=1)
        m = b.op("m", "mul", 1, inputs=[i])
        a = b.op("a", "add", 1, inputs=[m])
        g = b.build()
        asap = asap_schedule(g, ar_filter_timing())
        assert asap == {"i": 0, "m": 0, "a": 0}
        assert critical_path_length(g, ar_filter_timing()) == 1

    def test_chain_overflow_pushes_next_step(self):
        # mul + add + add: the second add crosses the 250ns boundary.
        b = CdfgBuilder()
        i = b.inp("i", partition=1)
        m = b.op("m", "mul", 1, inputs=[i])
        a1 = b.op("a1", "add", 1, inputs=[m])
        a2 = b.op("a2", "add", 1, inputs=[a1])
        g = b.build()
        asap = asap_schedule(g, ar_filter_timing())
        assert asap["a1"] == 0
        assert asap["a2"] == 1

    def test_no_chaining_mode(self):
        b = CdfgBuilder()
        i = b.inp("i", partition=1)
        m = b.op("m", "mul", 1, inputs=[i])
        a = b.op("a", "add", 1, inputs=[m])
        g = b.build()
        asap = asap_schedule(g, ar_filter_timing(chaining=False))
        assert asap == {"i": 0, "m": 1, "a": 2}


class TestTimeFrames:
    def test_frames_bound_by_asap_alap(self):
        g = chain(3)
        frames = compute_time_frames(g, UnitTiming(), pipe_length=5)
        assert frames.frame("n0") == (0, 2)
        assert frames.frame("n2") == (2, 4)
        assert frames.width("n1") == 3

    def test_fixed_node_pins_frame(self):
        g = chain(3)
        frames = compute_time_frames(g, UnitTiming(), pipe_length=5,
                                     fixed={"n1": 2})
        assert frames.frame("n1") == (2, 2)
        assert frames.frame("n0") == (0, 1)
        assert frames.frame("n2") == (3, 4)

    def test_recursive_edge_tightens_producer(self):
        # consumer x at start; producer y later; y -> x recursive deg 1.
        b = CdfgBuilder()
        x = b.op("x", "add", 1)
        y = b.op("y", "add", 1, inputs=[x])
        z = b.op("z", "add", 1, inputs=[y])
        b.recursive(z, x, degree=1)
        g = b.build()
        # L=4: t_z <= t_x + 4*1 - 1 = alap(x) + 3.
        frames = compute_time_frames(g, UnitTiming(), pipe_length=10,
                                     initiation_rate=4)
        assert frames.alap["z"] <= frames.alap["x"] + 3
        assert frames.feasible()

    def test_recursive_infeasible_when_loop_too_long(self):
        b = CdfgBuilder()
        prev = b.op("n0", "add", 1)
        for i in range(1, 6):
            prev = b.op(f"n{i}", "add", 1, inputs=[prev])
        b.recursive("n5", "n0", degree=1)
        g = b.build()
        # Loop needs 5 steps start-to-start but 1*L - 1 = 3 at L=4.
        frames = compute_time_frames(g, UnitTiming(), pipe_length=12,
                                     initiation_rate=4)
        assert not frames.feasible()
        # L=6 gives slack 5: feasible.
        frames6 = compute_time_frames(g, UnitTiming(), pipe_length=12,
                                      initiation_rate=6)
        assert frames6.feasible()
