"""End-to-end trace propagation across the two boundary kinds.

* explorer ``Executor`` → **fork pool worker** (context rides in the
  payload, spans/histograms ship back in the result record and merge
  onto the submitter's trace);
* client → **cluster front** → shard (context rides in HTTP headers;
  all tiers run in this process — thread-mode shards plus a
  ``ThreadedFrontTier`` — so every hop's spans land in the one global
  ``TRACER`` and the parent/child chain is checkable directly).

Plus the client-side correlation contract: ``ServiceError`` carries the
server-assigned request/trace ids, and both ``/metrics`` endpoints
serve the Prometheus exposition under content negotiation.
"""

import http.client
import time

import pytest

from repro.cluster import (ClusterConfig, ShardAddress,
                           ThreadedCacheServer, ThreadedFrontTier)
from repro.designs import AR_SIMPLE_PINS, ar_simple_design
from repro.explore import DesignSpace, Executor, SweepSpec
from repro.obs import HUB, TRACER
from repro.service import (ServiceClient, ServiceConfig, ServiceError,
                           ShardIdentity, ThreadedServer)


@pytest.fixture(autouse=True)
def _clean_obs():
    TRACER.configure(enabled=False, sample_rate=1.0, export_path="")
    TRACER.reset()
    HUB.reset()
    yield
    TRACER.configure(enabled=False, sample_rate=1.0, export_path="")
    TRACER.reset()
    HUB.reset()


def enable_tracing():
    # Direct tracer configuration: no REPRO_TRACE* env mutation, so
    # nothing leaks into other tests or subprocesses they spawn.
    TRACER.configure(enabled=True, sample_rate=1.0, export_path="")


def canned_runner(payload):
    record = {"status": "ok",
              "metrics": {"chips": 2, "buses": 3, "total_pins": 100,
                          "latency": 6, "wall_ms": 1.0},
              "stats": {}, "wall_ms": 1.0,
              "diagnostics": {"degraded": False, "events": []}}
    record["key"] = payload.get("key", "")
    return record


def spans_by_name(timeout_s=10.0, **required):
    """Poll the global ring until every required span name appears
    at least ``count`` times (async execute tasks may finish a beat
    after the HTTP response); returns {name: [span, ...]}."""
    deadline = time.monotonic() + timeout_s
    while True:
        grouped = {}
        for span in TRACER.spans():
            grouped.setdefault(span["name"], []).append(span)
        if all(len(grouped.get(name, [])) >= count
               for name, count in required.items()):
            return grouped
        assert time.monotonic() < deadline, (
            f"needed {required}, ring has "
            f"{ {k: len(v) for k, v in grouped.items()} }")
        time.sleep(0.02)


def scrape(port, path="/metrics", accept=None):
    connection = http.client.HTTPConnection("127.0.0.1", port,
                                            timeout=30)
    try:
        headers = {"Accept": accept} if accept else {}
        connection.request("GET", path, headers=headers)
        response = connection.getresponse()
        body = response.read().decode("utf-8")
        return response.status, response.getheader("Content-Type"), body
    finally:
        connection.close()


# ---------------------------------------------------------------------
class TestForkWorkerBoundary:
    def test_worker_spans_merge_onto_submitter_trace(self):
        enable_tracing()
        space = DesignSpace(name="ar-simple", graph=ar_simple_design(),
                            partitioning=AR_SIMPLE_PINS, timing="ar")
        # Two identical points (one via axes, one explicit): both are
        # the known-fast ar-simple solve, and with workers=2 they fan
        # out over a real fork pool.
        point = {"rate": 2, "flow": "simple"}
        spec = SweepSpec(axes={"rate": [2]}, base={"flow": "simple"},
                         points=[dict(point)])
        jobs = spec.expand(space)
        assert len(jobs) == 2
        executor = Executor(workers=2, prune_dominated=False,
                            deadline_ms=120000)
        result = executor.run(jobs)
        assert all(p["status"] in ("ok", "degraded")
                   for p in result.points)

        spans = TRACER.spans()
        sweep = next(s for s in spans if s["name"] == "explore.sweep")
        assert sweep["parent_id"] is None
        assert sweep["layer"] == "explore"
        solves = [s for s in spans if s["name"] == "job.solve"]
        assert len(solves) == 2
        for span in solves:
            # Recorded in a forked worker, merged back, parented under
            # the sweep span whose context rode in the payload.
            assert span["trace_id"] == sweep["trace_id"]
            assert span["parent_id"] == sweep["span_id"]
            assert span["layer"] == "worker"
        # The workers' inner spans (pipeline stages, solver phases via
        # the perf hook) came along on the same trace.
        inner = [s for s in spans
                 if s["trace_id"] == sweep["trace_id"]
                 and s["layer"] in ("pipeline", "solver")]
        assert inner, "no pipeline/solver spans crossed the boundary"

        # Histogram observations crossed too, on the hub-delta path.
        hist = HUB.snapshot()["histograms"].get("worker.solve_ms")
        assert hist is not None and hist["count"] >= 2

    def test_unsampled_sweep_ships_nothing(self):
        TRACER.configure(enabled=True, sample_rate=0.0,
                         export_path="")
        space = DesignSpace(name="ar-simple", graph=ar_simple_design(),
                            partitioning=AR_SIMPLE_PINS, timing="ar")
        jobs = SweepSpec(axes={"rate": [2]},
                         base={"flow": "simple"}).expand(space)
        result = Executor(workers=2, prune_dominated=False,
                          deadline_ms=120000).run(jobs)
        assert result.points[0]["status"] in ("ok", "degraded")
        assert TRACER.spans() == []


# ---------------------------------------------------------------------
class Cluster:
    """Cache server + two thread-mode shards + front, one process."""

    def __enter__(self):
        self.cache = ThreadedCacheServer()
        self.cache.start()
        self.shards = []
        for index in range(2):
            shard = ThreadedServer(ServiceConfig(
                port=0, workers=2, pool_mode="thread",
                cache_sync=False,
                cache_path=f"remote://{self.cache.address}",
                job_runner=canned_runner,
                shard=ShardIdentity(f"shard-{index}", index, 2)))
            shard.start()
            self.shards.append(shard)
        config = ClusterConfig(
            shards=tuple(ShardAddress(f"shard-{i}", "127.0.0.1",
                                      s.port)
                         for i, s in enumerate(self.shards)),
            port=0, cache_address=self.cache.address,
            batch_window_ms=15.0, probe_interval_s=0.2)
        self.front = ThreadedFrontTier(config).start()
        return self

    def __exit__(self, *exc_info):
        self.front.stop()
        for shard in self.shards:
            shard.stop()
        self.cache.stop()


class TestClusterHopBoundary:
    def test_front_span_is_parent_of_shard_span(self):
        enable_tracing()
        with Cluster() as cluster:
            client = ServiceClient(port=cluster.front.port)
            response = client.synthesize("ar-simple", rate=3)
            assert response["status"] == "ok"

            grouped = spans_by_name(**{"front.request": 1,
                                       "front.route": 1,
                                       "service.request": 1,
                                       "service.execute": 1})
            front_request = grouped["front.request"][0]
            front_route = grouped["front.route"][0]
            service_request = grouped["service.request"][0]
            service_execute = grouped["service.execute"][0]

            # One connected trace across the HTTP hop: the shard's
            # request span hangs off the front's routing span, whose
            # context rode in the x-repro-* headers.
            trace_id = front_request["trace_id"]
            assert front_request["parent_id"] is None
            assert front_route["trace_id"] == trace_id
            assert front_route["parent_id"] == front_request["span_id"]
            assert service_request["trace_id"] == trace_id
            assert service_request["parent_id"] == \
                front_route["span_id"]
            assert service_execute["trace_id"] == trace_id
            assert service_execute["parent_id"] == \
                service_request["span_id"]
            assert front_request["layer"] == "front"
            assert service_request["layer"] == "service"

    def test_metrics_exposition_on_both_tiers(self):
        with Cluster() as cluster:
            client = ServiceClient(port=cluster.front.port)
            assert client.synthesize("ar-simple",
                                     rate=3)["status"] == "ok"

            # Front: Accept negotiation.
            status, ctype, text = scrape(cluster.front.port,
                                         accept="text/plain")
            assert status == 200
            assert ctype.startswith("text/plain; version=0.0.4")
            assert "# TYPE" in text
            assert 'repro_shard_up{shard="shard-0"} 1' in text
            assert 'repro_shard_up{shard="shard-1"} 1' in text
            assert 'repro_shard_queue_depth{shard="shard-0"}' in text
            assert 'repro_shard_inflight{shard="shard-0"}' in text
            assert "repro_cluster_queue_depth" in text
            assert "repro_cluster_inflight" in text

            # Shard: ?format=prometheus wins without an Accept header,
            # and at least one histogram family is exposed.
            status, ctype, text = scrape(
                cluster.shards[0].port, "/metrics?format=prometheus")
            assert status == 200
            assert ctype.startswith("text/plain; version=0.0.4")
            assert "repro_service_queue_depth" in text
            assert "# TYPE repro_service_job_wall_ms histogram" in text
            assert "repro_service_job_wall_ms_bucket" in text

            # JSON stays the default representation on both tiers.
            assert client.metrics()["schema"] == \
                "repro-cluster-metrics/1"
            shard_client = ServiceClient(port=cluster.shards[0].port)
            assert shard_client.metrics()["schema"] == \
                "repro-service-metrics/1"


# ---------------------------------------------------------------------
class TestClientCorrelation:
    def test_service_error_carries_request_and_trace_ids(self):
        enable_tracing()
        config = ServiceConfig(port=0, workers=1, pool_mode="thread",
                               cache_sync=False,
                               job_runner=canned_runner)
        with ThreadedServer(config) as server:
            client = ServiceClient(port=server.port)
            with pytest.raises(ServiceError) as err:
                client.request("POST", "/v1/synthesize",
                               {"design": "no-such-design"})
            assert err.value.status == 400
            assert err.value.request_id
            assert len(err.value.request_id) == 12
            assert err.value.trace_id
            assert len(err.value.trace_id) == 16
            # Both ids are in the message, so a bare str(exc) in a log
            # is enough to find the server-side spans.
            assert err.value.request_id in str(err.value)
            assert err.value.trace_id in str(err.value)

            # Tracing off: the request id survives, the trace id goes.
            TRACER.configure(enabled=False)
            with pytest.raises(ServiceError) as err:
                client.request("POST", "/v1/synthesize",
                               {"design": "no-such-design"})
            assert err.value.request_id
            assert err.value.trace_id is None

            # Non-submission endpoints assign no ids.
            with pytest.raises(ServiceError) as err:
                client.job("no-such-job")
            assert err.value.status == 404
            assert err.value.request_id is None
