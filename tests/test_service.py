"""Synthesis service: coalescing, load shedding, drain, schema.

Runs the real asyncio HTTP server in a background thread
(:class:`repro.service.ThreadedServer`) with a *thread*-mode pool so
the suite stays fast and runners are injectable: a
:class:`GatedRunner` blocks every solve until the test releases it,
which makes coalescing and queue-pressure scenarios deterministic —
the test holds N requests in flight, inspects ``/metrics``, then lets
the pool go.
"""

import importlib.util
import json
import os
import threading

import pytest

from repro.service import (ServiceClient, ServiceConfig, ServiceError,
                           ServiceUnavailable, ThreadedServer)

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SCHEMA_PATH = os.path.join(REPO, "docs", "schema",
                           "service_response.schema.json")


def _load_validator():
    spec = importlib.util.spec_from_file_location(
        "validate_synth_json",
        os.path.join(REPO, "tools", "validate_synth_json.py"))
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.validate


validate = _load_validator()
SCHEMA = json.loads(open(SCHEMA_PATH).read())


def assert_schema(payload):
    problems = validate(payload, SCHEMA)
    assert not problems, problems


# ---------------------------------------------------------------------
def canned_record(status="ok", pins=100):
    return {"status": status,
            "metrics": {"chips": 2, "buses": 3, "total_pins": pins,
                        "latency": 6, "wall_ms": 1.0},
            "stats": {}, "wall_ms": 1.0,
            "diagnostics": {"degraded": status == "degraded",
                            "events": []}}


class GatedRunner:
    """Pool runner that blocks until released; counts executions."""

    def __init__(self, record=None, released=False):
        self.calls = 0
        self._lock = threading.Lock()
        self.started = threading.Event()
        self.release = threading.Event()
        if released:
            self.release.set()
        self._record = record or canned_record()

    def __call__(self, payload):
        with self._lock:
            self.calls += 1
        self.started.set()
        assert self.release.wait(30.0), "gate never released"
        record = json.loads(json.dumps(self._record))
        record["key"] = payload.get("key", "")
        return record


def make_server(runner=None, **overrides):
    kwargs = dict(port=0, workers=2, pool_mode="thread",
                  cache_sync=False, max_queue=32)
    if runner is not None:
        kwargs["job_runner"] = runner
    kwargs.update(overrides)
    return ThreadedServer(ServiceConfig(**kwargs))


def counters(client):
    return client.metrics()["service"]["counters"]


def wait_until(predicate, timeout_s=10.0, poll_s=0.01):
    import time
    deadline = time.monotonic() + timeout_s
    while not predicate():
        assert time.monotonic() < deadline, "condition never held"
        time.sleep(poll_s)


# ---------------------------------------------------------------------
class TestEndpoints:
    def test_health_metrics_and_errors(self):
        with make_server(GatedRunner(released=True)) as server:
            client = ServiceClient(port=server.port)
            health = client.health()
            assert health["status"] == "ok"
            assert health["workers"] == 2
            metrics = client.metrics()
            assert metrics["schema"] == "repro-service-metrics/1"
            assert metrics["service"]["counters"]["accepted"] == 0
            assert metrics["service"]["latency"]["count"] == 0
            with pytest.raises(ServiceError) as err:
                client.job("no-such-job")
            assert err.value.status == 404
            with pytest.raises(ServiceError) as err:
                client.request("GET", "/v1/nothing-here")
            assert err.value.status == 404
            with pytest.raises(ServiceError) as err:
                client.request("GET", "/v1/synthesize")
            assert err.value.status == 405

    def test_bad_requests_are_400(self):
        with make_server(GatedRunner(released=True)) as server:
            client = ServiceClient(port=server.port)
            for body in (
                    {"rate": 2},                      # no design
                    {"design": "no-such-design"},
                    {"design": "ar-simple",
                     "options": {"bogus": 1}},
                    {"design": "ar-simple", "timeout_ms": -5},
            ):
                with pytest.raises(ServiceError) as err:
                    client.request("POST", "/v1/synthesize", body)
                assert err.value.status == 400, body

    def test_real_solve_conforms_to_schema(self):
        # Default runner = the explorer's run_job: a genuine solve.
        with make_server() as server:
            client = ServiceClient(port=server.port)
            response = client.synthesize("ar-simple", rate=2,
                                         flow="simple",
                                         timeout_ms=60000)
            assert response["status"] == "ok"
            assert response["kind"] == "synthesize"
            assert response["metrics"]["total_pins"] > 0
            assert response["diagnostics"]["degraded"] is False
            assert_schema(response)
            # The job endpoint shows the same terminal object.
            again = client.job(response["job_id"])
            assert_schema(again)
            assert again["status"] == "ok"
            perf = client.metrics()["perf"]
            assert perf["counters"], "solver counters never merged"


# ---------------------------------------------------------------------
class TestCoalescing:
    def test_identical_inflight_requests_share_one_solve(self):
        runner = GatedRunner()
        with make_server(runner) as server:
            client = ServiceClient(port=server.port)
            n = 6
            results = [None] * n

            def fire(i):
                results[i] = client.synthesize(
                    "ar-simple", rate=2, flow="simple",
                    timeout_ms=30000)

            threads = [threading.Thread(target=fire, args=(i,))
                       for i in range(n)]
            for thread in threads:
                thread.start()
            # Hold the gate until every request has been admitted, so
            # all of them are provably in flight together.
            wait_until(lambda: counters(client)["accepted"] == n)
            runner.release.set()
            for thread in threads:
                thread.join(30.0)

            assert runner.calls == 1
            assert {r["status"] for r in results} == {"ok"}
            assert len({r["job_id"] for r in results}) == 1
            stats = counters(client)
            assert stats["executed"] == 1
            assert stats["coalesced"] == n - 1
            assert stats["completed"] == 1

    def test_completed_jobs_hit_the_shared_cache(self, tmp_path):
        path = str(tmp_path / "service-cache.jsonl")
        runner = GatedRunner(released=True)
        with make_server(runner, cache_path=path,
                         cache_sync=True) as server:
            client = ServiceClient(port=server.port)
            first = client.synthesize("ar-simple", rate=2,
                                      flow="simple", timeout_ms=30000)
            assert first["cached"] is False
            second = client.synthesize("ar-simple", rate=2,
                                       flow="simple", timeout_ms=30000)
            assert second["cached"] is True
            stats = counters(client)
            assert stats["executed"] == 1
            assert stats["cache_hits"] == 1
        assert runner.calls == 1
        assert os.path.exists(path)
        # A restarted server serves the same request from disk without
        # executing anything (sync=True made the append durable).
        runner2 = GatedRunner(released=False)  # would hang if executed
        with make_server(runner2, cache_path=path,
                         cache_sync=True) as server:
            client = ServiceClient(port=server.port)
            replay = client.synthesize("ar-simple", rate=2,
                                       flow="simple", timeout_ms=30000)
            assert replay["cached"] is True
            assert replay["status"] == "ok"
        assert runner2.calls == 0

    def test_sweep_points_coalesce_with_standalone_requests(self):
        runner = GatedRunner()
        with make_server(runner) as server:
            client = ServiceClient(port=server.port)
            solo = client.synthesize("ar-simple", rate=2,
                                     flow="simple", wait=False,
                                     timeout_ms=30000)
            assert solo["status"] in ("queued", "running")
            assert_schema(solo)
            sweep = client.sweep("ar-simple", axes={"rate": [2, 3]},
                                 flow="simple", wait=False,
                                 timeout_ms=30000)
            wait_until(lambda: counters(client)["coalesced"] >= 1)
            runner.release.set()
            done = client.wait_job(sweep["job_id"], timeout_s=30)
            assert done["kind"] == "sweep"
            assert done["status"] == "ok"
            assert len(done["points"]) == 2
            assert done["status_counts"] == {"ok": 2}
            assert done["pareto"]
            assert_schema(done)
            stats = counters(client)
            # rate=2 ran once (shared with the solo request), rate=3
            # ran once: 3 logical requests, 2 solves.
            assert stats["executed"] == 2
            assert stats["coalesced"] == 1


# ---------------------------------------------------------------------
class TestLoadShedding:
    def test_queue_full_returns_429_with_retry_after(self):
        runner = GatedRunner()
        with make_server(runner, workers=1, max_queue=1) as server:
            client = ServiceClient(port=server.port)
            held = client.synthesize("ar-simple", rate=2,
                                     flow="simple", wait=False,
                                     timeout_ms=30000)
            runner.started.wait(10.0)
            with pytest.raises(ServiceUnavailable) as err:
                client.synthesize("ar-simple", rate=3, flow="simple",
                                  wait=False, timeout_ms=30000)
            assert err.value.status == 429
            assert err.value.retry_after_s >= 1
            assert counters(client)["shed"] == 1
            runner.release.set()
            finished = client.wait_job(held["job_id"], timeout_s=30)
            assert finished["status"] == "ok"

    def test_projected_wait_beyond_deadline_sheds(self):
        runner = GatedRunner()
        with make_server(runner, workers=1, max_queue=100) as server:
            client = ServiceClient(port=server.port)
            client.synthesize("ar-simple", rate=2, flow="simple",
                              wait=False, timeout_ms=600000)
            runner.started.wait(10.0)
            # Pretend history says a job takes a minute: a request that
            # only has 100ms to live cannot be served behind one job.
            server.service.metrics.seed_ema_ms(60000.0)
            with pytest.raises(ServiceUnavailable) as err:
                client.synthesize("ar-simple", rate=3, flow="simple",
                                  wait=False, timeout_ms=100)
            assert err.value.status == 429
            assert err.value.retry_after_s >= 30
            runner.release.set()

    def test_sweeps_are_admitted_atomically(self):
        runner = GatedRunner()
        with make_server(runner, workers=1, max_queue=2) as server:
            client = ServiceClient(port=server.port)
            client.synthesize("ar-simple", rate=2, flow="simple",
                              wait=False, timeout_ms=30000)
            # A 3-point sweep cannot fit behind one held job in a
            # 2-deep queue: the whole sweep is shed, nothing partial.
            with pytest.raises(ServiceUnavailable):
                client.sweep("ar-simple", axes={"rate": [3, 4, 5]},
                             flow="simple", wait=False,
                             timeout_ms=30000)
            assert counters(client)["executed"] == 1
            runner.release.set()


# ---------------------------------------------------------------------
class TestAsyncJobs:
    def test_wait_false_returns_202_and_polls_to_completion(self):
        runner = GatedRunner()
        with make_server(runner) as server:
            client = ServiceClient(port=server.port)
            status, payload = client.request(
                "POST", "/v1/synthesize",
                {"design": "ar-simple", "rate": 2, "flow": "simple",
                 "wait": False, "timeout_ms": 30000})
            assert status == 202
            assert payload["status"] in ("queued", "running")
            assert payload["location"].endswith(payload["job_id"])
            assert_schema(payload)
            pending = client.job(payload["job_id"])
            assert pending["status"] in ("queued", "running")
            runner.release.set()
            done = client.wait_job(payload["job_id"], timeout_s=30)
            assert done["status"] == "ok"
            assert done["metrics"]["total_pins"] == 100


# ---------------------------------------------------------------------
class TestDrain:
    def test_drain_completes_inflight_work_before_exit(self):
        runner = GatedRunner()
        server = make_server(runner).start()
        client = ServiceClient(port=server.port)
        pending = client.synthesize("ar-simple", rate=2,
                                    flow="simple", wait=False,
                                    timeout_ms=30000)
        runner.started.wait(10.0)

        stopper = threading.Thread(target=server.stop)
        stopper.start()
        stopper.join(0.3)
        # Drain must wait for the gated job, not abandon it.
        assert stopper.is_alive()
        runner.release.set()
        stopper.join(30.0)
        assert not stopper.is_alive()

        job = server.service.store.get(pending["job_id"])
        assert job is not None and job.status == "ok"
        assert server.service.metrics.count("completed") == 1
        with pytest.raises((OSError, ServiceError)):
            client.health()
