"""Sweep expansion, the executor (inline + pool), pruning, reports."""

import importlib.util
import json
import os

import pytest

from repro.designs import (AR_GENERAL_PINS_UNIDIR, AR_SIMPLE_PINS,
                           ar_general_design, ar_simple_design)
from repro.explore import (DesignSpace, Executor, ResultCache,
                           SweepError, SweepSpec, build_report,
                           write_report)
from repro.explore.spec import scale_pins, with_port_model
from repro.perf import PerfRegistry

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SCHEMA = os.path.join(REPO, "docs", "schema",
                      "explore_report.schema.json")


def _schema_validate(report):
    spec = importlib.util.spec_from_file_location(
        "validate_synth_json",
        os.path.join(REPO, "tools", "validate_synth_json.py"))
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    with open(SCHEMA) as handle:
        schema = json.load(handle)
    return module.validate(report, schema)


def ar_general_space():
    return DesignSpace(name="ar-general", graph=ar_general_design(),
                       partitioning=AR_GENERAL_PINS_UNIDIR,
                       timing="ar")


def ar_simple_space():
    return DesignSpace(name="ar-simple", graph=ar_simple_design(),
                       partitioning=AR_SIMPLE_PINS, timing="ar")


# ---------------------------------------------------------------------
class TestSweepSpec:
    def test_grid_size_and_order(self):
        spec = SweepSpec(axes={"rate": [3, 4], "flow": ["auto"],
                               "pin_scale": [1.0, 0.9, 0.8]})
        assert spec.size() == 6
        points = spec.param_points()
        assert len(points) == 6
        assert points[0] == {"rate": 3, "flow": "auto",
                             "pin_scale": 1.0}
        # Last axis varies fastest (itertools.product order).
        assert points[1]["pin_scale"] == 0.9

    def test_explicit_points_appended(self):
        spec = SweepSpec(axes={"rate": [3]},
                         points=[{"rate": 9, "flow": "schedule-first"}])
        points = spec.param_points()
        assert len(points) == 2
        assert points[-1]["rate"] == 9

    def test_base_defaults_apply(self):
        spec = SweepSpec(axes={"rate": [3]},
                         base={"branching_factor": 1})
        assert spec.param_points()[0]["branching_factor"] == 1

    def test_no_axes_means_single_base_point(self):
        assert SweepSpec().size() == 1
        assert SweepSpec().param_points() == [{}]

    def test_unknown_axis_rejected(self):
        with pytest.raises(SweepError):
            SweepSpec(axes={"voltage": [1]})
        with pytest.raises(SweepError):
            SweepSpec(points=[{"voltage": 1}])
        with pytest.raises(SweepError):
            SweepSpec(base={"voltage": 1})

    def test_empty_axis_rejected(self):
        with pytest.raises(SweepError):
            SweepSpec(axes={"rate": []})

    def test_expansion_is_deterministic_and_content_addressed(self):
        spec = SweepSpec(axes={"rate": [3, 4],
                               "flow": ["auto", "schedule-first"]})
        jobs_a = spec.expand(ar_general_space())
        jobs_b = spec.expand(ar_general_space())
        assert [j.key for j in jobs_a] == [j.key for j in jobs_b]
        assert len({j.key for j in jobs_a}) == 4
        assert [j.index for j in jobs_a] == [0, 1, 2, 3]

    def test_optimistic_bounds_are_sound(self):
        spec = SweepSpec(axes={"rate": [3]})
        job = spec.expand(ar_general_space())[0]
        executor = Executor(workers=1)
        result = executor.run([job])
        metrics = result.points[0]["metrics"]
        for key, bound in job.optimistic.items():
            assert metrics[key] >= bound, key

    def test_pin_scale_transform(self):
        scaled = scale_pins(AR_SIMPLE_PINS, 0.5)
        assert scaled.total_pins(1) == 24
        assert scaled.total_pins(3) == 16
        with pytest.raises(SweepError):
            scale_pins(AR_SIMPLE_PINS, 0.0)

    def test_port_model_transform(self):
        bidir = with_port_model(AR_SIMPLE_PINS, "bidirectional")
        assert bidir.all_bidirectional()
        assert bidir.total_pins(1) == AR_SIMPLE_PINS.total_pins(1)
        unidir = with_port_model(bidir, "unidirectional")
        assert not unidir.any_bidirectional()
        with pytest.raises(SweepError):
            with_port_model(AR_SIMPLE_PINS, "sideways")


class TestAutoPartitionAxis:
    def _flat_design(self):
        from repro.cdfg.builder import CdfgBuilder
        from repro.cdfg.graph import Node
        from repro.partition.model import (ChipSpec, OUTSIDE_WORLD,
                                           Partitioning)
        b = CdfgBuilder("flat")
        prev = b.op("n0", "add", 1, bit_width=8)
        for i in range(1, 8):
            prev = b.op(f"n{i}", "add", 1, inputs=[prev], bit_width=8)
        graph = b.build()
        for node in list(graph.nodes()):
            graph.replace_node(Node(name=node.name, kind=node.kind,
                                    op_type=node.op_type,
                                    partition=None,
                                    bit_width=node.bit_width))
        pins = Partitioning({OUTSIDE_WORLD: ChipSpec(64),
                             1: ChipSpec(64), 2: ChipSpec(64)})
        return DesignSpace(name="flat", graph=graph,
                           partitioning=pins, timing="ar")

    def test_partitioning_variants_expand(self):
        spec = SweepSpec(axes={
            "rate": [3],
            "auto_partition": [{"n_chips": 2, "seed": 0},
                               {"n_chips": 2, "seed": 1}],
        })
        jobs = spec.expand(self._flat_design())
        assert len(jobs) == 2
        for job in jobs:
            assert job.graph.io_nodes()  # cut arcs got I/O nodes
            assert len(job.partitioning.real_chips()) == 2

    def test_rejects_already_partitioned_graph(self):
        spec = SweepSpec(axes={
            "auto_partition": [{"n_chips": 2, "seed": 0}]})
        with pytest.raises(SweepError):
            spec.expand(ar_simple_space())

    def test_axis_helper_dedupes_identical_partitionings(self):
        from repro.explore import auto_partition_axis
        design = self._flat_design()
        values = auto_partition_axis(design.graph, 2, range(8))
        assert values  # at least one distinct plan
        assert len(values) <= 8
        assert all(v["n_chips"] == 2 for v in values)
        # Distinct axis values must yield distinct job keys — the
        # dedup guarantees no two sweep points synthesize the same
        # partitioned design.
        spec = SweepSpec(axes={"rate": [3], "auto_partition": values})
        keys = [job.key for job in spec.expand(design)]
        assert len(set(keys)) == len(keys)

    def test_axis_helper_rejects_partitioned_graph(self):
        from repro.explore import auto_partition_axis
        with pytest.raises(SweepError):
            auto_partition_axis(ar_simple_design(), 2, [0])


# ---------------------------------------------------------------------
# One rate, every flow: exercises all dispatch paths while staying
# clear of the rate-3 simple-flow ILP blow-up (covered by the budget
# tests below instead).
FAST_GRID = {"rate": [2], "flow": ["simple", "connection-first",
                                   "schedule-first", "auto"]}


class TestExecutor:
    def test_inline_run_completes(self):
        spec = SweepSpec(axes=FAST_GRID)
        result = Executor(workers=1).run(
            spec.expand(ar_simple_space()))
        assert len(result.points) == 4
        assert all(p["status"] == "ok" for p in result.points)
        assert result.pareto_indices()
        assert "flow.simple" in result.perf.timings

    def test_pool_matches_inline(self):
        spec = SweepSpec(axes=FAST_GRID)
        jobs = spec.expand(ar_simple_space())
        inline = Executor(workers=1).run(jobs)
        pooled = Executor(workers=2).run(jobs)
        assert [p["key"] for p in pooled.points] \
            == [p["key"] for p in inline.points]
        by_key = {p["key"]: p for p in inline.points}
        for point in pooled.points:
            twin = by_key[point["key"]]
            assert point["status"] == twin["status"]
            for axis in ("chips", "buses", "total_pins", "latency"):
                assert point["metrics"][axis] == twin["metrics"][axis]

    def test_pool_merges_worker_perf(self):
        spec = SweepSpec(axes=FAST_GRID)
        result = Executor(workers=2).run(
            spec.expand(ar_simple_space()))
        # The simple flow exercises the pin checker in the workers;
        # its counters must surface in the parent's merged registry.
        assert result.perf.counters.get("pin.checks", 0) > 0
        assert all(isinstance(v, int)
                   for v in result.perf.counters.values())

    def test_cache_second_run_hits_everything(self, tmp_path):
        path = str(tmp_path / "cache.jsonl")
        spec = SweepSpec(axes=FAST_GRID)
        jobs = spec.expand(ar_simple_space())
        Executor(workers=1, cache=ResultCache(path)).run(jobs)
        rerun = Executor(workers=1, cache=ResultCache(path)).run(jobs)
        assert all(p["cached"] for p in rerun.points)
        assert rerun.cache_stats["hit_rate"] == 1.0
        # Cached points still contribute to the front.
        assert rerun.pareto_indices()

    def test_overlapping_sweep_reuses_shared_points(self, tmp_path):
        path = str(tmp_path / "cache.jsonl")
        space = ar_simple_space()
        small = SweepSpec(axes={"rate": [2], "flow": ["simple"]})
        Executor(workers=1, cache=ResultCache(path)).run(
            small.expand(space))
        bigger = SweepSpec(axes={"rate": [2],
                                 "flow": ["simple", "schedule-first"]})
        result = Executor(workers=1, cache=ResultCache(path)).run(
            bigger.expand(space))
        cached = [p for p in result.points if p["cached"]]
        assert len(cached) == 1

    def test_dominated_queued_point_pruned(self, tmp_path):
        spec = SweepSpec(axes={"rate": [2], "flow": ["simple"]})
        job = spec.expand(ar_simple_space())[0]
        # Seed the cache with an unbeatable completed point for a
        # *different* key, so the running front dominates this job's
        # optimistic bounds before it starts.
        cache = ResultCache(None)
        cache.put("unbeatable", {
            "status": "ok", "wall_ms": 1.0, "key": "unbeatable",
            "params": {},
            "metrics": {"chips": 0, "buses": 0, "total_pins": 0,
                        "latency": 0, "wall_ms": 1.0}})
        unbeatable = spec.expand(ar_simple_space())[0]
        unbeatable.key = "unbeatable"
        job.index = 1
        executor = Executor(workers=1, cache=cache)
        result = executor.run([unbeatable, job])
        statuses = [p["status"] for p in result.points]
        assert statuses == ["ok", "pruned"]

    def test_prune_can_be_disabled(self):
        spec = SweepSpec(axes={"rate": [2], "flow": ["simple"]})
        job = spec.expand(ar_simple_space())[0]
        executor = Executor(workers=1, prune_dominated=False)
        assert not executor._prunable(job, [{"chips": 0, "buses": 0,
                                             "total_pins": 0,
                                             "latency": 0}])

    def test_expired_deadline_skips_everything(self):
        spec = SweepSpec(axes=FAST_GRID)
        jobs = spec.expand(ar_simple_space())
        result = Executor(workers=1, deadline_ms=0).run(jobs)
        assert all(p["status"] == "deadline_skipped"
                   for p in result.points)

    def test_carved_budget_lands_near_global_deadline(self):
        # A sweep far too big for its deadline must still terminate
        # promptly, producing budget_exhausted/skipped points rather
        # than hanging.
        import time
        spec = SweepSpec(axes={"rate": [6, 7, 8],
                               "flow": ["connection-first"],
                               "branching_factor": [3, 4]})
        jobs = spec.expand(ar_general_space())
        start = time.perf_counter()
        result = Executor(workers=1, deadline_ms=300).run(jobs)
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        assert elapsed_ms < 5000
        assert len(result.points) == len(jobs)
        for point in result.points:
            assert point["status"] in ("ok", "degraded", "error",
                                       "budget_exhausted",
                                       "deadline_skipped", "pruned")


@pytest.mark.skipif((os.cpu_count() or 1) < 4,
                    reason="parallel speedup needs >= 4 cores")
def test_four_workers_beat_one_on_wall_clock():
    spec = SweepSpec(axes={"rate": [3, 4, 5],
                           "flow": ["auto", "schedule-first"],
                           "pin_scale": [1.0, 0.9],
                           "subbus_sharing": [False, True]})
    jobs = spec.expand(ar_general_space())
    assert len(jobs) >= 24
    serial = Executor(workers=1).run(jobs)
    parallel = Executor(workers=4).run(jobs)
    assert parallel.wall_ms < serial.wall_ms


# ---------------------------------------------------------------------
class TestReport:
    def test_report_validates_against_schema(self, tmp_path):
        spec = SweepSpec(axes=FAST_GRID)
        result = Executor(workers=1).run(
            spec.expand(ar_simple_space()))
        report = build_report("ar-simple", spec, result)
        assert _schema_validate(report) == []
        path = str(tmp_path / "report.json")
        write_report(report, path)
        with open(path) as handle:
            assert _schema_validate(json.load(handle)) == []

    def test_report_with_failures_validates(self):
        # rate=1 is infeasible for the simple AR design: error points
        # must still produce a schema-clean report.
        spec = SweepSpec(axes={"rate": [1, 2], "flow": ["simple"]})
        result = Executor(workers=1).run(
            spec.expand(ar_simple_space()))
        statuses = {p["status"] for p in result.points}
        assert "ok" in statuses and len(statuses) > 1
        report = build_report("ar-simple", spec, result)
        assert _schema_validate(report) == []

    def test_pareto_indices_reference_points(self):
        spec = SweepSpec(axes=FAST_GRID)
        result = Executor(workers=1).run(
            spec.expand(ar_simple_space()))
        report = build_report("ar-simple", spec, result)
        indices = {p["index"] for p in report["points"]}
        assert set(report["pareto"]) <= indices

    def test_perf_merge_registry_arithmetic(self):
        a = PerfRegistry()
        a.inc("x", 2)
        b = PerfRegistry()
        b.inc("x", 3)
        b.timings["t"] = 0.5
        a.merge(b)
        a.merge({"counters": {"x": 1.0, "y": 2.4},
                 "timings": {"t": 0.25}})
        assert a.counters["x"] == 6
        assert a.counters["y"] == 2  # float drift rounded away
        assert isinstance(a.counters["y"], int)
        assert a.timings["t"] == pytest.approx(0.75)
