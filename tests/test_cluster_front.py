"""Front tier: routing, fleet-wide coalescing, batching, failover.

Runs a real in-process cluster — a :class:`ThreadedCacheServer`, two
(or more) thread-pool :class:`ThreadedServer` shards mounting it
``remote://``, and a :class:`ThreadedFrontTier` routing over them —
and drives it over real sockets with :class:`ServiceClient`, so every
hop (HTTP framing, ring routing, cache frames) is the production code
path.
"""

import threading
import time

import pytest

from repro.cluster import (ClusterConfig, ShardAddress,
                           ThreadedCacheServer, ThreadedFrontTier)
from repro.service import (ServiceClient, ServiceConfig, ServiceError,
                           ServiceUnavailable, ShardIdentity,
                           ThreadedServer)


def canned_record(status="ok", pins=100):
    return {"status": status,
            "metrics": {"chips": 2, "buses": 3, "total_pins": pins,
                        "latency": 6, "wall_ms": 1.0},
            "stats": {}, "wall_ms": 1.0,
            "diagnostics": {"degraded": status == "degraded",
                            "events": []}}


class CountingRunner:
    """Sleeps briefly per solve; records every key it executed."""

    def __init__(self, solve_s=0.03):
        self.solve_s = solve_s
        self.keys = []
        self._lock = threading.Lock()

    def __call__(self, payload):
        with self._lock:
            self.keys.append(payload.get("key", ""))
        time.sleep(self.solve_s)
        record = canned_record()
        record["key"] = payload.get("key", "")
        return record

    @property
    def calls(self):
        with self._lock:
            return len(self.keys)


class Cluster:
    """Cache server + N shards + front, as one context manager."""

    def __init__(self, shards=2, runner=None, batch_window_ms=15.0,
                 workers=2, **front_overrides):
        self.runner = runner or CountingRunner()
        self.cache = ThreadedCacheServer()
        self.n = shards
        self.workers = workers
        self.shards = []
        self.front = None
        self.front_overrides = front_overrides
        self.batch_window_ms = batch_window_ms

    def __enter__(self):
        self.cache.start()
        for index in range(self.n):
            shard = ThreadedServer(ServiceConfig(
                port=0, workers=self.workers, pool_mode="thread",
                cache_sync=False,
                cache_path=f"remote://{self.cache.address}",
                job_runner=self.runner,
                shard=ShardIdentity(f"shard-{index}", index, self.n)))
            shard.start()
            self.shards.append(shard)
        config = ClusterConfig(
            shards=tuple(ShardAddress(f"shard-{i}", "127.0.0.1",
                                      s.port)
                         for i, s in enumerate(self.shards)),
            port=0, cache_address=self.cache.address,
            batch_window_ms=self.batch_window_ms,
            probe_interval_s=0.2, **self.front_overrides)
        self.front = ThreadedFrontTier(config).start()
        return self

    def __exit__(self, *exc_info):
        if self.front is not None:
            self.front.stop()
        for shard in self.shards:
            shard.stop()
        self.cache.stop()

    def client(self, **kwargs):
        return ServiceClient(port=self.front.port, **kwargs)


# ---------------------------------------------------------------------
class TestRouting:
    def test_health_metrics_and_ring(self):
        with Cluster() as cluster:
            client = cluster.client()
            health = client.health()
            assert health["schema"] == "repro-cluster-health/1"
            assert health["ready"] is True
            assert set(health["shards"]) == {"shard-0", "shard-1"}
            metrics = client.metrics()
            assert metrics["schema"] == "repro-cluster-metrics/1"
            assert metrics["cluster"]["shards_healthy"] == 2
            assert metrics["cluster"]["workers"] == 4
            _status, ring = client.request("GET", "/cluster/ring")
            assert ring["down"] == []
            assert len(ring["ring"]["shards"]) == 2
            shares = [s["share"] for s in ring["ring"]["shards"]]
            assert abs(sum(shares) - 1.0) < 0.01

    def test_response_carries_shard_and_prefixed_job_id(self):
        with Cluster() as cluster:
            client = cluster.client()
            response = client.synthesize("ar-simple", rate=3)
            assert response["status"] == "ok"
            shard = response["shard"]
            assert shard in ("shard-0", "shard-1")
            assert response["job_id"].startswith(f"{shard}.")
            # The prefixed id routes a poll back to the owner shard.
            polled = client.job(response["job_id"])
            assert polled["status"] == "ok"
            assert polled["key"] == response["key"]

    def test_bad_requests_are_400_at_the_front(self):
        with Cluster() as cluster:
            client = cluster.client()
            for body in ({"rate": 2}, {"design": "no-such"},
                         {"design": "ar-simple", "timeout_ms": -5}):
                with pytest.raises(ServiceError) as err:
                    client.request("POST", "/v1/synthesize", body)
                assert err.value.status == 400, body

    def test_unknown_job_and_endpoint(self):
        with Cluster() as cluster:
            client = cluster.client()
            with pytest.raises(ServiceError) as err:
                client.job("no-such-job")
            assert err.value.status == 404
            with pytest.raises(ServiceError) as err:
                client.request("GET", "/v1/nothing")
            assert err.value.status == 404


class TestFleetCoalescing:
    def test_identical_requests_solve_once_fleet_wide(self):
        runner = CountingRunner()
        with Cluster(runner=runner) as cluster:
            results = [None] * 6
            def hit(i):
                results[i] = cluster.client().synthesize(
                    "ar-simple", rate=3)
            threads = [threading.Thread(target=hit, args=(i,))
                       for i in range(6)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert all(r["status"] == "ok" for r in results)
            # One key, one owner shard, ONE solve — everyone else was
            # folded by the front window or coalesced on the shard.
            assert runner.calls == 1
            assert len({r["key"] for r in results}) == 1
            assert len({r["shard"] for r in results}) == 1

    def test_cache_hit_after_first_solve(self):
        runner = CountingRunner()
        with Cluster(runner=runner) as cluster:
            client = cluster.client()
            first = client.synthesize("ar-simple", rate=4)
            assert first["cached"] is False
            again = client.synthesize("ar-simple", rate=4)
            assert again["cached"] is True
            assert runner.calls == 1
            hits = cluster.front.front.metrics.count("front_cache_hits")
            assert hits >= 1

    def test_one_shards_solve_is_the_fleets_cache_hit(self):
        # Bypass the front: solve on the owner shard directly, then
        # ask the OTHER shard — the shared cache answers.
        runner = CountingRunner()
        with Cluster(runner=runner) as cluster:
            front = cluster.front.front
            key = None
            import repro.service.catalog as catalog
            _space, point = catalog.synthesize_job(
                {"design": "ar-simple", "rate": 5})
            key = point.key
            owner = front.ring.owner(key)
            other = ("shard-1" if owner == "shard-0" else "shard-0")
            ports = {f"shard-{i}": s.port
                     for i, s in enumerate(cluster.shards)}
            ServiceClient(port=ports[owner]).synthesize(
                "ar-simple", rate=5)
            assert runner.calls == 1
            second = ServiceClient(port=ports[other]).synthesize(
                "ar-simple", rate=5)
            assert second["cached"] is True
            assert runner.calls == 1


class TestBatching:
    def test_same_design_window_folds_into_one_sweep(self):
        runner = CountingRunner()
        with Cluster(runner=runner, batch_window_ms=40.0) as cluster:
            results = [None] * 4
            def hit(i):
                results[i] = cluster.client().synthesize(
                    "ar-general", rate=3 + i)
            threads = [threading.Thread(target=hit, args=(i,))
                       for i in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert all(r["status"] == "ok" for r in results)
            assert len({r["key"] for r in results}) == 4
            assert runner.calls == 4  # distinct points all solved
            front = cluster.front.front
            # At least one window folded >1 point into a sweep.
            assert front.metrics.count("batched") >= 2
            assert front.metrics.count("batch_windows") >= 1

    def test_batching_disabled_routes_directly(self):
        runner = CountingRunner()
        with Cluster(runner=runner, batch_window_ms=0.0) as cluster:
            response = cluster.client().synthesize("ar-simple", rate=3)
            assert response["status"] == "ok"
            front = cluster.front.front
            assert front.metrics.count("batch_windows") == 0
            assert front.metrics.count("proxied") >= 1


class TestSweepSplit:
    def test_sweep_splits_across_shards_and_aggregates(self):
        runner = CountingRunner()
        with Cluster(runner=runner) as cluster:
            sweep = cluster.client().sweep(
                "ar-simple", axes={"rate": [3, 4, 5, 6]})
            assert sweep["status"] == "ok"
            assert sweep["kind"] == "sweep"
            points = sweep["points"]
            assert [p["index"] for p in points] == [0, 1, 2, 3]
            assert all(p["status"] == "ok" for p in points)
            assert sweep["status_counts"] == {"ok": 4}
            assert sweep["pareto"]  # non-empty over 4 ok points
            # Each point's job id is prefixed with its owner shard,
            # and the owners match the ring.
            front = cluster.front.front
            for p in points:
                shard, _sep, _jid = p["job_id"].partition(".")
                assert shard == front.ring.owner(p["key"])
            assert runner.calls == 4

    def test_sweep_point_poll_through_front(self):
        with Cluster() as cluster:
            client = cluster.client()
            sweep = client.sweep("ar-simple", axes={"rate": [3, 4]})
            for point in sweep["points"]:
                child = client.job(point["job_id"])
                assert child["status"] == "ok"
                assert child["key"] == point["key"]


class TestFailover:
    def test_drained_shard_fails_over_without_lost_requests(self):
        runner = CountingRunner()
        with Cluster(runner=runner) as cluster:
            client = cluster.client()
            # Stop shard-0 (graceful drain); every key it owned must
            # be re-routed to shard-1 with zero caller-visible errors.
            cluster.shards[0].stop()
            for rate in (3, 4, 5, 6):
                response = client.synthesize("ar-simple", rate=rate)
                assert response["status"] == "ok"
                assert response["shard"] == "shard-1"
            front = cluster.front.front
            assert front.metrics.count("failovers") >= 1
            metrics = client.metrics()
            assert metrics["cluster"]["shards_healthy"] == 1

    def test_all_shards_down_is_503_with_retry_after(self):
        with Cluster(shards=1) as cluster:
            cluster.shards[0].stop()
            with pytest.raises(ServiceUnavailable) as err:
                cluster.client().synthesize("ar-simple", rate=3)
            assert err.value.status == 503
            assert err.value.retry_after_hint == 1

    def test_recovered_shard_is_reinstated_by_prober(self):
        with Cluster() as cluster:
            front = cluster.front.front
            client = cluster.client()
            cluster.shards[1].stop()
            with pytest.raises((OSError, ServiceError)):
                ServiceClient(port=cluster.shards[1].port).health()
            # Drive traffic so the front notices the death.
            for rate in (3, 4, 5):
                client.synthesize("ar-simple", rate=rate)
            assert front.shards["shard-1"].healthy is False
            # Restart a shard on the same port (rolling restart).
            replacement = ThreadedServer(ServiceConfig(
                port=cluster.shards[1].port, workers=1,
                pool_mode="thread", cache_sync=False,
                cache_path=f"remote://{cluster.cache.address}",
                job_runner=cluster.runner,
                shard=ShardIdentity("shard-1", 1, 2)))
            replacement.start()
            try:
                deadline = time.monotonic() + 10.0
                while not front.shards["shard-1"].up:
                    assert time.monotonic() < deadline, \
                        "prober never reinstated the shard"
                    time.sleep(0.05)
            finally:
                replacement.stop()


class TestBatchWindowFailover:
    def test_owner_death_inside_batch_window_is_exactly_once(self):
        """Satellite (c): concurrent identical requests fold into one
        batch group; the owning shard dies while the window is still
        open.  Every caller must still get a terminal answer, and the
        fleet may execute the key at most twice — the original admit
        plus one legitimate re-execution after the owner's death —
        never once per caller."""
        from repro.service import catalog

        runner = CountingRunner(solve_s=0.4)
        with Cluster(runner=runner, batch_window_ms=200.0) as cluster:
            front = cluster.front.front
            body = {"design": "ar-simple", "rate": 7}
            _space, point = catalog.synthesize_job(body)
            owner = front.ring.owner(point.key)
            owner_index = int(owner.split("-")[1])

            answers = [None] * 4
            errors = [None] * 4

            def call(index):
                client = cluster.client(retries=6,
                                        backoff_base_s=0.05,
                                        backoff_cap_s=0.2)
                try:
                    answers[index] = client.synthesize(
                        "ar-simple", rate=7, timeout_ms=20000)
                except (OSError, ServiceError) as exc:
                    errors[index] = exc

            threads = [threading.Thread(target=call, args=(i,))
                       for i in range(4)]
            for thread in threads:
                thread.start()
            # Kill the owner while the 200ms batch window is open (the
            # solve itself takes 400ms, so even a flushed batch is
            # still in flight on the owner when it dies).
            time.sleep(0.06)
            cluster.shards[owner_index].stop()
            for thread in threads:
                thread.join(timeout=30.0)
            assert not any(t.is_alive() for t in threads)

            assert errors == [None] * 4, [str(e) for e in errors]
            for payload in answers:
                assert payload["status"] == "ok"
                assert payload["key"] == point.key
            executions = runner.keys.count(point.key)
            assert 1 <= executions <= 2, \
                (f"exactly-once violated: {executions} executions "
                 f"for one batched key after a single owner death")


class TestShardReadiness:
    def test_invalid_seat_is_not_ready(self):
        shard = ThreadedServer(ServiceConfig(
            port=0, workers=1, pool_mode="thread", cache_sync=False,
            job_runner=CountingRunner(),
            shard=ShardIdentity("shard-9", 9, 2)))  # index >= count
        with shard:
            client = ServiceClient(port=shard.port)
            with pytest.raises(ServiceUnavailable) as err:
                client.health()
            assert err.value.status == 503
            payload = err.value.payload
            assert payload["ready"] is False
            assert payload["live"] is True
            assert payload["shard"] == {"name": "shard-9", "index": 9,
                                        "count": 2}

    def test_valid_seat_is_ready_and_visible(self):
        shard = ThreadedServer(ServiceConfig(
            port=0, workers=1, pool_mode="thread", cache_sync=False,
            job_runner=CountingRunner(),
            shard=ShardIdentity("shard-0", 0, 2)))
        with shard:
            client = ServiceClient(port=shard.port)
            health = client.health()
            assert health["status"] == "ok"
            assert health["shard"]["name"] == "shard-0"
            metrics = client.metrics()
            assert metrics["shard"]["index"] == 0
