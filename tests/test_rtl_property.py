"""Property-based tests for RTL binding and register allocation."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.designs import random_partitioned_design
from repro.errors import SchedulingError
from repro.modules.allocation import min_module_counts
from repro.modules.library import (DesignTiming, HardwareModule,
                                   ModuleSet)
from repro.rtl import allocate_registers, bind_functional_units
from repro.scheduling.base import measured_resources
from repro.scheduling.list_scheduler import ListScheduler

settings.register_profile(
    "repro-rtl", deadline=None, max_examples=25,
    suppress_health_check=[HealthCheck.too_slow])
settings.load_profile("repro-rtl")


def timing():
    return DesignTiming(
        clock_period=250.0,
        default=ModuleSet.of(
            HardwareModule("adder", "add", 30.0),
            HardwareModule("multiplier", "mul", 210.0)),
        io_delay_ns=10.0)


def scheduled_random_design(seed, rate):
    graph, _p = random_partitioned_design(seed, n_chips=3, n_ops=10)
    resources = min_module_counts(graph, timing(), rate)
    schedule = ListScheduler(graph, timing(), rate, resources).run()
    return graph, schedule, resources


@given(st.integers(0, 40), st.integers(2, 4))
def test_binding_matches_schedule_resources(seed, rate):
    try:
        graph, schedule, resources = scheduled_random_design(seed, rate)
    except SchedulingError:
        return
    binding = bind_functional_units(schedule)
    # Every scheduled functional op is bound...
    scheduled = {n.name for n in graph.functional_nodes()}
    assert set(binding.unit_of) == scheduled
    # ...unit counts equal the measured concurrency...
    assert binding.unit_counts() == measured_resources(schedule)
    # ...and no unit hosts two ops in one control-step group.
    seen = {}
    for op, unit in binding.unit_of.items():
        key = (unit, schedule.group(op))
        assert key not in seen, f"{op} and {seen[key]} share {unit}"
        seen[key] = op


@given(st.integers(0, 40), st.integers(2, 4))
def test_register_occupancy_is_exclusive(seed, rate):
    try:
        graph, schedule, _resources = scheduled_random_design(seed, rate)
    except SchedulingError:
        return
    registers = allocate_registers(graph, schedule)
    L = schedule.initiation_rate
    # Rebuild per-register modular occupancy from the lifetimes and
    # confirm no two co-resident values overlap in any cell.
    cells = {}
    for producer, regs in registers.regs_of.items():
        lifetime = registers.lifetimes[producer]
        if lifetime.span >= L:
            continue  # dedicated copies; exclusivity is structural
        occupied = {t % L for t in range(lifetime.birth,
                                         lifetime.death)}
        for reg in regs:
            for cell in occupied:
                key = (reg, cell)
                assert key not in cells, \
                    f"{producer} and {cells[key]} clash in {key}"
                cells[key] = producer
    # Register widths always cover their tenants.
    for producer, regs in registers.regs_of.items():
        width = graph.node(producer).bit_width
        for reg in regs:
            assert registers.widths[reg] >= width
