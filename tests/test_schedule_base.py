"""Tests for Schedule, ResourcePool and measured resources."""

import pytest

from repro.cdfg import CdfgBuilder
from repro.cdfg.analysis import UnitTiming
from repro.cdfg.graph import make_functional_node
from repro.errors import SchedulingError
from repro.scheduling.base import ResourcePool, Schedule, measured_resources


def two_adds():
    b = CdfgBuilder()
    x = b.op("x", "add", 1)
    y = b.op("y", "add", 1, inputs=[x])
    return b.build()


class TestSchedule:
    def test_place_and_query(self):
        g = two_adds()
        s = Schedule(g, UnitTiming(), 2)
        s.place("x", 0)
        s.place("y", 3)
        assert s.step("y") == 3
        assert s.group("y") == 1
        assert s.pipe_length == 4

    def test_double_place_rejected(self):
        g = two_adds()
        s = Schedule(g, UnitTiming(), 2)
        s.place("x", 0)
        with pytest.raises(SchedulingError):
            s.place("x", 1)

    def test_ns_start_must_match_step(self):
        g = two_adds()
        s = Schedule(g, UnitTiming(), 2)
        with pytest.raises(SchedulingError):
            s.place("x", 0, start_ns=1.5)

    def test_verify_catches_precedence_violation(self):
        g = two_adds()
        s = Schedule(g, UnitTiming(), 2)
        s.place("x", 1)
        s.place("y", 0)  # consumer before producer
        problems = s.verify()
        assert any("before" in p for p in problems)

    def test_verify_catches_unscheduled(self):
        g = two_adds()
        s = Schedule(g, UnitTiming(), 2)
        s.place("x", 0)
        assert any("unscheduled" in p for p in s.verify())

    def test_verify_recursive_constraint(self):
        b = CdfgBuilder()
        x = b.op("x", "add", 1)
        y = b.op("y", "add", 1, inputs=[x])
        b.recursive(y, x, degree=1)
        g = b.build()
        s = Schedule(g, UnitTiming(), 2)
        s.place("x", 0)
        s.place("y", 2)  # t_y <= t_x + 1*2 - 1 = 1: violated
        assert any("max-time" in p for p in s.verify())
        s2 = Schedule(g, UnitTiming(), 2)
        s2.place("x", 0)
        s2.place("y", 1)
        assert s2.verify() == []

    def test_resource_verification(self):
        b = CdfgBuilder()
        b.op("a1", "add", 1)
        b.op("a2", "add", 1)
        g = b.build()
        s = Schedule(g, UnitTiming(), 2)
        s.place("a1", 0)
        s.place("a2", 2)  # same group 0
        assert s.verify({(1, "add"): 1})  # 1 unit: conflict
        assert not s.verify({(1, "add"): 2})

    def test_ops_in_group(self):
        g = two_adds()
        s = Schedule(g, UnitTiming(), 3)
        s.place("x", 1)
        s.place("y", 4)
        assert s.ops_in_group(1) == ["x", "y"]


class TestResourcePool:
    def test_single_cycle_capacity(self):
        pool = ResourcePool({(1, "add"): 1}, UnitTiming(), 2)
        a1 = make_functional_node("a1", "add", 1)
        a2 = make_functional_node("a2", "add", 1)
        assert pool.try_place(a1, 0)
        assert not pool.can_place(a2, 2)   # same group
        assert pool.try_place(a2, 1)       # other group

    def test_zero_units(self):
        pool = ResourcePool({}, UnitTiming(), 2)
        a = make_functional_node("a", "add", 1)
        assert not pool.can_place(a, 0)

    def test_multicycle_wheel(self):
        timing = UnitTiming(cycles_by_op_type={"mul": 2})
        pool = ResourcePool({(1, "mul"): 1}, timing, 4)
        m1 = make_functional_node("m1", "mul", 1)
        m2 = make_functional_node("m2", "mul", 1)
        m3 = make_functional_node("m3", "mul", 1)
        assert pool.try_place(m1, 0)       # cells 0,1
        assert not pool.can_place(m2, 1)   # cells 1,2 overlap
        assert pool.try_place(m2, 2)       # cells 2,3
        assert not pool.can_place(m3, 0)   # wheel full

    def test_capacity_after_place(self):
        timing = UnitTiming(cycles_by_op_type={"mul": 2})
        pool = ResourcePool({(1, "mul"): 1}, timing, 6)
        m = make_functional_node("m", "mul", 1)
        # Placing at 0 leaves cells 2..5: two more 2-cycle slots.
        assert pool.capacity_after_place(m, 0) == 2
        # Placing at 1 leaves 3,4,5,0 — a wrapping run of 4: still 2.
        assert pool.capacity_after_place(m, 1) == 2
        # Real fragmentation: with 0-1 taken, a tentative placement at
        # 3-4 strands cells 2 and 5 (no 2-cycle slot survives).
        m2 = make_functional_node("m2", "mul", 1)
        assert pool.try_place(m2, 0)
        assert pool.capacity_after_place(m, 3) == 0
        assert pool.capacity_after_place(m, 2) == 1


class TestMeasuredResources:
    def test_single_cycle_concurrency(self):
        b = CdfgBuilder()
        b.op("a1", "add", 1)
        b.op("a2", "add", 1)
        b.op("a3", "add", 1)
        g = b.build()
        s = Schedule(g, UnitTiming(), 2)
        s.place("a1", 0)
        s.place("a2", 2)  # group 0 again
        s.place("a3", 1)
        assert measured_resources(s) == {(1, "add"): 2}

    def test_multicycle_wheel_packing(self):
        timing = UnitTiming(cycles_by_op_type={"mul": 2})
        b = CdfgBuilder()
        b.op("m1", "mul", 1)
        b.op("m2", "mul", 1)
        b.op("m3", "mul", 1)
        g = b.build()
        s = Schedule(g, timing, 6)
        s.place("m1", 0)
        s.place("m2", 2)
        s.place("m3", 4)
        # All three fit one wheel of length 6.
        assert measured_resources(s) == {(1, "mul"): 1}
