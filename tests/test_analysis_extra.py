"""Additional timing-analysis edge cases."""

import pytest

from repro.cdfg import CdfgBuilder
from repro.cdfg.analysis import (UnitTiming, alap_schedule,
                                 asap_finish_ns, asap_schedule,
                                 compute_time_frames,
                                 critical_path_length)
from repro.errors import SchedulingError
from repro.modules.library import ar_filter_timing


class TestBoundaryPlacement:
    def test_exact_fit_chain(self):
        # io(10) + mul(210) + add(30) = 250 = period: exact fit.
        b = CdfgBuilder()
        i = b.inp("i", partition=1)
        m = b.op("m", "mul", 1, inputs=[i])
        a = b.op("a", "add", 1, inputs=[m])
        g = b.build()
        finish = asap_finish_ns(g, ar_filter_timing())
        assert finish["a"] == pytest.approx(250.0)
        assert critical_path_length(g, ar_filter_timing()) == 1

    def test_one_ns_overflow_rolls_over(self):
        from repro.modules.library import (DesignTiming, HardwareModule,
                                           ModuleSet)
        timing = DesignTiming(
            clock_period=250.0,
            default=ModuleSet.of(
                HardwareModule("mul", "mul", 210.0),
                HardwareModule("add", "add", 31.0)),  # 10+210+31 > 250
            io_delay_ns=10.0)
        b = CdfgBuilder()
        i = b.inp("i", partition=1)
        m = b.op("m", "mul", 1, inputs=[i])
        a = b.op("a", "add", 1, inputs=[m])
        g = b.build()
        asap = asap_schedule(g, timing)
        assert asap["a"] == 1

    def test_constants_are_free(self):
        b = CdfgBuilder()
        k = b.const("k", partition=1)
        a = b.op("a", "add", 1, inputs=[k])
        g = b.build()
        assert asap_schedule(g, UnitTiming())["a"] == 0


class TestAlap:
    def test_alap_chained(self):
        b = CdfgBuilder()
        i = b.inp("i", partition=1)
        m = b.op("m", "mul", 1, inputs=[i])
        a = b.op("a", "add", 1, inputs=[m])
        g = b.build()
        alap = alap_schedule(g, ar_filter_timing(), pipe_length=3)
        # The whole chain fits one step; latest start is step 2.
        assert alap["a"] == 2
        assert alap["m"] == 2

    def test_alap_multicycle_boundary(self):
        b = CdfgBuilder()
        m = b.op("m", "mul", 1, bit_width=16)
        g = b.build()
        timing = UnitTiming(cycles_by_op_type={"mul": 2})
        alap = alap_schedule(g, timing, pipe_length=5)
        assert alap["m"] == 3  # occupies steps 3-4


class TestFrames:
    def test_fixed_conflicting_with_precedence_infeasible(self):
        b = CdfgBuilder()
        x = b.op("x", "add", 1)
        y = b.op("y", "add", 1, inputs=[x])
        g = b.build()
        frames = compute_time_frames(g, UnitTiming(), 4,
                                     initiation_rate=2,
                                     fixed={"x": 3, "y": 1})
        assert not frames.feasible()

    def test_degree_zero_edges_only_no_recursion_effect(self):
        b = CdfgBuilder()
        x = b.op("x", "add", 1)
        y = b.op("y", "add", 1, inputs=[x])
        g = b.build()
        with_rate = compute_time_frames(g, UnitTiming(), 5,
                                        initiation_rate=3)
        without = compute_time_frames(g, UnitTiming(), 5)
        assert with_rate.asap == without.asap
        assert with_rate.alap == without.alap
