"""Unit tests for the robustness subsystem: deadlines, budgets, tokens,
diagnostics, and the budget threading through each solver."""

import pytest

from repro.designs import (AR_GENERAL_PINS_UNIDIR, ar_general_design)
from repro.core.connection_search import ConnectionSearch
from repro.errors import ReproError
from repro.ilp import Model, solve_ilp, solve_lp
from repro.modules.library import ar_filter_timing
from repro.robustness import (BudgetExhausted, BudgetToken, Deadline,
                              DiagnosticEvent, Diagnostics, PHASE_CAPS,
                              SolveBudget, as_token)
from repro.robustness.diagnostics import EVENT_EXHAUSTED, EVENT_FALLBACK


class FakeClock:
    """Deterministic monotonic clock for deadline tests (seconds)."""

    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestDeadline:
    def test_unlimited_never_expires(self):
        clock = FakeClock()
        deadline = Deadline(None, clock=clock)
        assert deadline.unlimited
        assert deadline.remaining_ms() is None
        clock.advance(1e9)
        assert not deadline.expired()

    def test_elapsed_and_remaining(self):
        clock = FakeClock(5.0)
        deadline = Deadline.after_ms(100.0, clock=clock)
        assert deadline.elapsed_ms() == 0.0
        assert deadline.remaining_ms() == pytest.approx(100.0)
        clock.advance(0.06)
        assert deadline.elapsed_ms() == pytest.approx(60.0)
        assert deadline.remaining_ms() == pytest.approx(40.0)
        assert not deadline.expired()
        clock.advance(0.05)
        assert deadline.expired()
        assert deadline.remaining_ms() == 0.0  # clamped


class TestBudgetToken:
    def test_default_budget_is_unlimited(self):
        token = SolveBudget().start()
        for _ in range(10_000):
            token.tick("gomory")
        assert token.counts["gomory"] == 10_000

    def test_iteration_cap_is_exact(self):
        token = SolveBudget(max_gomory_iters=5).start()
        for _ in range(5):
            token.tick("gomory")  # exactly the cap: allowed
        with pytest.raises(BudgetExhausted) as info:
            token.tick("gomory")
        exc = info.value
        assert exc.phase == "gomory"
        assert exc.iterations == 6
        assert exc.counts == {"gomory": 6}
        assert exc.deadline_ms is None

    def test_caps_are_per_phase(self):
        token = SolveBudget(max_gomory_iters=1, max_bnb_nodes=2).start()
        token.tick("gomory")
        token.tick("bnb")
        token.tick("bnb")
        with pytest.raises(BudgetExhausted):
            token.tick("bnb")

    def test_first_tick_checks_the_clock(self):
        clock = FakeClock()
        deadline = Deadline(10.0, clock=clock)
        token = SolveBudget(deadline_ms=10.0).start(deadline)
        clock.advance(1.0)  # already past the deadline
        with pytest.raises(BudgetExhausted):
            token.tick("connection_search")

    def test_clock_checked_every_stride_ticks(self):
        clock = FakeClock()
        deadline = Deadline(10.0, clock=clock)
        token = SolveBudget(deadline_ms=10.0,
                            time_check_stride=8).start(deadline)
        token.tick("fds")  # first tick reads the clock; not expired
        clock.advance(1.0)  # expire
        for _ in range(7):
            token.tick("fds")  # inside the stride: not noticed yet
        with pytest.raises(BudgetExhausted) as info:
            token.tick("fds")  # stride boundary: clock read, expired
        assert info.value.deadline_ms == 10.0

    def test_check_is_unstrided(self):
        clock = FakeClock()
        deadline = Deadline(10.0, clock=clock)
        token = SolveBudget(deadline_ms=10.0).start(deadline)
        token.check("flow")
        clock.advance(1.0)
        with pytest.raises(BudgetExhausted):
            token.check("flow")
        assert token.counts == {}  # check() never counts iterations

    def test_child_resets_counters_but_shares_clock(self):
        clock = FakeClock()
        deadline = Deadline(100.0, clock=clock)
        token = SolveBudget(deadline_ms=100.0,
                            max_search_steps=2).start(deadline)
        token.tick("connection_search")
        token.tick("connection_search")
        child = token.child()
        assert child.counts == {}
        assert child.deadline is token.deadline
        child.tick("connection_search")
        child.tick("connection_search")
        with pytest.raises(BudgetExhausted):
            child.tick("connection_search")
        clock.advance(0.2)  # past the shared deadline
        with pytest.raises(BudgetExhausted):
            token.child().tick("connection_search")

    def test_incumbent_rides_along(self):
        token = SolveBudget(max_bnb_nodes=1).start()
        token.tick("bnb")
        token.note_incumbent(solver="bnb", objective=7.0)
        with pytest.raises(BudgetExhausted) as info:
            token.tick("bnb")
        assert info.value.incumbent == {"solver": "bnb",
                                        "objective": 7.0}
        assert info.value.progress()["incumbent"]["objective"] == 7.0

    def test_as_token(self):
        assert as_token(None) is None
        budget = SolveBudget(max_fds_moves=3)
        token = as_token(budget)
        assert isinstance(token, BudgetToken)
        assert as_token(token) is token
        with pytest.raises(TypeError):
            as_token(42)

    def test_phase_caps_cover_every_solver_phase(self):
        assert set(PHASE_CAPS) == {"gomory", "simplex", "bnb",
                                   "connection_search",
                                   "list_scheduler", "fds"}
        for field in PHASE_CAPS.values():
            assert hasattr(SolveBudget(), field)


class TestDiagnostics:
    def test_trail_and_degraded(self):
        diag = Diagnostics()
        assert not diag.degraded
        diag.record("dispatch", "selected", flow="simple")
        assert not diag.degraded
        diag.record_fallback("flow", frm="a", to="b")
        assert diag.degraded
        assert diag.trail == ["dispatch: selected",
                              "flow: fallback a -> b"]
        assert len(diag.fallbacks()) == 1

    def test_record_exhaustion_pops_phase(self):
        token = SolveBudget(max_gomory_iters=0).start()
        with pytest.raises(BudgetExhausted) as info:
            token.tick("gomory")
        diag = Diagnostics()
        event = diag.record_exhaustion(info.value)
        assert event.phase == "gomory"
        assert event.event == EVENT_EXHAUSTED
        assert "phase" not in event.detail
        assert event.detail["iterations"] == 1

    def test_round_trip(self):
        diag = Diagnostics()
        diag.record_fallback("flow", frm="x", to="y", extra=1)
        clone = Diagnostics.from_dict(diag.to_dict())
        assert clone.to_dict() == diag.to_dict()
        assert clone.degraded
        assert Diagnostics.from_dict(None).to_dict() == \
            {"degraded": False, "events": []}
        event = DiagnosticEvent.from_dict(
            {"phase": "p", "event": EVENT_FALLBACK,
             "detail": {"frm": "a", "to": "b"}})
        assert event.describe() == "p: fallback a -> b"


def _tiny_model():
    """max x + y s.t. x + 2y <= 4, 3x + y <= 6 (fractional LP optimum)."""
    model = Model()
    x = model.add_var("x", 0, None)
    y = model.add_var("y", 0, None)
    model.add(x + 2 * y <= 4)
    model.add(3 * x + y <= 6)
    model.maximize(x + y)
    return model


class TestSolverThreading:
    """Each solver trips BudgetExhausted at its natural boundary."""

    def test_simplex_counts_lp_solves(self):
        with pytest.raises(BudgetExhausted) as info:
            solve_lp(_tiny_model(),
                     budget=SolveBudget(max_lp_solves=0))
        assert info.value.phase == "simplex"

    def test_branch_bound_counts_nodes(self):
        with pytest.raises(BudgetExhausted) as info:
            solve_ilp(_tiny_model(),
                      budget=SolveBudget(max_bnb_nodes=0))
        assert info.value.phase == "bnb"

    def test_connection_search_counts_steps(self):
        graph = ar_general_design()
        search = ConnectionSearch(
            graph, AR_GENERAL_PINS_UNIDIR, 3,
            budget=SolveBudget(max_search_steps=2))
        with pytest.raises(BudgetExhausted) as info:
            search.run()
        exc = info.value
        assert exc.phase == "connection_search"
        assert exc.iterations == 3
        assert exc.incumbent["solver"] == "connection_search"

    def test_unbudgeted_solvers_unchanged(self):
        result = solve_ilp(_tiny_model())
        assert result.objective == 2
