"""Tests for the matching and compatibility-graph substrate."""

from fractions import Fraction

import pytest

from repro.graphs import (BipartiteMatcher, CompatibilityGraph, SuperNode,
                          hungarian_max_weight, max_bipartite_matching)


class TestBipartiteMatcher:
    def test_simple_matching(self):
        adjacency = {"a": ["s1"], "b": ["s1", "s2"]}
        result = max_bipartite_matching(["a", "b"], adjacency.__getitem__)
        assert result == {"a": "s1", "b": "s2"}

    def test_augmenting_path_reassigns(self):
        adjacency = {"a": ["s1", "s2"], "b": ["s1"]}
        matcher = BipartiteMatcher(adjacency.__getitem__)
        assert matcher.try_add("a")          # a -> s1 (first neighbor)
        assert matcher.match_of_left["a"] == "s1"
        assert matcher.try_add("b")          # b needs s1: a moves to s2
        assert matcher.match_of_left["b"] == "s1"
        assert matcher.match_of_left["a"] == "s2"

    def test_pinned_slot_not_disturbed(self):
        adjacency = {"a": ["s1", "s2"], "b": ["s1"]}
        matcher = BipartiteMatcher(adjacency.__getitem__)
        matcher.assign("a", "s1")
        matcher.pin("s1")
        assert not matcher.try_add("b")

    def test_allowed_filter_restricts_entry(self):
        adjacency = {"a": ["s1", "s2"]}
        matcher = BipartiteMatcher(adjacency.__getitem__)
        assert matcher.try_add("a", allowed=lambda s: s == "s2")
        assert matcher.match_of_left["a"] == "s2"

    def test_infeasible_returns_false(self):
        adjacency = {"a": ["s1"], "b": ["s1"], "c": ["s1"]}
        matcher = BipartiteMatcher(adjacency.__getitem__)
        assert matcher.try_add("a")
        assert not matcher.try_add("b")

    def test_release(self):
        adjacency = {"a": ["s1"]}
        matcher = BipartiteMatcher(adjacency.__getitem__)
        matcher.assign("a", "s1")
        assert matcher.release("a") == "s1"
        assert matcher.try_add("a")

    def test_snapshot_restore(self):
        adjacency = {"a": ["s1"], "b": ["s2"]}
        matcher = BipartiteMatcher(adjacency.__getitem__)
        matcher.try_add("a")
        state = matcher.snapshot()
        matcher.try_add("b")
        matcher.restore(state)
        assert "b" not in matcher.match_of_left


class TestHungarian:
    def test_prefers_heavier_total(self):
        weights = {("a", "x"): 5, ("a", "y"): 1,
                   ("b", "x"): 4, ("b", "y"): 0}
        result = hungarian_max_weight(
            ["a", "b"], ["x", "y"],
            lambda u, v: Fraction(weights[(u, v)]))
        # a->x, b->y gives 5; a->y, b->x gives 5 too; either is max,
        # but both must be matched (cardinality tie-break).
        assert len(result) == 2
        total = sum(weights[(u, v)] for u, v in result.items())
        assert total == 5

    def test_zero_weight_edge_still_matched(self):
        result = hungarian_max_weight(
            ["a"], ["x"], lambda u, v: Fraction(0))
        assert result == {"a": "x"}

    def test_none_means_no_edge(self):
        result = hungarian_max_weight(
            ["a", "b"], ["x"],
            lambda u, v: Fraction(1) if u == "a" else None)
        assert result == {"a": "x"}

    def test_rectangular_more_right(self):
        weights = {("a", "x"): 1, ("a", "y"): 9}
        result = hungarian_max_weight(
            ["a"], ["x", "y"], lambda u, v: Fraction(weights[(u, v)]))
        assert result == {"a": "y"}

    def test_cardinality_secondary_to_weight(self):
        # Matching only a->y (weight 10) beats a->x, b->y (0 + 0).
        def weight(u, v):
            if u == "a" and v == "y":
                return Fraction(10)
            if (u, v) in (("a", "x"), ("b", "y")):
                return Fraction(0)
            return None
        result = hungarian_max_weight(["a", "b"], ["x", "y"], weight)
        # a->y + b->x is impossible (no edge); a->y alone total 10,
        # a->x + b->y total 0: weight wins.
        assert result.get("a") == "y"

    def test_empty_inputs(self):
        assert hungarian_max_weight([], ["x"], lambda u, v: None) == {}


class TestCompatibilityGraph:
    def make(self):
        g = CompatibilityGraph()
        a = g.add_node(SuperNode.of("a"))
        b = g.add_node(SuperNode.of("b"))
        c = g.add_node(SuperNode.of("c"))
        g.add_edge(a, b, Fraction(5))
        g.add_edge(a, c, Fraction(3))
        g.add_edge(b, c, Fraction(1))
        return g, a, b, c

    def test_best_edge(self):
        g, a, b, c = self.make()
        best = g.best_edge()
        assert best is not None and best[2] == 5

    def test_combine_sums_common_weights(self):
        g, a, b, c = self.make()
        merged = g.combine(a, b)
        assert len(g) == 2
        # c was adjacent to both -> edge kept with summed weight 3+1.
        assert g.weight(merged, c) == 4

    def test_combine_drops_noncommon_neighbors(self):
        g = CompatibilityGraph()
        a = g.add_node(SuperNode.of("a"))
        b = g.add_node(SuperNode.of("b"))
        c = g.add_node(SuperNode.of("c"))
        g.add_edge(a, b, Fraction(1))
        g.add_edge(a, c, Fraction(1))  # c adjacent to a only
        merged = g.combine(a, b)
        assert not g.has_edge(merged, c)

    def test_self_edge_rejected(self):
        g = CompatibilityGraph()
        a = g.add_node(SuperNode.of("a"))
        with pytest.raises(ValueError):
            g.add_edge(a, a)

    def test_supernode_merge(self):
        s = SuperNode.of("a", "b").merged(SuperNode.of("c"))
        assert len(s) == 3
        assert set(s.members) == {"a", "b", "c"}
