"""PerfRegistry must be safe under concurrent mutation.

The serving layer merges worker perf deltas and scrapes ``/metrics``
snapshots while solves are running, so ``inc``/``phase``/``snapshot``/
``merge`` race by design.  Before the registry grew its lock, the
failure modes were lost increments (read-modify-write on a plain dict)
and ``RuntimeError: dictionary changed size during iteration`` from
snapshotting mid-insert; these tests pin both down.
"""

import threading

from repro.perf import PerfRegistry


def _run_all(threads):
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(30.0)
        assert not thread.is_alive()


def test_concurrent_increments_are_exact():
    registry = PerfRegistry()
    workers, per_worker = 8, 4000
    barrier = threading.Barrier(workers)

    def hammer():
        barrier.wait()
        for _ in range(per_worker):
            registry.inc("shared")
            with registry.phase("busy"):
                pass

    _run_all([threading.Thread(target=hammer) for _ in range(workers)])
    assert registry.counters["shared"] == workers * per_worker
    assert registry.timings["busy"] >= 0.0


def test_snapshot_while_keys_are_being_added():
    registry = PerfRegistry()
    fresh_keys = 20000

    def writer():
        for i in range(fresh_keys):
            registry.inc(f"key_{i}")
            with registry.phase(f"t_{i}"):
                pass

    thread = threading.Thread(target=writer)
    thread.start()
    try:
        # Unlocked dict iteration here raises RuntimeError as the
        # writer resizes the dicts underneath the snapshot.
        while thread.is_alive():
            snap = registry.snapshot()
            assert all(isinstance(v, int)
                       for v in snap["counters"].values())
            registry.delta_since(snap)
    finally:
        thread.join(30.0)
    assert not thread.is_alive()
    assert len(registry.counters) == fresh_keys


def test_concurrent_merges_accumulate_exactly():
    target = PerfRegistry()
    workers, per_worker = 6, 300

    def merger():
        for _ in range(per_worker):
            target.merge({"counters": {"jobs": 1},
                          "timings": {"solve_s": 0.001}})

    _run_all([threading.Thread(target=merger) for _ in range(workers)])
    assert target.counters["jobs"] == workers * per_worker
    expected = workers * per_worker * 0.001
    assert abs(target.timings["solve_s"] - expected) < 1e-6
