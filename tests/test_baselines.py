"""Tests for the related-work baselines (Section 1.3 comparisons)."""

import pytest

from repro.core.baselines import (gebotys_connection, gebotys_pin_cost,
                                  no_sharing_pin_cost)
from repro.core.interconnect import verify_bus_allocation
from repro.designs import (AR_GENERAL_PINS_UNIDIR, ar_general_design)
from repro.errors import ConnectionError_
from repro.modules.library import ar_filter_timing
from repro.partition.model import ChipSpec, OUTSIDE_WORLD, Partitioning
from repro.cdfg import Cdfg
from repro.cdfg.graph import make_io_node


def two_chip_graph():
    g = Cdfg()
    g.add_node(make_io_node("w0", "a", 1, 2, bit_width=8))
    g.add_node(make_io_node("w1", "b", 1, 2, bit_width=16))
    g.add_node(make_io_node("w2", "c", 2, 1, bit_width=8))
    return g


class TestGebotysBaseline:
    def test_uniform_width_and_full_fanout(self):
        g = two_chip_graph()
        p = Partitioning({OUTSIDE_WORLD: ChipSpec(0),
                          1: ChipSpec(128), 2: ChipSpec(128)})
        ic, assignment = gebotys_connection(g, p, 2)
        # 3 values / 2 slots -> 2 buses, all 16 bits wide, both chips
        # on both sides of every bus.
        assert len(ic.buses) == 2
        for bus in ic.buses:
            assert bus.width == 16
            assert set(bus.out_widths) == {1, 2}
            assert set(bus.in_widths) == {1, 2}
        assert set(assignment.bus_of) == {"w0", "w1", "w2"}

    def test_budget_violation_raises(self):
        g = two_chip_graph()
        p = Partitioning({OUTSIDE_WORLD: ChipSpec(0),
                          1: ChipSpec(32), 2: ChipSpec(32)})
        with pytest.raises(ConnectionError_):
            gebotys_connection(g, p, 2)

    def test_pin_cost_grows_with_chip_count(self):
        # The dissertation's critique: "the larger number of chips in a
        # system, the more I/O pins are likely to be wasted".
        def chain_graph(n_chips):
            g = Cdfg()
            for i in range(1, n_chips):
                g.add_node(make_io_node(f"w{i}", f"v{i}", i, i + 1,
                                        bit_width=8))
            return g

        def total(n_chips):
            chips = {OUTSIDE_WORLD: ChipSpec(0)}
            chips.update({i: ChipSpec(10_000)
                          for i in range(1, n_chips + 1)})
            p = Partitioning(chips)
            return sum(gebotys_pin_cost(chain_graph(n_chips), p,
                                        2).values())

        # Our heuristic's cost for a chain is linear in chips; the
        # uniform-bus baseline is quadratic-ish.
        assert total(6) / total(3) > 6 / 3

    def test_paper_comparison_on_ar_filter(self):
        from repro import synthesize_connection_first
        graph = ar_general_design()
        ours = synthesize_connection_first(
            graph, AR_GENERAL_PINS_UNIDIR, ar_filter_timing(), 3)
        baseline = gebotys_pin_cost(graph, AR_GENERAL_PINS_UNIDIR, 3)
        assert sum(baseline.values()) > sum(ours.pins_used().values())


class TestNoSharingBaseline:
    def test_sums_all_transfers(self):
        g = two_chip_graph()
        p = Partitioning({OUTSIDE_WORLD: ChipSpec(0),
                          1: ChipSpec(64), 2: ChipSpec(64)})
        costs = no_sharing_pin_cost(g, p)
        # chip1: outputs a(8)+b(16)=24, input c(8)=8 -> 32.
        assert costs[1] == 32
        # chip2: inputs 8+16=24, output 8 -> 32.
        assert costs[2] == 32

    def test_multifanout_output_counted_once(self):
        g = Cdfg()
        g.add_node(make_io_node("wa", "v", 1, 2, bit_width=8))
        g.add_node(make_io_node("wb", "v", 1, 3, bit_width=8))
        p = Partitioning({OUTSIDE_WORLD: ChipSpec(0), 1: ChipSpec(64),
                          2: ChipSpec(64), 3: ChipSpec(64)})
        costs = no_sharing_pin_cost(g, p)
        assert costs[1] == 8

    def test_exceeds_time_shared_design(self):
        from repro import synthesize_connection_first
        graph = ar_general_design()
        ours = synthesize_connection_first(
            graph, AR_GENERAL_PINS_UNIDIR, ar_filter_timing(), 5)
        baseline = no_sharing_pin_cost(graph, AR_GENERAL_PINS_UNIDIR)
        # At rate 5 the heuristic multiplexes five transfers per pin
        # group; the no-sharing cost must be far larger.
        assert sum(baseline.values()) > sum(ours.pins_used().values())
