"""Differential-oracle semantics and builtin-design agreement.

Satellite (d) of the checker work: the flows must agree on the
built-in designs, and a flow's own ``require_valid()`` verdict must
coincide with the unified checker's (no checker gaps in either
direction).
"""

import pytest

from repro.check import (applicable_flows, check_result, proof_refutes,
                         run_differential)
from repro.check.oracle import (FlowOutcome, INFEASIBLE, OK,
                                OracleReport, _cross_compare)
from repro.check.report import CheckReport, Violation
from repro.cli import _load
from repro.designs import AR_SIMPLE_PINS, ar_simple_design

#: (design, rate) points matching the CI smoke matrix.
BUILTIN_POINTS = [
    ("ar-simple", 2),
    ("ar-general", 3),
    ("ar-general-bidir", 3),
    ("elliptic", 6),
    ("elliptic-bidir", 7),
]


@pytest.mark.parametrize("design,rate", BUILTIN_POINTS)
def test_flows_agree_on_builtin(design, rate):
    graph, pins, timing, resources = _load(design, rate)
    oracle = run_differential(graph, pins, timing, rate,
                              timeout_ms=15000, resources=resources,
                              keep_results=True)
    assert oracle.ok, oracle.to_dict()
    # No checker gap: each flow's own verify() verdict must equal the
    # unified checker's (modulo openly declared pin overruns).
    for outcome in oracle.outcomes:
        if outcome.result is None:
            continue
        own_clean = not outcome.result.verify()
        assert own_clean == outcome.report.ok or outcome.acceptable


def test_applicable_flows_simple():
    graph = ar_simple_design()
    flows = applicable_flows(graph, AR_SIMPLE_PINS)
    assert flows == ["simple", "connection-first", "schedule-first"]


def test_applicable_flows_general():
    from repro.designs import AR_GENERAL_PINS_BIDIR, ar_general_design
    flows = applicable_flows(ar_general_design(), AR_GENERAL_PINS_BIDIR)
    assert flows == ["connection-first", "schedule-first"]


def test_require_valid_matches_unified_checker():
    graph, pins, timing, resources = _load("ar-general", 3)
    from repro.core.flow import synthesize
    result = synthesize(graph, pins, timing, 3,
                        flow="connection-first", resources=resources)
    result.require_valid()
    assert check_result(result).ok


# ---------------------------------------------------------------------
# Proof scoping: Chapter 3's ILP proves infeasibility of its own
# restricted interconnect model only.
# ---------------------------------------------------------------------
def test_proof_refutes_scoping():
    assert not proof_refutes("simple", "connection-first")
    assert not proof_refutes("simple", "schedule-first")
    assert proof_refutes("connection-first", "simple")
    assert proof_refutes("connection-first", "schedule-first")
    assert proof_refutes("schedule-first", "connection-first")


def _clean_outcome(flow):
    return FlowOutcome(flow, OK, report=CheckReport())


def test_general_proof_vs_clean_result_disagrees():
    report = OracleReport(outcomes=[
        FlowOutcome("connection-first", INFEASIBLE, error="ilp"),
        _clean_outcome("schedule-first"),
    ])
    _cross_compare(report)
    assert report.disagreements
    assert not report.ok


def test_chapter3_proof_vs_general_result_is_fine():
    report = OracleReport(outcomes=[
        FlowOutcome("simple", INFEASIBLE, error="ilp"),
        _clean_outcome("connection-first"),
    ])
    _cross_compare(report)
    assert not report.disagreements
    assert report.ok


def test_dirty_result_never_refutes():
    dirty = CheckReport(violations=[
        Violation.at("pin-budget", "over budget", chip=1)])
    report = OracleReport(outcomes=[
        FlowOutcome("connection-first", INFEASIBLE, error="ilp"),
        FlowOutcome("schedule-first", OK, report=dirty,
                    declared_overruns=True),
    ])
    _cross_compare(report)
    assert not report.disagreements


def test_checker_gap_detected():
    dirty = CheckReport(violations=[
        Violation.at("bus-conflict", "collision", bus=1)])
    report = OracleReport(outcomes=[
        FlowOutcome("connection-first", OK, own_problems=[],
                    report=dirty),
    ])
    _cross_compare(report)
    assert report.checker_gaps
    assert not report.ok


def test_checker_gap_reverse_direction():
    report = OracleReport(outcomes=[
        FlowOutcome("connection-first", OK,
                    own_problems=["phantom problem"],
                    report=CheckReport()),
    ])
    _cross_compare(report)
    assert report.checker_gaps
