"""Tests for the dual all-integer cutting-plane solver (Section 3.3)."""

from fractions import Fraction

import pytest

from repro.errors import IlpError, InfeasibleError
from repro.ilp import DualAllIntegerSolver, Model, SolveStatus, lsum, solve_ilp


def _packing_model(n_items, caps, item_loads=None):
    """Assign each item to one bin under capacity; minimize 0."""
    m = Model()
    xs = {}
    loads = item_loads or [1] * n_items
    for w in range(n_items):
        for k in range(len(caps)):
            xs[w, k] = m.binary(f"x{w}_{k}")
        m.add(lsum(xs[w, k] for k in range(len(caps))) >= 1)
    for k, cap in enumerate(caps):
        m.add(lsum(loads[w] * xs[w, k] for w in range(n_items)) <= cap)
    m.minimize(0)
    return m, xs


class TestFeasibility:
    def test_feasible_packing(self):
        m, _ = _packing_model(3, [2, 2])
        assert DualAllIntegerSolver(m).check_feasible()

    def test_infeasible_packing(self):
        m, _ = _packing_model(3, [1, 1])
        assert not DualAllIntegerSolver(m).check_feasible()

    def test_weighted_packing(self):
        m, _ = _packing_model(3, [10, 5], item_loads=[8, 5, 2])
        assert DualAllIntegerSolver(m).check_feasible()
        m2, _ = _packing_model(3, [9, 5], item_loads=[8, 5, 2])
        # 8 must go to bin0 (9), 5 to bin1 (5), 2 -> bin0 has 1 left,
        # bin1 has 0 -> infeasible.
        assert not DualAllIntegerSolver(m2).check_feasible()

    def test_agrees_with_branch_and_bound(self):
        for caps in ([3, 1], [2, 2], [1, 2], [1, 1], [4, 0]):
            m, _ = _packing_model(4, caps)
            gomory = DualAllIntegerSolver(m).check_feasible()
            bnb = solve_ilp(m).feasible
            assert gomory == bnb, f"disagreement at caps={caps}"


class TestIncrementalBounds:
    def test_commit_lower_bound_consumes_capacity(self):
        m, xs = _packing_model(3, [2, 1])
        solver = DualAllIntegerSolver(m)
        assert solver.reoptimize()
        # Force items 0 and 1 into bin 0: still feasible.
        solver.commit_lower_bound(xs[0, 0])
        solver.commit_lower_bound(xs[1, 0])
        # Bin 0 is now full; item 2 into bin 0 must fail...
        assert not solver.try_lower_bound(xs[2, 0])
        # ...but bin 1 works.
        assert solver.try_lower_bound(xs[2, 1])
        solver.commit_lower_bound(xs[2, 1])

    def test_commit_infeasible_raises_and_restores(self):
        m, xs = _packing_model(2, [1, 1])
        solver = DualAllIntegerSolver(m)
        solver.commit_lower_bound(xs[0, 0])
        with pytest.raises(InfeasibleError):
            solver.commit_lower_bound(xs[1, 0])
        # After the failed commit the solver is still usable.
        assert solver.try_lower_bound(xs[1, 1])

    def test_try_does_not_mutate(self):
        m, xs = _packing_model(2, [1, 1])
        solver = DualAllIntegerSolver(m)
        before = solver.snapshot()
        assert solver.try_lower_bound(xs[0, 0])
        after = solver.snapshot()
        assert before[0].rows == after[0].rows
        assert before[1] == after[1]


class TestOptimization:
    def test_solve_minimization_with_nonnegative_costs(self):
        # min x + y s.t. x + y >= 3, x <= 2 (integers)
        m = Model()
        x = m.add_var("x", 0, 2)
        y = m.add_var("y", 0, None)
        m.add(x + y >= 3)
        m.minimize(x + y)
        s = DualAllIntegerSolver(m).solve()
        assert s.status is SolveStatus.OPTIMAL
        assert s.objective == 3

    def test_solution_values_integral(self):
        m, xs = _packing_model(3, [2, 2])
        s = DualAllIntegerSolver(m).solve()
        assert s.status is SolveStatus.OPTIMAL
        for var in m.vars:
            assert s[var].denominator == 1
        assert m.check(s.values)

    def test_rejects_continuous_variables(self):
        m = Model()
        m.add_var("x", 0, 1, integer=False)
        m.minimize(0)
        with pytest.raises(IlpError):
            DualAllIntegerSolver(m)

    def test_rejects_dual_infeasible_start(self):
        m = Model()
        x = m.add_var("x", 0, 5)
        m.maximize(x)  # min -x: negative reduced cost
        with pytest.raises(IlpError):
            DualAllIntegerSolver(m)

    def test_fractional_coefficient_rejected(self):
        m = Model()
        x = m.add_var("x", 0, 5)
        m.add(Fraction(1, 2) * x <= 1)
        m.minimize(0)
        with pytest.raises(IlpError):
            DualAllIntegerSolver(m)


class TestCutGeneration:
    def test_cuts_counted(self):
        # A problem whose LP relaxation is fractional, forcing cuts:
        # x + y >= 1, x + z >= 1, y + z >= 1 (vertex cover of a
        # triangle; LP optimum 3/2, ILP needs 2).
        m = Model()
        x = m.add_var("x", 0, 1)
        y = m.add_var("y", 0, 1)
        z = m.add_var("z", 0, 1)
        m.add(x + y >= 1)
        m.add(x + z >= 1)
        m.add(y + z >= 1)
        m.minimize(0)  # feasibility only; still needs dual pivots
        solver = DualAllIntegerSolver(m)
        assert solver.reoptimize()
        assert solver.pivots > 0


class TestRowReduction:
    """The Euclidean row-reduction preprocessing (gcd scaling)."""

    def test_gcd_scaling_preserves_feasibility(self):
        # 8x + 8y <= 20 reduces (gcd 8, floored rhs) to x + y <= 2:
        # the integer hulls agree, so feasibility answers match.
        m = Model()
        x = m.add_var("x", 0, 5)
        y = m.add_var("y", 0, 5)
        m.add(8 * x + 8 * y <= 20)
        m.add(x + y >= 2)
        m.minimize(0)
        assert DualAllIntegerSolver(m).check_feasible()
        m2 = Model()
        x2 = m2.add_var("x", 0, 5)
        y2 = m2.add_var("y", 0, 5)
        m2.add(8 * x2 + 8 * y2 <= 20)
        m2.add(x2 + y2 >= 3)  # needs 24 > 20: infeasible
        m2.minimize(0)
        assert not DualAllIntegerSolver(m2).check_feasible()

    def test_gcd_equality_divisibility(self):
        # 4x == 6 has no integer solution; the scaled <=/>= pair
        # (2x <= 3 -> x <= 1; 2x >= 3 -> x >= 2) exposes it.
        m = Model()
        x = m.add_var("x", 0, 10)
        m.add(4 * x == 6)
        m.minimize(0)
        assert not DualAllIntegerSolver(m).check_feasible()
        m2 = Model()
        x2 = m2.add_var("x", 0, 10)
        m2.add(4 * x2 == 8)
        m2.minimize(0)
        assert DualAllIntegerSolver(m2).check_feasible()

    def test_pivot_preference_reduces_cuts(self):
        # The AR-style wide-coefficient model: cuts stay modest.
        from repro.core.pin_allocation import PinAllocationProblem
        from repro.designs import AR_SIMPLE_PINS, ar_simple_design
        prob = PinAllocationProblem(ar_simple_design(),
                                    AR_SIMPLE_PINS, 2)
        solver = DualAllIntegerSolver(prob.model)
        assert solver.reoptimize()
        assert solver.cuts_generated < 60
