"""Tests for Chapter 5 connection synthesis after scheduling."""

from fractions import Fraction

import pytest

from repro.cdfg import Cdfg
from repro.cdfg.graph import make_io_node
from repro.core.post_sched import (PostScheduleConnector,
                                   connect_after_scheduling, pair_weight)
from repro.core.interconnect import verify_bus_allocation
from repro.errors import ConnectionError_
from repro.modules.library import ar_filter_timing
from repro.scheduling.base import Schedule


def scheduled_graph(specs, placements, L=2):
    g = Cdfg()
    for name, value, src, dst, width in specs:
        g.add_node(make_io_node(name, value, src, dst, bit_width=width))
    s = Schedule(g, ar_filter_timing(), L)
    for name, step in placements.items():
        s.place(name, step)
    return g, s


class TestPairWeight:
    def n(self, name, src, dst, width=8):
        return make_io_node(name, name, src, dst, bit_width=width)

    def test_both_ends_shared(self):
        w = pair_weight(self.n("a", 1, 2), self.n("b", 1, 2), False, {})
        assert w == 16  # 8 output + 8 input pins shareable

    def test_source_only(self):
        w = pair_weight(self.n("a", 1, 2), self.n("b", 1, 3), False, {})
        assert w == 8

    def test_nothing_shared(self):
        w = pair_weight(self.n("a", 1, 2), self.n("b", 3, 4), False, {})
        assert w == 0

    def test_min_width_rule(self):
        w = pair_weight(self.n("a", 1, 2, 16), self.n("b", 1, 2, 8),
                        False, {})
        assert w == 16  # min(16, 8) per shared end

    def test_bidirectional_reversed_pair_shares(self):
        # w=(P1,P2) and w'=(P2,P1) share both ports with bidi pins.
        w = pair_weight(self.n("a", 1, 2), self.n("b", 2, 1), True, {})
        assert w == 16

    def test_weighting_factor(self):
        w = pair_weight(self.n("a", 1, 2), self.n("b", 1, 2), False,
                        {1: Fraction(3)})
        assert w == 8 * 3 + 8


class TestCliquePartitioning:
    def test_different_groups_merge(self):
        g, s = scheduled_graph(
            [("w0", "v0", 1, 2, 8), ("w1", "v1", 1, 2, 8)],
            {"w0": 0, "w1": 1})
        ic, assignment = connect_after_scheduling(g, s)
        # Same route, different groups: one shared bus.
        assert len(ic.buses) == 1
        assert ic.pins_used(1) == 8

    def test_same_group_cannot_merge(self):
        g, s = scheduled_graph(
            [("w0", "v0", 1, 2, 8), ("w1", "v1", 1, 2, 8)],
            {"w0": 0, "w1": 2})  # both group 0
        ic, _ = connect_after_scheduling(g, s)
        assert len(ic.buses) == 2
        assert ic.pins_used(1) == 16

    def test_same_value_same_step_is_one_supernode(self):
        g, s = scheduled_graph(
            [("wa", "v", 1, 2, 8), ("wb", "v", 1, 3, 8)],
            {"wa": 0, "wb": 0})
        ic, assignment = connect_after_scheduling(g, s)
        assert assignment.bus_of["wa"] == assignment.bus_of["wb"]
        bus = ic.bus(assignment.bus_of["wa"])
        assert bus.out_widths[1] == 8
        assert bus.in_widths == {2: 8, 3: 8}

    def test_port_widths_cover_members(self):
        g, s = scheduled_graph(
            [("w0", "v0", 1, 2, 16), ("w1", "v1", 1, 2, 8)],
            {"w0": 0, "w1": 1})
        ic, assignment = connect_after_scheduling(g, s)
        bus = ic.bus(assignment.bus_of["w0"])
        assert bus.out_widths[1] == 16

    def test_allocation_conflict_free(self):
        specs = [(f"w{i}", f"v{i}", 1 + i % 2, 3, 8) for i in range(6)]
        placements = {f"w{i}": i for i in range(6)}
        g, s = scheduled_graph(specs, placements, L=3)
        ic, assignment = connect_after_scheduling(g, s)
        assert verify_bus_allocation(g, ic, assignment,
                                     s.start_step, 3) == []

    def test_unscheduled_op_rejected(self):
        g, s = scheduled_graph([("w0", "v0", 1, 2, 8)], {})
        with pytest.raises(ConnectionError_):
            connect_after_scheduling(g, s)

    def test_bidirectional_reduces_pins(self):
        specs = [("fwd", "a", 1, 2, 8), ("bwd", "b", 2, 1, 8)]
        placements = {"fwd": 0, "bwd": 1}
        g, s = scheduled_graph(specs, placements)
        uni_ic, _ = connect_after_scheduling(g, s, bidirectional=False)
        g2, s2 = scheduled_graph(specs, placements)
        bi_ic, _ = connect_after_scheduling(g2, s2, bidirectional=True)
        assert bi_ic.pins_used(1) < uni_ic.pins_used(1)


class TestEndToEnd:
    def test_ar_flow(self):
        from repro import synthesize_schedule_first
        from repro.designs import AR_GENERAL_PINS_UNIDIR, ar_general_design
        result = synthesize_schedule_first(
            ar_general_design(), AR_GENERAL_PINS_UNIDIR,
            ar_filter_timing(), 3, pipe_length=9)
        assert result.pipe_length <= 9
        hard = [p for p in result.verify() if "budget" not in p]
        assert hard == []

    def test_elliptic_flow_at_boundary_rate(self):
        from repro import synthesize_schedule_first
        from repro.designs import ELLIPTIC_PINS_UNIDIR, elliptic_design
        from repro.modules.library import elliptic_filter_timing
        result = synthesize_schedule_first(
            elliptic_design(), ELLIPTIC_PINS_UNIDIR,
            elliptic_filter_timing(), 5, pipe_length=24)
        hard = [p for p in result.verify() if "budget" not in p]
        assert hard == []
