"""Pinned regressions for bugs the unified checker / fuzzer surfaced.

Each test here encodes one concrete bug found by the Issue-5 checking
campaign, reduced to its smallest reproduction, so the fix cannot
silently rot.
"""

import threading

import pytest

from repro.check import check_result, run_case
from repro.check.fuzz import FuzzCase
from repro.core.flow import synthesize
from repro.core.interconnect import Bus, Interconnect
from repro.designs.random_designs import random_partitioned_design
from repro.errors import ReproError
from repro.explore.cache import ResultCache
from repro.modules.library import ar_filter_timing
from repro.partition.model import ChipSpec, Partitioning
from repro.service.client import (MAX_DATE_RETRY_AFTER_S,
                                  parse_retry_after)


# ---------------------------------------------------------------------
# Bug: ConnectionSearch ignored fixed input/output pin splits — it
# budgeted only the total pin pool, so a chip declared with
# ``output_pins=4`` could come back wired with 8+ output pins, and its
# own ``verify()`` (which also only checked totals) waved the invalid
# result through.  Found by the fixed-split fuzz cases.
# ---------------------------------------------------------------------
def _split_design(output_pins):
    return random_partitioned_design(7, n_chips=2, widths=(8,),
                                     pin_budget=64,
                                     output_pins=output_pins)


def test_connection_first_honors_fixed_split():
    graph, pins = _split_design(output_pins=4)
    try:
        result = synthesize(graph, pins, ar_filter_timing(), 2,
                            flow="connection-first")
    except ReproError:
        return  # an honest give-up/proof beats a silently-bad result
    report = check_result(result)
    assert "pin-split" not in report.by_rule(), report.messages()
    assert "pin-step" not in report.by_rule(), report.messages()


def test_connection_first_loose_split_is_clean():
    graph, pins = _split_design(output_pins=24)
    result = synthesize(graph, pins, ar_filter_timing(), 2,
                        flow="connection-first")
    assert check_result(result).ok


def test_subbus_search_honors_fixed_split():
    graph, pins = _split_design(output_pins=4)
    try:
        result = synthesize(graph, pins, ar_filter_timing(), 2,
                            flow="connection-first",
                            subbus_sharing=True)
    except ReproError:
        return
    report = check_result(result)
    assert "pin-split" not in report.by_rule(), report.messages()


def test_check_budget_reports_split_overruns():
    # Interconnect.check_budget previously only compared totals.
    pins = Partitioning({
        0: ChipSpec(64),
        1: ChipSpec(64, input_pins=60, output_pins=4),
    })
    inter = Interconnect([Bus(1, out_widths={1: 8}, in_widths={0: 8})])
    problems = inter.check_budget(pins)
    assert any("output-pin budget" in p for p in problems)
    # The wording carries "budget" so the schedule-first flow files it
    # under its declared overruns instead of hard-failing.
    assert all("budget" in p for p in problems)


def test_pins_used_split():
    inter = Interconnect([
        Bus(1, out_widths={1: 8}, in_widths={2: 8}),
        Bus(2, out_widths={1: 4}, in_widths={1: 16}),
    ])
    assert inter.pins_used_split(1) == (12, 16)
    assert inter.pins_used_split(2) == (0, 8)


# ---------------------------------------------------------------------
# Bug: the oracle flagged "simple proved infeasible but
# connection-first produced a clean result" as a disagreement.  The
# Chapter 3 ILP bakes in disjoint external/interchip pin nets, so its
# proof does not cover general-bus-model results (fuzz case
# issue5:15 reduced).
# ---------------------------------------------------------------------
def test_chapter3_proof_not_refuted_by_general_result():
    case = FuzzCase(seed=598335, n_chips=2, n_ops=14, widths=(8, 16),
                    pin_budget=96, bidirectional=False,
                    output_pins=24, rate=2)
    result = run_case(case, timeout_ms=15000)
    assert not result.failed, result.oracle.to_dict()
    outcomes = {o.flow: o.outcome for o in result.oracle.outcomes}
    # The interesting shape must still be present, else this test
    # degenerates: simple proves infeasible, connection-first solves.
    assert outcomes.get("simple") in ("infeasible", "budget")
    assert outcomes.get("connection-first") in ("ok", "budget")


# ---------------------------------------------------------------------
# Satellite (b): ServiceClient crashed on a missing or non-numeric
# Retry-After header (int(None) / int("Sat, 01 Jan...")).
# ---------------------------------------------------------------------
@pytest.mark.parametrize("value,expected", [
    (None, 1),
    ("3", 3),
    (" 2 ", 2),
    ("2.7", 2),
    ("0", 1),
    ("0.2", 1),
    ("-5", 1),
    ("nan", 1),
    ("inf", 1),
    ("soon", 1),
])
def test_parse_retry_after(value, expected):
    assert parse_retry_after(value) == expected


def test_parse_retry_after_custom_default():
    assert parse_retry_after(None, default=5) == 5
    assert parse_retry_after("junk", default=5) == 5
    assert parse_retry_after("2", default=5) == 5


# ---------------------------------------------------------------------
# Satellite (issue 10): parse_retry_after fell back to 1s on RFC 9110
# HTTP-date values, so a client hammered a draining shard that asked
# for a 30s hold.  Dates are decoded via email.utils and measured
# against an injectable clock; far-future dates (clock skew, hostile
# proxies) are capped, past dates fall back to the default.
# ---------------------------------------------------------------------
#: Unix timestamp of Fri, 01 Jan 2027 00:00:00 GMT.
_NOW_2027 = 1798761600.0


@pytest.mark.parametrize("value,expected", [
    ("Fri, 01 Jan 2027 00:00:30 GMT", 30),
    ("Fri, 01 Jan 2027 00:02:00 GMT", 120),
    # IMF-fixdate is canonical, but RFC 5322 spellings parse too.
    ("1 Jan 2027 00:00:30 GMT", 30),
    # Already in the past: no hold, just the default.
    ("Thu, 31 Dec 2026 23:59:00 GMT", 1),
    # A year in the future: capped, not honored literally.
    ("Sat, 01 Jan 2028 00:00:00 GMT", MAX_DATE_RETRY_AFTER_S),
])
def test_parse_retry_after_http_date(value, expected):
    assert parse_retry_after(value, now=_NOW_2027) == expected


def test_parse_retry_after_http_date_real_clock():
    # Without an injected clock the fixed far-future pin still holds:
    # whatever today is, 2028 is capped (until it is the past, when
    # the default takes over — either way, never a literal year).
    assert parse_retry_after("Sat, 01 Jan 2028 00:00:00 GMT") \
        <= MAX_DATE_RETRY_AFTER_S


# ---------------------------------------------------------------------
# Satellite (c): ResultCache.compact() rewrote the file from the
# in-memory index alone, dropping records another thread appended
# between the file read and the os.replace.
# ---------------------------------------------------------------------
def test_compact_keeps_concurrent_appends(tmp_path):
    path = str(tmp_path / "cache.jsonl")
    cache = ResultCache(path)
    for i in range(20):
        cache.put(f"warm{i}", {"status": "ok", "metrics": {"i": i}})

    stop = threading.Event()
    written = []

    def writer():
        i = 0
        while not stop.is_set():
            key = f"hot{i}"
            if cache.put(key, {"status": "ok", "metrics": {"i": i}}):
                written.append(key)
            i += 1

    thread = threading.Thread(target=writer)
    thread.start()
    try:
        for _ in range(10):
            summary = cache.compact()
            assert summary["compacted"]
    finally:
        stop.set()
        thread.join()

    reloaded = ResultCache(path)
    assert reloaded.corrupt_lines == 0
    for i in range(20):
        assert f"warm{i}" in reloaded
    for key in written:
        assert key in reloaded, f"compact dropped {key}"


def test_compact_merges_foreign_appends(tmp_path):
    # Another *process* (second handle on the same file) appends a
    # record this instance has never seen; compaction must keep it.
    path = str(tmp_path / "cache.jsonl")
    ours = ResultCache(path)
    ours.put("mine", {"status": "ok"})
    theirs = ResultCache(path)
    theirs.put("yours", {"status": "ok"})
    summary = ours.compact()
    assert summary["compacted"]
    reloaded = ResultCache(path)
    assert "mine" in reloaded and "yours" in reloaded


# ---------------------------------------------------------------------
# Campaign-found (issue 10, fault kind "cache-torn"): ResultCache.put
# appended straight after a torn last line (a crash mid-write leaves
# no trailing newline), welding the new record onto the fragment —
# on reload BOTH lines parsed as one corrupt line and a validly
# acknowledged write was silently gone.
# ---------------------------------------------------------------------
def test_put_survives_torn_trailing_line(tmp_path):
    path = str(tmp_path / "cache.jsonl")
    cache = ResultCache(path)
    cache.put("before", {"status": "ok"})
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"v": 1, "key": "torn", "record":')  # no \n
    survivor = ResultCache(path)
    assert survivor.put("after", {"status": "ok"})

    reloaded = ResultCache(path)
    assert "before" in reloaded
    assert "after" in reloaded, "append welded onto the torn line"
    assert reloaded.corrupt_lines == 1  # only the fragment is lost


# ---------------------------------------------------------------------
# Campaign-found (issue 10, fault kind "cache-kill"): write-through
# puts during a cache-server outage were dropped forever — after the
# server came back, results this shard solved during the outage never
# reached the shared cache, so other shards re-executed them
# (fleet-wide exactly-once violation seen by the campaign checker).
# ---------------------------------------------------------------------
def test_read_through_replays_unshipped_puts_on_reconnect():
    import time as _time

    from repro.cluster import ReadThroughCache, ThreadedCacheServer

    served = ThreadedCacheServer().start()
    port = served.port
    shared = served.cache
    mounted = ReadThroughCache(served.address, probe_interval_s=0.05)
    served.stop()

    solved = {"status": "ok", "metrics": {"total_pins": 1}}
    assert mounted.put("during-outage", solved)   # local only
    assert mounted.unshipped == 1

    revived = ThreadedCacheServer(shared, port=port).start()
    try:
        deadline = _time.monotonic() + 5.0
        while shared.get("during-outage") is None \
                and _time.monotonic() < deadline:
            _time.sleep(0.06)
            mounted.get("poke")  # any remote op re-probes + replays
        assert shared.get("during-outage") is not None, \
            "outage-era put never reached the recovered server"
        assert mounted.unshipped == 0
    finally:
        revived.stop()
        mounted.client.close()
