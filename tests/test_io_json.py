"""Round-trip tests for the JSON serialization layer."""

import json

import pytest

from repro.designs import (AR_GENERAL_PINS_UNIDIR, ELLIPTIC_PINS_BIDIR,
                           ar_general_design, elliptic_design)
from repro.io_json import (FormatError, dump_design, dump_result,
                           graph_from_dict, graph_to_dict,
                           interconnect_from_dict, interconnect_to_dict,
                           load_design, load_result,
                           partitioning_from_dict, partitioning_to_dict)


class TestGraphRoundTrip:
    @pytest.mark.parametrize("factory", [ar_general_design,
                                         elliptic_design])
    def test_round_trip_preserves_structure(self, factory):
        g = factory()
        clone = graph_from_dict(graph_to_dict(g))
        assert sorted(clone.node_names()) == sorted(g.node_names())
        assert sorted((e.src, e.dst, e.degree) for e in clone.edges()) \
            == sorted((e.src, e.dst, e.degree) for e in g.edges())
        for name in g.node_names():
            a, b = g.node(name), clone.node(name)
            assert (a.kind, a.op_type, a.partition, a.bit_width,
                    a.value, a.source_partition, a.dest_partition,
                    a.guard) == \
                   (b.kind, b.op_type, b.partition, b.bit_width,
                    b.value, b.source_partition, b.dest_partition,
                    b.guard)

    def test_bad_version_rejected(self):
        data = graph_to_dict(ar_general_design())
        data["version"] = 99
        with pytest.raises(FormatError):
            graph_from_dict(data)

    def test_guards_preserved(self):
        from repro.cdfg import CdfgBuilder
        b = CdfgBuilder()
        src = b.op("s", "add", 1)
        b.io("w", "v", source=src, dests=[], source_partition=1,
             dest_partition=2, guard={"c": True})
        g = b.build()
        clone = graph_from_dict(graph_to_dict(g))
        assert clone.node("w").guard == frozenset({("c", True)})


class TestPartitioningRoundTrip:
    @pytest.mark.parametrize("p", [AR_GENERAL_PINS_UNIDIR,
                                   ELLIPTIC_PINS_BIDIR])
    def test_round_trip(self, p):
        clone = partitioning_from_dict(partitioning_to_dict(p))
        assert clone.indices() == p.indices()
        for index in p.indices():
            assert clone.chip(index) == p.chip(index)


class TestInterconnectRoundTrip:
    def test_round_trip_with_segments(self):
        from repro import synthesize_connection_first
        from repro.designs import AR_GENERAL_PINS_BIDIR
        from repro.modules.library import ar_filter_timing
        result = synthesize_connection_first(
            ar_general_design(), AR_GENERAL_PINS_BIDIR,
            ar_filter_timing(), 5, subbus_sharing=True)
        clone = interconnect_from_dict(
            interconnect_to_dict(result.interconnect))
        assert len(clone.buses) == len(result.interconnect.buses)
        for a, b in zip(clone.buses, result.interconnect.buses):
            assert a.index == b.index
            assert a.bi_widths == b.bi_widths
            assert a.segments == b.segments


class TestFiles:
    def test_design_file_round_trip(self, tmp_path):
        path = str(tmp_path / "design.json")
        dump_design(ar_general_design(), AR_GENERAL_PINS_UNIDIR, path)
        graph, partitioning = load_design(path)
        assert len(graph) == len(ar_general_design())
        assert partitioning.total_pins(1) == 135

    def test_result_archive_is_valid_json(self, tmp_path):
        from repro import synthesize_connection_first
        from repro.modules.library import ar_filter_timing
        result = synthesize_connection_first(
            ar_general_design(), AR_GENERAL_PINS_UNIDIR,
            ar_filter_timing(), 3)
        path = str(tmp_path / "result.json")
        dump_result(result, path)
        with open(path) as handle:
            data = json.load(handle)
        assert data["initiation_rate"] == 3
        assert set(data["schedule"]["start_step"]) \
            == set(result.schedule.start_step)

    def test_missing_sections_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{}")
        with pytest.raises(FormatError):
            load_design(str(path))

    def test_result_round_trip_with_stats_and_diagnostics(
            self, tmp_path):
        from repro import SolveBudget, synthesize
        from repro.modules.library import ar_filter_timing
        timing = ar_filter_timing()
        result = synthesize(ar_general_design(),
                            AR_GENERAL_PINS_UNIDIR, timing, 3,
                            budget=SolveBudget(max_search_steps=3))
        assert result.degraded
        path = str(tmp_path / "degraded.json")
        dump_result(result, path)
        clone = load_result(path, timing)
        assert clone.schedule.start_step == result.schedule.start_step
        assert clone.schedule.start_ns == result.schedule.start_ns
        assert clone.resources == result.resources
        assert clone.pins_used() == result.pins_used()
        assert clone.pipe_length == result.pipe_length
        assert clone.stats == result.stats
        assert clone.degraded
        assert clone.diagnostics.to_dict() == \
            result.diagnostics.to_dict()
        assert clone.verify() == []

    def test_bus_assignment_stat_survives_the_archive(self, tmp_path):
        from repro import synthesize_connection_first
        from repro.core.interconnect import BusAssignment
        from repro.modules.library import ar_filter_timing
        timing = ar_filter_timing()
        result = synthesize_connection_first(
            ar_general_design(), AR_GENERAL_PINS_UNIDIR, timing, 3)
        assert isinstance(result.stats["initial_assignment"],
                          BusAssignment)
        path = str(tmp_path / "result.json")
        dump_result(result, path)
        clone = load_result(path, timing)
        initial = clone.stats["initial_assignment"]
        assert isinstance(initial, BusAssignment)
        assert initial.bus_of == \
            result.stats["initial_assignment"].bus_of

    def test_load_result_rejects_bad_input(self, tmp_path):
        from repro.modules.library import ar_filter_timing
        path = tmp_path / "bad.json"
        path.write_text("{\"version\": 1}")
        with pytest.raises(FormatError):
            load_result(str(path), ar_filter_timing())
        path.write_text("not json")
        with pytest.raises(FormatError):
            load_result(str(path), ar_filter_timing())


class TestCli:
    def test_designs_command(self, capsys):
        from repro.cli import main
        assert main(["designs"]) == 0
        out = capsys.readouterr().out
        assert "ar-general" in out

    def test_synthesize_command(self, capsys, tmp_path):
        from repro.cli import main
        out_path = str(tmp_path / "r.json")
        assert main(["synthesize", "ar-general", "-L", "4",
                     "--output", out_path]) == 0
        out = capsys.readouterr().out
        assert "pipe length" in out
        assert json.load(open(out_path))["initiation_rate"] == 4

    def test_json_design_through_cli(self, capsys, tmp_path):
        from repro.cli import main
        path = str(tmp_path / "design.json")
        dump_design(ar_general_design(), AR_GENERAL_PINS_UNIDIR, path)
        assert main(["synthesize", path, "-L", "3"]) == 0

    def test_error_reported(self, capsys):
        from repro.cli import main
        # elliptic at its minimum rate fails under list scheduling.
        assert main(["synthesize", "elliptic", "-L", "5"]) == 1
        assert "error:" in capsys.readouterr().err
