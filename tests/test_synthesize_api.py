"""The front-door ``repro.synthesize()``: dispatch equivalence against
the three direct flows, the deterministic fallback chain, and the
deadline acceptance bound."""

import time

import pytest

from repro import (BudgetExhausted, SolveBudget, SynthesisOptions,
                   synthesize, synthesize_connection_first,
                   synthesize_schedule_first, synthesize_simple)
from repro.designs import (AR_GENERAL_PINS_BIDIR, AR_GENERAL_PINS_UNIDIR,
                           AR_SIMPLE_PINS, ELLIPTIC_PINS_UNIDIR,
                           ar_general_design, ar_simple_design,
                           elliptic_design, elliptic_resources)
from repro.errors import ReproError
from repro.modules.library import ar_filter_timing, elliptic_filter_timing


def _same_result(a, b):
    assert a.schedule.start_step == b.schedule.start_step
    assert a.schedule.start_ns == b.schedule.start_ns
    assert a.pipe_length == b.pipe_length
    assert a.pins_used() == b.pins_used()
    assert a.resources == b.resources


class TestDispatchEquivalence:
    """synthesize(flow=...) reproduces each direct flow exactly."""

    def test_simple(self):
        graph, timing = ar_simple_design(), ar_filter_timing()
        direct = synthesize_simple(graph, AR_SIMPLE_PINS, timing, 2)
        front = synthesize(graph, AR_SIMPLE_PINS, timing, 2,
                           flow="simple")
        _same_result(direct, front)

    @pytest.mark.parametrize("design,pins,timing_fn,rate,needs_res", [
        ("ar-general", AR_GENERAL_PINS_UNIDIR, ar_filter_timing, 3,
         False),
        ("ar-general-bidir", AR_GENERAL_PINS_BIDIR, ar_filter_timing, 3,
         False),
        ("elliptic", ELLIPTIC_PINS_UNIDIR, elliptic_filter_timing, 6,
         True),
    ])
    def test_connection_first(self, design, pins, timing_fn, rate,
                              needs_res):
        graph = elliptic_design() if needs_res else ar_general_design()
        timing = timing_fn()
        resources = elliptic_resources(rate) if needs_res else None
        direct = synthesize_connection_first(graph, pins, timing, rate,
                                             resources=resources)
        front = synthesize(graph, pins, timing, rate,
                           flow="connection-first", resources=resources)
        _same_result(direct, front)

    def test_schedule_first(self):
        graph, timing = ar_general_design(), ar_filter_timing()
        direct = synthesize_schedule_first(
            graph, AR_GENERAL_PINS_UNIDIR, timing, 3, pipe_length=8)
        front = synthesize(graph, AR_GENERAL_PINS_UNIDIR, timing, 3,
                           flow="schedule-first", pipe_length=8)
        _same_result(direct, front)

    def test_auto_picks_simple_for_simple_partitioning(self):
        graph, timing = ar_simple_design(), ar_filter_timing()
        auto = synthesize(graph, AR_SIMPLE_PINS, timing, 2)
        direct = synthesize_simple(graph, AR_SIMPLE_PINS, timing, 2)
        _same_result(auto, direct)
        selected = [e for e in auto.diagnostics.events
                    if e.phase == "dispatch"]
        assert selected and selected[0].detail["flow"] == "simple"

    def test_auto_picks_connection_first_for_general(self):
        graph, timing = ar_general_design(), ar_filter_timing()
        auto = synthesize(graph, AR_GENERAL_PINS_UNIDIR, timing, 3)
        direct = synthesize_connection_first(
            graph, AR_GENERAL_PINS_UNIDIR, timing, 3)
        _same_result(auto, direct)
        assert not auto.degraded

    def test_normalized_stats_keys(self):
        shared = {"pin_checks", "pin_cache_hits", "tableau_pivots",
                  "gomory_cuts", "simplex_solves", "bnb_nodes",
                  "search_steps", "reassignments"}
        graph, timing = ar_general_design(), ar_filter_timing()
        for result in [
                synthesize(ar_simple_design(), AR_SIMPLE_PINS,
                           ar_filter_timing(), 2, flow="simple"),
                synthesize(graph, AR_GENERAL_PINS_UNIDIR, timing, 3,
                           flow="connection-first"),
                synthesize(graph, AR_GENERAL_PINS_UNIDIR, timing, 3,
                           flow="schedule-first", pipe_length=8)]:
            assert shared <= set(result.stats)


class TestOptions:
    def test_unknown_flow_rejected(self):
        with pytest.raises(ReproError):
            SynthesisOptions(flow="mystery")
        graph, timing = ar_general_design(), ar_filter_timing()
        with pytest.raises(ReproError):
            synthesize(graph, AR_GENERAL_PINS_UNIDIR, timing, 3,
                       flow="mystery")

    def test_options_frozen(self):
        options = SynthesisOptions()
        with pytest.raises(Exception):
            options.flow = "simple"

    def test_unknown_option_rejected(self):
        graph, timing = ar_general_design(), ar_filter_timing()
        with pytest.raises(TypeError):
            synthesize(graph, AR_GENERAL_PINS_UNIDIR, timing, 3,
                       banana=True)


class TestFallbackChain:
    #: The documented degradation trail for a search-starved run.
    EXPECTED_TRAIL = [
        "dispatch: selected",
        "connection_search: budget_exhausted",
        "flow: fallback connection-first(b=2) -> "
        "connection-first(greedy)",
        "connection_search: budget_exhausted",
        "flow: fallback connection-first -> schedule-first",
    ]

    def _starved(self):
        return synthesize(ar_general_design(), AR_GENERAL_PINS_UNIDIR,
                          ar_filter_timing(), 3,
                          budget=SolveBudget(max_search_steps=3))

    def test_chain_lands_on_valid_schedule_first(self):
        result = self._starved()
        assert result.degraded
        assert result.diagnostics.trail == self.EXPECTED_TRAIL
        assert result.verify() == []
        result.require_valid()

    @staticmethod
    def _stable(diag):
        """Diagnostics with wall-clock metadata masked off."""
        data = diag.to_dict()
        for event in data["events"]:
            event["detail"].pop("elapsed_ms", None)
        return data

    def test_chain_is_deterministic(self):
        first, second = self._starved(), self._starved()
        _same_result(first, second)
        assert self._stable(first.diagnostics) == \
            self._stable(second.diagnostics)

    def test_greedy_rung_skipped_when_already_greedy(self):
        result = synthesize(ar_general_design(), AR_GENERAL_PINS_UNIDIR,
                            ar_filter_timing(), 3,
                            branching_factor=1,
                            budget=SolveBudget(max_search_steps=3))
        fallbacks = [e.detail for e in result.diagnostics.fallbacks()]
        assert fallbacks == [{"frm": "connection-first",
                              "to": "schedule-first"}]
        result.require_valid()

    def test_exhaustion_carries_diagnostics(self):
        with pytest.raises(BudgetExhausted) as info:
            synthesize(ar_simple_design(), AR_SIMPLE_PINS,
                       ar_filter_timing(), 2, flow="simple",
                       budget=SolveBudget(max_sched_steps=0))
        exc = info.value
        assert exc.diagnostics is not None
        assert exc.phase == "list_scheduler"


class TestDeadlineAcceptance:
    def test_elliptic_within_five_times_deadline(self):
        graph, timing = elliptic_design(), elliptic_filter_timing()
        started = time.monotonic()
        try:
            result = synthesize(graph, ELLIPTIC_PINS_UNIDIR, timing, 6,
                                resources=elliptic_resources(6),
                                budget=SolveBudget(deadline_ms=200))
            result.require_valid()
        except BudgetExhausted:
            pass  # also acceptable under the budget contract
        elapsed_ms = (time.monotonic() - started) * 1000.0
        assert elapsed_ms < 5 * 200
