"""Pareto dominance and frontier extraction, including degenerate cases."""

from repro.explore.pareto import (OBJECTIVES, PRUNE_OBJECTIVES,
                                  dominates, front_summary,
                                  pareto_front)


def pt(chips=1, buses=1, pins=10, latency=5, wall=1.0):
    return {"chips": chips, "buses": buses, "total_pins": pins,
            "latency": latency, "wall_ms": wall}


class TestDominates:
    def test_strictly_better_everywhere(self):
        assert dominates(pt(pins=8), pt(pins=10))

    def test_equal_points_do_not_dominate(self):
        a, b = pt(), pt()
        assert not dominates(a, b)
        assert not dominates(b, a)

    def test_tradeoff_is_incomparable(self):
        fewer_pins = pt(pins=8, latency=9)
        faster = pt(pins=12, latency=5)
        assert not dominates(fewer_pins, faster)
        assert not dominates(faster, fewer_pins)

    def test_single_strict_improvement_suffices(self):
        assert dominates(pt(latency=4), pt(latency=5))

    def test_missing_metric_counts_as_infinitely_bad(self):
        partial = {"chips": 1, "buses": 1, "total_pins": 10,
                   "latency": 5}  # no wall_ms
        assert dominates(pt(), partial)
        assert not dominates(partial, pt())

    def test_restricted_objectives(self):
        slower_but_cheaper = pt(pins=8, wall=100.0)
        # Over the pruning objectives, wall time is ignored.
        assert dominates(slower_but_cheaper, pt(pins=10),
                         PRUNE_OBJECTIVES)
        assert not dominates(slower_but_cheaper, pt(pins=10),
                             OBJECTIVES)


class TestParetoFront:
    def test_empty(self):
        assert pareto_front([]) == []

    def test_single_point(self):
        assert pareto_front([pt()]) == [0]

    def test_dominated_point_removed(self):
        points = [pt(pins=10), pt(pins=8), pt(pins=12, latency=4)]
        assert pareto_front(points) == [1, 2]

    def test_exactly_equal_points_all_kept(self):
        points = [pt(), pt(), pt()]
        assert pareto_front(points) == [0, 1, 2]

    def test_ties_on_some_axes(self):
        # Same pins, different latency: only the faster one survives.
        points = [pt(pins=10, latency=5), pt(pins=10, latency=7)]
        assert pareto_front(points) == [0]

    def test_single_axis_degenerate_front(self):
        points = [{"total_pins": 10}, {"total_pins": 8},
                  {"total_pins": 8}, {"total_pins": 9}]
        assert pareto_front(points, ("total_pins",)) == [1, 2]

    def test_chain_totally_ordered(self):
        points = [pt(pins=8 + i, latency=5 + i, wall=1.0 + i)
                  for i in range(5)]
        assert pareto_front(points) == [0]

    def test_everything_incomparable(self):
        points = [pt(pins=8 + i, latency=10 - i) for i in range(4)]
        assert pareto_front(points) == [0, 1, 2, 3]


class TestFrontSummary:
    def test_min_max_per_objective(self):
        summary = front_summary([pt(pins=8), pt(pins=12)])
        assert summary["total_pins"] == {"min": 8, "max": 12}

    def test_missing_objectives_omitted(self):
        summary = front_summary([{"total_pins": 8}])
        assert "latency" not in summary
        assert summary["total_pins"] == {"min": 8, "max": 8}

    def test_empty(self):
        assert front_summary([]) == {}
