"""Tests for force-directed scheduling (Chapter 5)."""

import pytest

from repro.cdfg import CdfgBuilder
from repro.cdfg.analysis import UnitTiming
from repro.errors import SchedulingError
from repro.modules.library import ar_filter_timing, elliptic_filter_timing
from repro.scheduling import ForceDirectedScheduler, measured_resources


def parallel_adds(n=4):
    b = CdfgBuilder()
    src = b.op("s", "add", 1)
    for i in range(n):
        b.op(f"a{i}", "add", 1, inputs=[src])
    return b.build()


class TestBalancing:
    def test_spreads_parallel_ops(self):
        # 4 independent adds, frames [1, 4] at pipe 5, L=2: balancing
        # should use both groups with at most 2 per group.
        g = parallel_adds(4)
        s = ForceDirectedScheduler(g, UnitTiming(), 2, 5).run()
        usage = measured_resources(s)
        assert usage[(1, "add")] <= 3  # balanced, not all-in-one-group

    def test_respects_pipe_length(self):
        g = parallel_adds(2)
        s = ForceDirectedScheduler(g, UnitTiming(), 2, 3).run()
        assert s.pipe_length <= 3
        assert s.verify() == []

    def test_infeasible_pipe_raises(self):
        b = CdfgBuilder()
        prev = b.op("n0", "add", 1)
        for i in range(1, 5):
            prev = b.op(f"n{i}", "add", 1, inputs=[prev])
        g = b.build()
        with pytest.raises(SchedulingError):
            ForceDirectedScheduler(g, UnitTiming(), 2, 3).run()


class TestRecursion:
    def test_loop_constraint_respected(self):
        b = CdfgBuilder()
        x = b.op("x", "add", 1)
        y = b.op("y", "add", 1, inputs=[x])
        z = b.op("z", "add", 1, inputs=[y])
        b.recursive(z, x, degree=1)
        g = b.build()
        s = ForceDirectedScheduler(g, UnitTiming(), 4, 6).run()
        assert s.step("z") - s.step("x") <= 3
        assert s.verify() == []


class TestChainingLegalization:
    def test_chained_design_schedules(self):
        b = CdfgBuilder()
        i = b.inp("i", partition=1)
        m = b.op("m", "mul", 1, inputs=[i])
        a = b.op("a", "add", 1, inputs=[m])
        b.out("o", a, partition=1)
        g = b.build()
        s = ForceDirectedScheduler(g, ar_filter_timing(), 2, 4).run()
        assert s.verify() == []

    def test_multicycle_design(self):
        b = CdfgBuilder()
        i = b.inp("i", partition=1, bit_width=16)
        m = b.op("m", "mul", 1, inputs=[i], bit_width=16)
        a = b.op("a", "add", 1, inputs=[m], bit_width=16)
        b.out("o", a, partition=1, bit_width=16)
        g = b.build()
        s = ForceDirectedScheduler(g, elliptic_filter_timing(), 3, 6).run()
        assert s.verify() == []
        assert s.step("a") >= s.step("m") + 2


class TestBenchmarks:
    def test_elliptic_feasible_at_rate_5(self):
        # The boundary case: list scheduling fails at rate 5, FDS
        # succeeds (Section 4.4.2 vs Chapter 5).
        from repro.designs import elliptic_design
        g = elliptic_design()
        s = ForceDirectedScheduler(g, elliptic_filter_timing(), 5, 24).run()
        assert s.verify() == []

    def test_ar_general_at_rate_3(self):
        from repro.designs import ar_general_design
        g = ar_general_design()
        s = ForceDirectedScheduler(g, ar_filter_timing(), 3, 8).run()
        assert s.verify() == []
