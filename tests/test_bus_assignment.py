"""Tests for dynamic bus (re)assignment during scheduling (Sec 4.2/6.2)."""

import pytest

from repro.cdfg import Cdfg
from repro.cdfg.graph import make_io_node
from repro.core.bus_assignment import BusAllocator
from repro.core.interconnect import Bus, BusAssignment, Interconnect
from repro.errors import BusAssignmentError
from repro.modules.library import ar_filter_timing
from repro.scheduling.base import Schedule


def two_bus_setup():
    """The Figure 4.4 example: w1..w4 over buses C1, C2."""
    g = Cdfg()
    for i in range(1, 5):
        g.add_node(make_io_node(f"w{i}", f"v{i}", 1, 2, bit_width=8))
    ic = Interconnect([
        Bus(1, out_widths={1: 8}, in_widths={2: 8}),
        Bus(2, out_widths={1: 8}, in_widths={2: 8}),
    ])
    initial = BusAssignment()
    initial.assign("w1", 1)
    initial.assign("w2", 1)
    initial.assign("w3", 2)
    initial.assign("w4", 2)
    return g, ic, initial


def make_schedule(g, L=2):
    return Schedule(g, ar_filter_timing(), L)


class TestReassignment:
    def test_figure_4_4_preemption(self):
        # w1 scheduled on C1 step s; w2 (also on C1) wants step s:
        # reassignment moves w2 to C2 (w3/w4 have slack).
        g, ic, initial = two_bus_setup()
        alloc = BusAllocator(g, ic, initial, initiation_rate=2)
        schedule = make_schedule(g)
        w1, w2 = g.node("w1"), g.node("w2")
        assert alloc.can_schedule(w1, 0, schedule)
        alloc.commit(w1, 0, schedule)
        assert alloc.can_schedule(w2, 0, schedule)
        alloc.commit(w2, 0, schedule)
        assert alloc.final_assignment().bus_of["w2"] == 2
        assert alloc.reassignments >= 1

    def test_static_mode_postpones_instead(self):
        g, ic, initial = two_bus_setup()
        alloc = BusAllocator(g, ic, initial, initiation_rate=2,
                             reassignment=False)
        schedule = make_schedule(g)
        alloc.commit(g.node("w1"), 0, schedule)
        assert not alloc.can_schedule(g.node("w2"), 0, schedule)
        assert alloc.can_schedule(g.node("w2"), 1, schedule)

    def test_same_value_same_step_shares_slot(self):
        g = Cdfg()
        g.add_node(make_io_node("wa", "v", 1, 2, bit_width=8))
        g.add_node(make_io_node("wb", "v", 1, 3, bit_width=8))
        ic = Interconnect([Bus(1, out_widths={1: 8},
                               in_widths={2: 8, 3: 8})])
        initial = BusAssignment()
        initial.assign("wa", 1)
        initial.assign("wb", 1)
        alloc = BusAllocator(g, ic, initial, initiation_rate=1)
        schedule = make_schedule(g, L=1)
        alloc.commit(g.node("wa"), 0, schedule)
        # Same value, same step: allowed on the same (bus, group).
        assert alloc.can_schedule(g.node("wb"), 0, schedule)
        alloc.commit(g.node("wb"), 0, schedule)
        # A different value cannot share that slot.
        g2, ic2, initial2 = two_bus_setup()
        alloc2 = BusAllocator(g2, ic2, initial2, initiation_rate=1)
        sched2 = make_schedule(g2, L=1)
        alloc2.commit(g2.node("w1"), 0, sched2)
        assert not alloc2.can_schedule(g2.node("w2"), 0, sched2)

    def test_capacity_counts_unscheduled_demand(self):
        # Four ops, one 2-slot bus: only two can ever live there; the
        # allocator must refuse to strand the others.
        g = Cdfg()
        for i in range(3):
            g.add_node(make_io_node(f"w{i}", f"v{i}", 1, 2, bit_width=8))
        ic = Interconnect([Bus(1, out_widths={1: 8}, in_widths={2: 8})])
        initial = BusAssignment()
        for i in range(3):
            initial.assign(f"w{i}", 1)
        alloc = BusAllocator(g, ic, initial, initiation_rate=2)
        schedule = make_schedule(g)
        alloc.commit(g.node("w0"), 0, schedule)
        alloc.commit(g.node("w1"), 1, schedule)
        # Both groups taken; w2 has nowhere to go.
        assert not alloc.can_schedule(g.node("w2"), 0, schedule)
        assert not alloc.can_schedule(g.node("w2"), 1, schedule)

    def test_incapable_initial_assignment_rejected(self):
        g = Cdfg()
        g.add_node(make_io_node("w", "v", 1, 2, bit_width=16))
        ic = Interconnect([Bus(1, out_widths={1: 8}, in_widths={2: 8})])
        initial = BusAssignment()
        initial.assign("w", 1)
        with pytest.raises(BusAssignmentError):
            BusAllocator(g, ic, initial, initiation_rate=2)

    def test_missing_assignment_rejected(self):
        g = Cdfg()
        g.add_node(make_io_node("w", "v", 1, 2))
        ic = Interconnect([Bus(1, out_widths={1: 8}, in_widths={2: 8})])
        with pytest.raises(BusAssignmentError):
            BusAllocator(g, ic, BusAssignment(), initiation_rate=2)


class TestSubBusAllocation:
    def split_setup(self):
        g = Cdfg()
        g.add_node(make_io_node("small1", "s1", 1, 2, bit_width=8))
        g.add_node(make_io_node("small2", "s2", 1, 2, bit_width=8))
        g.add_node(make_io_node("wide", "wd", 1, 2, bit_width=16))
        ic = Interconnect([Bus(1, out_widths={1: 16}, in_widths={2: 16},
                               segments=[8, 8])])
        initial = BusAssignment()
        initial.assign("small1", 1, segment=0)
        initial.assign("small2", 1, segment=1)
        initial.assign("wide", 1, segment=0)
        return g, ic, initial

    def test_two_values_share_a_cycle(self):
        g, ic, initial = self.split_setup()
        alloc = BusAllocator(g, ic, initial, initiation_rate=2)
        schedule = make_schedule(g)
        alloc.commit(g.node("small1"), 0, schedule)
        # Different segment, same step: fine.
        assert alloc.can_schedule(g.node("small2"), 0, schedule)
        alloc.commit(g.node("small2"), 0, schedule)
        # The wide value needs both segments: group 0 is full.
        assert not alloc.can_schedule(g.node("wide"), 0, schedule)
        assert alloc.can_schedule(g.node("wide"), 1, schedule)

    def test_wide_op_blocks_whole_cycle(self):
        g, ic, initial = self.split_setup()
        alloc = BusAllocator(g, ic, initial, initiation_rate=2)
        schedule = make_schedule(g)
        alloc.commit(g.node("wide"), 0, schedule)
        assert not alloc.can_schedule(g.node("small1"), 0, schedule)
        assert alloc.can_schedule(g.node("small1"), 1, schedule)
