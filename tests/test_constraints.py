"""Tests for allocation wheels and recursive-edge bounds (Section 7.4/7.1)."""

import pytest

from repro.cdfg import CdfgBuilder
from repro.cdfg.analysis import UnitTiming
from repro.errors import SchedulingError
from repro.scheduling.constraints import (AllocationWheel,
                                          recursive_deadline,
                                          recursive_edge_bounds)


class TestAllocationWheel:
    def test_contiguous_occupancy(self):
        wheel = AllocationWheel(6)
        assert wheel.fits(0, 2)
        wheel.occupy(0, 2)
        assert not wheel.fits(1, 2)
        assert wheel.fits(2, 2)

    def test_wraparound(self):
        wheel = AllocationWheel(4)
        wheel.occupy(3, 2)  # cells 3, 0
        assert not wheel.fits(0, 1)
        assert wheel.fits(1, 2)

    def test_double_booking_raises(self):
        wheel = AllocationWheel(4)
        wheel.occupy(0, 2)
        with pytest.raises(SchedulingError):
            wheel.occupy(1, 2)

    def test_release(self):
        wheel = AllocationWheel(4)
        wheel.occupy(0, 2)
        wheel.release(0, 2)
        assert wheel.fits(0, 4)

    def test_op_longer_than_wheel_rejected(self):
        wheel = AllocationWheel(2)
        with pytest.raises(SchedulingError):
            wheel.fits(0, 3)

    def test_capacity_empty_wheel(self):
        assert AllocationWheel(6).capacity(2) == 3
        assert AllocationWheel(5).capacity(2) == 2

    def test_capacity_fragmentation(self):
        # The Section 7.4 example: L=6, 2-cycle ops at steps 0 and 3
        # strand the remaining capacity (cells 2 and 5 are isolated).
        wheel = AllocationWheel(6)
        wheel.occupy(0, 2)
        wheel.occupy(3, 2)
        assert wheel.capacity(2) == 0
        # Packed placement keeps a usable run instead.
        packed = AllocationWheel(6)
        packed.occupy(0, 2)
        packed.occupy(2, 2)
        assert packed.capacity(2) == 1

    def test_capacity_wrapping_run(self):
        wheel = AllocationWheel(6)
        wheel.occupy(2, 2)  # free: 4,5,0,1 contiguous around the wrap
        assert wheel.capacity(2) == 2
        assert wheel.capacity(4) == 1

    def test_free_cells(self):
        wheel = AllocationWheel(4)
        wheel.occupy(1, 2)
        assert wheel.free_cells() == [0, 3]


class TestRecursiveBounds:
    def graph(self):
        b = CdfgBuilder()
        x = b.op("x", "add", 1)
        y = b.op("y", "mul", 1, inputs=[x])
        b.recursive(y, x, degree=2)
        return b.build()

    def test_bounds_formula(self):
        g = self.graph()
        timing = UnitTiming(cycles_by_op_type={"mul": 3})
        bounds = recursive_edge_bounds(g, timing, initiation_rate=4)
        # slack = d*L - c_producer = 2*4 - 3 = 5
        assert bounds == [("y", "x", 5)]

    def test_deadline_from_scheduled_consumer(self):
        g = self.graph()
        timing = UnitTiming(cycles_by_op_type={"mul": 3})
        deadline = recursive_deadline(g, timing, 4, "y", {"x": 2})
        assert deadline == 2 + 2 * 4 - 3

    def test_no_deadline_when_consumer_unscheduled(self):
        g = self.graph()
        timing = UnitTiming()
        assert recursive_deadline(g, timing, 4, "y", {}) is None

    def test_non_producer_has_no_deadline(self):
        g = self.graph()
        timing = UnitTiming()
        assert recursive_deadline(g, timing, 4, "x", {"x": 0}) is None
