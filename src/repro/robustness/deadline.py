"""Wall-clock deadlines for cooperative solver cancellation.

A :class:`Deadline` is a tiny monotonic-clock wrapper shared by every
solver participating in one budgeted synthesis call.  Sharing matters:
when the graceful-degradation chain of :mod:`repro.core.flow` retries a
phase with a cheaper strategy, the retry gets *fresh iteration counters*
but the *same* wall clock — fallbacks never extend the caller's time
budget.
"""

from __future__ import annotations

import time
from typing import Callable, Optional


class Deadline:
    """A monotonic wall-clock limit (``None`` = unlimited)."""

    __slots__ = ("_start", "_limit", "_clock")

    def __init__(self, ms: Optional[float] = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self._clock = clock
        self._start = clock()
        self._limit = None if ms is None else self._start + ms / 1000.0

    @classmethod
    def after_ms(cls, ms: Optional[float],
                 clock: Callable[[], float] = time.monotonic
                 ) -> "Deadline":
        return cls(ms, clock)

    # ------------------------------------------------------------------
    @property
    def unlimited(self) -> bool:
        return self._limit is None

    def elapsed_ms(self) -> float:
        return (self._clock() - self._start) * 1000.0

    def remaining_ms(self) -> Optional[float]:
        """ms left, clamped at 0; ``None`` when unlimited."""
        if self._limit is None:
            return None
        return max(0.0, (self._limit - self._clock()) * 1000.0)

    def expired(self) -> bool:
        return self._limit is not None and self._clock() >= self._limit

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self._limit is None:
            return "Deadline(unlimited)"
        return f"Deadline(remaining={self.remaining_ms():.1f}ms)"
