"""Solve budgets and the cooperative cancellation token.

:class:`SolveBudget` is the caller-facing, frozen description of how
much effort a synthesis call may spend: a wall-clock deadline plus
optional per-phase iteration caps.  Starting a budget yields a
:class:`BudgetToken` — the mutable cancellation token that is threaded
through every solver in the pipeline.  Each solver calls
:meth:`BudgetToken.tick` at its natural iteration boundary (a cutting
plane, a branch-&-bound node, a DFS step, a control step, an FDS move);
when a cap or the deadline is hit the tick raises
:class:`BudgetExhausted` carrying structured progress diagnostics.

Iteration caps are checked exactly on every tick (so budget-starved
runs are deterministic); the wall clock is only consulted every
``time_check_stride`` ticks to keep the hot loops cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Union

from repro.errors import ReproError
from repro.robustness.deadline import Deadline


class BudgetExhausted(ReproError):
    """A solver ran out of budget; carries structured progress.

    Attributes
    ----------
    phase:        the phase whose tick tripped the budget;
    iterations:   iterations completed in that phase;
    elapsed_ms:   wall time since the budget was started;
    deadline_ms:  the configured deadline (``None`` if cap-limited);
    counts:       iterations per phase across the whole token;
    incumbent:    best partial progress noted by the solver (or None).
    """

    def __init__(self, phase: str, iterations: int,
                 elapsed_ms: float,
                 deadline_ms: Optional[float] = None,
                 counts: Optional[Dict[str, int]] = None,
                 incumbent: Optional[Dict[str, Any]] = None) -> None:
        super().__init__(
            f"solve budget exhausted in phase {phase!r} after "
            f"{iterations} iterations ({elapsed_ms:.1f} ms elapsed)")
        self.phase = phase
        self.iterations = iterations
        self.elapsed_ms = elapsed_ms
        self.deadline_ms = deadline_ms
        self.counts = dict(counts or {})
        self.incumbent = incumbent
        #: Filled in by the flow layer when the exception escapes a
        #: budgeted synthesis call: the Diagnostics trail so far.
        self.diagnostics = None

    def progress(self) -> Dict[str, Any]:
        """JSON-ready snapshot for diagnostics trails."""
        out: Dict[str, Any] = {
            "phase": self.phase,
            "iterations": self.iterations,
            "elapsed_ms": round(self.elapsed_ms, 3),
            "counts": dict(self.counts),
        }
        if self.deadline_ms is not None:
            out["deadline_ms"] = self.deadline_ms
        if self.incumbent is not None:
            out["incumbent"] = self.incumbent
        return out


@dataclass(frozen=True)
class SolveBudget:
    """Frozen effort budget for one synthesis call.

    ``deadline_ms`` bounds wall time across *all* phases; the ``max_*``
    fields cap iterations at each solver's natural boundary.  ``None``
    means unlimited.  The default budget is fully unlimited, so passing
    ``SolveBudget()`` is equivalent to passing no budget at all.
    """

    deadline_ms: Optional[float] = None
    max_gomory_iters: Optional[int] = None   # cutting-plane pivots/cuts
    max_lp_solves: Optional[int] = None      # simplex LP relaxations
    max_bnb_nodes: Optional[int] = None      # branch & bound nodes
    max_search_steps: Optional[int] = None   # connection-search DFS steps
    max_sched_steps: Optional[int] = None    # list-scheduler control steps
    max_fds_moves: Optional[int] = None      # force-directed placements
    time_check_stride: int = 64              # ticks between clock reads

    def start(self, deadline: Optional[Deadline] = None) -> "BudgetToken":
        """Begin the clock; returns the cancellation token."""
        return BudgetToken(self, deadline)


#: phase name -> SolveBudget cap field consulted by BudgetToken.tick.
PHASE_CAPS: Dict[str, str] = {
    "gomory": "max_gomory_iters",
    "simplex": "max_lp_solves",
    "bnb": "max_bnb_nodes",
    "connection_search": "max_search_steps",
    "list_scheduler": "max_sched_steps",
    "fds": "max_fds_moves",
}


class BudgetToken:
    """Mutable cancellation token shared by the solvers of one run."""

    __slots__ = ("budget", "deadline", "counts", "incumbent",
                 "_stride", "_until_check")

    def __init__(self, budget: SolveBudget,
                 deadline: Optional[Deadline] = None) -> None:
        self.budget = budget
        self.deadline = deadline if deadline is not None \
            else Deadline(budget.deadline_ms)
        self.counts: Dict[str, int] = {}
        self.incumbent: Optional[Dict[str, Any]] = None
        self._stride = max(1, budget.time_check_stride)
        self._until_check = 1  # check the clock on the very first tick

    # ------------------------------------------------------------------
    def child(self) -> "BudgetToken":
        """Fresh iteration counters, same wall clock.

        Used by the graceful-degradation chain: each fallback rung gets
        a clean slate of iteration caps but cannot outlive the original
        deadline.
        """
        return BudgetToken(self.budget, self.deadline)

    def note_incumbent(self, **progress: Any) -> None:
        """Record best-partial-progress to embed in BudgetExhausted."""
        self.incumbent = progress

    # ------------------------------------------------------------------
    def tick(self, phase: str, amount: int = 1) -> None:
        """Count ``amount`` iterations of ``phase``; raise if exhausted."""
        n = self.counts.get(phase, 0) + amount
        self.counts[phase] = n
        cap_field = PHASE_CAPS.get(phase)
        if cap_field is not None:
            cap = getattr(self.budget, cap_field)
            if cap is not None and n > cap:
                self._raise(phase)
        self._until_check -= amount
        if self._until_check <= 0:
            self._until_check = self._stride
            if self.deadline.expired():
                self._raise(phase)

    def check(self, phase: str) -> None:
        """Unconditional wall-clock check (no iteration counted)."""
        if self.deadline.expired():
            self._raise(phase)

    # ------------------------------------------------------------------
    def _raise(self, phase: str) -> None:
        raise BudgetExhausted(
            phase=phase,
            iterations=self.counts.get(phase, 0),
            elapsed_ms=self.deadline.elapsed_ms(),
            deadline_ms=self.budget.deadline_ms,
            counts=self.counts,
            incumbent=self.incumbent,
        )


def carve_deadline_ms(remaining_ms: Optional[float],
                      jobs_left: int,
                      workers: int = 1,
                      floor_ms: float = 25.0) -> Optional[float]:
    """Fair per-job slice of a global deadline across a worker pool.

    With ``jobs_left`` jobs still to run on ``workers`` parallel
    workers, each job may spend roughly ``remaining * workers /
    jobs_left`` before the pool as a whole busts the global deadline.
    The slice is clamped to ``[floor_ms, remaining_ms]`` — the floor
    keeps tail jobs from being handed unusably small budgets, and no
    job may outlive the global clock.  ``None`` remaining means
    unlimited.
    """
    if remaining_ms is None:
        return None
    remaining_ms = max(0.0, remaining_ms)
    if jobs_left <= 0:
        return remaining_ms
    share = remaining_ms * max(1, workers) / jobs_left
    return max(min(floor_ms, remaining_ms), min(share, remaining_ms))


BudgetLike = Union[SolveBudget, BudgetToken, None]


def as_token(budget: BudgetLike) -> Optional[BudgetToken]:
    """Normalize a budget argument to a started token (or ``None``).

    Solvers accept either a :class:`SolveBudget` (its clock starts on
    the spot) or an already-running :class:`BudgetToken` (shared across
    phases by the flow layer).
    """
    if budget is None:
        return None
    if isinstance(budget, BudgetToken):
        return budget
    if isinstance(budget, SolveBudget):
        return budget.start()
    raise TypeError(
        f"budget must be a SolveBudget or BudgetToken, got "
        f"{type(budget).__name__}")
