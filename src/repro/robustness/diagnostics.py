"""Structured diagnostics trail for budgeted synthesis runs.

Every budgeted flow carries a :class:`Diagnostics` object through its
phases.  Phases append :class:`DiagnosticEvent` records — dispatch
decisions, budget exhaustions, fallback transitions — so a degraded
answer is auditable: the trail says exactly which solvers gave up, with
how much progress, and what replaced them.  The whole trail serializes
to plain JSON data and round-trips through :mod:`repro.io_json`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

#: Event kinds with meaning to the fallback machinery.
EVENT_FALLBACK = "fallback"
EVENT_EXHAUSTED = "budget_exhausted"


@dataclass
class DiagnosticEvent:
    """One entry of the trail: what happened, where, with what detail."""

    phase: str
    event: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {"phase": self.phase, "event": self.event,
                "detail": dict(self.detail)}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "DiagnosticEvent":
        return cls(phase=data["phase"], event=data["event"],
                   detail=dict(data.get("detail", {})))

    def describe(self) -> str:
        if self.event == EVENT_FALLBACK:
            return (f"{self.phase}: fallback "
                    f"{self.detail.get('frm')} -> {self.detail.get('to')}")
        return f"{self.phase}: {self.event}"


class Diagnostics:
    """Ordered trail of synthesis events; degraded iff any fallback."""

    def __init__(self,
                 events: Optional[Iterable[DiagnosticEvent]] = None
                 ) -> None:
        self.events: List[DiagnosticEvent] = list(events or [])

    # ------------------------------------------------------------------
    def record(self, phase: str, event: str,
               **detail: Any) -> DiagnosticEvent:
        entry = DiagnosticEvent(phase, event, detail)
        self.events.append(entry)
        return entry

    def record_fallback(self, phase: str, frm: str, to: str,
                        **detail: Any) -> DiagnosticEvent:
        return self.record(phase, EVENT_FALLBACK, frm=frm, to=to,
                           **detail)

    def record_exhaustion(self, exc) -> DiagnosticEvent:
        """Log a :class:`BudgetExhausted` (its progress snapshot)."""
        detail = exc.progress()
        phase = detail.pop("phase")
        return self.record(phase, EVENT_EXHAUSTED, **detail)

    # ------------------------------------------------------------------
    def fallbacks(self) -> List[DiagnosticEvent]:
        return [e for e in self.events if e.event == EVENT_FALLBACK]

    @property
    def degraded(self) -> bool:
        """True when any phase fell back to a cheaper strategy."""
        return bool(self.fallbacks())

    @property
    def trail(self) -> List[str]:
        """Human-readable one-liners, in order."""
        return [e.describe() for e in self.events]

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {"degraded": self.degraded,
                "events": [e.to_dict() for e in self.events]}

    @classmethod
    def from_dict(cls, data: Optional[Dict[str, Any]]) -> "Diagnostics":
        if not data:
            return cls()
        return cls(DiagnosticEvent.from_dict(raw)
                   for raw in data.get("events", []))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Diagnostics(degraded={self.degraded}, "
                f"events={len(self.events)})")
