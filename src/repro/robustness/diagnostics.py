"""Structured diagnostics trail for budgeted synthesis runs.

Every budgeted flow carries a :class:`Diagnostics` object through its
phases.  Phases append :class:`DiagnosticEvent` records — dispatch
decisions, budget exhaustions, fallback transitions — so a degraded
answer is auditable: the trail says exactly which solvers gave up, with
how much progress, and what replaced them.  The whole trail serializes
to plain JSON data and round-trips through :mod:`repro.io_json`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

#: Event kinds with meaning to the fallback machinery.
EVENT_FALLBACK = "fallback"
EVENT_EXHAUSTED = "budget_exhausted"


@dataclass
class DiagnosticEvent:
    """One entry of the trail: what happened, where, with what detail."""

    phase: str
    event: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {"phase": self.phase, "event": self.event,
                "detail": dict(self.detail)}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "DiagnosticEvent":
        return cls(phase=data["phase"], event=data["event"],
                   detail=dict(data.get("detail", {})))

    def describe(self) -> str:
        if self.event == EVENT_FALLBACK:
            return (f"{self.phase}: fallback "
                    f"{self.detail.get('frm')} -> {self.detail.get('to')}")
        return f"{self.phase}: {self.event}"


class Diagnostics:
    """Ordered trail of synthesis events; degraded iff any fallback."""

    def __init__(self,
                 events: Optional[Iterable[DiagnosticEvent]] = None
                 ) -> None:
        self.events: List[DiagnosticEvent] = list(events or [])
        #: Trace correlation: set by :meth:`bind_span` when the run
        #: happens under a sampled span, so a degraded answer's trail
        #: links back to its distributed trace.
        self.trace_id: Optional[str] = None
        self.span_id: Optional[str] = None

    def bind_span(self, span: Any) -> None:
        """Attach the ids of an open obs span (no-op for null spans)."""
        ctx = getattr(span, "context", None)
        if ctx is not None:
            self.trace_id = ctx.trace_id
            self.span_id = ctx.span_id

    # ------------------------------------------------------------------
    def record(self, phase: str, event: str,
               **detail: Any) -> DiagnosticEvent:
        entry = DiagnosticEvent(phase, event, detail)
        self.events.append(entry)
        return entry

    def record_fallback(self, phase: str, frm: str, to: str,
                        **detail: Any) -> DiagnosticEvent:
        return self.record(phase, EVENT_FALLBACK, frm=frm, to=to,
                           **detail)

    def record_exhaustion(self, exc) -> DiagnosticEvent:
        """Log a :class:`BudgetExhausted` (its progress snapshot)."""
        detail = exc.progress()
        phase = detail.pop("phase")
        return self.record(phase, EVENT_EXHAUSTED, **detail)

    # ------------------------------------------------------------------
    def fallbacks(self) -> List[DiagnosticEvent]:
        return [e for e in self.events if e.event == EVENT_FALLBACK]

    @property
    def degraded(self) -> bool:
        """True when any phase fell back to a cheaper strategy."""
        return bool(self.fallbacks())

    @property
    def trail(self) -> List[str]:
        """Human-readable one-liners, in order."""
        return [e.describe() for e in self.events]

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "degraded": self.degraded,
            "events": [e.to_dict() for e in self.events]}
        # Only stamped when tracing was on, so untraced trails
        # round-trip byte-identically to the pre-obs format.
        if self.trace_id is not None:
            out["trace_id"] = self.trace_id
            out["span_id"] = self.span_id
        return out

    @classmethod
    def from_dict(cls, data: Optional[Dict[str, Any]]) -> "Diagnostics":
        if not data:
            return cls()
        diag = cls(DiagnosticEvent.from_dict(raw)
                   for raw in data.get("events", []))
        diag.trace_id = data.get("trace_id")
        diag.span_id = data.get("span_id")
        return diag

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Diagnostics(degraded={self.degraded}, "
                f"events={len(self.events)})")
