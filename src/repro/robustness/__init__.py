"""Robustness subsystem: solve budgets, deadlines, diagnostics.

Production callers want "the best feasible answer within N ms", not an
open-ended solver run.  This package provides the three pieces that
make every flow budget-aware:

* :class:`SolveBudget` / :class:`BudgetToken` — a frozen effort budget
  and the cooperative cancellation token threaded through the ILP
  kernel, both connection engines, and all three schedulers;
* :class:`Deadline` — the shared monotonic wall clock;
* :class:`BudgetExhausted` — the typed give-up signal carrying
  structured progress (phase, iterations, best incumbent);
* :class:`Diagnostics` — the auditable trail of dispatch decisions,
  exhaustions, and graceful fallbacks attached to every
  :class:`repro.core.flow.SynthesisResult`.
"""

from repro.robustness.budget import (BudgetExhausted, BudgetToken,
                                     PHASE_CAPS, SolveBudget, as_token,
                                     carve_deadline_ms)
from repro.robustness.deadline import Deadline
from repro.robustness.diagnostics import (DiagnosticEvent, Diagnostics,
                                          EVENT_EXHAUSTED, EVENT_FALLBACK)

__all__ = [
    "SolveBudget",
    "BudgetToken",
    "BudgetExhausted",
    "Deadline",
    "Diagnostics",
    "DiagnosticEvent",
    "PHASE_CAPS",
    "EVENT_FALLBACK",
    "EVENT_EXHAUSTED",
    "as_token",
    "carve_deadline_ms",
]
