"""Process-wide persistent pin-feasibility oracle store.

The :class:`~repro.core.pin_allocation.PinAllocationChecker` answers
"would pinning op ``w`` to control-step group ``k`` keep the pin ILP
feasible?" — a pure function of *(design structure, committed set,
probed bound, pin budgets)*.  Historically each checker memoized those
verdicts in a private dict and threw them away with the checker, even
though explorer sweeps and the synthesis service re-solve the same
design at nudged budgets constantly.  This module lifts that dict into
a shareable :class:`OracleStore`:

* **keyed by structure, not budgets** — the design signature covers the
  graph, the initiation rate, and each chip's port-model *pattern*
  (bidirectional / split-fixed flags), while every recorded verdict
  carries the concrete budget vector it was proved at;
* **monotonicity shortcuts** — pin feasibility is monotone in the
  budget vector (every budget is the rhs of a ``<=`` row or an upper
  bound, i.e. raising it only relaxes the ILP), so a verdict at one
  budget answers queries at *dominating* budgets: feasible at a
  component-wise smaller-or-equal vector implies feasible; an
  infeasibility proof at a component-wise larger-or-equal vector
  implies infeasible.  Many neighbor-point queries need no ILP at all;
* **JSONL persistence** in the same append-only, corrupt-line-tolerant
  format as the explorer's :class:`repro.explore.cache.ResultCache`;
* **cross-process deltas** — forked pool workers inherit the parent's
  store (see :func:`activate`), record into memory only, and ship the
  appended suffix back via :meth:`delta_since` for the parent to
  :meth:`merge`, mirroring the :class:`repro.perf.PerfRegistry`
  aggregation contract.

Soundness rule: only verdicts proved by *exact* methods (Gomory
cutting planes, branch & bound) may be recorded.  The checker's
LP-relaxation degradation rung gives optimistic "yes" answers that
would poison a shared store; the checker keeps those to itself.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

from repro.perf import PERF

#: Store line format version.
STORE_VERSION = 1

#: (design signature, committed-set fingerprint, node name, group).
OracleKey = Tuple[str, Tuple[Tuple[str, int], ...], str, int]

#: Per-chip budget components in sorted chip-index order, flattened:
#: (total_pins, input_pins or -1, output_pins or -1) per chip.  The -1
#: placeholders line up across queries because the split-fixed pattern
#: is part of the design signature.
BudgetVector = Tuple[int, ...]

#: The pseudo-query meaning "is the base model (plus committed set)
#: feasible at all?" — the checker's constructor question.
INIT_NODE = ""
INIT_GROUP = -1


def budget_vector(partitioning) -> BudgetVector:
    """The monotone budget coordinates of a partitioning."""
    out: List[int] = []
    for index in partitioning.indices():
        spec = partitioning.chip(index)
        out.append(spec.total_pins)
        out.append(-1 if spec.input_pins is None else spec.input_pins)
        out.append(-1 if spec.output_pins is None else spec.output_pins)
    return tuple(out)


def _dominates_le(smaller: BudgetVector, larger: BudgetVector) -> bool:
    """True when ``smaller <= larger`` component-wise (same pattern)."""
    if len(smaller) != len(larger):
        return False
    return all(a <= b for a, b in zip(smaller, larger))


def _witness_fits(witness: BudgetVector, budgets: BudgetVector) -> bool:
    """Does a feasible point's usage vector fit inside ``budgets``?

    ``-1`` on either side means "this coordinate is unconstrained"
    (no split input/output cap in the budget, or a port-model slot the
    ILP never bounds in the witness) and is skipped.  Positions align
    because the split-fixed pattern is part of the design signature.
    """
    if len(witness) != len(budgets):
        return False
    return all(w <= b for w, b in zip(witness, budgets)
               if w >= 0 and b >= 0)


class OracleStore:
    """Budget-indexed verdict lists with dominance lookup.

    Thread-safe (service handlers and pool threads share one instance);
    persistence is optional and append-only.  A store created in a
    parent process stops writing to disk after a ``fork`` — children
    record in memory and return deltas, the parent owns the file.
    """

    def __init__(self, path: Optional[str] = None,
                 sync: bool = False) -> None:
        self.path = path
        self.sync = bool(sync)
        self._lock = threading.RLock()
        #: key -> list of (budget vector, verdict, witness-or-None),
        #: append order.  The witness is the pin-usage vector of the
        #: feasible point that proved a True verdict; it transfers the
        #: verdict to every budget vector it still fits (a far sharper
        #: shortcut than budget dominance alone).
        self._entries: Dict[
            OracleKey,
            List[Tuple[BudgetVector, bool,
                       Optional[BudgetVector]]]] = {}
        #: Flat append log, the unit of cross-process delta shipping.
        self._log: List[Dict[str, Any]] = []
        self._pid = os.getpid()
        self.exact_hits = 0
        self.dominance_hits = 0
        self.misses = 0
        self.corrupt_lines = 0
        if path is not None and os.path.exists(path):
            self._load(path)

    # -- persistence ---------------------------------------------------
    def _load(self, path: str) -> None:
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                    if entry.get("v") != STORE_VERSION:
                        raise ValueError("version mismatch")
                    self._insert(entry, log=False)
                except (ValueError, KeyError, TypeError):
                    self.corrupt_lines += 1

    def _append_line(self, entry: Dict[str, Any]) -> None:
        if self.path is None or os.getpid() != self._pid:
            return  # forked children never write the parent's file
        line = json.dumps(dict(entry, v=STORE_VERSION),
                          separators=(",", ":"), sort_keys=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            if self.sync:
                handle.flush()
                os.fsync(handle.fileno())

    # -- entry plumbing ------------------------------------------------
    @staticmethod
    def _entry_key(entry: Mapping[str, Any]) -> OracleKey:
        fingerprint = tuple((str(op), int(group))
                            for op, group in entry["fp"])
        return (str(entry["sig"]), fingerprint,
                str(entry["node"]), int(entry["group"]))

    def _insert(self, entry: Mapping[str, Any], log: bool) -> bool:
        """Index one plain-data entry; returns True if new."""
        key = self._entry_key(entry)
        budgets = tuple(int(b) for b in entry["budgets"])
        verdict = bool(entry["verdict"])
        raw_witness = entry.get("witness")
        witness = (None if raw_witness is None
                   else tuple(int(w) for w in raw_witness))
        bucket = self._entries.setdefault(key, [])
        if any(vec == budgets and v == verdict and w == witness
               for vec, v, w in bucket):
            return False
        bucket.append((budgets, verdict, witness))
        if log:
            logged = {
                "sig": key[0], "fp": [list(p) for p in key[1]],
                "node": key[2], "group": key[3],
                "budgets": list(budgets), "verdict": verdict,
            }
            if witness is not None:
                logged["witness"] = list(witness)
            self._log.append(logged)
        return True

    # -- public API ----------------------------------------------------
    def lookup(self, key: OracleKey,
               budgets: BudgetVector) -> Optional[Tuple[bool, str]]:
        """Answer a query, or None.  Returns ``(verdict, kind)`` with
        ``kind`` in ``("exact", "dominance")``.

        Exact match first; otherwise the monotonicity shortcuts:
        *feasible* at a smaller-or-equal budget vector, *feasible*
        with a recorded witness whose pin usage fits the queried
        budgets, or *infeasible* at a larger-or-equal vector.
        """
        with self._lock:
            bucket = self._entries.get(key)
            if not bucket:
                self.misses += 1
                return None
            for vec, verdict, _witness in bucket:
                if vec == budgets:
                    self.exact_hits += 1
                    return verdict, "exact"
            for vec, verdict, witness in bucket:
                if verdict and (_dominates_le(vec, budgets)
                                or (witness is not None
                                    and _witness_fits(witness, budgets))):
                    self.dominance_hits += 1
                    PERF.inc("pin.store_dominance_hits")
                    return True, "dominance"
                if not verdict and _dominates_le(budgets, vec):
                    self.dominance_hits += 1
                    PERF.inc("pin.store_dominance_hits")
                    return False, "dominance"
            self.misses += 1
            return None

    def record(self, key: OracleKey, budgets: BudgetVector,
               verdict: bool,
               witness: Optional[BudgetVector] = None) -> None:
        """Record an exact-method verdict (and persist it).

        ``witness`` — only meaningful with ``verdict=True`` — is the
        pin-usage vector of the feasible point the solver found.
        """
        entry = {
            "sig": key[0], "fp": [list(p) for p in key[1]],
            "node": key[2], "group": key[3],
            "budgets": list(budgets), "verdict": bool(verdict),
        }
        if verdict and witness is not None:
            entry["witness"] = [int(w) for w in witness]
        with self._lock:
            if self._insert(entry, log=True):
                self._append_line(entry)

    # -- cross-process aggregation -------------------------------------
    def mark(self) -> int:
        """Checkpoint for :meth:`delta_since`."""
        with self._lock:
            return len(self._log)

    def delta_since(self, mark: int) -> List[Dict[str, Any]]:
        """Entries appended since ``mark`` (plain data, JSON-able)."""
        with self._lock:
            return [dict(entry) for entry in self._log[mark:]]

    def merge(self, delta: Optional[List[Mapping[str, Any]]]) -> int:
        """Fold a worker's delta in; returns the number of new entries.

        New entries are persisted and re-logged, so deltas propagate
        transitively (worker -> sweep store -> service store).
        """
        if not delta:
            return 0
        added = 0
        with self._lock:
            for entry in delta:
                try:
                    fresh = self._insert(entry, log=True)
                except (KeyError, TypeError, ValueError):
                    self.corrupt_lines += 1
                    continue
                if fresh:
                    self._append_line(self._log[-1])
                    added += 1
        return added

    # -- introspection -------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return sum(len(b) for b in self._entries.values())

    def items(self) -> Iterator[
            Tuple[OracleKey,
                  List[Tuple[BudgetVector, bool,
                             Optional[BudgetVector]]]]]:
        with self._lock:
            return iter(list(self._entries.items()))

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            lookups = self.exact_hits + self.dominance_hits + self.misses
            return {
                "entries": sum(len(b) for b in self._entries.values()),
                "keys": len(self._entries),
                "exact_hits": self.exact_hits,
                "dominance_hits": self.dominance_hits,
                "misses": self.misses,
                "hit_rate": (round(
                    (self.exact_hits + self.dominance_hits) / lookups, 4)
                    if lookups else 0.0),
                "corrupt_lines": self.corrupt_lines,
            }


# ---------------------------------------------------------------------
#: The process-wide active store.  ``None`` by default: plain solves and
#: cold benchmarks stay isolated; the warm explorer and the synthesis
#: service opt in via :func:`activate` *before* forking their worker
#: pools, so children inherit the instance.
_ACTIVE: Optional[OracleStore] = None


def get_active() -> Optional[OracleStore]:
    return _ACTIVE


def activate(store: Optional[OracleStore]) -> Optional[OracleStore]:
    """Install ``store`` as the process-wide default; returns the
    previous one so callers can restore it."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = store
    return previous
