"""ILP generators for interchip-connection synthesis (Chapters 4 and 6).

The dissertation fed these formulations to the Bozo and Lindo packages
and found them too slow beyond toy sizes, keeping them "useful for
verification of synthesized results" (Section 4.1.2).  We do the same:
:func:`build_connection_model` / :func:`build_subbus_model` emit exact
:class:`~repro.ilp.model.Model` instances that
:func:`~repro.ilp.branch_bound.solve_ilp` handles at verification scale,
and the test suite cross-checks the heuristics against them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cdfg.graph import Cdfg, Node
from repro.core.bus_bounds import max_buses_pipelined
from repro.core.interconnect import Bus, BusAssignment, Interconnect
from repro.errors import IlpError
from repro.ilp import Model, Solution, Var, lsum
from repro.ilp.linearize import (linearize_implies_ge,
                                 linearize_implies_zero,
                                 linearize_positive_iff, linearize_xor)
from repro.partition.model import Partitioning


@dataclass
class ConnectionIlp:
    """A built model plus handles to decode a solution."""

    model: Model
    y: Dict[Tuple[str, int], Var]
    ports: Dict[Tuple[str, int, int], Var]  # ("p"/"q"/"r", partition, bus)
    n_buses: int
    bidirectional: bool

    def decode(self, solution: Solution, graph: Cdfg
               ) -> Tuple[Interconnect, BusAssignment]:
        if not solution.feasible:
            raise IlpError("cannot decode an infeasible solution")
        interconnect = Interconnect(bidirectional=self.bidirectional)
        assignment = BusAssignment()
        index_map: Dict[int, int] = {}
        for h in range(1, self.n_buses + 1):
            bus = Bus(len(interconnect.buses) + 1)
            used = False
            for (kind, partition, bus_index), var in self.ports.items():
                if bus_index != h:
                    continue
                width = solution.as_int(var)
                if width <= 0:
                    continue
                used = True
                if kind == "p":
                    bus.out_widths[partition] = width
                elif kind == "q":
                    bus.in_widths[partition] = width
                else:
                    bus.bi_widths[partition] = width
            if used:
                interconnect.add_bus(bus)
                index_map[h] = bus.index
        for (op, h), var in self.y.items():
            if solution.as_int(var) == 1:
                assignment.assign(op, index_map[h])
        return interconnect, assignment


def build_connection_model(graph: Cdfg, partitioning: Partitioning,
                           initiation_rate: int,
                           max_buses: Optional[int] = None,
                           objective: str = "buses") -> ConnectionIlp:
    """The Section 4.1.1 formulation (4.1-4.6), both port models.

    ``objective="buses"`` is the paper's heuristic objective 4.6
    (maximize buses in use); ``"pins"`` minimizes total port pins
    instead — useful as an optimality yardstick for the heuristic.
    """
    if objective not in ("buses", "pins"):
        raise IlpError(f"unknown objective {objective!r}")
    bidirectional = partitioning.any_bidirectional()
    L = initiation_rate
    R = max_buses if max_buses is not None else \
        max_buses_pipelined(graph, partitioning, L)
    ios = sorted(graph.io_nodes(), key=lambda n: n.name)
    values = graph.values_map()
    model = Model("connection-ch4")

    y: Dict[Tuple[str, int], Var] = {}
    for node in ios:
        for h in range(1, R + 1):
            y[(node.name, h)] = model.binary(f"y[{node.name},{h}]")

    ports: Dict[Tuple[str, int, int], Var] = {}
    for index in partitioning.indices():
        budget = partitioning.total_pins(index)
        for h in range(1, R + 1):
            if bidirectional:
                ports[("r", index, h)] = model.add_var(
                    f"r[{index},{h}]", 0, budget)
            else:
                ports[("p", index, h)] = model.add_var(
                    f"p[{index},{h}]", 0, budget)
                ports[("q", index, h)] = model.add_var(
                    f"q[{index},{h}]", 0, budget)

    # (4.1) every transfer rides exactly one bus.
    for node in ios:
        model.add(lsum(y[(node.name, h)] for h in range(1, R + 1)) == 1,
                  name=f"assign[{node.name}]")

    # (4.2)/(4.3) data-transfer constraints, linearized per-term.
    for node in ios:
        for h in range(1, R + 1):
            width = node.bit_width
            if bidirectional:
                model.add(ports[("r", node.source_partition, h)]
                          >= width * y[(node.name, h)])
                model.add(ports[("r", node.dest_partition, h)]
                          >= width * y[(node.name, h)])
            else:
                model.add(ports[("p", node.source_partition, h)]
                          >= width * y[(node.name, h)])
                model.add(ports[("q", node.dest_partition, h)]
                          >= width * y[(node.name, h)])

    # (4.4) pin budgets.
    for index in partitioning.indices():
        if bidirectional:
            load = lsum(ports[("r", index, h)] for h in range(1, R + 1))
        else:
            load = lsum(ports[("p", index, h)] for h in range(1, R + 1)) \
                + lsum(ports[("q", index, h)] for h in range(1, R + 1))
        model.add(load <= partitioning.total_pins(index),
                  name=f"pins[{index}]")

    # (4.5) capacity: at most L values per bus; same-value transfers
    # count once via the max-linearizing m variables.
    for h in range(1, R + 1):
        terms = []
        for value, members in sorted(values.items()):
            if len(members) == 1:
                terms.append(y[(members[0].name, h)])
            else:
                m = model.binary(f"m[{value},{h}]")
                for node in members:
                    model.add(m >= y[(node.name, h)])
                terms.append(m)
        model.add(lsum(terms) <= L, name=f"cap[{h}]")

    if objective == "buses":
        # (4.6) heuristic objective: maximize buses in use.
        used_terms = []
        for h in range(1, R + 1):
            u = model.binary(f"u[{h}]")
            model.add(u <= lsum(y[(node.name, h)] for node in ios))
            used_terms.append(u)
        model.maximize(lsum(used_terms))
    else:
        model.minimize(lsum(ports.values()))

    return ConnectionIlp(model, y, ports, R, bidirectional)


# ---------------------------------------------------------------------
@dataclass
class SubBusIlp:
    """The Chapter 6 formulation with handles for decoding."""

    model: Model
    x: Dict[Tuple[str, int, int, int], Var]   # (op, bus, group, segment)
    z: Dict[Tuple[str, int, int, int], Var]
    bw: Dict[Tuple[int, int], Var]            # (bus, segment)
    r: Dict[Tuple[int, int], Var]             # (partition, bus)
    n_buses: int
    n_segments: int
    initiation_rate: int


def build_subbus_model(graph: Cdfg, partitioning: Partitioning,
                       initiation_rate: int,
                       max_buses: int,
                       n_segments: int = 2) -> SubBusIlp:
    """The Section 6.1.1 formulation (bidirectional ports, S segments).

    Faithful but verification-scale: variable count grows as
    ``|W| * R * L * S`` and the big-M linearizations of 6.1.1.4 add
    more, so keep instances tiny.
    """
    L, R, S = initiation_rate, max_buses, n_segments
    ios = sorted(graph.io_nodes(), key=lambda n: n.name)
    values = graph.values_map()
    model = Model("connection-ch6")
    big_m = max((n.bit_width for n in ios), default=1) * S * 2

    x: Dict[Tuple[str, int, int, int], Var] = {}
    z: Dict[Tuple[str, int, int, int], Var] = {}
    for node in ios:
        for h in range(1, R + 1):
            for l in range(L):
                for s in range(1, S + 1):
                    x[(node.name, h, l, s)] = model.binary(
                        f"x[{node.name},{h},{l},{s}]")
                    z[(node.name, h, l, s)] = model.add_var(
                        f"z[{node.name},{h},{l},{s}]", 0, node.bit_width)

    bw: Dict[Tuple[int, int], Var] = {}
    for h in range(1, R + 1):
        for s in range(1, S + 1):
            bw[(h, s)] = model.add_var(f"bw[{h},{s}]", 0, big_m)

    r: Dict[Tuple[int, int], Var] = {}
    for index in partitioning.indices():
        for h in range(1, R + 1):
            r[(index, h)] = model.add_var(
                f"r[{index},{h}]", 0, partitioning.total_pins(index))

    # (6.1) each op uses sub-slots of exactly one communication slot.
    # slot_use[w,h,l] = max_s x[w,h,l,s].
    slot_use: Dict[Tuple[str, int, int], Var] = {}
    for node in ios:
        for h in range(1, R + 1):
            for l in range(L):
                u = model.binary(f"slot[{node.name},{h},{l}]")
                slot_use[(node.name, h, l)] = u
                for s in range(1, S + 1):
                    model.add(u >= x[(node.name, h, l, s)])
                model.add(u <= lsum(x[(node.name, h, l, s)]
                                    for s in range(1, S + 1)))
        model.add(lsum(slot_use[(node.name, h, l)]
                       for h in range(1, R + 1) for l in range(L)) == 1,
                  name=f"assign[{node.name}]")

    # (6.2) contiguity: at most one run of 1s in the sub-slot vector.
    for node in ios:
        for h in range(1, R + 1):
            for l in range(L):
                transitions = []
                for s in range(2, S + 1):
                    t = model.binary(f"t[{node.name},{h},{l},{s}]")
                    linearize_xor(model, t, x[(node.name, h, l, s - 1)],
                                  x[(node.name, h, l, s)])
                    transitions.append(t)
                model.add(x[(node.name, h, l, 1)]
                          + lsum(transitions)
                          + x[(node.name, h, l, S)] <= 2)

    # (6.3)/(6.4) sub-slot exclusivity; same-value transfers may share.
    for h in range(1, R + 1):
        for l in range(L):
            for s in range(1, S + 1):
                terms = []
                for value, members in sorted(values.items()):
                    if len(members) == 1:
                        terms.append(x[(members[0].name, h, l, s)])
                    else:
                        mv = model.binary(f"mv[{value},{h},{l},{s}]")
                        for node in members:
                            model.add(mv >= x[(node.name, h, l, s)])
                        terms.append(mv)
                model.add(lsum(terms) <= 1)

    # (6.5) same-value transfers sharing a sub-slot must align exactly.
    for value, members in sorted(values.items()):
        for i, w1 in enumerate(members):
            for w2 in members[i + 1:]:
                for h in range(1, R + 1):
                    for l in range(L):
                        ov = model.add_var(
                            f"ov[{w1.name},{w2.name},{h},{l}]", 0, 2)
                        for s in range(1, S + 1):
                            model.add(ov >= x[(w1.name, h, l, s)]
                                      + x[(w2.name, h, l, s)])
                        diffs = []
                        for s in range(1, S + 1):
                            d = model.binary(
                                f"d[{w1.name},{w2.name},{h},{l},{s}]")
                            linearize_xor(model, d,
                                          x[(w1.name, h, l, s)],
                                          x[(w2.name, h, l, s)])
                            diffs.append(d)
                        linearize_implies_zero(model, ov, lsum(diffs),
                                               threshold=2, big_m=S + 1)

    # (6.6) bits flow only on assigned sub-slots.
    for key, x_var in x.items():
        linearize_positive_iff(model, z[key], x_var, big_m)

    # (6.7) sub-bus width covers every cycle's traffic.
    for (op, h, l, s), z_var in z.items():
        model.add(bw[(h, s)] >= z_var)

    # (6.8) all bits of a value are transferred.
    for node in ios:
        model.add(lsum(z[(node.name, h, l, s)]
                       for h in range(1, R + 1)
                       for l in range(L)
                       for s in range(1, S + 1)) == node.bit_width)

    # (6.9) a port reaching sub-bus s spans all earlier sub-buses.
    for index in partitioning.indices():
        for h in range(1, R + 1):
            for s in range(1, S + 1):
                # a[i,h,s] >= z over ops touching partition i.
                a = model.add_var(f"a[{index},{h},{s}]", 0, big_m)
                touching = [n for n in ios
                            if index in (n.source_partition,
                                         n.dest_partition)]
                for node in touching:
                    for l in range(L):
                        model.add(a >= z[(node.name, h, l, s)])
                flag = model.binary(f"af[{index},{h},{s}]")
                linearize_positive_iff(model, a, flag, big_m)
                prefix = lsum(bw[(h, t)] for t in range(1, s))
                linearize_implies_ge(model, flag, r[(index, h)],
                                     prefix + a, big_m * S)

    # (6.10) pin budgets.
    for index in partitioning.indices():
        model.add(lsum(r[(index, h)] for h in range(1, R + 1))
                  <= partitioning.total_pins(index),
                  name=f"pins[{index}]")

    model.minimize(lsum(r.values()))
    return SubBusIlp(model, x, z, bw, r, R, S, L)
