"""Related-work baselines the dissertation argues against (Section 1.3).

* :func:`gebotys_connection` — Gebotys'92 assumed "every interchip bus
  is connected to all of the chips and every value transferred off-chip
  has the same bit width", so only bus *counts* matter.  Fine for two
  chips; for more, ports are paid on every chip whether used or not.
  This builder realizes those assumptions so the pin overhead can be
  measured against the Chapter 4 heuristic.
* :func:`no_sharing_pin_cost` — De Micheli et al. computed a
  partition's pin cost "by simply adding the costs of all I/O
  operations in the partition", i.e. no time-sharing of pins across
  control-step groups at all; "the design produced by this approach
  will require many more I/O pins than necessary".
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.cdfg.graph import Cdfg
from repro.core.interconnect import Bus, BusAssignment, Interconnect
from repro.errors import ConnectionError_
from repro.partition.model import Partitioning


def gebotys_connection(graph: Cdfg, partitioning: Partitioning,
                       initiation_rate: int
                       ) -> Tuple[Interconnect, BusAssignment]:
    """All-chips buses at uniform (maximum) width.

    The number of buses is the minimum needed to give every value a
    communication slot: ``ceil(#values / L)`` (same-value transfers
    share a slot since every chip hears every bus).  Each bus connects
    an output port and an input port of *every* partition that sends or
    receives anything, at the width of the widest transferred value.
    """
    ios = graph.io_nodes()
    if not ios:
        return Interconnect(), BusAssignment()
    width = max(n.bit_width for n in ios)
    values = sorted(graph.values_map().items())
    n_buses = math.ceil(len(values) / initiation_rate)
    senders = sorted({n.source_partition for n in ios})
    receivers = sorted({n.dest_partition for n in ios})
    bidirectional = partitioning.any_bidirectional()

    interconnect = Interconnect(bidirectional=bidirectional)
    for index in range(1, n_buses + 1):
        if bidirectional:
            bus = Bus(index, bi_widths={
                p: width for p in sorted(set(senders) | set(receivers))})
        else:
            bus = Bus(index,
                      out_widths={p: width for p in senders},
                      in_widths={p: width for p in receivers})
        interconnect.add_bus(bus)

    assignment = BusAssignment()
    for position, (value, members) in enumerate(values):
        bus_index = position % n_buses + 1
        for node in members:
            assignment.assign(node.name, bus_index)

    problems = interconnect.check_budget(partitioning)
    if problems:
        raise ConnectionError_(
            "the uniform-bus baseline does not fit the pin budgets:\n  "
            + "\n  ".join(problems))
    return interconnect, assignment


def gebotys_pin_cost(graph: Cdfg, partitioning: Partitioning,
                     initiation_rate: int) -> Dict[int, int]:
    """Per-partition pins under the uniform-bus assumptions (no budget
    check, for comparison tables)."""
    ios = graph.io_nodes()
    if not ios:
        return {p: 0 for p in partitioning.indices()}
    width = max(n.bit_width for n in ios)
    n_values = len(graph.values_map())
    n_buses = math.ceil(n_values / initiation_rate)
    senders = {n.source_partition for n in ios}
    receivers = {n.dest_partition for n in ios}
    costs: Dict[int, int] = {}
    for partition in partitioning.indices():
        if partitioning.any_bidirectional():
            ports = 1 if partition in (senders | receivers) else 0
        else:
            ports = ((1 if partition in senders else 0)
                     + (1 if partition in receivers else 0))
        costs[partition] = ports * width * n_buses
    return costs


def no_sharing_pin_cost(graph: Cdfg,
                        partitioning: Partitioning) -> Dict[int, int]:
    """Pins when every I/O operation owns its pins outright.

    The Section 1.3 critique of the binding-first system: pin cost per
    partition is the plain sum of the bit widths of all its transfers
    (output values counted once per value, inputs once per transfer) —
    no time-multiplexing across control-step groups.
    """
    costs: Dict[int, int] = {p: 0 for p in partitioning.indices()}
    for node in graph.io_nodes():
        costs[node.dest_partition] = costs.get(node.dest_partition, 0) \
            + node.bit_width
    for value, members in graph.values_map().items():
        src = members[0].source_partition
        costs[src] = costs.get(src, 0) + members[0].bit_width
    return costs
