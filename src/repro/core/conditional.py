"""Conditional I/O resource sharing (Section 7.2, Figure 7.7).

When a conditional block is split across chips, transfers on mutually
exclusive branches never happen in the same execution instance and can
share a communication slot *if* they are scheduled in the same control
step.  The heuristic greedily combines compatibility-graph nodes — each
node is a set of mutually exclusive I/O operations with

* a *time frame* (intersection of members' ASAP..ALAP windows), and
* a *bus connection structure* ``r`` (per-partition port widths of the
  cheapest bus all members can use)

— maximizing a modified benefit that trades pins saved
(``gain = sum_i min(r_i(v1), r_i(v2))``) against scheduling freedom lost
(``penalty = |frame1 ∪ frame2| / |frame1 ∩ frame2| - 1``) and the
first-order exclusion of other merges (factor ``f``).

The resulting disjoint sets feed
:class:`repro.core.connection_search.ConnectionSearch` as
``share_groups``: the connection synthesizer treats set members like
transfers of one value (Section 7.2's closing remark).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

from repro.cdfg.analysis import TimingSpec, compute_time_frames
from repro.cdfg.graph import Cdfg, Node
from repro.errors import CdfgError

Frame = Tuple[int, int]


@dataclass
class SharingResult:
    """Disjoint sets of I/O operations that may share a slot."""

    groups: List[FrozenSet[str]]

    def share_groups(self) -> Dict[str, str]:
        """op name -> group label, for ConnectionSearch."""
        out: Dict[str, str] = {}
        for members in self.groups:
            if len(members) < 2:
                continue
            label = "&".join(sorted(members))
            for op in members:
                out[op] = label
        return out


class ConditionalSharer:
    """One-shot heuristic; construct then call :meth:`run`."""

    def __init__(self, graph: Cdfg, timing: TimingSpec, pipe_length: int,
                 initiation_rate: Optional[int] = None,
                 penalty_factor: float = 1.0,
                 exclusion_factor: float = 0.5) -> None:
        if not 0.0 <= exclusion_factor <= 1.0:
            raise CdfgError("exclusion factor f must be in [0, 1]")
        self.graph = graph
        self.pf = penalty_factor
        self.f = exclusion_factor
        frames = compute_time_frames(graph, timing, pipe_length,
                                     initiation_rate=initiation_rate)
        self._frames: Dict[FrozenSet[str], Frame] = {}
        self._rvec: Dict[FrozenSet[str], Dict[int, int]] = {}
        self._nodes: List[FrozenSet[str]] = []
        for node in graph.io_nodes():
            if not node.guard:
                continue  # only conditional transfers participate
            key = frozenset({node.name})
            self._nodes.append(key)
            self._frames[key] = frames.frame(node.name)
            self._rvec[key] = {node.source_partition: node.bit_width,
                               node.dest_partition: node.bit_width}

    # ------------------------------------------------------------------
    def run(self) -> SharingResult:
        while True:
            edges = self._compatible_edges()
            if not edges:
                break
            basic = {e: self._basic_weight(*e) for e in edges}
            best_edge = None
            best_score = None
            for edge in edges:
                score = self._modified_weight(edge, edges, basic)
                if best_score is None or score > best_score or (
                        score == best_score
                        and _edge_key(edge) < _edge_key(best_edge)):
                    best_score = score
                    best_edge = edge
            assert best_edge is not None
            self._combine(*best_edge)
        return SharingResult(sorted(self._nodes, key=sorted))

    # ------------------------------------------------------------------
    def _mutually_exclusive(self, a: FrozenSet[str],
                            b: FrozenSet[str]) -> bool:
        for op1 in a:
            n1 = self.graph.node(op1)
            for op2 in b:
                if not n1.mutually_exclusive_with(self.graph.node(op2)):
                    return False
        return True

    def _frames_overlap(self, a: FrozenSet[str],
                        b: FrozenSet[str]) -> bool:
        lo1, hi1 = self._frames[a]
        lo2, hi2 = self._frames[b]
        return max(lo1, lo2) <= min(hi1, hi2)

    def _compatible_edges(self) -> List[Tuple[FrozenSet[str],
                                              FrozenSet[str]]]:
        out = []
        nodes = sorted(self._nodes, key=sorted)
        for i, a in enumerate(nodes):
            for b in nodes[i + 1:]:
                if self._mutually_exclusive(a, b) \
                        and self._frames_overlap(a, b):
                    out.append((a, b))
        return out

    # ------------------------------------------------------------------
    def _basic_weight(self, a: FrozenSet[str],
                      b: FrozenSet[str]) -> float:
        ra, rb = self._rvec[a], self._rvec[b]
        gain = sum(min(ra.get(p, 0), rb.get(p, 0))
                   for p in set(ra) | set(rb))
        lo1, hi1 = self._frames[a]
        lo2, hi2 = self._frames[b]
        union = max(hi1, hi2) - min(lo1, lo2) + 1
        inter = min(hi1, hi2) - max(lo1, lo2) + 1
        penalty = union / inter - 1.0
        return gain - self.pf * penalty

    def _modified_weight(self, edge, edges, basic) -> float:
        a, b = edge
        adjacency: Dict[FrozenSet[str], set] = {}
        for x, y in edges:
            adjacency.setdefault(x, set()).add(y)
            adjacency.setdefault(y, set()).add(x)
        # Best edge from a to a node NOT adjacent to b (merging a with b
        # would forever exclude that merge), and vice versa.
        best_a = max((basic[_norm(a, v)] for v in adjacency.get(a, ())
                      if v != b and v not in adjacency.get(b, set())),
                     default=0.0)
        best_b = max((basic[_norm(b, v)] for v in adjacency.get(b, ())
                      if v != a and v not in adjacency.get(a, set())),
                     default=0.0)
        loss = max(best_a, best_b) + self.f * min(best_a, best_b)
        return basic[edge] - loss

    # ------------------------------------------------------------------
    def _combine(self, a: FrozenSet[str], b: FrozenSet[str]) -> None:
        merged = a | b
        lo1, hi1 = self._frames[a]
        lo2, hi2 = self._frames[b]
        self._frames[merged] = (max(lo1, lo2), min(hi1, hi2))
        ra, rb = self._rvec.pop(a), self._rvec.pop(b)
        self._rvec[merged] = {p: max(ra.get(p, 0), rb.get(p, 0))
                              for p in set(ra) | set(rb)}
        del self._frames[a], self._frames[b]
        self._nodes = [n for n in self._nodes if n not in (a, b)]
        self._nodes.append(merged)


def _norm(a, b):
    return (a, b) if sorted(a) <= sorted(b) else (b, a)


def _edge_key(edge) -> Tuple:
    a, b = edge
    return (sorted(a), sorted(b))


def share_conditionally(graph: Cdfg, timing: TimingSpec, pipe_length: int,
                        initiation_rate: Optional[int] = None,
                        penalty_factor: float = 1.0,
                        exclusion_factor: float = 0.5) -> SharingResult:
    """Convenience wrapper around :class:`ConditionalSharer`."""
    sharer = ConditionalSharer(graph, timing, pipe_length,
                               initiation_rate=initiation_rate,
                               penalty_factor=penalty_factor,
                               exclusion_factor=exclusion_factor)
    return sharer.run()
