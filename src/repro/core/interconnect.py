"""Interchip connection model: buses, ports, sub-buses, pin accounting.

No switching devices exist off-chip (Section 2.3.2): a communication
bus is a passive bundle of wires tying output ports of some chips to
input ports of others.  A chip's port onto a bus has a width — possibly
narrower than the bus when the chip only ever sends/receives narrow
values over it (Figure 4.2).  With bidirectional ports (Section 4.3) a
single port serves both directions.  Chapter 6 logically divides a bus
into consecutive *sub-buses* so two values can ride the bus in one
cycle; a chip connected to sub-bus ``s`` is connected to every earlier
sub-bus too (Equation 6.9), so a port width plus the segment layout
fully determines reachability.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.cdfg.graph import Cdfg, Node
from repro.errors import ConnectionError_
from repro.partition.model import Partitioning


@dataclass
class Bus:
    """One communication bus.

    For unidirectional designs ``out_widths``/``in_widths`` give
    ``p_{i,h}``/``q_{i,h}``; for bidirectional designs ``bi_widths``
    gives ``r_{i,h}``.  ``segments`` lists sub-bus widths in order; a
    plain bus has one segment equal to its width.
    """

    index: int
    out_widths: Dict[int, int] = field(default_factory=dict)
    in_widths: Dict[int, int] = field(default_factory=dict)
    bi_widths: Dict[int, int] = field(default_factory=dict)
    segments: List[int] = field(default_factory=list)

    # ------------------------------------------------------------------
    @property
    def bidirectional(self) -> bool:
        return bool(self.bi_widths)

    @property
    def width(self) -> int:
        if self.segments:
            return sum(self.segments)
        widths = list(self.out_widths.values()) \
            + list(self.in_widths.values()) + list(self.bi_widths.values())
        return max(widths, default=0)

    def effective_segments(self) -> List[int]:
        return self.segments or [self.width]

    @property
    def n_segments(self) -> int:
        return len(self.effective_segments())

    def segment_offset(self, index: int) -> int:
        return sum(self.effective_segments()[:index])

    # ------------------------------------------------------------------
    def source_width(self, partition: int) -> int:
        if self.bidirectional:
            return self.bi_widths.get(partition, 0)
        return self.out_widths.get(partition, 0)

    def dest_width(self, partition: int) -> int:
        if self.bidirectional:
            return self.bi_widths.get(partition, 0)
        return self.in_widths.get(partition, 0)

    def capable(self, io: Node, segment: Optional[int] = None) -> bool:
        """Whether the bus can carry the transfer (optionally at a
        specific starting segment)."""
        if segment is None:
            return any(self.capable(io, s) for s in self.fitting_segments(io))
        need = self.segment_offset(segment) + io.bit_width
        if need > self.width:
            return False
        return (self.source_width(io.source_partition) >= need
                and self.dest_width(io.dest_partition) >= need)

    def fitting_segments(self, io: Node) -> List[int]:
        """Starting segments whose suffix can hold the value's bits."""
        segments = self.effective_segments()
        out = []
        for start in range(len(segments)):
            room = sum(segments[start:])
            if room >= io.bit_width:
                out.append(start)
        return out

    def segments_spanned(self, io: Node, start: int) -> List[int]:
        """Segment indices the value occupies when starting at ``start``."""
        segments = self.effective_segments()
        spanned = []
        remaining = io.bit_width
        for idx in range(start, len(segments)):
            if remaining <= 0:
                break
            spanned.append(idx)
            remaining -= segments[idx]
        if remaining > 0:
            raise ConnectionError_(
                f"value of {io.bit_width} bits does not fit bus "
                f"{self.index} from segment {start}")
        return spanned

    def connected_partitions(self) -> List[int]:
        parts = (set(self.out_widths) | set(self.in_widths)
                 | set(self.bi_widths))
        return sorted(parts)

    def topology(self) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        """(source partitions, destination partitions) — Section 4.1.2's
        notion of two buses having the same topology."""
        if self.bidirectional:
            parts = tuple(sorted(self.bi_widths))
            return parts, parts
        return (tuple(sorted(self.out_widths)),
                tuple(sorted(self.in_widths)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.bidirectional:
            body = " ".join(f"P{p}:{w}" for p, w in
                            sorted(self.bi_widths.items()))
        else:
            outs = " ".join(f"P{p}:{w}" for p, w in
                            sorted(self.out_widths.items()))
            ins = " ".join(f"P{p}:{w}" for p, w in
                           sorted(self.in_widths.items()))
            body = f"out[{outs}] in[{ins}]"
        seg = f" segs={self.segments}" if self.segments else ""
        return f"Bus{self.index}({body}{seg})"


class Interconnect:
    """A set of communication buses plus pin accounting."""

    def __init__(self, buses: Optional[Iterable[Bus]] = None,
                 bidirectional: bool = False) -> None:
        self.buses: List[Bus] = list(buses or [])
        self.bidirectional = bidirectional

    def add_bus(self, bus: Bus) -> Bus:
        self.buses.append(bus)
        return bus

    def bus(self, index: int) -> Bus:
        for bus in self.buses:
            if bus.index == index:
                return bus
        raise ConnectionError_(f"no bus with index {index}")

    def __len__(self) -> int:
        return len(self.buses)

    # ------------------------------------------------------------------
    def pins_used(self, partition: int) -> int:
        total = 0
        for bus in self.buses:
            if bus.bidirectional:
                total += bus.bi_widths.get(partition, 0)
            else:
                total += bus.out_widths.get(partition, 0)
                total += bus.in_widths.get(partition, 0)
        return total

    def pin_report(self, partitions: Iterable[int]) -> Dict[int, int]:
        return {p: self.pins_used(p) for p in partitions}

    def capable_buses(self, io: Node) -> List[Bus]:
        return [bus for bus in self.buses if bus.capable(io)]

    def pins_used_split(self, partition: int) -> Tuple[int, int]:
        """(output, input) pins used — meaningful for unidirectional
        ports; bidirectional widths count on the output side."""
        out_used = in_used = 0
        for bus in self.buses:
            if bus.bidirectional:
                out_used += bus.bi_widths.get(partition, 0)
            else:
                out_used += bus.out_widths.get(partition, 0)
                in_used += bus.in_widths.get(partition, 0)
        return out_used, in_used

    def check_budget(self, partitioning: Partitioning) -> List[str]:
        """Pin-budget violation report (delegated to the unified
        :class:`repro.pipeline.resource_table.PinLedger`, whose
        message strings are the stable contract here)."""
        # Imported here: the pipeline layer sits above the bus model.
        from repro.pipeline.resource_table import PinLedger
        return PinLedger.from_interconnect(self, partitioning).violations()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Interconnect({len(self.buses)} buses)"


@dataclass
class BusAssignment:
    """Assignment of I/O operations to buses (and starting segments).

    ``bus_of`` maps op name -> bus index; ``segment_of`` maps op name ->
    starting segment (0 for unsplit buses).
    """

    bus_of: Dict[str, int] = field(default_factory=dict)
    segment_of: Dict[str, int] = field(default_factory=dict)

    def assign(self, op: str, bus: int, segment: int = 0) -> None:
        self.bus_of[op] = bus
        self.segment_of[op] = segment

    def of(self, op: str) -> Tuple[int, int]:
        return self.bus_of[op], self.segment_of.get(op, 0)

    def copy(self) -> "BusAssignment":
        return BusAssignment(dict(self.bus_of), dict(self.segment_of))

    def by_bus(self) -> Dict[int, List[str]]:
        out: Dict[int, List[str]] = {}
        for op, bus in sorted(self.bus_of.items()):
            out.setdefault(bus, []).append(op)
        return out


def verify_bus_allocation(graph: Cdfg, interconnect: Interconnect,
                          assignment: BusAssignment,
                          schedule_steps: Mapping[str, int],
                          initiation_rate: int) -> List[str]:
    """Check the no-conflict property of a complete design.

    Two transfers may occupy the same (bus, segment, control-step
    group) only if, in the *same control step*, they move the same
    value — or are mutually exclusive by their guards (conditional
    sharing, Section 7.2; different steps always mean different
    pipeline instances, where exclusivity cannot help).  Also checks
    bus capability.
    """
    problems: List[str] = []
    occupancy: Dict[Tuple[int, int, int], List[Tuple[int, str]]] = {}
    for node in graph.io_nodes():
        name = node.name
        if name not in assignment.bus_of:
            problems.append(f"I/O op {name!r} has no bus")
            continue
        if name not in schedule_steps:
            problems.append(f"I/O op {name!r} is unscheduled")
            continue
        bus_index, segment = assignment.of(name)
        bus = interconnect.bus(bus_index)
        if not bus.capable(node, segment):
            problems.append(
                f"bus {bus_index} cannot carry {name!r} "
                f"({node.bit_width} bits from P{node.source_partition} "
                f"to P{node.dest_partition} at segment {segment})")
            continue
        step = schedule_steps[name]
        group = step % initiation_rate
        for seg in bus.segments_spanned(node, segment):
            key = (bus_index, seg, group)
            for other_step, other in occupancy.get(key, []):
                other_node = graph.node(other)
                same_value = ((node.value or name)
                              == (other_node.value or other)
                              and other_step == step)
                exclusive = (other_step == step
                             and node.mutually_exclusive_with(
                                 other_node))
                if not (same_value or exclusive):
                    problems.append(
                        f"bus {bus_index} segment {seg} group {group}: "
                        f"{name!r} conflicts with {other!r}")
            occupancy.setdefault(key, []).append((step, name))
    return problems
