"""Communication-slot allocation with dynamic reassignment (Sec 4.2, 6.2).

During list scheduling each I/O operation holds a *tentative* bus
assignment (from the connection-synthesis phase).  When the scheduler
wants to place operation ``w`` in control step ``s`` but ``w``'s bus is
already allocated in group ``s mod L``, ``w`` may *preempt* another
not-yet-scheduled operation whose bus is free in that group; the
preempted operation relocates in turn — an augmenting-path search over
the bipartite (operation, communication slot) graph, with slots grouped
per bus (Figure 4.5).

For sub-bus-split buses (Chapter 6) an operation may need one or both
segments; the search is restricted to *single preemption* (Section 6.2),
which can answer "no" although a two-victim shuffle existed — the
dissertation accepts the same pruning.

Transfers of the same value scheduled in the same control step may share
one slot (one output drives all connected inputs).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.cdfg.graph import Cdfg, Node
from repro.cdfg.ops import OpKind
from repro.core.interconnect import Bus, BusAssignment, Interconnect
from repro.errors import BusAssignmentError
from repro.perf import PERF
from repro.scheduling.base import Schedule

#: A concrete placement: (bus index, starting segment).
Position = Tuple[int, int]
#: One relocation step of a plan.
Move = Tuple[str, Position]


class BusAllocator:
    """IoHooks implementation for Chapter 4 / Chapter 6 scheduling."""

    def __init__(self,
                 graph: Cdfg,
                 interconnect: Interconnect,
                 initial: BusAssignment,
                 initiation_rate: int,
                 reassignment: bool = True,
                 single_preemption: Optional[bool] = None) -> None:
        self.graph = graph
        self.interconnect = interconnect
        self.L = initiation_rate
        self.reassignment = reassignment
        has_split = any(len(b.effective_segments()) > 1
                        for b in interconnect.buses)
        self.single_preemption = (has_split if single_preemption is None
                                  else single_preemption)

        self.assignment: Dict[str, Position] = {}
        self.scheduled: Dict[str, int] = {}
        #: (bus, segment, group) -> list of (value, step, op name);
        #: several entries coexist only for same-value-same-step
        #: sharing or mutually exclusive conditional transfers.
        self.occupancy: Dict[Tuple[int, int, int],
                             List[Tuple[str, int, str]]] = {}
        self._unscheduled_on: Dict[int, Set[str]] = {
            bus.index: set() for bus in interconnect.buses}
        self._plan_cache: Dict[Tuple[str, int], List[Move]] = {}
        self.reassignments = 0

        for node in graph.io_nodes():
            if node.name not in initial.bus_of:
                raise BusAssignmentError(
                    f"I/O op {node.name!r} missing from the initial bus "
                    f"assignment")
            bus_index, segment = initial.of(node.name)
            bus = interconnect.bus(bus_index)
            if not bus.capable(node, segment):
                raise BusAssignmentError(
                    f"initial assignment puts {node.name!r} on an "
                    f"incapable bus {bus_index} (segment {segment})")
            self.assignment[node.name] = (bus_index, segment)
            self._unscheduled_on[bus_index].add(node.name)

    # ------------------------------------------------------------------
    def final_assignment(self) -> BusAssignment:
        out = BusAssignment()
        for op, (bus, segment) in sorted(self.assignment.items()):
            out.assign(op, bus, segment)
        return out

    # -- capacity accounting --------------------------------------------
    def _capacity(self, bus: Bus) -> int:
        return self.L * len(bus.effective_segments())

    def _need(self, node: Node, bus: Bus, segment: int) -> int:
        return len(bus.segments_spanned(node, segment))

    def _used(self, bus: Bus, exclude: frozenset = frozenset()) -> int:
        occupied = sum(1 for (b, _s, _g), entries
                       in self.occupancy.items()
                       if b == bus.index and entries)
        demand = 0
        seen_values: Set[str] = set()
        for op in self._unscheduled_on[bus.index]:
            if op in exclude:
                continue
            node = self.graph.node(op)
            key = node.value or op
            if key in seen_values:
                continue
            seen_values.add(key)
            _bus_index, segment = self.assignment[op]
            demand += self._need(node, bus, segment)
        return occupied + demand

    def _spare(self, bus: Bus, exclude: frozenset = frozenset()) -> int:
        return self._capacity(bus) - self._used(bus, exclude)

    # -- position availability -------------------------------------------
    def _position_free(self, node: Node, bus: Bus, segment: int,
                       step: int) -> bool:
        group = step % self.L
        for seg in bus.segments_spanned(node, segment):
            for value, other_step, other in self.occupancy.get(
                    (bus.index, seg, group), []):
                same_value = (value == (node.value or node.name)
                              and other_step == step)
                exclusive = (other_step == step
                             and node.mutually_exclusive_with(
                                 self.graph.node(other)))
                if not (same_value or exclusive):
                    return False
        return True

    def _positions(self, node: Node) -> List[Position]:
        out: List[Position] = []
        current = self.assignment.get(node.name)
        for bus in self.interconnect.buses:
            for segment in bus.fitting_segments(node):
                if bus.capable(node, segment):
                    out.append((bus.index, segment))
        # Prefer the current assignment, then low indices.
        out.sort(key=lambda pos: (pos != current, pos))
        return out

    # -- IoHooks -----------------------------------------------------------
    def can_schedule(self, node: Node, step: int,
                     schedule: Schedule) -> bool:
        if node.kind is not OpKind.IO:
            return True  # raw INPUT/OUTPUT nodes bypass buses
        plan = self._find_plan(node, step)
        if plan is None:
            return False
        self._plan_cache[(node.name, step)] = plan
        return True

    def commit(self, node: Node, step: int, schedule: Schedule) -> None:
        if node.kind is not OpKind.IO:
            return
        plan = self._plan_cache.pop((node.name, step), None)
        if plan is None:
            plan = self._find_plan(node, step)
            if plan is None:
                raise BusAssignmentError(
                    f"commit without a feasible plan for {node.name!r}")
        self._apply(node, step, plan)

    # -- planning -----------------------------------------------------------
    def _strands_someone(self, node: Node, position: Position,
                         step: int) -> bool:
        """Would committing here leave an unscheduled op with no slot?

        Sub-bus geometry can dead-end even when raw capacity is fine:
        two narrow transfers committed in different groups strand a
        whole-bus transfer.  Simulate the occupancy the commit would
        create and confirm every other unscheduled operation still has
        *some* free (bus, segment, group) home.  Only relevant when a
        bus is split; unsplit buses are already covered by the
        capacity accounting.
        """
        if all(len(b.effective_segments()) == 1
               for b in self.interconnect.buses):
            return False
        bus = self.interconnect.bus(position[0])
        added = {}
        group = step % self.L
        for seg in bus.segments_spanned(node, position[1]):
            added[(bus.index, seg, group)] = [
                (node.value or node.name, step, node.name)]
        pending = set()
        for ops in self._unscheduled_on.values():
            pending |= ops
        pending.discard(node.name)
        for other in pending:
            if not self._has_home(self.graph.node(other), added):
                return True
        return False

    def _has_home(self, node: Node, extra_occupancy) -> bool:
        for bus in self.interconnect.buses:
            for segment in bus.fitting_segments(node):
                if not bus.capable(node, segment):
                    continue
                for group in range(self.L):
                    free = True
                    for seg in bus.segments_spanned(node, segment):
                        key = (bus.index, seg, group)
                        entries = list(self.occupancy.get(key, [])) \
                            + list(extra_occupancy.get(key, []))
                        for value, _step, other in entries:
                            if value == (node.value or node.name):
                                continue
                            if node.mutually_exclusive_with(
                                    self.graph.node(other)):
                                continue
                            free = False
                            break
                        if not free:
                            break
                    if free:
                        return True
        return False

    def _find_plan(self, node: Node, step: int) -> Optional[List[Move]]:
        current = self.assignment[node.name]
        bus = self.interconnect.bus(current[0])
        if self._position_free(node, bus, current[1], step) \
                and not self._strands_someone(node, current, step):
            return [(node.name, current)]
        if not self.reassignment:
            return None
        # Kuhn-style augmenting search: each bus is explored at most
        # once per plan (visited), and every operation already moving
        # along the path (in_flight) stops consuming capacity on its
        # old bus.
        visited: Set[int] = set()
        in_flight = frozenset({node.name})
        for position in self._positions(node):
            if position == current:
                continue
            bus_index = position[0]
            target = self.interconnect.bus(bus_index)
            if not self._position_free(node, target, position[1], step):
                continue
            if self._strands_someone(node, position, step):
                continue
            need = self._need(node, target, position[1])
            if self._spare(target, exclude=in_flight) >= need:
                self.reassignments += 1
                PERF.inc("bus.reassignments")
                return [(node.name, position)]
            if bus_index in visited:
                continue
            visited.add(bus_index)
            # Preemption: relocate one victim off the target bus.
            victims = sorted(self._unscheduled_on[bus_index]
                             - {node.name})
            for victim in victims:
                victim_node = self.graph.node(victim)
                moving = in_flight | {victim}
                relocation = self._relocate(
                    victim_node, visited, moving,
                    chain_budget=(0 if self.single_preemption else
                                  len(self.interconnect.buses)))
                if relocation is None:
                    continue
                freed = self._spare(target, exclude=in_flight) \
                    + self._victim_demand(victim_node, target)
                if freed >= need:
                    self.reassignments += 1
                    PERF.inc("bus.reassignments")
                    return [(node.name, position)] + relocation
        return None

    def _victim_demand(self, victim: Node, bus: Bus) -> int:
        _b, segment = self.assignment[victim.name]
        # The victim's demand only frees capacity if no same-value twin
        # stays behind on the bus.
        key = victim.value or victim.name
        for other in self._unscheduled_on[bus.index]:
            if other == victim.name:
                continue
            other_node = self.graph.node(other)
            if (other_node.value or other) == key:
                return 0
        return self._need(victim, bus, segment)

    def _relocate(self, victim: Node, visited: Set[int],
                  in_flight: frozenset,
                  chain_budget: int) -> Optional[List[Move]]:
        """Find a new home for a preempted unscheduled operation.

        ``visited`` buses are never re-entered (shared across the whole
        augmenting search, as in Kuhn's algorithm); ``in_flight`` ops
        are mid-move and release their old capacity.
        """
        for position in self._positions(victim):
            bus_index, segment = position
            if bus_index in visited:
                continue
            target = self.interconnect.bus(bus_index)
            need = self._need(victim, target, segment)
            if self._spare(target, exclude=in_flight) >= need:
                return [(victim.name, position)]
        if chain_budget <= 0:
            return None
        # Chain: the victim preempts somebody else in turn.
        for position in self._positions(victim):
            bus_index, segment = position
            if bus_index in visited:
                continue
            visited.add(bus_index)
            target = self.interconnect.bus(bus_index)
            need = self._need(victim, target, segment)
            for next_victim in sorted(self._unscheduled_on[bus_index]
                                      - set(in_flight)):
                next_node = self.graph.node(next_victim)
                tail = self._relocate(next_node, visited,
                                      in_flight | {next_victim},
                                      chain_budget - 1)
                if tail is None:
                    continue
                freed = self._spare(target, exclude=in_flight) \
                    + self._victim_demand(next_node, target)
                if freed >= need:
                    return [(victim.name, position)] + tail
        return None

    # -- application ------------------------------------------------------
    def _apply(self, node: Node, step: int, plan: List[Move]) -> None:
        # Later moves first: they free capacity the earlier moves use.
        for op, position in reversed(plan[1:]):
            old_bus = self.assignment[op][0]
            self._unscheduled_on[old_bus].discard(op)
            self.assignment[op] = position
            self._unscheduled_on[position[0]].add(op)
        op, position = plan[0]
        assert op == node.name
        old_bus = self.assignment[op][0]
        self._unscheduled_on[old_bus].discard(op)
        self.assignment[op] = position
        bus = self.interconnect.bus(position[0])
        group = step % self.L
        for seg in bus.segments_spanned(node, position[1]):
            entries = self.occupancy.setdefault(
                (bus.index, seg, group), [])
            key = (node.value or node.name, step, node.name)
            if key not in entries:
                entries.append(key)
        self.scheduled[op] = step
