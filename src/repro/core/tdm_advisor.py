"""Automatic time-division multiplexing advice (Section 7.3's open end).

The dissertation leaves the *which transfers to split, and how* decision
to the designer and calls a supporting tool future work ("Further study
is required to develop a tool which could assist designers in making a
time division I/O multiplexing decision or even to make the decision by
itself").  This module implements a simple such advisor:

1. Estimate each chip end's pin demand the way the pin-allocation
   bundle model does — per-group peaks for external and interchip
   traffic separately.
2. While some chip exceeds its budget, pick the *widest* transfer
   touching the most-overloaded chip and split it in half (respecting a
   minimum component width), which halves its per-group footprint at
   the price of an extra transfer cycle.
3. Stop when everything fits or nothing splittable remains.

The advice is a plan — (transfer, component widths) pairs —, which
:func:`apply_advice` turns into the Figure 7.8 split/merge rewrite.
The trade-off the thesis warns about is real and visible in the
benches: fewer pins, longer pipes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cdfg.graph import Cdfg, Node
from repro.cdfg.transform import insert_time_division_multiplexing
from repro.errors import ConnectionError_
from repro.partition.model import OUTSIDE_WORLD, Partitioning


@dataclass
class TdmPlan:
    """Which transfers to split into which component widths."""

    splits: Dict[str, List[int]] = field(default_factory=dict)
    demand_before: Dict[int, int] = field(default_factory=dict)
    demand_after: Dict[int, int] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return bool(self.splits)


def _pin_demand(graph: Cdfg, initiation_rate: int,
                widths: Optional[Dict[str, int]] = None
                ) -> Dict[int, int]:
    """Lower-bound pin demand per chip (bundle-model peaks).

    ``widths`` overrides transfer widths (to evaluate hypothetical
    splits without rewriting the graph); a transfer split into ``n``
    parts of width ``w`` contributes one ``w``-wide port if
    ``n <= L``.
    """
    L = initiation_rate
    demand: Dict[int, int] = {}
    per_end: Dict[Tuple[int, str], List[int]] = {}
    for node in graph.io_nodes():
        width = (widths or {}).get(node.name, node.bit_width)
        per_end.setdefault((node.dest_partition, "in"),
                           []).append(width)
        per_end.setdefault((node.source_partition, "out"),
                           []).append(width)
    for (partition, _direction), sizes in per_end.items():
        sizes.sort(reverse=True)
        # Greedy lower bound: the k widest transfers that must coexist
        # in some group when spread as evenly as possible.
        peak = sum(sizes[::L]) if sizes else 0
        demand[partition] = demand.get(partition, 0) + peak
    return demand


def advise_tdm(graph: Cdfg, partitioning: Partitioning,
               initiation_rate: int,
               min_component: int = 4,
               max_rounds: int = 16) -> TdmPlan:
    """Propose splits until the estimated demand fits the budgets."""
    plan = TdmPlan()
    widths: Dict[str, int] = {n.name: n.bit_width
                              for n in graph.io_nodes()}
    pieces: Dict[str, int] = {n.name: 1 for n in graph.io_nodes()}
    plan.demand_before = _pin_demand(graph, initiation_rate)

    for _ in range(max_rounds):
        demand = _pin_demand(graph, initiation_rate, widths)
        overloaded = [(demand[p] - partitioning.total_pins(p), p)
                      for p in demand
                      if demand[p] > partitioning.total_pins(p)]
        if not overloaded:
            break
        overloaded.sort(reverse=True)
        _excess, chip = overloaded[0]
        candidates = [n for n in graph.io_nodes()
                      if chip in (n.source_partition, n.dest_partition)
                      and widths[n.name] // 2 >= min_component
                      and pieces[n.name] * 2 <= initiation_rate]
        if not candidates:
            break
        victim = max(candidates,
                     key=lambda n: (widths[n.name], n.name))
        widths[victim.name] = math.ceil(widths[victim.name] / 2)
        pieces[victim.name] *= 2
    else:
        pass

    for node in graph.io_nodes():
        if pieces[node.name] > 1:
            n_pieces = pieces[node.name]
            base = node.bit_width // n_pieces
            parts = [base] * n_pieces
            parts[0] += node.bit_width - base * n_pieces
            plan.splits[node.name] = parts
    plan.demand_after = _pin_demand(graph, initiation_rate, widths)
    return plan


def apply_advice(graph: Cdfg, plan: TdmPlan) -> Dict[str, List[str]]:
    """Rewrite the graph per the plan (Figure 7.8 split/merge nodes).

    Returns transfer name -> the new sub-transfer names.  The graph is
    modified in place.
    """
    created: Dict[str, List[str]] = {}
    for name, parts in sorted(plan.splits.items()):
        created[name] = insert_time_division_multiplexing(graph, name,
                                                          parts)
    return created
