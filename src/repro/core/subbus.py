"""Sub-bus sharing: several values on one bus per cycle (Chapter 6).

The prototype restriction of Section 6.1.2 applies: a bus splits into at
most two sub-buses.  When considering I/O operation ``w``, an unsplit
bus of width ``W`` carrying some operation of width ``B_old`` may split
into segments ``[W - B_w, B_w]`` provided ``W >= B_w + min(B_old)`` — the
first segment keeps (some of) the old traffic, the new operation rides
the second.  Once split, a bus's width is frozen (no widening to force
sharing); ports may still widen up to the frozen width, and by
Equation 6.9 a port reaching sub-bus ``s`` spans every earlier sub-bus,
so an operation starting at segment ``s`` needs ports of width
``offset(s) + B_w`` on both ends.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from repro.cdfg.graph import Cdfg, Node
from repro.core.connection_search import ConnectionSearch, _BusState
from repro.core.interconnect import Bus, BusAssignment, Interconnect
from repro.errors import ConnectionError_
from repro.partition.model import Partitioning

#: Candidate placement: (state, starting segment, split widths or None).
Candidate = Tuple[_BusState, int, Optional[Tuple[int, int]]]


class SubBusConnectionSearch(ConnectionSearch):
    """Connection search allowing two-way bus splits."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: bus index -> frozen segment widths (absent = unsplit).
        self._segments: Dict[int, List[int]] = {}
        #: bus index -> {op name: starting segment}.
        self._op_segment: Dict[int, Dict[str, int]] = {}
        #: bus index -> {op name: bit width} for split-condition checks.
        self._op_width: Dict[int, Dict[str, int]] = {}

    # -- geometry helpers -------------------------------------------------
    def _state_width(self, state: _BusState) -> int:
        widths = list(state.out_w.values()) + list(state.in_w.values()) \
            + list(state.bi_w.values())
        return max(widths, default=0)

    def _segs_of(self, state: _BusState) -> Optional[List[int]]:
        return self._segments.get(state.index)

    def _spanned(self, state: _BusState, start: int, width: int
                 ) -> Optional[List[int]]:
        segments = self._segs_of(state)
        if segments is None:
            return [0] if start == 0 else None
        remaining = width
        spanned: List[int] = []
        for idx in range(start, len(segments)):
            if remaining <= 0:
                break
            spanned.append(idx)
            remaining -= segments[idx]
        return spanned if remaining <= 0 else None

    def _required_port(self, state: _BusState, start: int,
                       width: int) -> int:
        segments = self._segs_of(state)
        offset = sum(segments[:start]) if segments else 0
        return offset + width

    # -- capacity ---------------------------------------------------------
    def _capacity(self, state: _BusState) -> int:
        segments = self._segs_of(state)
        return self.capacity * (len(segments) if segments else 1)

    def _demand(self, state: _BusState) -> int:
        seen: Dict[str, int] = {}
        positions = self._op_segment.get(state.index, {})
        widths = self._op_width.get(state.index, {})
        for op, start in positions.items():
            key = self.share_groups.get(op, None)
            node_value = key
            if node_value is None:
                node_value = self.graph.node(op).value or op
            spanned = self._spanned(state, start, widths[op])
            need = len(spanned) if spanned else 1
            seen[node_value] = max(seen.get(node_value, 0), need)
        return sum(seen.values())

    # -- candidate generation ----------------------------------------------
    def _candidates(self, node: Node) -> List[Candidate]:
        scored: List[Tuple[float, int, Candidate]] = []
        width = node.bit_width
        for state in self._buses:
            segments = self._segs_of(state)
            if segments is None:
                # Unsplit: plain whole-bus assignment (widths may grow).
                if self._slot_ok(state, node, start=0):
                    if self._delta_ok(state, node, start=0):
                        gain = self._gain_at(state, node, 0)
                        scored.append((gain, -state.index,
                                       (state, 0, None)))
                # Tentative split (Section 6.1.2).
                plan = self._split_plan(state, node)
                if plan is not None:
                    cand = (state, 1, plan)
                    if self._delta_ok(state, node, start=1, split=plan):
                        gain = self._gain_at(state, node, 1, split=plan)
                        scored.append((gain, -state.index, cand))
            else:
                for start in range(len(segments)):
                    if self._spanned(state, start, width) is None:
                        continue
                    if not self._slot_ok(state, node, start):
                        continue
                    if not self._delta_ok(state, node, start):
                        continue
                    gain = self._gain_at(state, node, start)
                    scored.append((gain, -state.index,
                                   (state, start, None)))
        fresh: Optional[_BusState] = None
        if len(self._buses) < self.R:
            fresh = _BusState(len(self._buses) + 1)
            if self._delta_ok(fresh, node, start=0):
                scored.append((self._gain_at(fresh, node, 0),
                               -fresh.index, (fresh, 0, None)))
            else:
                fresh = None
        scored.sort(key=lambda item: (-item[0], item[1]))
        picked = [cand for _g, _i, cand in scored[:self.branching]]
        if fresh is not None and all(c[0] is not fresh for c in picked):
            picked.append((fresh, 0, None))
        return picked

    def _split_plan(self, state: _BusState,
                    node: Node) -> Optional[Tuple[int, int]]:
        if not state.ops:
            return None
        width = self._state_width(state)
        widths = self._op_width.get(state.index, {})
        smallest = min(widths.values(), default=None)
        if smallest is None:
            return None
        if width < node.bit_width + smallest:
            return None
        return (width - node.bit_width, node.bit_width)

    def _slot_ok(self, state: _BusState, node: Node, start: int,
                 split: Optional[Tuple[int, int]] = None) -> bool:
        if self.value_key(node) in state.values:
            return True
        capacity = self.capacity * (2 if (split or self._segs_of(state)) else 1)
        spanned = self._spanned(state, start, node.bit_width) \
            if split is None else [start]
        need = len(spanned) if spanned else 1
        return self._demand(state) + need <= capacity

    def _delta_ok(self, state: _BusState, node: Node, start: int,
                  split: Optional[Tuple[int, int]] = None) -> bool:
        return self._pin_delta_at(state, node, start, split) is not None

    def _pin_delta_at(self, state: _BusState, node: Node, start: int,
                      split: Optional[Tuple[int, int]] = None
                      ) -> Optional[Dict[int, int]]:
        if split is not None:
            required = split[0] + node.bit_width
        else:
            segments = self._segs_of(state)
            if segments is not None:
                if self._spanned(state, start, node.bit_width) is None:
                    return None
                required = self._required_port(state, start,
                                               node.bit_width)
                if required > sum(segments):
                    return None
            else:
                required = node.bit_width
        src, dst = node.source_partition, node.dest_partition
        delta: Dict[int, Tuple[int, int]] = {}
        if self.bidirectional:
            delta[src] = (max(0, required - state.bi_w.get(src, 0)), 0)
            prev = delta.get(dst, (0, 0))
            delta[dst] = (prev[0] + max(
                0, required - state.bi_w.get(dst, 0)), prev[1])
        else:
            delta[src] = (max(0, required - state.out_w.get(src, 0)), 0)
            prev = delta.get(dst, (0, 0))
            delta[dst] = (prev[0], prev[1] + max(
                0, required - state.in_w.get(dst, 0)))
        return delta if self._budget_ok(delta) else None

    def _gain_at(self, state: _BusState, node: Node, start: int,
                 split: Optional[Tuple[int, int]] = None) -> float:
        base = self._gain(state, node)  # g1/g2 identical; fix g3 below
        g3_old = float(self.capacity - len(state.values))
        capacity = self.capacity * (2 if (split or self._segs_of(state)) else 1)
        g3_new = float(capacity - self._demand(state))
        return base - g3_old + g3_new

    # -- application ---------------------------------------------------
    def _position_of(self, candidate: Candidate) -> Tuple[int, int]:
        state, start, _split = candidate
        return state.index, start

    def _apply(self, node: Node, candidate: Candidate):
        state, start, split = candidate
        is_new = state not in self._buses
        if is_new:
            self._buses.append(state)
        record = {
            "new": is_new,
            "out": dict(state.out_w), "in": dict(state.in_w),
            "bi": dict(state.bi_w),
            "had_value": self.value_key(node) in state.values,
            "pins": self.pins.snapshot(),
            "segments": (list(self._segments[state.index])
                         if state.index in self._segments else None),
            "op_segment": dict(self._op_segment.get(state.index, {})),
            "op_width": dict(self._op_width.get(state.index, {})),
        }
        delta = self._pin_delta_at(state, node, start, split)
        assert delta is not None
        self._book_pins(delta)
        if split is not None:
            self._segments[state.index] = list(split)
        required = self._required_port(state, start, node.bit_width) \
            if split is None else split[0] + node.bit_width
        src, dst = node.source_partition, node.dest_partition
        if self.bidirectional:
            state.bi_w[src] = max(state.bi_w.get(src, 0), required)
            state.bi_w[dst] = max(state.bi_w.get(dst, 0), required)
        else:
            state.out_w[src] = max(state.out_w.get(src, 0), required)
            state.in_w[dst] = max(state.in_w.get(dst, 0), required)
        state.values.add(self.value_key(node))
        state.ops.append(node.name)
        self._op_segment.setdefault(state.index, {})[node.name] = start
        self._op_width.setdefault(state.index, {})[node.name] = \
            node.bit_width
        self._unassigned_bits[src] -= node.bit_width
        self._unassigned_bits[dst] -= node.bit_width
        return record

    def _undo(self, node: Node, candidate: Candidate, record) -> None:
        state, _start, _split = candidate
        src, dst = node.source_partition, node.dest_partition
        state.ops.pop()
        if not record["had_value"]:
            state.values.discard(self.value_key(node))
        state.out_w = record["out"]
        state.in_w = record["in"]
        state.bi_w = record["bi"]
        self.pins.restore(record["pins"])
        if record["segments"] is None:
            self._segments.pop(state.index, None)
        else:
            self._segments[state.index] = record["segments"]
        self._op_segment[state.index] = record["op_segment"]
        self._op_width[state.index] = record["op_width"]
        self._unassigned_bits[src] += node.bit_width
        self._unassigned_bits[dst] += node.bit_width
        if record["new"]:
            self._buses.pop()

    def _finish_bus(self, index: int, state: _BusState) -> Bus:
        segments = self._segments.get(state.index)
        return Bus(
            index,
            out_widths=dict(state.out_w),
            in_widths=dict(state.in_w),
            bi_widths=dict(state.bi_w),
            segments=list(segments) if segments else [],
        )


def synthesize_connection_subbus(graph: Cdfg, partitioning: Partitioning,
                                 initiation_rate: int,
                                 branching_factor: int = 2,
                                 share_groups: Optional[
                                     Mapping[str, str]] = None,
                                 ) -> Tuple[Interconnect, BusAssignment]:
    """Convenience wrapper around :class:`SubBusConnectionSearch`."""
    search = SubBusConnectionSearch(graph, partitioning, initiation_rate,
                                    branching_factor=branching_factor,
                                    share_groups=share_groups)
    return search.run()
