"""End-to-end synthesis flows and the :func:`synthesize` front door.

* :func:`synthesize` — the single entry point: dispatches on the
  partitioning (``flow="auto"``) to the right chapter flow, threads an
  optional :class:`repro.robustness.budget.SolveBudget` through every
  solver, and degrades gracefully when the budget runs out.
* :func:`synthesize_simple` — Chapter 3: list scheduling with the ILP
  pin-allocation feasibility checker, then the constructive Theorem 3.1
  interchip connection.
* :func:`synthesize_connection_first` — Chapter 4 (and 6 with
  ``subbus_sharing=True``): heuristic connection synthesis, then list
  scheduling with dynamic bus reassignment.
* :func:`synthesize_schedule_first` — Chapter 5: force-directed
  scheduling, then connection synthesis by clique partitioning.

Every flow returns a :class:`SynthesisResult` whose :meth:`verify`
re-checks all invariants end to end — precedence, chaining, recursion,
functional units, pin budgets, and bus conflict freedom.  Budgeted runs
additionally carry a :class:`repro.robustness.diagnostics.Diagnostics`
trail recording dispatch decisions, budget exhaustions, and fallbacks,
so a degraded answer is auditable.

The graceful-degradation lattice (see DESIGN.md §8):

* connection-first search exhausts its budget → retry with a greedy
  ``branching_factor=1`` pass (fresh iteration counters, same wall
  clock) → fall back to the schedule-first flow;
* the Gomory cutting planes stall → the pin checker latches onto exact
  branch & bound → onto the conservative LP-relaxation bound (inside
  :class:`repro.core.pin_allocation.PinAllocationChecker`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional

from repro.cdfg.graph import Cdfg
from repro.cdfg.validate import validate_cdfg
from repro.core.bus_assignment import BusAllocator
from repro.core.connection_search import ConnectionSearch
from repro.core.interconnect import (BusAssignment, Interconnect,
                                     verify_bus_allocation)
from repro.core.pin_allocation import PinAllocationChecker
from repro.core.post_sched import PostScheduleConnector
from repro.core.simple_connection import (SimpleConnectionResult,
                                          build_simple_connection,
                                          verify_simple_allocation)
from repro.core.subbus import SubBusConnectionSearch
from repro.errors import ConnectionError_, ReproError, SchedulingError
from repro.modules.allocation import ResourceVector, min_module_counts
from repro.modules.library import DesignTiming
from repro.partition.model import Partitioning
from repro.partition.simple import is_simple_partitioning
from repro.perf import PERF
from repro.robustness.budget import (BudgetExhausted, BudgetToken,
                                     as_token)
from repro.robustness.diagnostics import Diagnostics
from repro.scheduling.base import Schedule, measured_resources
from repro.scheduling.fds import ForceDirectedScheduler
from repro.scheduling.list_scheduler import ListScheduler

#: Flow names accepted by :func:`synthesize`.
FLOWS = ("auto", "simple", "connection-first", "schedule-first")


@dataclass(frozen=True)
class SynthesisOptions:
    """Frozen bag of every per-flow tuning knob.

    One options type replaces the per-flow kwargs that had drifted
    apart; each flow reads the fields it understands and ignores the
    rest (the CLI sets them all uniformly).  Defaults match the
    historical per-flow defaults exactly.
    """

    flow: str = "auto"
    resources: Optional[ResourceVector] = None
    pin_method: str = "gomory"              # simple flow
    branching_factor: int = 2               # connection-first
    reassignment: bool = True               # connection-first
    subbus_sharing: bool = False            # connection-first (Ch 6)
    share_groups: Optional[Mapping[str, str]] = None
    slot_reserve: int = 0                   # connection-first
    conditional_sharing: bool = False       # connection-first (Sec 7.2)
    scheduler: str = "list"                 # connection-first
    pipe_length: Optional[int] = None       # schedule-first
    bidirectional: Optional[bool] = None    # schedule-first

    def __post_init__(self) -> None:
        if self.flow not in FLOWS:
            raise ReproError(
                f"unknown flow {self.flow!r}; expected one of {FLOWS}")

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Plain-data form (resources excluded — they are keyed by
        tuples and travel separately as ``{"chip:op": n}``).

        Used by the design-space explorer to ship options across
        process boundaries and to build canonical cache keys.
        """
        return {
            "flow": self.flow,
            "pin_method": self.pin_method,
            "branching_factor": self.branching_factor,
            "reassignment": self.reassignment,
            "subbus_sharing": self.subbus_sharing,
            "share_groups": (None if self.share_groups is None
                             else dict(self.share_groups)),
            "slot_reserve": self.slot_reserve,
            "conditional_sharing": self.conditional_sharing,
            "scheduler": self.scheduler,
            "pipe_length": self.pipe_length,
            "bidirectional": self.bidirectional,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object],
                  resources: Optional[ResourceVector] = None
                  ) -> "SynthesisOptions":
        """Rebuild options from :meth:`to_dict` data (tolerant of
        missing keys, so older archives keep loading)."""
        known = {f for f in cls.__dataclass_fields__ if f != "resources"}
        kwargs = {k: v for k, v in dict(data).items() if k in known}
        return cls(resources=resources, **kwargs)


@dataclass
class SynthesisResult:
    """Everything a multi-chip synthesis run produces."""

    graph: Cdfg
    partitioning: Partitioning
    initiation_rate: int
    schedule: Schedule
    resources: ResourceVector
    interconnect: Optional[Interconnect] = None
    assignment: Optional[BusAssignment] = None
    simple_allocation: Optional[SimpleConnectionResult] = None
    stats: Dict[str, float] = field(default_factory=dict)
    diagnostics: Diagnostics = field(default_factory=Diagnostics)
    #: Warm-start handle for structurally-identical re-solves: the pin
    #: checker's exported :class:`repro.ilp.WarmBasis` (simple flow
    #: only; None elsewhere).  Deliberately not serialized with the
    #: result — it travels between neighboring solves, not to archives.
    warm_basis: Optional[object] = None

    # ------------------------------------------------------------------
    @property
    def pipe_length(self) -> int:
        return self.schedule.pipe_length

    @property
    def degraded(self) -> bool:
        """True when any phase fell back to a cheaper strategy."""
        return self.diagnostics.degraded

    def pins_used(self) -> Dict[int, int]:
        if self.interconnect is not None:
            return self.interconnect.pin_report(self.partitioning.indices())
        if self.simple_allocation is not None:
            return {p: self.simple_allocation.pins_used(p)
                    for p in self.partitioning.indices()}
        return {p: 0 for p in self.partitioning.indices()}

    def verify(self) -> List[str]:
        problems = self.schedule.verify(self.resources)
        if self.interconnect is not None:
            problems.extend(self.interconnect.check_budget(
                self.partitioning))
            if self.assignment is not None:
                problems.extend(verify_bus_allocation(
                    self.graph, self.interconnect, self.assignment,
                    self.schedule.start_step, self.initiation_rate))
        if self.simple_allocation is not None:
            problems.extend(verify_simple_allocation(
                self.graph, self.schedule, self.simple_allocation))
            problems.extend(
                self.simple_allocation.interconnect.check_budget(
                    self.partitioning))
        return problems

    def require_valid(self) -> "SynthesisResult":
        problems = self.verify()
        if problems:
            raise SchedulingError(
                "synthesis result failed verification:\n  "
                + "\n  ".join(problems))
        return self


# ---------------------------------------------------------------------
#: PERF counter deltas reported under the same stats key by ALL flows,
#: so callers can diff effort across flows without key juggling.
_STAT_COUNTERS = {
    "pin_checks": "pin.checks",
    "pin_cache_hits": "pin.cache_hits",
    "pin_cache_misses": "pin.cache_misses",
    "pin_store_hits": "pin.store_hits",
    "tableau_pivots": "tableau.pivots",
    "gomory_cuts": "gomory.cuts",
    "simplex_solves": "simplex.solves",
    "bnb_nodes": "bnb.nodes",
    "search_steps": "search.steps",
    "reassignments": "bus.reassignments",
}


def _normalized_stats(before, **extra) -> Dict[str, float]:
    """The cross-flow stats contract: counter deltas + flow extras.

    Every flow reports the solver-effort counters (zero when a solver
    was not exercised) — including ``search_steps``/``reassignments``,
    which the chapter-4/5 engines now tick as PERF counters — so the
    key set is identical across flows; flow-specific extras ride along.
    """
    counters = PERF.delta_since(before)["counters"]
    stats: Dict[str, float] = {
        key: counters.get(counter, 0)
        for key, counter in _STAT_COUNTERS.items()
    }
    stats.update(extra)
    return stats


def _default_pipe_length(graph: Cdfg, timing: DesignTiming,
                         initiation_rate: int) -> int:
    """Pipe budget for schedule-first runs that did not specify one.

    The critical path is the floor; the ``2 L`` margin gives FDS slack
    to balance concurrency (the same headroom the Section 7.2 heuristic
    grants itself).
    """
    from repro.cdfg.analysis import critical_path_length
    return critical_path_length(graph, timing) + 2 * initiation_rate


# ---------------------------------------------------------------------
def _run_simple(graph: Cdfg, partitioning: Partitioning,
                timing: DesignTiming, initiation_rate: int,
                opts: SynthesisOptions,
                token: Optional[BudgetToken],
                diag: Diagnostics,
                warm_basis=None) -> SynthesisResult:
    """Chapter 3 flow body (budget- and diagnostics-aware)."""
    validate_cdfg(graph, require_partitions=False)
    if not is_simple_partitioning(graph):
        raise ConnectionError_(
            "synthesize_simple requires a simple partitioning "
            "(Definition 3.2); use synthesize_connection_first instead")
    resources = opts.resources
    if resources is None:
        resources = min_module_counts(graph, timing, initiation_rate)
    before = PERF.snapshot()
    with PERF.phase("flow.simple"):
        checker = PinAllocationChecker(graph, partitioning,
                                       initiation_rate,
                                       method=opts.pin_method,
                                       budget=token, diagnostics=diag,
                                       warm_basis=warm_basis)
        scheduler = ListScheduler(graph, timing, initiation_rate,
                                  resources, io_hooks=checker,
                                  budget=token)
        schedule = scheduler.run()
        checker.finalize()
        allocation = build_simple_connection(graph, schedule)
    result = SynthesisResult(
        graph=graph,
        partitioning=partitioning,
        initiation_rate=initiation_rate,
        schedule=schedule,
        resources=resources,
        simple_allocation=allocation,
        stats=_normalized_stats(before,
                                pin_checks=checker.checks,
                                pin_cache_hits=checker.cache_hits,
                                pin_store_hits=checker.store_hits),
        diagnostics=diag,
        warm_basis=checker.export_warm_basis(),
    )
    return result.require_valid()


def _run_connection_first(graph: Cdfg, partitioning: Partitioning,
                          timing: DesignTiming, initiation_rate: int,
                          opts: SynthesisOptions,
                          token: Optional[BudgetToken],
                          diag: Diagnostics) -> SynthesisResult:
    """Chapter 4/6 flow body (budget- and diagnostics-aware)."""
    validate_cdfg(graph, require_partitions=False)
    resources = opts.resources
    if resources is None:
        resources = min_module_counts(graph, timing, initiation_rate)
    share_groups = opts.share_groups
    if opts.conditional_sharing:
        if share_groups is not None:
            raise ConnectionError_(
                "give either explicit share_groups or "
                "conditional_sharing=True, not both")
        from repro.cdfg.analysis import critical_path_length
        from repro.core.conditional import share_conditionally
        pipe_budget = critical_path_length(graph, timing) \
            + 2 * initiation_rate
        sharing = share_conditionally(graph, timing, pipe_budget,
                                      initiation_rate=initiation_rate)
        share_groups = sharing.share_groups()
    if opts.scheduler not in ("list", "postpone"):
        raise SchedulingError(f"unknown scheduler {opts.scheduler!r}")
    before = PERF.snapshot()
    with PERF.phase("flow.connection_first"):
        search_cls = SubBusConnectionSearch if opts.subbus_sharing \
            else ConnectionSearch
        search = search_cls(graph, partitioning, initiation_rate,
                            branching_factor=opts.branching_factor,
                            share_groups=share_groups,
                            slot_reserve=opts.slot_reserve,
                            budget=token)
        interconnect, initial = search.run()
        if opts.scheduler == "postpone":
            from repro.scheduling.postpone import \
                schedule_with_postponement

            last_allocator = []

            def hooks_factory():
                allocator = BusAllocator(graph, interconnect,
                                         initial.copy(), initiation_rate,
                                         reassignment=opts.reassignment)
                last_allocator.append(allocator)
                return allocator

            schedule = schedule_with_postponement(
                graph, timing, initiation_rate, resources,
                hooks_factory=hooks_factory, budget=token)
            allocator = last_allocator[-1]
        else:
            allocator = BusAllocator(graph, interconnect, initial,
                                     initiation_rate,
                                     reassignment=opts.reassignment)
            schedule = ListScheduler(graph, timing, initiation_rate,
                                     resources, io_hooks=allocator,
                                     budget=token).run()
    result = SynthesisResult(
        graph=graph,
        partitioning=partitioning,
        initiation_rate=initiation_rate,
        schedule=schedule,
        resources=resources,
        interconnect=interconnect,
        assignment=allocator.final_assignment(),
        stats=_normalized_stats(before,
                                initial_assignment=initial),
        diagnostics=diag,
    )
    return result.require_valid()


def _run_schedule_first(graph: Cdfg, partitioning: Partitioning,
                        timing: DesignTiming, initiation_rate: int,
                        pipe_length: int,
                        opts: SynthesisOptions,
                        token: Optional[BudgetToken],
                        diag: Diagnostics) -> SynthesisResult:
    """Chapter 5 flow body (budget- and diagnostics-aware)."""
    validate_cdfg(graph, require_partitions=False)
    bidirectional = opts.bidirectional
    if bidirectional is None:
        bidirectional = partitioning.any_bidirectional()
    before = PERF.snapshot()
    with PERF.phase("flow.schedule_first"):
        scheduler = ForceDirectedScheduler(graph, timing,
                                           initiation_rate, pipe_length,
                                           budget=token)
        schedule = scheduler.run()
        connector = PostScheduleConnector(graph, schedule,
                                          partitioning=None,
                                          bidirectional=bidirectional)
        interconnect, assignment = connector.run()
    resources = measured_resources(schedule)
    result = SynthesisResult(
        graph=graph,
        partitioning=partitioning,
        initiation_rate=initiation_rate,
        schedule=schedule,
        resources=resources,
        interconnect=interconnect,
        assignment=assignment,
        stats=_normalized_stats(before),
        diagnostics=diag,
    )
    problems = result.verify()
    # The Chapter 5 flow minimizes pins rather than respecting a fixed
    # budget; report overruns through stats instead of failing.
    hard = [p for p in problems if "budget" not in p]
    if hard:
        raise SchedulingError(
            "schedule-first synthesis failed verification:\n  "
            + "\n  ".join(hard))
    overruns = [p for p in problems if "budget" in p]
    result.stats["budget_overruns"] = overruns
    if overruns:
        diag.record("schedule_first", "pin_budget_overruns",
                    count=len(overruns))
    return result


# ---------------------------------------------------------------------
# Public per-chapter entry points: thin wrappers over the flow bodies,
# signature- and default-compatible with the historical functions.
def synthesize_simple(graph: Cdfg,
                      partitioning: Partitioning,
                      timing: DesignTiming,
                      initiation_rate: int,
                      resources: Optional[ResourceVector] = None,
                      pin_method: str = "gomory",
                      budget=None, warm_basis=None) -> SynthesisResult:
    """Chapter 3 flow for designs with a simple partitioning."""
    opts = SynthesisOptions(flow="simple", resources=resources,
                            pin_method=pin_method)
    return _run_simple(graph, partitioning, timing, initiation_rate,
                       opts, as_token(budget), Diagnostics(),
                       warm_basis=warm_basis)


def synthesize_connection_first(graph: Cdfg,
                                partitioning: Partitioning,
                                timing: DesignTiming,
                                initiation_rate: int,
                                resources: Optional[ResourceVector] = None,
                                branching_factor: int = 2,
                                reassignment: bool = True,
                                subbus_sharing: bool = False,
                                share_groups: Optional[
                                    Mapping[str, str]] = None,
                                slot_reserve: int = 0,
                                conditional_sharing: bool = False,
                                scheduler: str = "list",
                                budget=None,
                                ) -> SynthesisResult:
    """Chapter 4 flow (Chapter 6 with ``subbus_sharing=True``).

    ``slot_reserve`` holds back communication slots per bus during
    connection synthesis (more buses, higher bandwidth — the
    Objective-4.6 lever), useful on latency-critical recursive designs.
    ``conditional_sharing=True`` runs the Section 7.2 heuristic first:
    mutually exclusive guarded transfers are grouped and enter the
    connection search as shared values.
    """
    opts = SynthesisOptions(flow="connection-first",
                            resources=resources,
                            branching_factor=branching_factor,
                            reassignment=reassignment,
                            subbus_sharing=subbus_sharing,
                            share_groups=share_groups,
                            slot_reserve=slot_reserve,
                            conditional_sharing=conditional_sharing,
                            scheduler=scheduler)
    return _run_connection_first(graph, partitioning, timing,
                                 initiation_rate, opts,
                                 as_token(budget), Diagnostics())


def synthesize_schedule_first(graph: Cdfg,
                              partitioning: Partitioning,
                              timing: DesignTiming,
                              initiation_rate: int,
                              pipe_length: int,
                              bidirectional: Optional[bool] = None,
                              budget=None,
                              ) -> SynthesisResult:
    """Chapter 5 flow: FDS then clique-partitioning connection."""
    opts = SynthesisOptions(flow="schedule-first",
                            pipe_length=pipe_length,
                            bidirectional=bidirectional)
    return _run_schedule_first(graph, partitioning, timing,
                               initiation_rate, pipe_length, opts,
                               as_token(budget), Diagnostics())


# ---------------------------------------------------------------------
def synthesize(graph: Cdfg,
               partitioning: Partitioning,
               timing: DesignTiming,
               initiation_rate: int,
               *,
               flow: str = "auto",
               budget=None,
               check: bool = False,
               pin_warm_basis=None,
               **opts) -> SynthesisResult:
    """The front door: dispatch, budget, and graceful degradation.

    ``flow="auto"`` picks the Chapter 3 flow for simple partitionings
    with unidirectional pins and the Chapter 4 flow otherwise; the
    remaining keyword arguments are :class:`SynthesisOptions` fields.

    ``pin_warm_basis`` hands the simple flow's pin checker a
    :class:`repro.ilp.WarmBasis` exported by a structurally identical
    earlier solve (``result.warm_basis``); the solver warm-starts from
    it when compatible and silently cold-starts otherwise, so verdicts
    are unchanged.  Other flows ignore it.

    ``check=True`` additionally runs the unified design-rule checker
    (:func:`repro.check.check_result`) over the finished result and
    raises :class:`repro.check.CheckError` on any violation — stricter
    than the flows' built-in ``require_valid()``, which the unified
    rules subsume.

    With a :class:`repro.robustness.budget.SolveBudget`, every solver
    in the chosen flow cooperates with the deadline/caps, and the
    connection-first flow degrades gracefully instead of failing:
    budget-starved search retries greedily (``branching_factor=1``),
    then falls back to the schedule-first flow.  Each fallback rung
    restarts the iteration counters but shares the original wall clock,
    and every transition is recorded on ``result.diagnostics``.
    Degraded results are verified by ``require_valid()`` exactly like
    full-effort ones; when no rung fits the budget, the final
    :class:`BudgetExhausted` carries the diagnostics trail.
    """
    options = SynthesisOptions(flow=flow, **opts)
    token = as_token(budget)
    diag = Diagnostics()
    try:
        result = _dispatch(graph, partitioning, timing,
                           initiation_rate, options, token, diag,
                           warm_basis=pin_warm_basis)
    except BudgetExhausted as exc:
        if exc.diagnostics is None:
            exc.diagnostics = diag
        raise
    if check:
        # Imported here: repro.check is a layer above the flows.
        from repro.check.rules import check_result
        check_result(result).raise_if_violations()
    return result


def _dispatch(graph: Cdfg, partitioning: Partitioning,
              timing: DesignTiming, initiation_rate: int,
              options: SynthesisOptions,
              token: Optional[BudgetToken],
              diag: Diagnostics,
              warm_basis=None) -> SynthesisResult:
    chosen = options.flow
    auto = chosen == "auto"
    if auto:
        if is_simple_partitioning(graph) \
                and not partitioning.any_bidirectional():
            chosen = "simple"
        else:
            chosen = "connection-first"
        diag.record("dispatch", "selected", flow=chosen,
                    simple_partitioning=is_simple_partitioning(graph),
                    bidirectional=partitioning.any_bidirectional())

    if chosen == "simple":
        try:
            return _run_simple(graph, partitioning, timing,
                               initiation_rate, options,
                               token.child() if token else None, diag,
                               warm_basis=warm_basis)
        except BudgetExhausted as exc:
            # Auto-dispatch may retreat to the general flow (and its
            # own fallback chain); an explicit flow="simple" must not.
            if not auto:
                raise
            diag.record_exhaustion(exc)
            diag.record_fallback("flow", frm="simple",
                                 to="connection-first")
    if chosen == "schedule-first":
        pipe = options.pipe_length or _default_pipe_length(
            graph, timing, initiation_rate)
        return _run_schedule_first(graph, partitioning, timing,
                                   initiation_rate, pipe, options,
                                   token, diag)

    # connection-first, with the graceful-degradation chain when a
    # budget is in force (without one, BudgetExhausted cannot occur).
    def child() -> Optional[BudgetToken]:
        return token.child() if token is not None else None

    try:
        return _run_connection_first(graph, partitioning, timing,
                                     initiation_rate, options, child(),
                                     diag)
    except BudgetExhausted as exc:
        diag.record_exhaustion(exc)
        if options.branching_factor > 1:
            diag.record_fallback(
                "flow",
                frm=f"connection-first(b={options.branching_factor})",
                to="connection-first(greedy)")
            greedy = replace(options, branching_factor=1)
            try:
                return _run_connection_first(graph, partitioning, timing,
                                             initiation_rate, greedy,
                                             child(), diag)
            except BudgetExhausted as exc2:
                diag.record_exhaustion(exc2)
    diag.record_fallback("flow", frm="connection-first",
                         to="schedule-first")
    pipe = options.pipe_length or _default_pipe_length(
        graph, timing, initiation_rate)
    result = _run_schedule_first(graph, partitioning, timing,
                                 initiation_rate, pipe, options,
                                 child(), diag)
    # A degraded answer must verify exactly like a full-effort one —
    # including pin budgets, which the standalone schedule-first flow
    # merely reports on.
    return result.require_valid()
