"""End-to-end synthesis flows and the :func:`synthesize` front door.

* :func:`synthesize` — the single entry point: dispatches on the
  partitioning (``flow="auto"``) to the right chapter flow, threads an
  optional :class:`repro.robustness.budget.SolveBudget` through every
  solver, and degrades gracefully when the budget runs out.
* :func:`synthesize_simple` — Chapter 3: list scheduling with the ILP
  pin-allocation feasibility checker, then the constructive Theorem 3.1
  interchip connection.
* :func:`synthesize_connection_first` — Chapter 4 (and 6 with
  ``subbus_sharing=True``): heuristic connection synthesis, then list
  scheduling with dynamic bus reassignment.
* :func:`synthesize_schedule_first` — Chapter 5: force-directed
  scheduling, then connection synthesis by clique partitioning.

Every flow is a declarative pass list in the pass-pipeline registry
(:mod:`repro.pipeline.registry`): this module owns the options/result
types and the dispatch/degradation policy, while the flow *bodies*
live as passes in :mod:`repro.pipeline.passes` running over a typed
:class:`repro.pipeline.context.FlowContext`.  Scheduler backends
(``list``, ``heap``, ``postpone``, ``modulo``, ``fds``) are registry
entries too — :func:`repro.pipeline.register_scheduler` plugs new ones
into the flows, the CLI, the explorer, and the differential oracle.

Every flow returns a :class:`SynthesisResult` whose :meth:`verify`
re-checks all invariants end to end — precedence, chaining, recursion,
functional units, pin budgets, and bus conflict freedom.  Budgeted runs
additionally carry a :class:`repro.robustness.diagnostics.Diagnostics`
trail recording dispatch decisions, budget exhaustions, and fallbacks,
so a degraded answer is auditable.

The graceful-degradation lattice (see DESIGN.md §8):

* connection-first search exhausts its budget → retry with a greedy
  ``branching_factor=1`` pass (fresh iteration counters, same wall
  clock) → fall back to the schedule-first flow;
* the Gomory cutting planes stall → the pin checker latches onto exact
  branch & bound → onto the conservative LP-relaxation bound (inside
  :class:`repro.core.pin_allocation.PinAllocationChecker`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional

from repro.cdfg.graph import Cdfg
from repro.core.interconnect import (BusAssignment, Interconnect,
                                     verify_bus_allocation)
from repro.core.simple_connection import (SimpleConnectionResult,
                                          verify_simple_allocation)
from repro.errors import ReproError, SchedulingError
from repro.modules.allocation import ResourceVector
from repro.modules.library import DesignTiming
from repro.partition.model import Partitioning
from repro.partition.simple import is_simple_partitioning
from repro.pipeline.context import (STAT_COUNTERS as _STAT_COUNTERS,
                                    normalized_stats as
                                    _normalized_stats)
from repro.obs import TRACER
from repro.robustness.budget import (BudgetExhausted, BudgetToken,
                                     as_token)
from repro.robustness.diagnostics import Diagnostics
from repro.scheduling.base import Schedule

#: Flow names accepted by :func:`synthesize`.
FLOWS = ("auto", "simple", "connection-first", "schedule-first")


@dataclass(frozen=True)
class SynthesisOptions:
    """Frozen bag of every per-flow tuning knob.

    One options type replaces the per-flow kwargs that had drifted
    apart; each flow reads the fields it understands and ignores the
    rest (the CLI sets them all uniformly).  Defaults match the
    historical per-flow defaults exactly.
    """

    flow: str = "auto"
    resources: Optional[ResourceVector] = None
    pin_method: str = "gomory"              # simple flow
    branching_factor: int = 2               # connection-first
    reassignment: bool = True               # connection-first
    subbus_sharing: bool = False            # connection-first (Ch 6)
    share_groups: Optional[Mapping[str, str]] = None
    slot_reserve: int = 0                   # connection-first
    conditional_sharing: bool = False       # connection-first (Sec 7.2)
    scheduler: str = "list"                 # connection-first
    pipe_length: Optional[int] = None       # schedule-first
    bidirectional: Optional[bool] = None    # schedule-first

    def __post_init__(self) -> None:
        if self.flow not in FLOWS:
            raise ReproError(
                f"unknown flow {self.flow!r}; expected one of {FLOWS}")

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Plain-data form (resources excluded — they are keyed by
        tuples and travel separately as ``{"chip:op": n}``).

        Used by the design-space explorer to ship options across
        process boundaries and to build canonical cache keys.
        """
        return {
            "flow": self.flow,
            "pin_method": self.pin_method,
            "branching_factor": self.branching_factor,
            "reassignment": self.reassignment,
            "subbus_sharing": self.subbus_sharing,
            "share_groups": (None if self.share_groups is None
                             else dict(self.share_groups)),
            "slot_reserve": self.slot_reserve,
            "conditional_sharing": self.conditional_sharing,
            "scheduler": self.scheduler,
            "pipe_length": self.pipe_length,
            "bidirectional": self.bidirectional,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object],
                  resources: Optional[ResourceVector] = None
                  ) -> "SynthesisOptions":
        """Rebuild options from :meth:`to_dict` data (tolerant of
        missing keys, so older archives keep loading)."""
        known = {f for f in cls.__dataclass_fields__ if f != "resources"}
        kwargs = {k: v for k, v in dict(data).items() if k in known}
        return cls(resources=resources, **kwargs)


@dataclass
class SynthesisResult:
    """Everything a multi-chip synthesis run produces."""

    graph: Cdfg
    partitioning: Partitioning
    initiation_rate: int
    schedule: Schedule
    resources: ResourceVector
    interconnect: Optional[Interconnect] = None
    assignment: Optional[BusAssignment] = None
    simple_allocation: Optional[SimpleConnectionResult] = None
    stats: Dict[str, float] = field(default_factory=dict)
    diagnostics: Diagnostics = field(default_factory=Diagnostics)
    #: Warm-start handle for structurally-identical re-solves: the pin
    #: checker's exported :class:`repro.ilp.WarmBasis` (simple flow
    #: only; None elsewhere).  Deliberately not serialized with the
    #: result — it travels between neighboring solves, not to archives.
    warm_basis: Optional[object] = None

    # ------------------------------------------------------------------
    @property
    def pipe_length(self) -> int:
        return self.schedule.pipe_length

    @property
    def degraded(self) -> bool:
        """True when any phase fell back to a cheaper strategy."""
        return self.diagnostics.degraded

    def pins_used(self) -> Dict[int, int]:
        if self.interconnect is not None:
            return self.interconnect.pin_report(self.partitioning.indices())
        if self.simple_allocation is not None:
            return {p: self.simple_allocation.pins_used(p)
                    for p in self.partitioning.indices()}
        return {p: 0 for p in self.partitioning.indices()}

    def verify(self) -> List[str]:
        problems = self.schedule.verify(self.resources)
        if self.interconnect is not None:
            problems.extend(self.interconnect.check_budget(
                self.partitioning))
            if self.assignment is not None:
                problems.extend(verify_bus_allocation(
                    self.graph, self.interconnect, self.assignment,
                    self.schedule.start_step, self.initiation_rate))
        if self.simple_allocation is not None:
            problems.extend(verify_simple_allocation(
                self.graph, self.schedule, self.simple_allocation))
            problems.extend(
                self.simple_allocation.interconnect.check_budget(
                    self.partitioning))
        return problems

    def require_valid(self) -> "SynthesisResult":
        problems = self.verify()
        if problems:
            raise SchedulingError(
                "synthesis result failed verification:\n  "
                + "\n  ".join(problems))
        return self


def _default_pipe_length(graph: Cdfg, timing: DesignTiming,
                         initiation_rate: int) -> int:
    """Pipe budget for schedule-first runs that did not specify one.

    The critical path is the floor; the ``2 L`` margin gives FDS slack
    to balance concurrency (the same headroom the Section 7.2 heuristic
    grants itself).
    """
    from repro.cdfg.analysis import critical_path_length
    return critical_path_length(graph, timing) + 2 * initiation_rate


# ---------------------------------------------------------------------
def _run_flow(flow: str, graph: Cdfg, partitioning: Partitioning,
              timing: DesignTiming, initiation_rate: int,
              opts: SynthesisOptions,
              token: Optional[BudgetToken],
              diag: Diagnostics, *,
              warm_basis=None,
              check: bool = False,
              strict_verify: bool = False,
              pipe_length: Optional[int] = None) -> SynthesisResult:
    """Run one registered flow's pass list (see
    :mod:`repro.pipeline.registry`) over a fresh context."""
    # Imported here, not at module top: the registry's pass modules
    # import the solver layers this module sits below.
    from repro.pipeline.context import FlowContext
    from repro.pipeline.registry import run_flow
    ctx = FlowContext(graph=graph, partitioning=partitioning,
                      timing=timing, initiation_rate=initiation_rate,
                      options=opts, token=token, diag=diag,
                      warm_basis=warm_basis, check=check,
                      strict_verify=strict_verify,
                      pipe_length=pipe_length)
    return run_flow(flow, ctx)


# ---------------------------------------------------------------------
# Public per-chapter entry points: thin wrappers over the flow bodies,
# signature- and default-compatible with the historical functions.
def synthesize_simple(graph: Cdfg,
                      partitioning: Partitioning,
                      timing: DesignTiming,
                      initiation_rate: int,
                      resources: Optional[ResourceVector] = None,
                      pin_method: str = "gomory",
                      budget=None, warm_basis=None) -> SynthesisResult:
    """Chapter 3 flow for designs with a simple partitioning."""
    opts = SynthesisOptions(flow="simple", resources=resources,
                            pin_method=pin_method)
    return _run_flow("simple", graph, partitioning, timing,
                     initiation_rate, opts, as_token(budget),
                     Diagnostics(), warm_basis=warm_basis)


def synthesize_connection_first(graph: Cdfg,
                                partitioning: Partitioning,
                                timing: DesignTiming,
                                initiation_rate: int,
                                resources: Optional[ResourceVector] = None,
                                branching_factor: int = 2,
                                reassignment: bool = True,
                                subbus_sharing: bool = False,
                                share_groups: Optional[
                                    Mapping[str, str]] = None,
                                slot_reserve: int = 0,
                                conditional_sharing: bool = False,
                                scheduler: str = "list",
                                budget=None,
                                ) -> SynthesisResult:
    """Chapter 4 flow (Chapter 6 with ``subbus_sharing=True``).

    ``slot_reserve`` holds back communication slots per bus during
    connection synthesis (more buses, higher bandwidth — the
    Objective-4.6 lever), useful on latency-critical recursive designs.
    ``conditional_sharing=True`` runs the Section 7.2 heuristic first:
    mutually exclusive guarded transfers are grouped and enter the
    connection search as shared values.
    """
    opts = SynthesisOptions(flow="connection-first",
                            resources=resources,
                            branching_factor=branching_factor,
                            reassignment=reassignment,
                            subbus_sharing=subbus_sharing,
                            share_groups=share_groups,
                            slot_reserve=slot_reserve,
                            conditional_sharing=conditional_sharing,
                            scheduler=scheduler)
    return _run_flow("connection-first", graph, partitioning, timing,
                     initiation_rate, opts, as_token(budget),
                     Diagnostics())


def synthesize_schedule_first(graph: Cdfg,
                              partitioning: Partitioning,
                              timing: DesignTiming,
                              initiation_rate: int,
                              pipe_length: int,
                              bidirectional: Optional[bool] = None,
                              budget=None,
                              ) -> SynthesisResult:
    """Chapter 5 flow: FDS then clique-partitioning connection."""
    opts = SynthesisOptions(flow="schedule-first",
                            pipe_length=pipe_length,
                            bidirectional=bidirectional)
    return _run_flow("schedule-first", graph, partitioning, timing,
                     initiation_rate, opts, as_token(budget),
                     Diagnostics(), pipe_length=pipe_length)


# ---------------------------------------------------------------------
def synthesize(graph: Cdfg,
               partitioning: Partitioning,
               timing: DesignTiming,
               initiation_rate: int,
               *,
               flow: str = "auto",
               budget=None,
               check: bool = False,
               pin_warm_basis=None,
               **opts) -> SynthesisResult:
    """The front door: dispatch, budget, and graceful degradation.

    ``flow="auto"`` picks the Chapter 3 flow for simple partitionings
    with unidirectional pins and the Chapter 4 flow otherwise; the
    remaining keyword arguments are :class:`SynthesisOptions` fields.

    ``pin_warm_basis`` hands the simple flow's pin checker a
    :class:`repro.ilp.WarmBasis` exported by a structurally identical
    earlier solve (``result.warm_basis``); the solver warm-starts from
    it when compatible and silently cold-starts otherwise, so verdicts
    are unchanged.  Other flows ignore it.

    ``check=True`` additionally runs the unified design-rule checker
    (:func:`repro.check.check_result`) over the finished result and
    raises :class:`repro.check.CheckError` on any violation — stricter
    than the flows' built-in ``require_valid()``, which the unified
    rules subsume.

    With a :class:`repro.robustness.budget.SolveBudget`, every solver
    in the chosen flow cooperates with the deadline/caps, and the
    connection-first flow degrades gracefully instead of failing:
    budget-starved search retries greedily (``branching_factor=1``),
    then falls back to the schedule-first flow.  Each fallback rung
    restarts the iteration counters but shares the original wall clock,
    and every transition is recorded on ``result.diagnostics``.
    Degraded results are verified by ``require_valid()`` exactly like
    full-effort ones; when no rung fits the budget, the final
    :class:`BudgetExhausted` carries the diagnostics trail.
    """
    options = SynthesisOptions(flow=flow, **opts)
    token = as_token(budget)
    diag = Diagnostics()
    with TRACER.span("synthesize", layer="pipeline", flow=flow,
                     rate=initiation_rate) as sp:
        diag.bind_span(sp)
        try:
            return _dispatch(graph, partitioning, timing,
                             initiation_rate, options, token, diag,
                             warm_basis=pin_warm_basis, check=check)
        except BudgetExhausted as exc:
            if exc.diagnostics is None:
                exc.diagnostics = diag
            raise


def _dispatch(graph: Cdfg, partitioning: Partitioning,
              timing: DesignTiming, initiation_rate: int,
              options: SynthesisOptions,
              token: Optional[BudgetToken],
              diag: Diagnostics,
              warm_basis=None,
              check: bool = False) -> SynthesisResult:
    chosen = options.flow
    auto = chosen == "auto"
    if auto:
        if is_simple_partitioning(graph) \
                and not partitioning.any_bidirectional():
            chosen = "simple"
        else:
            chosen = "connection-first"
        diag.record("dispatch", "selected", flow=chosen,
                    simple_partitioning=is_simple_partitioning(graph),
                    bidirectional=partitioning.any_bidirectional())

    if chosen == "simple":
        try:
            return _run_flow("simple", graph, partitioning, timing,
                             initiation_rate, options,
                             token.child() if token else None, diag,
                             warm_basis=warm_basis, check=check)
        except BudgetExhausted as exc:
            # Auto-dispatch may retreat to the general flow (and its
            # own fallback chain); an explicit flow="simple" must not.
            if not auto:
                raise
            diag.record_exhaustion(exc)
            diag.record_fallback("flow", frm="simple",
                                 to="connection-first")
    if chosen == "schedule-first":
        return _run_flow("schedule-first", graph, partitioning,
                         timing, initiation_rate, options, token,
                         diag, check=check)

    # connection-first, with the graceful-degradation chain when a
    # budget is in force (without one, BudgetExhausted cannot occur).
    def child() -> Optional[BudgetToken]:
        return token.child() if token is not None else None

    try:
        return _run_flow("connection-first", graph, partitioning,
                         timing, initiation_rate, options, child(),
                         diag, check=check)
    except BudgetExhausted as exc:
        diag.record_exhaustion(exc)
        if options.branching_factor > 1:
            diag.record_fallback(
                "flow",
                frm=f"connection-first(b={options.branching_factor})",
                to="connection-first(greedy)")
            greedy = replace(options, branching_factor=1)
            try:
                return _run_flow("connection-first", graph,
                                 partitioning, timing,
                                 initiation_rate, greedy, child(),
                                 diag, check=check)
            except BudgetExhausted as exc2:
                diag.record_exhaustion(exc2)
    diag.record_fallback("flow", frm="connection-first",
                         to="schedule-first")
    # A degraded answer must verify exactly like a full-effort one —
    # including pin budgets, which the standalone schedule-first flow
    # merely reports on (strict_verify).
    return _run_flow("schedule-first", graph, partitioning, timing,
                     initiation_rate, options, child(), diag,
                     check=check, strict_verify=True)
