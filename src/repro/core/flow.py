"""End-to-end synthesis flows.

* :func:`synthesize_simple` — Chapter 3: list scheduling with the ILP
  pin-allocation feasibility checker, then the constructive Theorem 3.1
  interchip connection.
* :func:`synthesize_connection_first` — Chapter 4 (and 6 with
  ``subbus_sharing=True``): heuristic connection synthesis, then list
  scheduling with dynamic bus reassignment.
* :func:`synthesize_schedule_first` — Chapter 5: force-directed
  scheduling, then connection synthesis by clique partitioning.

Every flow returns a :class:`SynthesisResult` whose :meth:`verify`
re-checks all invariants end to end — precedence, chaining, recursion,
functional units, pin budgets, and bus conflict freedom.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.cdfg.graph import Cdfg
from repro.cdfg.validate import validate_cdfg
from repro.core.bus_assignment import BusAllocator
from repro.core.connection_search import ConnectionSearch
from repro.core.interconnect import (BusAssignment, Interconnect,
                                     verify_bus_allocation)
from repro.core.pin_allocation import PinAllocationChecker
from repro.core.post_sched import PostScheduleConnector
from repro.core.simple_connection import (SimpleConnectionResult,
                                          build_simple_connection,
                                          verify_simple_allocation)
from repro.core.subbus import SubBusConnectionSearch
from repro.errors import ConnectionError_, SchedulingError
from repro.modules.allocation import ResourceVector, min_module_counts
from repro.modules.library import DesignTiming
from repro.partition.model import Partitioning
from repro.partition.simple import is_simple_partitioning
from repro.perf import PERF
from repro.scheduling.base import Schedule, measured_resources
from repro.scheduling.fds import ForceDirectedScheduler
from repro.scheduling.list_scheduler import ListScheduler


@dataclass
class SynthesisResult:
    """Everything a multi-chip synthesis run produces."""

    graph: Cdfg
    partitioning: Partitioning
    initiation_rate: int
    schedule: Schedule
    resources: ResourceVector
    interconnect: Optional[Interconnect] = None
    assignment: Optional[BusAssignment] = None
    simple_allocation: Optional[SimpleConnectionResult] = None
    stats: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def pipe_length(self) -> int:
        return self.schedule.pipe_length

    def pins_used(self) -> Dict[int, int]:
        if self.interconnect is not None:
            return self.interconnect.pin_report(self.partitioning.indices())
        if self.simple_allocation is not None:
            return {p: self.simple_allocation.pins_used(p)
                    for p in self.partitioning.indices()}
        return {p: 0 for p in self.partitioning.indices()}

    def verify(self) -> List[str]:
        problems = self.schedule.verify(self.resources)
        if self.interconnect is not None:
            problems.extend(self.interconnect.check_budget(
                self.partitioning))
            if self.assignment is not None:
                problems.extend(verify_bus_allocation(
                    self.graph, self.interconnect, self.assignment,
                    self.schedule.start_step, self.initiation_rate))
        if self.simple_allocation is not None:
            problems.extend(verify_simple_allocation(
                self.graph, self.schedule, self.simple_allocation))
            problems.extend(
                self.simple_allocation.interconnect.check_budget(
                    self.partitioning))
        return problems

    def require_valid(self) -> "SynthesisResult":
        problems = self.verify()
        if problems:
            raise SchedulingError(
                "synthesis result failed verification:\n  "
                + "\n  ".join(problems))
        return self


# ---------------------------------------------------------------------
def synthesize_simple(graph: Cdfg,
                      partitioning: Partitioning,
                      timing: DesignTiming,
                      initiation_rate: int,
                      resources: Optional[ResourceVector] = None,
                      pin_method: str = "gomory") -> SynthesisResult:
    """Chapter 3 flow for designs with a simple partitioning."""
    validate_cdfg(graph, require_partitions=False)
    if not is_simple_partitioning(graph):
        raise ConnectionError_(
            "synthesize_simple requires a simple partitioning "
            "(Definition 3.2); use synthesize_connection_first instead")
    if resources is None:
        resources = min_module_counts(graph, timing, initiation_rate)
    before = PERF.snapshot()
    with PERF.phase("flow.simple"):
        checker = PinAllocationChecker(graph, partitioning,
                                       initiation_rate, method=pin_method)
        scheduler = ListScheduler(graph, timing, initiation_rate,
                                  resources, io_hooks=checker)
        schedule = scheduler.run()
        allocation = build_simple_connection(graph, schedule)
    counters = PERF.delta_since(before)["counters"]
    result = SynthesisResult(
        graph=graph,
        partitioning=partitioning,
        initiation_rate=initiation_rate,
        schedule=schedule,
        resources=resources,
        simple_allocation=allocation,
        stats={
            "pin_checks": checker.checks,
            "pin_cache_hits": checker.cache_hits,
            "tableau_pivots": counters.get("tableau.pivots", 0),
            "gomory_cuts": counters.get("gomory.cuts", 0),
        },
    )
    return result.require_valid()


def synthesize_connection_first(graph: Cdfg,
                                partitioning: Partitioning,
                                timing: DesignTiming,
                                initiation_rate: int,
                                resources: Optional[ResourceVector] = None,
                                branching_factor: int = 2,
                                reassignment: bool = True,
                                subbus_sharing: bool = False,
                                share_groups: Optional[
                                    Mapping[str, str]] = None,
                                slot_reserve: int = 0,
                                conditional_sharing: bool = False,
                                scheduler: str = "list",
                                ) -> SynthesisResult:
    """Chapter 4 flow (Chapter 6 with ``subbus_sharing=True``).

    ``slot_reserve`` holds back communication slots per bus during
    connection synthesis (more buses, higher bandwidth — the
    Objective-4.6 lever), useful on latency-critical recursive designs.
    ``conditional_sharing=True`` runs the Section 7.2 heuristic first:
    mutually exclusive guarded transfers are grouped and enter the
    connection search as shared values.
    """
    validate_cdfg(graph, require_partitions=False)
    if resources is None:
        resources = min_module_counts(graph, timing, initiation_rate)
    if conditional_sharing:
        if share_groups is not None:
            raise ConnectionError_(
                "give either explicit share_groups or "
                "conditional_sharing=True, not both")
        from repro.cdfg.analysis import critical_path_length
        from repro.core.conditional import share_conditionally
        pipe_budget = critical_path_length(graph, timing) \
            + 2 * initiation_rate
        sharing = share_conditionally(graph, timing, pipe_budget,
                                      initiation_rate=initiation_rate)
        share_groups = sharing.share_groups()
    if scheduler not in ("list", "postpone"):
        raise SchedulingError(f"unknown scheduler {scheduler!r}")
    with PERF.phase("flow.connection_first"):
        search_cls = SubBusConnectionSearch if subbus_sharing \
            else ConnectionSearch
        search = search_cls(graph, partitioning, initiation_rate,
                            branching_factor=branching_factor,
                            share_groups=share_groups,
                            slot_reserve=slot_reserve)
        interconnect, initial = search.run()
        if scheduler == "postpone":
            from repro.scheduling.postpone import \
                schedule_with_postponement

            last_allocator = []

            def hooks_factory():
                allocator = BusAllocator(graph, interconnect,
                                         initial.copy(), initiation_rate,
                                         reassignment=reassignment)
                last_allocator.append(allocator)
                return allocator

            schedule = schedule_with_postponement(
                graph, timing, initiation_rate, resources,
                hooks_factory=hooks_factory)
            allocator = last_allocator[-1]
        else:
            allocator = BusAllocator(graph, interconnect, initial,
                                     initiation_rate,
                                     reassignment=reassignment)
            schedule = ListScheduler(graph, timing, initiation_rate,
                                     resources, io_hooks=allocator).run()
    result = SynthesisResult(
        graph=graph,
        partitioning=partitioning,
        initiation_rate=initiation_rate,
        schedule=schedule,
        resources=resources,
        interconnect=interconnect,
        assignment=allocator.final_assignment(),
        stats={
            "search_steps": search.steps,
            "reassignments": allocator.reassignments,
            "initial_assignment": initial,
        },
    )
    return result.require_valid()


def synthesize_schedule_first(graph: Cdfg,
                              partitioning: Partitioning,
                              timing: DesignTiming,
                              initiation_rate: int,
                              pipe_length: int,
                              bidirectional: Optional[bool] = None,
                              ) -> SynthesisResult:
    """Chapter 5 flow: FDS then clique-partitioning connection."""
    validate_cdfg(graph, require_partitions=False)
    if bidirectional is None:
        bidirectional = partitioning.any_bidirectional()
    with PERF.phase("flow.schedule_first"):
        scheduler = ForceDirectedScheduler(graph, timing,
                                           initiation_rate, pipe_length)
        schedule = scheduler.run()
        connector = PostScheduleConnector(graph, schedule,
                                          partitioning=None,
                                          bidirectional=bidirectional)
        interconnect, assignment = connector.run()
    resources = measured_resources(schedule)
    result = SynthesisResult(
        graph=graph,
        partitioning=partitioning,
        initiation_rate=initiation_rate,
        schedule=schedule,
        resources=resources,
        interconnect=interconnect,
        assignment=assignment,
    )
    problems = result.verify()
    # The Chapter 5 flow minimizes pins rather than respecting a fixed
    # budget; report overruns through stats instead of failing.
    hard = [p for p in problems if "budget" not in p]
    if hard:
        raise SchedulingError(
            "schedule-first synthesis failed verification:\n  "
            + "\n  ".join(hard))
    result.stats["budget_overruns"] = [
        p for p in problems if "budget" in p]
    return result
