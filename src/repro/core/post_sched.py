"""Interchip connection synthesis *after* scheduling (Chapter 5).

Once every I/O operation has a control step, compatibility is fixed:
operations in different control-step groups can always share a bus;
operations in the same group share only when they move the same value in
the same step.  Minimizing pins becomes a max-gain clique partitioning
of the layered compatibility graph (Figure 5.1), which the dissertation
solves by merging the groups with successive Hungarian (max-weight
bipartite) matchings, largest group first (Figure 5.2).

Edge weights follow Section 5.2: two compatible transfers sharing their
source (destination) partition can share ``min(B_w1, B_w2)`` output
(input) pins, scaled by per-partition weighting factors ``wf_i``.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from repro.cdfg.graph import Cdfg, Node
from repro.core.interconnect import Bus, BusAssignment, Interconnect
from repro.errors import ConnectionError_
from repro.graphs.hungarian import hungarian_max_weight
from repro.partition.model import Partitioning
from repro.perf import PERF
from repro.scheduling.base import Schedule

Clique = Tuple[str, ...]  # sorted member op names


def pair_weight(w1: Node, w2: Node, bidirectional: bool,
                wf: Mapping[int, Fraction]) -> Fraction:
    """Pin-sharing benefit of putting two transfers on one bus."""
    shared = Fraction(min(w1.bit_width, w2.bit_width))
    total = Fraction(0)
    if bidirectional:
        parts1 = {w1.source_partition, w1.dest_partition}
        parts2 = {w2.source_partition, w2.dest_partition}
        for partition in parts1 & parts2:
            total += wf.get(partition, Fraction(1)) * shared
        return total
    if w1.source_partition == w2.source_partition:
        total += wf.get(w1.source_partition, Fraction(1)) * shared
    if w1.dest_partition == w2.dest_partition:
        total += wf.get(w1.dest_partition, Fraction(1)) * shared
    return total


class PostScheduleConnector:
    """Builds the interconnect for a finished schedule."""

    def __init__(self, graph: Cdfg, schedule: Schedule,
                 partitioning: Optional[Partitioning] = None,
                 bidirectional: bool = False,
                 weighting: Optional[Mapping[int, Fraction]] = None
                 ) -> None:
        self.graph = graph
        self.schedule = schedule
        self.partitioning = partitioning
        self.bidirectional = bidirectional
        self.wf = dict(weighting or {})
        self.L = schedule.initiation_rate

    # ------------------------------------------------------------------
    def run(self) -> Tuple[Interconnect, BusAssignment]:
        cliques = self.partition_cliques()
        PERF.inc("connect.cliques", len(cliques))
        interconnect = Interconnect(bidirectional=self.bidirectional)
        assignment = BusAssignment()
        for index, members in enumerate(cliques, start=1):
            bus = self._bus_for(index, members)
            interconnect.add_bus(bus)
            for op in members:
                assignment.assign(op, index)
        if self.partitioning is not None:
            problems = interconnect.check_budget(self.partitioning)
            if problems:
                raise ConnectionError_(
                    "post-schedule connection exceeds pin budgets:\n  "
                    + "\n  ".join(problems))
        return interconnect, assignment

    # ------------------------------------------------------------------
    def partition_cliques(self) -> List[Clique]:
        """The successive-matching clique partitioning of Figure 5.2."""
        groups = self._grouped_supernodes()
        if not groups:
            return []
        groups.sort(key=lambda g: (-len(g), g))
        pool: List[Clique] = list(groups[0])
        for other in groups[1:]:
            matching = hungarian_max_weight(
                pool, list(other), self._clique_weight)
            merged: List[Clique] = []
            taken = set()
            for left in pool:
                right = matching.get(left)
                if right is None:
                    merged.append(left)
                else:
                    taken.add(right)
                    merged.append(tuple(sorted(left + right)))
            for right in other:
                if right not in taken:
                    merged.append(right)
            pool = merged
        return sorted(pool)

    def _grouped_supernodes(self) -> List[List[Clique]]:
        """Per control-step group, subgroup ops by (value, step).

        Ops transferring the same value in the same step form one
        supernode — they can share a communication slot (Section 5.2).
        """
        per_group: Dict[int, Dict[Tuple[str, int], List[str]]] = {}
        for node in self.graph.io_nodes():
            if not self.schedule.is_scheduled(node.name):
                raise ConnectionError_(
                    f"I/O op {node.name!r} is unscheduled; Chapter 5 "
                    f"synthesis needs a complete schedule")
            step = self.schedule.step(node.name)
            group = step % self.L
            key = (node.value or node.name, step)
            per_group.setdefault(group, {}).setdefault(key, []).append(
                node.name)
        out: List[List[Clique]] = []
        for group in sorted(per_group):
            subgroups = [tuple(sorted(members))
                         for members in per_group[group].values()]
            out.append(sorted(subgroups))
        return out

    def _clique_weight(self, a: Clique, b: Clique) -> Fraction:
        total = Fraction(0)
        for op1 in a:
            n1 = self.graph.node(op1)
            for op2 in b:
                total += pair_weight(n1, self.graph.node(op2),
                                     self.bidirectional, self.wf)
        return total

    # ------------------------------------------------------------------
    def _bus_for(self, index: int, members: Clique) -> Bus:
        bus = Bus(index)
        for op in members:
            node = self.graph.node(op)
            width = node.bit_width
            if self.bidirectional:
                for partition in (node.source_partition,
                                  node.dest_partition):
                    bus.bi_widths[partition] = max(
                        bus.bi_widths.get(partition, 0), width)
            else:
                bus.out_widths[node.source_partition] = max(
                    bus.out_widths.get(node.source_partition, 0), width)
                bus.in_widths[node.dest_partition] = max(
                    bus.in_widths.get(node.dest_partition, 0), width)
        return bus


def connect_after_scheduling(graph: Cdfg, schedule: Schedule,
                             partitioning: Optional[Partitioning] = None,
                             bidirectional: bool = False
                             ) -> Tuple[Interconnect, BusAssignment]:
    """Convenience wrapper around :class:`PostScheduleConnector`."""
    return PostScheduleConnector(graph, schedule, partitioning,
                                 bidirectional).run()
