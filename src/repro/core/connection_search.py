"""Heuristic interchip-connection synthesis before scheduling (Fig 4.3).

A branch-limited depth-first search assigns I/O operations (widest
first) to communication buses.  At each level only the few buses with
the best *gain* are explored:

    ``g = 10000*g1 + 100*g2 + g3``

* ``g1`` rewards reusing an existing communication path, weighted by
  how pin-starved the touched partitions are
  (``wf_i = unassigned I/O bits of P_i / unallocated pins of P_i``);
* ``g2`` rewards putting transfers of the same value on one bus (they
  then consume a single communication slot);
* ``g3`` balances utilization (free slots on the bus).

Buses with identical topology (same connected partitions) are explored
only once per level.  The branching factor trades run time against the
chance of finding a solution; the worst case stays exponential
(Section 4.1.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.cdfg.graph import Cdfg, Node
from repro.core.bus_bounds import max_buses_pipelined
from repro.core.interconnect import Bus, BusAssignment, Interconnect
from repro.errors import ConnectionError_
from repro.partition.model import Partitioning
from repro.perf import PERF
from repro.pipeline.resource_table import PinLedger
from repro.robustness.budget import as_token

#: Priority weights of the gain factors (values from Section 4.1.2,
#: "chosen arbitrarily" to order g1 > g2 > g3).
G1_WEIGHT = 10_000.0
G2_WEIGHT = 100.0


class _BusState:
    """Mutable bus under construction."""

    __slots__ = ("index", "out_w", "in_w", "bi_w", "values", "ops")

    def __init__(self, index: int) -> None:
        self.index = index
        self.out_w: Dict[int, int] = {}
        self.in_w: Dict[int, int] = {}
        self.bi_w: Dict[int, int] = {}
        self.values: Set[str] = set()
        self.ops: List[str] = []

    def topology(self) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        if self.bi_w:
            parts = tuple(sorted(self.bi_w))
            return parts, parts
        return tuple(sorted(self.out_w)), tuple(sorted(self.in_w))


class ConnectionSearch:
    """One-shot search; construct then call :meth:`run`."""

    def __init__(self,
                 graph: Cdfg,
                 partitioning: Partitioning,
                 initiation_rate: int,
                 branching_factor: int = 2,
                 max_buses: Optional[int] = None,
                 share_groups: Optional[Mapping[str, str]] = None,
                 weighting: Optional[Mapping[int, float]] = None,
                 slot_reserve: int = 0,
                 step_limit: int = 300_000,
                 budget=None) -> None:
        self.graph = graph
        self.partitioning = partitioning
        self.L = initiation_rate
        #: Values a bus may carry during search.  The physical capacity
        #: is L (Constraint 4.5); reserving slots implements the
        #: Objective-4.6 push toward more buses / higher bandwidth,
        #: which loosens scheduling on latency-critical designs.
        self.capacity = max(1, initiation_rate - slot_reserve)
        self.branching = max(1, branching_factor)
        self.bidirectional = partitioning.any_bidirectional()
        self.R = max_buses if max_buses is not None else \
            max_buses_pipelined(graph, partitioning, initiation_rate)
        self.share_groups = dict(share_groups or {})
        self.weighting = dict(weighting or {})
        self.steps = 0
        self.step_limit = step_limit
        #: Cooperative cancellation token, ticked once per DFS step.
        self.budget = as_token(budget)

        self._ops = sorted(graph.io_nodes(),
                           key=lambda n: (-n.bit_width, n.name))
        self._buses: List[_BusState] = []
        #: Booked pins per chip — the unified direction-split ledger
        #: (honours fixed input/output splits) shared with the rest of
        #: the pipeline's pin accounting.
        self.pins = PinLedger(partitioning)
        self._unassigned_bits: Dict[int, int] = {
            index: 0 for index in partitioning.indices()}
        for node in self._ops:
            self._unassigned_bits[node.source_partition] += node.bit_width
            self._unassigned_bits[node.dest_partition] += node.bit_width

    # ------------------------------------------------------------------
    # The historical attribute names, kept as views of the ledger (the
    # gain tests poke them directly).
    @property
    def _pins_used(self) -> Dict[int, int]:
        return self.pins.used

    @property
    def _pins_out(self) -> Dict[int, int]:
        return self.pins.out_used

    @property
    def _pins_in(self) -> Dict[int, int]:
        return self.pins.in_used

    # ------------------------------------------------------------------
    def value_key(self, node: Node) -> str:
        return self.share_groups.get(node.name, node.value or node.name)

    def _wf(self, partition: int) -> float:
        free = self.pins.free_pins(partition)
        bits = self._unassigned_bits[partition]
        base = bits / free if free > 0 else bits * 1e6 + 1.0
        return base * self.weighting.get(partition, 1.0)

    # ------------------------------------------------------------------
    def run(self) -> Tuple[Interconnect, BusAssignment]:
        assignment: Dict[str, Tuple[int, int]] = {}
        if not self._assign(0, assignment):
            raise ConnectionError_(
                f"no interchip connection found with branching factor "
                f"{self.branching} and at most {self.R} buses")
        interconnect = Interconnect(bidirectional=self.bidirectional)
        index_map: Dict[int, int] = {}
        for state in self._buses:
            if not state.ops:
                continue
            new_index = len(interconnect.buses) + 1
            index_map[state.index] = new_index
            interconnect.add_bus(self._finish_bus(new_index, state))
        result = BusAssignment()
        for op, (bus_index, segment) in assignment.items():
            result.assign(op, index_map[bus_index], segment)
        return interconnect, result

    def _finish_bus(self, index: int, state: _BusState) -> Bus:
        return Bus(
            index,
            out_widths=dict(state.out_w),
            in_widths=dict(state.in_w),
            bi_widths=dict(state.bi_w),
        )

    # ------------------------------------------------------------------
    def _assign(self, position: int,
                assignment: Dict[str, Tuple[int, int]]) -> bool:
        if position == len(self._ops):
            return True
        node = self._ops[position]
        for candidate in self._candidates(node):
            self.steps += 1
            PERF.inc("search.steps")
            if self.budget is not None:
                self.budget.note_incumbent(
                    solver="connection_search",
                    ops_assigned=position, ops_total=len(self._ops),
                    buses_open=len(self._buses))
                self.budget.tick("connection_search")
            if self.steps > self.step_limit:
                raise ConnectionError_(
                    f"connection search exceeded {self.step_limit} "
                    f"steps; raise step_limit or loosen the pin "
                    f"budgets / branching factor")
            undo = self._apply(node, candidate)
            assignment[node.name] = self._position_of(candidate)
            if self._assign(position + 1, assignment):
                return True
            del assignment[node.name]
            self._undo(node, candidate, undo)
        return False

    def _position_of(self, candidate) -> Tuple[int, int]:
        """(bus index, starting segment) of a candidate placement."""
        return candidate.index, 0

    # ------------------------------------------------------------------
    def _slot_free(self, state: _BusState, node: Node) -> bool:
        if self.value_key(node) in state.values:
            return True
        return len(state.values) < self.capacity

    def _pin_delta(self, state: _BusState,
                   node: Node) -> Optional[Dict[int, Tuple[int, int]]]:
        """Extra (output, input) pins per partition, or None if over
        budget — including a chip's fixed input/output split."""
        width = node.bit_width
        src, dst = node.source_partition, node.dest_partition
        delta: Dict[int, Tuple[int, int]] = {}
        if self.bidirectional:
            # Bidirectional ports have no direction; book the extra
            # width on the "output" side of the pooled tracker.
            delta[src] = (max(0, width - state.bi_w.get(src, 0)), 0)
            prev = delta.get(dst, (0, 0))
            delta[dst] = (prev[0]
                          + max(0, width - state.bi_w.get(dst, 0)),
                          prev[1])
        else:
            delta[src] = (max(0, width - state.out_w.get(src, 0)), 0)
            prev = delta.get(dst, (0, 0))
            delta[dst] = (prev[0], prev[1] + max(
                0, width - state.in_w.get(dst, 0)))
        return delta if self._budget_ok(delta) else None

    def _budget_ok(self, delta: Mapping[int, Tuple[int, int]]) -> bool:
        """Whether the extra pins fit every touched chip's budget —
        the total pool, and the fixed split when one is declared
        (delegated to the unified :class:`PinLedger`)."""
        return self.pins.delta_fits(delta)

    def _gain(self, state: _BusState, node: Node) -> float:
        src, dst = node.source_partition, node.dest_partition
        if self.bidirectional:
            src_connected = state.bi_w.get(src, 0) > 0
            dst_connected = state.bi_w.get(dst, 0) > 0
        else:
            src_connected = state.out_w.get(src, 0) > 0
            dst_connected = state.in_w.get(dst, 0) > 0
        g1 = 0.0
        if src_connected:
            g1 += self._wf(src)
        if dst_connected:
            g1 += self._wf(dst)
        g2 = 1.0 if self.value_key(node) in state.values else 0.0
        g3 = float(self.capacity - len(state.values))
        return G1_WEIGHT * g1 + G2_WEIGHT * g2 + g3

    def _candidates(self, node: Node) -> List[_BusState]:
        scored: List[Tuple[float, int, _BusState]] = []
        seen_topologies: Dict[Tuple, float] = {}
        for state in self._buses:
            if not self._slot_free(state, node):
                continue
            if self._pin_delta(state, node) is None:
                continue
            gain = self._gain(state, node)
            topo = state.topology()
            # Same-topology dedup: explore only the best-gain instance.
            if topo in seen_topologies and seen_topologies[topo] >= gain:
                continue
            seen_topologies[topo] = gain
            scored.append((gain, -state.index, state))
        fresh: Optional[_BusState] = None
        if len(self._buses) < self.R:
            fresh = _BusState(len(self._buses) + 1)
            if self._pin_delta(fresh, node) is not None:
                scored.append((self._gain(fresh, node), -fresh.index, fresh))
            else:
                fresh = None
        scored.sort(key=lambda item: (-item[0], item[1]))
        picked = [state for _g, _i, state in scored[:self.branching]]
        # A fresh bus stays available as a fallback even when it did not
        # make the gain cut: dropping it loses completeness cheaply.
        if fresh is not None and fresh not in picked:
            picked.append(fresh)
        return picked

    # ------------------------------------------------------------------
    def _apply(self, node: Node, state: _BusState):
        is_new = state not in self._buses
        if is_new:
            self._buses.append(state)
        src, dst = node.source_partition, node.dest_partition
        width = node.bit_width
        record = {
            "new": is_new,
            "out": dict(state.out_w), "in": dict(state.in_w),
            "bi": dict(state.bi_w),
            "had_value": self.value_key(node) in state.values,
            "pins": self.pins.snapshot(),
        }
        delta = self._pin_delta(state, node)
        assert delta is not None
        self._book_pins(delta)
        if self.bidirectional:
            state.bi_w[src] = max(state.bi_w.get(src, 0), width)
            state.bi_w[dst] = max(state.bi_w.get(dst, 0), width)
        else:
            state.out_w[src] = max(state.out_w.get(src, 0), width)
            state.in_w[dst] = max(state.in_w.get(dst, 0), width)
        state.values.add(self.value_key(node))
        state.ops.append(node.name)
        self._unassigned_bits[src] -= width
        self._unassigned_bits[dst] -= width
        return record

    def _undo(self, node: Node, state: _BusState, record) -> None:
        src, dst = node.source_partition, node.dest_partition
        width = node.bit_width
        state.ops.pop()
        if not record["had_value"]:
            state.values.discard(self.value_key(node))
        state.out_w = record["out"]
        state.in_w = record["in"]
        state.bi_w = record["bi"]
        self.pins.restore(record["pins"])
        self._unassigned_bits[src] += width
        self._unassigned_bits[dst] += width
        if record["new"]:
            self._buses.pop()

    def _book_pins(self, delta: Mapping[int, Tuple[int, int]]) -> None:
        self.pins.book(delta)


def synthesize_connection(graph: Cdfg, partitioning: Partitioning,
                          initiation_rate: int,
                          branching_factor: int = 2,
                          share_groups: Optional[Mapping[str, str]] = None,
                          ) -> Tuple[Interconnect, BusAssignment]:
    """Convenience wrapper around :class:`ConnectionSearch`."""
    search = ConnectionSearch(graph, partitioning, initiation_rate,
                              branching_factor=branching_factor,
                              share_groups=share_groups)
    return search.run()
