"""Constructive interchip connection for simple partitionings (Thm 3.1).

Given a pin-feasible schedule of a *simple* partitioning, the proof of
Theorem 3.1 constructs a conflict-free connection from at most three
bundles per communication star (Figure 3.3):

* fan-out star ``f -> {a, b}``: dedicated bundles ``A`` (to ``a``) and
  ``B`` (to ``b``) plus, when ``M_a + M_b > O_f``, a shared bundle ``C``
  reaching both destinations through which multi-destination values and
  overflow bits travel;
* fan-in star ``{a, b} -> f``: the mirror image on ``f``'s input pins;
* plain pair: a single bundle sized to the peak per-group bit count.

The builder also produces the *bit-level* allocation (which value puts
how many bits on which bundle in each control-step group) and verifies
the no-conflict property, mirroring Figure 3.7.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.cdfg.graph import Cdfg, Node
from repro.core.interconnect import Bus, Interconnect
from repro.errors import ConnectionError_
from repro.partition.simple import driver_graph, is_simple_partitioning
from repro.scheduling.base import Schedule


@dataclass
class SimpleConnectionResult:
    """Connection bundles plus per-group bit-level allocation.

    ``allocation`` maps I/O op name -> list of (bus index, bit count);
    an operation's bits may straddle a dedicated bundle and the shared
    bundle ``C`` (the proof routes overflow bits through ``C``).
    """

    interconnect: Interconnect
    allocation: Dict[str, List[Tuple[int, int]]] = field(
        default_factory=dict)

    def pins_used(self, partition: int) -> int:
        return self.interconnect.pins_used(partition)


def build_simple_connection(graph: Cdfg,
                            schedule: Schedule) -> SimpleConnectionResult:
    """Apply the Theorem 3.1 construction to a finished schedule."""
    if not is_simple_partitioning(graph):
        raise ConnectionError_(
            "Theorem 3.1 requires a simple partitioning (Definition 3.2)")
    L = schedule.initiation_rate
    drives = driver_graph(graph)
    driven_by: Dict[int, Set[int]] = {p: set() for p in drives}
    for src, dsts in drives.items():
        for dst in dsts:
            driven_by.setdefault(dst, set()).add(src)

    interconnect = Interconnect(bidirectional=False)
    result = SimpleConnectionResult(interconnect)
    next_bus = [1]
    handled_edges: Set[Tuple[int, int]] = set()

    def io_entries(src: int, dst: int) -> Dict[int, List[Node]]:
        """Group -> I/O nodes for the (src, dst) partition pair."""
        per_group: Dict[int, List[Node]] = {}
        for node in graph.io_nodes():
            if node.source_partition == src and node.dest_partition == dst:
                group = schedule.group(node.name)
                per_group.setdefault(group, []).append(node)
        return per_group

    # Fan-out stars: f drives exactly {a, b}.
    for f, dsts in sorted(drives.items()):
        if len(dsts) == 2:
            a, b = sorted(dsts)
            _build_fanout_star(graph, schedule, f, a, b, result, next_bus)
            handled_edges.update({(f, a), (f, b)})

    # Fan-in stars: f driven by exactly {a, b} (drivers drive only f).
    for f, srcs in sorted(driven_by.items()):
        if len(srcs) == 2:
            a, b = sorted(srcs)
            if (a, f) in handled_edges or (b, f) in handled_edges:
                continue
            _build_fanin_star(graph, schedule, a, b, f, result, next_bus)
            handled_edges.update({(a, f), (b, f)})

    # Remaining plain pairs — including the dedicated bundles to and
    # from the outside world (system pins are point-to-point wiring).
    all_drives = driver_graph(graph, include_world=True)
    for src, dsts in sorted(all_drives.items()):
        for dst in sorted(dsts):
            if (src, dst) in handled_edges:
                continue
            _build_pair(graph, schedule, src, dst, result, next_bus)
            handled_edges.add((src, dst))

    problems = verify_simple_allocation(graph, schedule, result)
    if problems:
        raise ConnectionError_(
            "Theorem 3.1 construction failed self-check:\n  "
            + "\n  ".join(problems))
    return result


# ---------------------------------------------------------------------
def _entries_per_group(graph: Cdfg, schedule: Schedule, src: int,
                       dst: int) -> Dict[int, List[Node]]:
    per_group: Dict[int, List[Node]] = {}
    for node in graph.io_nodes():
        if node.source_partition == src and node.dest_partition == dst:
            per_group.setdefault(schedule.group(node.name), []).append(node)
    for members in per_group.values():
        members.sort(key=lambda n: n.name)
    return per_group


def _build_pair(graph: Cdfg, schedule: Schedule, src: int, dst: int,
                result: SimpleConnectionResult, next_bus: List[int]) -> None:
    per_group = _entries_per_group(graph, schedule, src, dst)
    peak = max((sum(n.bit_width for n in members)
                for members in per_group.values()), default=0)
    if peak == 0:
        return
    bus = Bus(next_bus[0], out_widths={src: peak}, in_widths={dst: peak})
    next_bus[0] += 1
    result.interconnect.add_bus(bus)
    for members in per_group.values():
        for node in members:
            result.allocation[node.name] = [(bus.index, node.bit_width)]


def _build_fanout_star(graph: Cdfg, schedule: Schedule, f: int, a: int,
                       b: int, result: SimpleConnectionResult,
                       next_bus: List[int]) -> None:
    to_a = _entries_per_group(graph, schedule, f, a)
    to_b = _entries_per_group(graph, schedule, f, b)
    L = schedule.initiation_rate

    def shared(group: int) -> List[Tuple[Node, Node]]:
        """Same value to both partitions in the same control *step*."""
        pairs = []
        for na in to_a.get(group, []):
            for nb in to_b.get(group, []):
                if na.value == nb.value and \
                        schedule.step(na.name) == schedule.step(nb.name):
                    pairs.append((na, nb))
        return pairs

    a_k = {k: sum(n.bit_width for n in v) for k, v in to_a.items()}
    b_k = {k: sum(n.bit_width for n in v) for k, v in to_b.items()}
    c_k = {k: sum(p[0].bit_width for p in shared(k)) for k in range(L)}
    M_a = max(a_k.values(), default=0)
    M_b = max(b_k.values(), default=0)
    O_f = max((a_k.get(k, 0) + b_k.get(k, 0) - c_k.get(k, 0))
              for k in range(L)) if (to_a or to_b) else 0

    if M_a == 0 and M_b == 0:
        return
    N_c = max(0, M_a + M_b - O_f)
    N_a = M_a - N_c
    N_b = M_b - N_c

    bus_a = bus_b = bus_c = None
    if N_a > 0:
        bus_a = Bus(next_bus[0], out_widths={f: N_a}, in_widths={a: N_a})
        next_bus[0] += 1
        result.interconnect.add_bus(bus_a)
    if N_b > 0:
        bus_b = Bus(next_bus[0], out_widths={f: N_b}, in_widths={b: N_b})
        next_bus[0] += 1
        result.interconnect.add_bus(bus_b)
    if N_c > 0:
        bus_c = Bus(next_bus[0], out_widths={f: N_c},
                    in_widths={a: N_c, b: N_c})
        next_bus[0] += 1
        result.interconnect.add_bus(bus_c)

    # Allocate per group following the proof's case analysis.
    for k in range(L):
        pairs = shared(k)
        shared_names = {n.name for p in pairs for n in p}
        c_used = 0
        # Shared values ride C first; overflow pairs use A and B slots.
        for na, nb in pairs:
            width = na.bit_width
            cap_c = (bus_c.width if bus_c else 0) - c_used
            on_c = min(width, cap_c)
            alloc_a: List[Tuple[int, int]] = []
            alloc_b: List[Tuple[int, int]] = []
            if on_c > 0:
                alloc_a.append((bus_c.index, on_c))
                alloc_b.append((bus_c.index, on_c))
                c_used += on_c
            rest = width - on_c
            if rest > 0:
                alloc_a.append((bus_a.index, rest))
                alloc_b.append((bus_b.index, rest))
            result.allocation[na.name] = alloc_a
            result.allocation[nb.name] = alloc_b
        # Exclusive values: dedicated bundle first, spill into C.
        for nodes, bus_main in ((to_a.get(k, []), bus_a),
                                (to_b.get(k, []), bus_b)):
            used_main = 0
            for node in nodes:
                if node.name in shared_names:
                    continue
                width = node.bit_width
                cap_main = (bus_main.width if bus_main else 0) - used_main
                on_main = min(width, cap_main)
                alloc: List[Tuple[int, int]] = []
                if on_main > 0:
                    alloc.append((bus_main.index, on_main))
                    used_main += on_main
                rest = width - on_main
                if rest > 0:
                    alloc.append((bus_c.index, rest))
                    c_used += rest
                result.allocation[node.name] = alloc


def _build_fanin_star(graph: Cdfg, schedule: Schedule, a: int, b: int,
                      f: int, result: SimpleConnectionResult,
                      next_bus: List[int]) -> None:
    from_a = _entries_per_group(graph, schedule, a, f)
    from_b = _entries_per_group(graph, schedule, b, f)
    L = schedule.initiation_rate
    a_k = {k: sum(n.bit_width for n in v) for k, v in from_a.items()}
    b_k = {k: sum(n.bit_width for n in v) for k, v in from_b.items()}
    M_a = max(a_k.values(), default=0)
    M_b = max(b_k.values(), default=0)
    I_f = max((a_k.get(k, 0) + b_k.get(k, 0)) for k in range(L)) \
        if (from_a or from_b) else 0

    if M_a == 0 and M_b == 0:
        return
    N_c = max(0, M_a + M_b - I_f)
    N_a = M_a - N_c
    N_b = M_b - N_c

    bus_a = bus_b = bus_c = None
    if N_a > 0:
        bus_a = Bus(next_bus[0], out_widths={a: N_a}, in_widths={f: N_a})
        next_bus[0] += 1
        result.interconnect.add_bus(bus_a)
    if N_b > 0:
        bus_b = Bus(next_bus[0], out_widths={b: N_b}, in_widths={f: N_b})
        next_bus[0] += 1
        result.interconnect.add_bus(bus_b)
    if N_c > 0:
        bus_c = Bus(next_bus[0], out_widths={a: N_c, b: N_c},
                    in_widths={f: N_c})
        next_bus[0] += 1
        result.interconnect.add_bus(bus_c)

    for k in range(L):
        c_used = 0
        for nodes, bus_main in ((from_a.get(k, []), bus_a),
                                (from_b.get(k, []), bus_b)):
            used_main = 0
            for node in nodes:
                width = node.bit_width
                cap_main = (bus_main.width if bus_main else 0) - used_main
                on_main = min(width, cap_main)
                alloc: List[Tuple[int, int]] = []
                if on_main > 0:
                    alloc.append((bus_main.index, on_main))
                    used_main += on_main
                rest = width - on_main
                if rest > 0:
                    alloc.append((bus_c.index, rest))
                    c_used += rest
                result.allocation[node.name] = alloc


# ---------------------------------------------------------------------
def verify_simple_allocation(graph: Cdfg, schedule: Schedule,
                             result: SimpleConnectionResult) -> List[str]:
    """Check bit budgets per (bus, group): the no-conflict property."""
    problems: List[str] = []
    L = schedule.initiation_rate
    usage: Dict[Tuple[int, int], int] = {}
    shared_seen: Dict[Tuple[int, int, str, int], int] = {}
    for node in graph.io_nodes():
        name = node.name
        alloc = result.allocation.get(name)
        if alloc is None:
            problems.append(f"I/O op {name!r} has no allocation")
            continue
        total = sum(bits for _bus, bits in alloc)
        if total != node.bit_width:
            problems.append(
                f"{name!r}: allocated {total} bits != width "
                f"{node.bit_width}")
        group = schedule.group(name)
        step = schedule.step(name)
        for bus_index, bits in alloc:
            bus = result.interconnect.bus(bus_index)
            # Same value, same step, same bus counts once (shared drive).
            key = (bus_index, group, node.value or name, step)
            already = shared_seen.get(key, 0)
            extra = max(0, bits - already)
            shared_seen[key] = max(already, bits)
            usage[(bus_index, group)] = usage.get(
                (bus_index, group), 0) + extra
    for (bus_index, group), bits in sorted(usage.items()):
        width = result.interconnect.bus(bus_index).width
        if bits > width:
            problems.append(
                f"bus {bus_index} group {group}: {bits} bits on "
                f"{width} wires")
    return problems
