"""Core synthesis algorithms: the dissertation's contribution.

* :mod:`repro.core.interconnect` — bus/port model (unidirectional,
  bidirectional, sub-bus segmented) and the constructive Theorem 3.1
  connection builder for simple partitionings.
* :mod:`repro.core.pin_allocation` — the Chapter 3 pin-allocation ILP
  and the incremental feasibility checker plugged into list scheduling.
* :mod:`repro.core.bus_bounds` — the tight upper bound on the number of
  communication buses (Section 4.1.1).
* :mod:`repro.core.connection_search` — the heuristic branch-limited
  DFS that builds the interchip connection before scheduling (Fig 4.3).
* :mod:`repro.core.connection_ilp` — ILP generators for the Chapter 4
  and Chapter 6 connection-synthesis formulations (verification-scale).
* :mod:`repro.core.bus_assignment` — communication-slot allocation with
  dynamic reassignment during scheduling (Sections 4.2 and 6.2).
* :mod:`repro.core.post_sched` — connection synthesis after scheduling
  via clique partitioning / successive weighted matchings (Chapter 5).
* :mod:`repro.core.subbus` — sub-bus splitting so several values share
  one bus per cycle (Chapter 6).
* :mod:`repro.core.conditional` — conditional I/O sharing (Section 7.2).
* :mod:`repro.core.flow` — the three end-to-end synthesis flows.
"""

from repro.core.interconnect import Bus, Interconnect, BusAssignment
from repro.core.flow import (
    SynthesisOptions,
    SynthesisResult,
    synthesize,
    synthesize_simple,
    synthesize_connection_first,
    synthesize_schedule_first,
)

__all__ = [
    "Bus",
    "Interconnect",
    "BusAssignment",
    "SynthesisOptions",
    "SynthesisResult",
    "synthesize",
    "synthesize_simple",
    "synthesize_connection_first",
    "synthesize_schedule_first",
]
