"""Tight upper bound on the number of communication buses (Sec 4.1.1).

Every bus needs at least one input port and one output port, and a port
belongs to exactly one bus; so the bus count is bounded by the smaller
of the total possible input ports and output ports.  Per partition the
port bound is computed width class by width class (widest first):

* a *lower* bound on ports of each width assuming maximal slot reuse
  (leftover slots of wider ports absorb narrower values), which yields
  the minimum pins each direction must reserve;
* then an *upper* bound on ports of each width from the pins left after
  reserving the minimum for the other classes.

For bidirectional ports every bus still needs two ports, so the bound
is half the total port bound (Section 4.3).
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from repro.cdfg.graph import Cdfg, Node
from repro.partition.model import Partitioning


def _class_counts(ops: List[Node]) -> Tuple[List[int], Dict[int, int]]:
    widths = sorted({n.bit_width for n in ops})
    counts = {w: 0 for w in widths}
    for node in ops:
        counts[node.bit_width] += 1
    return widths, counts


def _min_pins(widths: List[int], counts: Dict[int, int],
              initiation_rate: int) -> Tuple[int, Dict[int, int]]:
    """(minimum pins, per-width minimum port counts) for one direction."""
    L = initiation_rate
    lb: Dict[int, int] = {}
    slots = 0  # leftover slots of wider ports usable by narrower values
    for width in reversed(widths):
        need = counts[width] - slots
        ports = max(0, math.ceil(need / L))
        lb[width] = ports
        slots = slots + ports * L - counts[width]
    pins = sum(lb[w] * w for w in widths)
    return pins, lb


def _max_ports(widths: List[int], counts: Dict[int, int],
               lb: Dict[int, int], pins_available: int) -> int:
    """Upper bound on ports for one direction given available pins."""
    remaining = pins_available
    total = 0
    for width in reversed(widths):
        ub = min(remaining // width if width else 0, counts[width])
        total += max(0, ub)
        remaining -= lb[width] * width
    return total


def max_buses(graph: Cdfg, partitioning: Partitioning) -> int:
    """The bound ``R`` of Section 4.1.1 (both port models)."""
    ios = graph.io_nodes()
    if not ios:
        return 0
    # Infer L = 1 conservatism-free: the bound uses L only through slot
    # reuse; callers wanting the pipelined bound use max_buses_pipelined.
    return max_buses_pipelined(graph, partitioning, 1)


def max_buses_pipelined(graph: Cdfg, partitioning: Partitioning,
                        initiation_rate: int) -> int:
    """The bound ``R`` with slot reuse at the given initiation rate."""
    ios = graph.io_nodes()
    if not ios:
        return 0
    if partitioning.any_bidirectional():
        total_ports = 0
        for index in partitioning.indices():
            ops = [n for n in ios
                   if n.source_partition == index
                   or n.dest_partition == index]
            if not ops:
                continue
            widths, counts = _class_counts(ops)
            _pins, lb = _min_pins(widths, counts, initiation_rate)
            total_ports += _max_ports(
                widths, counts, lb, partitioning.total_pins(index))
        return max(1, total_ports // 2)

    total_in = 0
    total_out = 0
    for index in partitioning.indices():
        pins = partitioning.total_pins(index)
        in_ops = [n for n in ios if n.dest_partition == index]
        out_ops = _distinct_outputs(ios, index)
        in_widths, in_counts = _class_counts(in_ops) if in_ops \
            else ([], {})
        out_widths, out_counts = _class_counts(out_ops) if out_ops \
            else ([], {})
        in_min, in_lb = _min_pins(in_widths, in_counts, initiation_rate) \
            if in_ops else (0, {})
        out_min, out_lb = _min_pins(out_widths, out_counts,
                                    initiation_rate) if out_ops else (0, {})
        if in_ops:
            total_in += _max_ports(in_widths, in_counts, in_lb,
                                   pins - out_min)
        if out_ops:
            total_out += _max_ports(out_widths, out_counts, out_lb,
                                    pins - in_min)
    return max(1, min(total_in, total_out))


def _distinct_outputs(ios: List[Node], partition: int) -> List[Node]:
    """One representative per output value (multi-fanout counts once)."""
    seen = set()
    out = []
    for node in sorted(ios, key=lambda n: n.name):
        if node.source_partition != partition:
            continue
        key = node.value or node.name
        if key in seen:
            continue
        seen.add(key)
        out.append(node)
    return out
