"""Pin allocation for simple partitionings (Chapter 3).

The ILP of Section 3.1.1 asks whether every I/O operation can still be
assigned to some control-step group without exceeding any chip's
input/output pins:

* input:   ``sum B_w x_{w,k} <= I_i``            (3.2 / 3.7 with o_i)
* output:  ``sum B_v y_{v,k} <= O_j``            (3.5 / 3.8 with o_j)
* link:    ``sum_{w in W_v} x_{w,k} <= |W_v| y_{v,k}``        (3.6)
* cover:   ``sum_k x_{w,k} >= 1``                             (3.4)

with ``o_j`` integer output-pin-split variables when the chips do not
fix the input/output pin division.

Bundle refinement
-----------------
Pins are physically grouped into *bundles* (nets): a chip's pins facing
the outside world cannot double as pins on an interchip star bundle —
only transfers on the *same net* may time-share pins across control-step
groups.  The per-group constraints above are therefore necessary but not
sufficient for the constructive connection of Theorem 3.1 once external
traffic enters the picture.  This implementation adds the bundle-aware
strengthening: per chip end, ``max_k(external bits) +
max_k(interchip bits) <= pins`` (each max realized by an auxiliary
integer variable), and the pseudo partition pays per-chip dedicated
bundles.  Theorem 3.1 then guarantees the interchip share is wireable,
and the external share is point-to-point by construction.

The trivial objective makes the initial tableau dual feasible, so the
Gomory dual all-integer algorithm (Section 3.3) answers feasibility; the
scheduler commits ``x_{w,k} >= 1`` incrementally as operations are
placed (the Equations 3.12 -> 3.13 tableau update).
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Mapping, Optional, Tuple

from repro.cdfg.graph import Cdfg, Node
from repro.core.oracle_store import (INIT_GROUP, INIT_NODE, OracleStore,
                                     budget_vector, get_active)
from repro.errors import IlpError, InfeasibleError
from repro.ilp import (DualAllIntegerSolver, Model, Var, WarmBasis, lsum,
                       solve_ilp)
from repro.ilp.model import LinExpr, SolveStatus
from repro.ilp.simplex import solve_lp
from repro.io_json import graph_to_dict
from repro.partition.model import OUTSIDE_WORLD, Partitioning
from repro.perf import PERF
from repro.robustness.budget import BudgetExhausted, as_token
from repro.scheduling.base import Schedule


def design_signature(graph: Cdfg, partitioning: Partitioning,
                     initiation_rate: int) -> str:
    """Structure key for the shared pin oracle.

    Covers everything a pin-feasibility verdict depends on *except* the
    budget values themselves: the CDFG, the initiation rate, and each
    chip's port-model pattern (bidirectional / split-fixed flags).
    Budgets live in the per-entry vector so verdicts recorded at one
    budget can answer dominated queries at another.
    """
    payload = {
        "graph": graph_to_dict(graph),
        "rate": int(initiation_rate),
        "chips": [[index,
                   bool(partitioning.chip(index).bidirectional),
                   bool(partitioning.chip(index).split_fixed)]
                  for index in partitioning.indices()],
    }
    blob = json.dumps(payload, separators=(",", ":"), sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:32]


def assignment_usage(graph: Cdfg, partitioning: Partitioning,
                     initiation_rate: int,
                     assignment: Mapping[str, int]) -> Tuple[int, ...]:
    """Pin usage of a complete group assignment, model-free.

    ``assignment`` maps every I/O operation name to its control-step
    group.  The result is in :func:`budget_vector` coordinates and is a
    valid feasibility witness at any budget vector it fits — used to
    re-record a finished schedule's commit trajectory with the tightest
    witness available (the schedule's own usage), without building the
    ILP model.
    """

    def xval(node: Node, k: int) -> int:
        return 1 if assignment.get(node.name) == k else 0

    return _usage_from_assignment(
        graph.io_nodes(), graph.values_map(), partitioning,
        initiation_rate, xval)


def _usage_from_assignment(ios, values_map, partitioning: Partitioning,
                           L: int, xval) -> Tuple[int, ...]:
    """Shared load accounting behind the witness vectors.

    ``xval(node, k)`` is the 0/1 placement indicator; shared-output
    indicators are derived from it (a value's output bundle is loaded
    in group ``k`` iff any of its transfers lands there).  Mirrors the
    model rows exactly: per-group bundle peaks, split external vs
    interchip traffic, one dedicated world bundle per chip.  Slots the
    model never bounds (total pins of a split-fixed chip, the per-side
    caps of a pooled one) come back as ``0``/``-1`` so they never block
    a transfer.
    """

    def peak(loads) -> int:
        return max(loads, default=0)

    def chip_usage(index: int) -> Tuple[int, int]:
        ext_in = [n for n in ios if n.dest_partition == index
                  and n.source_partition == OUTSIDE_WORLD]
        star_in = [n for n in ios if n.dest_partition == index
                   and n.source_partition != OUTSIDE_WORLD]
        out_values = {v: members for v, members in values_map.items()
                      if members[0].source_partition == index}
        ein = peak(sum(n.bit_width * xval(n, k) for n in ext_in)
                   for k in range(L)) if ext_in else 0
        sin = peak(sum(n.bit_width * xval(n, k) for n in star_in)
                   for k in range(L)) if star_in else 0

        def term_val(members, k: int) -> int:
            return 1 if any(xval(m, k) for m in members) else 0

        ext_vals = {v: [m for m in ms
                        if m.dest_partition == OUTSIDE_WORLD]
                    for v, ms in out_values.items()}
        star_vals = {v: [m for m in ms
                         if m.dest_partition != OUTSIDE_WORLD]
                     for v, ms in out_values.items()}
        eout = peak(
            sum(members[0].bit_width * term_val(members, k)
                for members in ext_vals.values() if members)
            for k in range(L)) if any(ext_vals.values()) else 0
        sout = peak(
            sum(members[0].bit_width * term_val(members, k)
                for members in star_vals.values() if members)
            for k in range(L)) if any(star_vals.values()) else 0
        return ein + sin, eout + sout

    def world_usage() -> Tuple[int, int]:
        in_use = out_use = 0
        for chip in partitioning.indices():
            if chip == OUTSIDE_WORLD:
                continue
            to_chip = [n for n in ios
                       if n.source_partition == OUTSIDE_WORLD
                       and n.dest_partition == chip]
            from_chip = [n for n in ios
                         if n.source_partition == chip
                         and n.dest_partition == OUTSIDE_WORLD]
            if to_chip:
                out_use += peak(
                    sum(n.bit_width * xval(n, k) for n in to_chip)
                    for k in range(L))
            if from_chip:
                in_use += peak(
                    sum(n.bit_width * xval(n, k) for n in from_chip)
                    for k in range(L))
        return in_use, out_use

    # The per-chip 3-slot encoding lives with the unified pin
    # accounting so the ILP rows and the witness vectors can't drift.
    from repro.pipeline.resource_table import usage_row

    out: List[int] = []
    for index in partitioning.indices():
        spec = partitioning.chip(index)
        if index == OUTSIDE_WORLD:
            in_use, out_use = world_usage()
        else:
            in_use, out_use = chip_usage(index)
        out.extend(usage_row(spec, in_use, out_use))
    return tuple(out)


class PinAllocationProblem:
    """Builds and owns the Section 3.1.1 model for one design."""

    def __init__(self, graph: Cdfg, partitioning: Partitioning,
                 initiation_rate: int) -> None:
        self.graph = graph
        self.partitioning = partitioning
        self.L = initiation_rate
        self.model = Model("pin-allocation")
        self.x: Dict[Tuple[str, int], Var] = {}
        self.y: Dict[Tuple[str, int], Var] = {}
        self.o: Dict[int, Var] = {}
        #: Cached graph views — witness extraction walks them per
        #: feasible probe, and they are pure functions of the graph.
        self._ios = graph.io_nodes()
        self._values_map = graph.values_map()
        self._build()

    # ------------------------------------------------------------------
    def _chip_dest_members(self, members: List[Node]) -> List[Node]:
        return [m for m in members if m.dest_partition != OUTSIDE_WORLD]

    def _out_term(self, members: List[Node], value: str, k: int):
        """Shared-output load term: y for multi-fanout, x otherwise."""
        if len(members) > 1:
            key = (value, k)
            if key not in self.y:
                self.y[key] = self.model.binary(f"y[{value},{k}]")
                self.model.add(
                    lsum(self.x[(m.name, k)] for m in members)
                    <= len(members) * self.y[key],
                    name=f"link[{value},{k}]")
            return self.y[key]
        return self.x[(members[0].name, k)]

    def _build(self) -> None:
        model, L = self.model, self.L
        graph = self.graph
        ios = graph.io_nodes()
        values = graph.values_map()

        for node in ios:
            for k in range(L):
                self.x[(node.name, k)] = model.binary(f"x[{node.name},{k}]")

        for index in self.partitioning.indices():
            spec = self.partitioning.chip(index)
            if spec.bidirectional:
                raise IlpError(
                    "the Chapter 3 pin-allocation model assumes "
                    "unidirectional pins")
            if not spec.split_fixed:
                self.o[index] = model.add_var(
                    f"o[{index}]", 0, spec.total_pins)

        for index in self.partitioning.indices():
            if index == OUTSIDE_WORLD:
                self._build_world(ios)
            else:
                self._build_chip(index, ios, values)

        # Every I/O operation lands in some group (Constraint 3.4).
        for node in ios:
            model.add(
                lsum(self.x[(node.name, k)] for k in range(L)) >= 1,
                name=f"cover[{node.name}]")

        model.minimize(0)

    # ------------------------------------------------------------------
    def _input_pins_bound(self, index: int):
        """(expression, rhs) such that input load <= expr form works."""
        spec = self.partitioning.chip(index)
        if spec.split_fixed:
            return None, spec.input_pins
        return self.o[index], spec.total_pins

    def _build_chip(self, index: int, ios: List[Node],
                    values: Dict[str, List[Node]]) -> None:
        model, L = self.model, self.L
        spec = self.partitioning.chip(index)
        ext_in = [n for n in ios if n.dest_partition == index
                  and n.source_partition == OUTSIDE_WORLD]
        star_in = [n for n in ios if n.dest_partition == index
                   and n.source_partition != OUTSIDE_WORLD]
        out_values = {v: members for v, members in values.items()
                      if members[0].source_partition == index}

        bound = spec.total_pins
        # Bundle peaks: external and interchip traffic use disjoint
        # nets, so each side pays its own per-group maximum.
        ein = model.add_var(f"ein[{index}]", 0, bound) if ext_in else None
        sin = model.add_var(f"sin[{index}]", 0, bound) if star_in else None
        for k in range(L):
            if ext_in:
                model.add(ein >= lsum(n.bit_width * self.x[(n.name, k)]
                                      for n in ext_in))
            if star_in:
                model.add(sin >= lsum(n.bit_width * self.x[(n.name, k)]
                                      for n in star_in))
        in_terms = [t for t in (ein, sin) if t is not None]
        if in_terms:
            load = lsum(in_terms)
            if spec.split_fixed:
                model.add(load <= spec.input_pins,
                          name=f"in[{index}]")
            else:
                model.add(load + self.o[index] <= spec.total_pins,
                          name=f"in[{index}]")

        eout = sout = None
        ext_vals = {v: [m for m in ms
                        if m.dest_partition == OUTSIDE_WORLD]
                    for v, ms in out_values.items()}
        star_vals = {v: self._chip_dest_members(ms)
                     for v, ms in out_values.items()}
        if any(ext_vals.values()):
            eout = model.add_var(f"eout[{index}]", 0, bound)
            for k in range(L):
                terms = []
                for value, members in sorted(ext_vals.items()):
                    if members:
                        terms.append(members[0].bit_width
                                     * self._out_term(members, value + "@w",
                                                      k))
                model.add(eout >= lsum(terms))
        if any(star_vals.values()):
            sout = model.add_var(f"sout[{index}]", 0, bound)
            for k in range(L):
                terms = []
                for value, members in sorted(star_vals.items()):
                    if members:
                        terms.append(members[0].bit_width
                                     * self._out_term(members, value, k))
                model.add(sout >= lsum(terms))
        out_terms = [t for t in (eout, sout) if t is not None]
        if out_terms:
            load = lsum(out_terms)
            if spec.split_fixed:
                model.add(load <= spec.output_pins,
                          name=f"out[{index}]")
            else:
                model.add(load - self.o[index] <= 0,
                          name=f"out[{index}]")

    def _build_world(self, ios: List[Node]) -> None:
        """The pseudo partition pays one dedicated bundle per chip."""
        model, L = self.model, self.L
        spec = self.partitioning.chip(OUTSIDE_WORLD)
        chips = [i for i in self.partitioning.indices()
                 if i != OUTSIDE_WORLD]
        out_bundles = []
        in_bundles = []
        for chip in chips:
            to_chip = [n for n in ios
                       if n.source_partition == OUTSIDE_WORLD
                       and n.dest_partition == chip]
            from_chip = [n for n in ios
                         if n.source_partition == chip
                         and n.dest_partition == OUTSIDE_WORLD]
            if to_chip:
                bundle = model.add_var(f"w.out[{chip}]", 0,
                                       spec.total_pins)
                for k in range(L):
                    model.add(bundle >= lsum(
                        n.bit_width * self.x[(n.name, k)]
                        for n in to_chip))
                out_bundles.append(bundle)
            if from_chip:
                bundle = model.add_var(f"w.in[{chip}]", 0,
                                       spec.total_pins)
                for k in range(L):
                    model.add(bundle >= lsum(
                        n.bit_width * self.x[(n.name, k)]
                        for n in from_chip))
                in_bundles.append(bundle)
        # P0's *output* pins drive the system's inputs and vice versa.
        if out_bundles:
            if spec.split_fixed:
                model.add(lsum(out_bundles) <= spec.output_pins,
                          name="world-out")
            else:
                model.add(lsum(out_bundles) - self.o[OUTSIDE_WORLD] <= 0,
                          name="world-out")
        if in_bundles:
            if spec.split_fixed:
                model.add(lsum(in_bundles) <= spec.input_pins,
                          name="world-in")
            else:
                model.add(lsum(in_bundles) + self.o[OUTSIDE_WORLD]
                          <= spec.total_pins, name="world-in")

    # ------------------------------------------------------------------
    def var(self, op: str, group: int) -> Var:
        return self.x[(op, group)]

    def tableau_size(self) -> Tuple[int, int]:
        """(variables, constraints) — Section 3.1.2's sizing."""
        n, _n_int, m = self.model.stats()
        return n, m

    def build_aggregated_model(self) -> Model:
        """The Section 3.1.2 size reduction, as a separate model.

        Single-fanout transfers with the same (source, destination,
        bit width) are interchangeable for feasibility; ``q`` of them
        collapse into one integer variable per group with
        ``sum_k x[class,k] >= q``.  "In practice, most of the values
        have the same bit width[, so] the tableau size can be reduced
        quite a lot."  Used for feasibility probes and size reporting —
        the *incremental* checker keeps per-op variables because
        scheduling pins individual operations.
        """
        graph, L = self.graph, self.L
        model = Model("pin-allocation-aggregated")
        values = graph.values_map()

        classes: Dict[Tuple[int, int, int], List[Node]] = {}
        multi: List[Node] = []
        for node in graph.io_nodes():
            if len(values[node.value or node.name]) > 1:
                multi.append(node)
            else:
                key = (node.source_partition, node.dest_partition,
                       node.bit_width)
                classes.setdefault(key, []).append(node)

        agg: Dict[Tuple[Tuple[int, int, int], int], Var] = {}
        for key, members in sorted(classes.items()):
            q = len(members)
            for k in range(L):
                agg[(key, k)] = model.add_var(
                    f"x[{key[0]}->{key[1]}w{key[2]},{k}]", 0, q)
            model.add(lsum(agg[(key, k)] for k in range(L)) >= q)
        xm: Dict[Tuple[str, int], Var] = {}
        ym: Dict[Tuple[str, int], Var] = {}
        for node in multi:
            for k in range(L):
                xm[(node.name, k)] = model.binary(
                    f"x[{node.name},{k}]")
        for value, members in sorted(values.items()):
            if len(members) <= 1:
                continue
            for k in range(L):
                y = model.binary(f"y[{value},{k}]")
                ym[(value, k)] = y
                model.add(lsum(xm[(m.name, k)] for m in members)
                          <= len(members) * y)
        for node in multi:
            model.add(lsum(xm[(node.name, k)] for k in range(L)) >= 1)

        for index in self.partitioning.indices():
            spec = self.partitioning.chip(index)
            for k in range(L):
                in_terms = []
                for key, members in sorted(classes.items()):
                    if key[1] == index:
                        in_terms.append(key[2] * agg[(key, k)])
                for node in multi:
                    if node.dest_partition == index:
                        in_terms.append(node.bit_width
                                        * xm[(node.name, k)])
                out_terms = []
                for key, members in sorted(classes.items()):
                    if key[0] == index:
                        out_terms.append(key[2] * agg[(key, k)])
                seen = set()
                for node in multi:
                    value = node.value or node.name
                    if node.source_partition == index \
                            and value not in seen:
                        seen.add(value)
                        out_terms.append(node.bit_width
                                         * ym[(value, k)])
                if not in_terms and not out_terms:
                    continue
                if spec.split_fixed:
                    if in_terms:
                        model.add(lsum(in_terms) <= spec.input_pins)
                    if out_terms:
                        model.add(lsum(out_terms) <= spec.output_pins)
                else:
                    o = model.var_by_name(f"o[{index}]") \
                        if f"o[{index}]" in model._names \
                        else model.add_var(f"o[{index}]", 0,
                                           spec.total_pins)
                    if in_terms:
                        model.add(lsum(in_terms) + o <= spec.total_pins)
                    if out_terms:
                        model.add(lsum(out_terms) - o <= 0)
        model.minimize(0)
        return model

    def usage_vector(self, values: Mapping[int, int]
                     ) -> Tuple[int, ...]:
        """Per-chip pin usage of a feasible point, in the coordinates
        of :func:`repro.core.oracle_store.budget_vector`.

        Mirrors the model's own load accounting (bundle peaks over the
        ``L`` groups, shared-output ``y`` terms), so a verdict proved
        feasible here stays feasible at *any* budget vector the usage
        fits — the oracle store's witness shortcut.  The shared-output
        indicators are re-derived from the ``x`` values rather than
        read back (a solver is free to leave a ``y`` at 1 with every
        member unplaced; dropping it keeps the point feasible and the
        witness strictly tighter).
        """

        def xval(node: Node, k: int) -> int:
            return int(values.get(self.x[(node.name, k)].index, 0))

        return _usage_from_assignment(
            self._ios, self._values_map, self.partitioning, self.L,
            xval)

    def solve_with_fixed(self, fixed: Mapping[str, int],
                         budget=None) -> bool:
        """One-shot feasibility with some ops pinned to groups (B&B)."""
        model = _clone_with_fixed(self.model, self.x, fixed)
        return solve_ilp(model, budget=budget).feasible

    def lp_relaxation_feasible(self, fixed: Mapping[str, int]) -> bool:
        """Feasibility of the LP *relaxation* with ops pinned to groups.

        The weakest rung of the degradation chain: relaxation
        feasibility is a necessary condition for ILP feasibility, so a
        "no" here is sound while a "yes" is optimistic — the end-to-end
        :meth:`repro.core.flow.SynthesisResult.require_valid` check
        still guards every answer built on top of it.
        """
        model = _clone_with_fixed(self.model, self.x, fixed)
        return solve_lp(model).status is SolveStatus.OPTIMAL


def _clone_with_fixed(model: Model, x: Mapping[Tuple[str, int], Var],
                      fixed: Mapping[str, int]) -> Model:
    clone = Model(model.name)
    raised = {x[(op, group)].index for op, group in fixed.items()}
    for var in model.vars:
        lb = 1 if var.index in raised else var.lb
        clone.add_var(var.name, lb, var.ub, var.integer)
    clone.constraints = list(model.constraints)
    clone.objective = model.objective
    clone.sense = model.sense
    return clone


class PinAllocationChecker:
    """IoHooks implementation: the bold boxes of Figure 3.4.

    ``method="gomory"`` (default) keeps one incrementally-updated dual
    all-integer tableau, exactly as Section 3.3 describes; ``"bnb"``
    re-solves from scratch with branch & bound (used for cross-checking
    and as an automatic fallback if the cutting planes hit their
    iteration cap).

    Feasibility oracle cache
    ------------------------
    The probe verdict ("would pinning op ``w`` to group ``k`` keep the
    ILP feasible?") is a pure function of the *set* of committed
    ``x_{w,k} >= 1`` bounds plus the probed bound — it does not depend
    on the order bounds were committed or on the cuts accumulated along
    the way (cuts never remove integer points).  The checker therefore
    memoizes verdicts under a canonical fingerprint of the committed
    set; the list scheduler re-probes equivalent states constantly
    (priority ties within a step, the same group recurring every L
    steps, postpone/retry passes), and each hit skips a full
    cutting-plane probe.

    Graceful degradation
    --------------------
    Under a :class:`repro.robustness.budget.SolveBudget` the probe
    strategy forms a fallback chain: when the cutting planes exhaust
    their budget share the checker latches onto exact branch & bound;
    when that exhausts too it latches onto the conservative
    LP-relaxation bound (sound "no", optimistic "yes" — the flow-level
    ``require_valid()`` still verifies the final answer).  Every latch
    is recorded on the ``diagnostics`` trail.

    Warm-start tier
    ---------------
    Two optional inputs make near-duplicate solves cheap:

    * ``oracle_store`` — a shared :class:`repro.core.oracle_store
      .OracleStore` (defaults to the process-wide active one).  Exact
      verdicts are published under (design signature, committed set,
      node, group) plus the budget vector; queries are first answered
      from the store, including by budget-dominance, and count as
      ``pin.store_hits``.  With a hot store the checker may never build
      a tableau at all: the base-model feasibility check and the
      store-proven commits are *deferred* until the first genuine probe
      materializes the solver and replays them.
    * ``warm_basis`` — a :class:`repro.ilp.WarmBasis` exported by a
      structurally identical parent solve.  Materialization tries
      :meth:`DualAllIntegerSolver.warm_start` first and falls back to a
      cold build.  A warm tableau carries the parent's Gomory cuts,
      which are valid certificates for "feasible" but not for
      "infeasible" on the perturbed model — so the first infeasible
      verdict from a warm tableau demotes it: the solver is rebuilt
      cold (replaying committed bounds) and the probe re-asked, keeping
      every answer bit-identical to a cold run.
    """

    def __init__(self, graph: Cdfg, partitioning: Partitioning,
                 initiation_rate: int, method: str = "gomory",
                 budget=None, diagnostics=None,
                 oracle_store: Optional[OracleStore] = None,
                 warm_basis=None) -> None:
        if method not in ("gomory", "bnb"):
            raise IlpError(f"unknown method {method!r}")
        self.graph = graph
        self.partitioning = partitioning
        self.L = initiation_rate
        self.method = method
        self.budget = as_token(budget)
        self.diagnostics = diagnostics
        #: Latched budget fallback: None (configured method) -> "bnb"
        #: -> "lp".  Never un-latches within one synthesis run.
        self._degraded_method: Optional[str] = None
        self.fixed: Dict[str, int] = {}
        self.checks = 0
        self.cache_hits = 0
        self.store_hits = 0
        self._oracle: Dict[Tuple[Tuple[Tuple[str, int], ...], str, int],
                           bool] = {}
        self._fingerprint: Tuple[Tuple[str, int], ...] = ()
        self._problem: Optional[PinAllocationProblem] = None
        self._solver: Optional[DualAllIntegerSolver] = None
        self._ready = False
        self._warm_active = False
        #: Store-proven commits awaiting replay onto a real tableau.
        self._pending: List[Tuple[str, int]] = []
        #: Bounds already applied to the *current* tableau — a warm
        #: demotion replays all of ``fixed`` at once, so later replay
        #: loops must not commit the same bound twice.
        self._applied: Dict[str, int] = {}
        self._export: Optional[WarmBasis] = None
        if isinstance(warm_basis, dict):
            warm_basis = WarmBasis.from_dict(warm_basis)
        self._warm: Optional[WarmBasis] = warm_basis
        store = oracle_store if oracle_store is not None else get_active()
        #: Private stores replicate the old per-checker memo exactly;
        #: shared ones add cross-solve and dominance answers.
        self._store = store if store is not None else OracleStore()
        self._sig = design_signature(graph, partitioning, initiation_rate)
        self._budget_vec = budget_vector(partitioning)
        init_key = (self._sig, (), INIT_NODE, INIT_GROUP)
        hit = self._store.lookup(init_key, self._budget_vec)
        if hit is not None:
            self.store_hits += 1
            PERF.inc("pin.store_hits")
            if not hit[0]:
                raise InfeasibleError(
                    "no feasible pin allocation exists for this design "
                    "(oracle store)")
            # Known feasible: defer building the tableau until a probe
            # actually needs one.
        else:
            self._materialize()

    # -- lazy materialization --------------------------------------------
    @property
    def problem(self) -> PinAllocationProblem:
        if self._problem is None:
            self._problem = PinAllocationProblem(
                self.graph, self.partitioning, self.L)
        return self._problem

    def _materialize(self) -> None:
        """Build the model and solver, then replay deferred commits.

        Raises :class:`InfeasibleError` when the base model is
        infeasible (recording the proof in the store).
        """
        if self._ready:
            return
        problem = self.problem
        init_key = (self._sig, (), INIT_NODE, INIT_GROUP)
        if self.method == "gomory" and self._degraded_method is None:
            solver = None
            if self._warm is not None:
                solver = DualAllIntegerSolver.warm_start(
                    problem.model, self._warm, budget=self.budget)
            # "Active" here means *suspect*: inherited cuts certify
            # feasible answers only.  A tightening warm start (new rhs
            # <= parent rhs) keeps the cuts valid outright, so its
            # verdicts need no confirmation.
            self._warm_active = (solver is not None
                                 and not getattr(solver, "warm_sound",
                                                 True))
            if solver is None:
                solver = DualAllIntegerSolver(problem.model,
                                              budget=self.budget)
                if not solver.reoptimize():
                    self._store.record(init_key, self._budget_vec, False)
                    raise InfeasibleError(
                        "no feasible pin allocation exists for this "
                        "design (infeasible initial ILP, Section 3.3)")
            self._solver = solver
            self._applied = {}
            self._store.record(init_key, self._budget_vec, True,
                               witness=self._witness_of(solver))
            # Capture the exportable basis now, before any committed
            # x >= 1 bounds make the tableau parent-specific.
            self._export = solver.export_warm_basis()
        else:
            if not problem.solve_with_fixed({}, budget=self.budget):
                self._store.record(init_key, self._budget_vec, False)
                raise InfeasibleError(
                    "no feasible pin allocation exists for this design")
            self._store.record(init_key, self._budget_vec, True)
        self._ready = True
        pending, self._pending = self._pending, []
        for op, group in pending:
            self._commit_to_solver(op, group)

    def _witness_of(self, solver) -> Optional[Tuple[int, ...]]:
        """Pin usage of the solver's current feasible point, or None."""
        values = solver.solution_values()
        if values is None:  # pragma: no cover - all-integer invariant
            return None
        return self.problem.usage_vector(values)

    def _demote_warm(self) -> None:
        """Replace a suspect warm tableau with a cold build.

        Inherited cuts certify "feasible" but not "infeasible"; on the
        first infeasible answer the warm tableau is thrown away, the
        solver rebuilt from the pristine model, and every committed
        bound replayed (each was proved feasible before commit, so the
        replay succeeds unless the budget runs out).
        """
        PERF.inc("pin.warm_demotions")
        self._warm_active = False
        problem = self.problem
        try:
            solver = DualAllIntegerSolver(problem.model,
                                          budget=self.budget)
            if not solver.reoptimize():
                raise InfeasibleError(
                    "no feasible pin allocation exists for this "
                    "design (infeasible initial ILP, Section 3.3)")
            self._solver = solver
            self._applied = {}
            if not self.fixed:
                self._export = solver.export_warm_basis()
            for op, group in self.fixed.items():
                solver.commit_lower_bound(problem.var(op, group))
                self._applied[op] = group
        except BudgetExhausted as exc:
            self._degrade("bnb", exc)

    def _commit_to_solver(self, op: str, group: int) -> None:
        assert self._solver is not None
        if op in self._applied:
            return
        try:
            self._solver.commit_lower_bound(self.problem.var(op, group))
            self._applied[op] = group
        except BudgetExhausted as exc:
            # The commit's re-optimization ran out of budget; the
            # tableau was rolled back, so abandon it and latch onto
            # branch & bound (``self.fixed`` carries the state).
            self._degrade("bnb", exc)
        except InfeasibleError:
            if not self._warm_active:
                raise
            # Spurious infeasibility from inherited cuts: rebuild cold
            # (which replays every committed bound, this one included).
            self._demote_warm()

    # -- IoHooks ---------------------------------------------------------
    def can_schedule(self, node: Node, step: int,
                     schedule: Schedule) -> bool:
        group = step % self.L
        if not self._sharing_consistent(node, step, schedule):
            return False
        self.checks += 1
        PERF.inc("pin.checks")
        key = (self._fingerprint, node.name, group)
        cached = self._oracle.get(key)
        if cached is not None:
            self.cache_hits += 1
            PERF.inc("pin.cache_hits")
            return cached
        store_key = (self._sig, self._fingerprint, node.name, group)
        hit = self._store.lookup(store_key, self._budget_vec)
        if hit is not None:
            self.store_hits += 1
            PERF.inc("pin.store_hits")
            self._oracle[key] = hit[0]
            return hit[0]
        PERF.inc("pin.cache_misses")
        verdict, exact, witness = self._probe(node, group)
        self._oracle[key] = verdict
        if exact:
            self._store.record(store_key, self._budget_vec, verdict,
                               witness=witness)
        return verdict

    @property
    def active_method(self) -> str:
        """The probe strategy currently in force (after any latches)."""
        return self._degraded_method or self.method

    def _probe(self, node: Node, group: int
               ) -> Tuple[bool, bool, Optional[Tuple[int, ...]]]:
        """Uncached feasibility probe (solver, branch & bound, or LP).

        Returns ``(verdict, exact, witness)``; only exact verdicts
        (cutting planes or branch & bound, never the LP relaxation)
        may enter the shared oracle store.  ``witness`` is the pin
        usage of the feasible point a Gomory probe found, letting the
        store transfer the "yes" to every budget it fits.
        """
        tentative = dict(self.fixed)
        tentative[node.name] = group
        if self.active_method == "gomory":
            self._materialize()
        if self.active_method == "gomory":
            assert self._solver is not None
            var = self.problem.var(node.name, group)
            try:
                verdict, values = self._solver.probe_lower_bound(var)
                if not verdict and self._warm_active:
                    # Suspect "no": a relaxed warm model inherits cuts
                    # that may over-constrain.  Confirm cheaply — an
                    # infeasible LP relaxation is a sound "no" and the
                    # tableau survives; otherwise ask branch & bound
                    # for the exact answer and demote the tableau only
                    # if it provably lied.
                    PERF.inc("pin.warm_confirms")
                    if not self.problem.lp_relaxation_feasible(tentative):
                        return False, True, None
                    confirmed = self.problem.solve_with_fixed(
                        tentative, budget=self.budget)
                    if confirmed:
                        self._demote_warm()
                    return confirmed, True, None
                witness = (self.problem.usage_vector(values)
                           if verdict and values is not None else None)
                return verdict, True, witness
            except BudgetExhausted as exc:
                self._degrade("bnb", exc)
            except IlpError:
                # Cutting-plane cap: fall back to exact branch & bound
                # for this probe only (no budget involved, no latch).
                PERF.inc("pin.bnb_fallbacks")
                return self.problem.solve_with_fixed(
                    tentative, budget=self.budget), True, None
        if self.active_method == "bnb":
            try:
                return self.problem.solve_with_fixed(
                    tentative, budget=self.budget), True, None
            except BudgetExhausted as exc:
                self._degrade("lp", exc)
        # Weakest rung: one bounded LP-relaxation solve, not ticked
        # against the budget (it IS the last-resort answer).
        return self.problem.lp_relaxation_feasible(tentative), False, None

    def _degrade(self, to: str, exc: BudgetExhausted) -> None:
        """Latch onto a cheaper probe strategy for the rest of the run."""
        frm = self.active_method
        self._degraded_method = to
        PERF.inc(f"pin.budget_fallback_{to}")
        # Verdicts cached under the stronger method stay valid for
        # "no" but may be sharper than the weaker oracle; keep them —
        # they are sound answers to the same question.
        if self.diagnostics is not None:
            detail = exc.progress()
            detail.pop("phase", None)
            self.diagnostics.record_fallback(
                "pin_allocation", frm=frm, to=to, **detail)

    def commit(self, node: Node, step: int, schedule: Schedule) -> None:
        group = step % self.L
        proven = self._oracle.get((self._fingerprint, node.name, group))
        self.fixed[node.name] = group
        self._fingerprint = tuple(sorted(self.fixed.items()))
        if self.method == "gomory" and self._degraded_method is None:
            if not self._ready and proven:
                # The tableau was never built and the store already
                # proved this placement feasible: defer the Eq 3.12
                # -> 3.13 update until something actually probes.
                self._pending.append((node.name, group))
                return
            self._materialize()
            self._commit_to_solver(node.name, group)

    # -- warm-start export -----------------------------------------------
    def export_warm_basis(self) -> Optional[WarmBasis]:
        """A :class:`WarmBasis` for structurally-identical neighbors.

        Captured at materialization time (pre-commit tableau); when the
        store answered everything and no tableau was ever built, the
        inherited parent basis is passed through unchanged.
        """
        if self._export is not None:
            return self._export
        return self._warm

    def finalize(self) -> None:
        """Re-record the finished schedule's trajectory, tightly.

        A completed schedule is one concrete feasible point of the pin
        ILP — and of every intermediate ILP along the commit trajectory
        (dropping the extra placements only lowers the ``<=``-form
        loads, and each cover row keeps its one placement).  Its usage
        vector is therefore a witness for the init query *and* every
        (prefix, op, group) step actually taken, far tighter than the
        arbitrary feasible points the probes happened to find.  With
        these on record, a neighbor solve whose budgets fit the usage
        replays the whole trajectory straight from the store and never
        materializes a tableau.

        Skipped when the LP rung answered anything (optimistic "yes"
        verdicts must not seed the store as proofs).
        """
        if self._degraded_method == "lp":
            return
        io_names = {n.name for n in self.graph.io_nodes()}
        if not io_names or set(self.fixed) != io_names:
            return  # partial schedule: nothing sound to re-record
        usage = assignment_usage(self.graph, self.partitioning, self.L,
                                 self.fixed)
        self._store.record((self._sig, (), INIT_NODE, INIT_GROUP),
                           self._budget_vec, True, witness=usage)
        prefix: Dict[str, int] = {}
        for op, group in self.fixed.items():  # insertion == commit order
            key = (self._sig, tuple(sorted(prefix.items())), op, group)
            self._store.record(key, self._budget_vec, True,
                               witness=usage)
            prefix[op] = group

    def oracle_stats(self) -> Dict[str, int]:
        """Checker-level cache/store hit counts (for flow stats)."""
        return {
            "checks": self.checks,
            "cache_hits": self.cache_hits,
            "store_hits": self.store_hits,
        }

    # ---------------------------------------------------------------
    def _sharing_consistent(self, node: Node, step: int,
                            schedule: Schedule) -> bool:
        """Same-value transfers in one group must be in one *step*.

        The group-granular ILP lets sibling transfers of one value share
        output pins within a control-step group; physically they carry
        different pipeline instances unless they are in the very same
        control step, so the checker forbids the mixed case.
        """
        group = step % self.L
        for sibling in self.graph.values_map().get(node.value, []):
            if sibling.name == node.name:
                continue
            if not schedule.is_scheduled(sibling.name):
                continue
            other = schedule.step(sibling.name)
            if other % self.L == group and other != step:
                return False
        return True
