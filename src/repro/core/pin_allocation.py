"""Pin allocation for simple partitionings (Chapter 3).

The ILP of Section 3.1.1 asks whether every I/O operation can still be
assigned to some control-step group without exceeding any chip's
input/output pins:

* input:   ``sum B_w x_{w,k} <= I_i``            (3.2 / 3.7 with o_i)
* output:  ``sum B_v y_{v,k} <= O_j``            (3.5 / 3.8 with o_j)
* link:    ``sum_{w in W_v} x_{w,k} <= |W_v| y_{v,k}``        (3.6)
* cover:   ``sum_k x_{w,k} >= 1``                             (3.4)

with ``o_j`` integer output-pin-split variables when the chips do not
fix the input/output pin division.

Bundle refinement
-----------------
Pins are physically grouped into *bundles* (nets): a chip's pins facing
the outside world cannot double as pins on an interchip star bundle —
only transfers on the *same net* may time-share pins across control-step
groups.  The per-group constraints above are therefore necessary but not
sufficient for the constructive connection of Theorem 3.1 once external
traffic enters the picture.  This implementation adds the bundle-aware
strengthening: per chip end, ``max_k(external bits) +
max_k(interchip bits) <= pins`` (each max realized by an auxiliary
integer variable), and the pseudo partition pays per-chip dedicated
bundles.  Theorem 3.1 then guarantees the interchip share is wireable,
and the external share is point-to-point by construction.

The trivial objective makes the initial tableau dual feasible, so the
Gomory dual all-integer algorithm (Section 3.3) answers feasibility; the
scheduler commits ``x_{w,k} >= 1`` incrementally as operations are
placed (the Equations 3.12 -> 3.13 tableau update).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from repro.cdfg.graph import Cdfg, Node
from repro.errors import IlpError, InfeasibleError
from repro.ilp import (DualAllIntegerSolver, Model, Var, lsum, solve_ilp)
from repro.ilp.model import LinExpr, SolveStatus
from repro.ilp.simplex import solve_lp
from repro.partition.model import OUTSIDE_WORLD, Partitioning
from repro.perf import PERF
from repro.robustness.budget import BudgetExhausted, as_token
from repro.scheduling.base import Schedule


class PinAllocationProblem:
    """Builds and owns the Section 3.1.1 model for one design."""

    def __init__(self, graph: Cdfg, partitioning: Partitioning,
                 initiation_rate: int) -> None:
        self.graph = graph
        self.partitioning = partitioning
        self.L = initiation_rate
        self.model = Model("pin-allocation")
        self.x: Dict[Tuple[str, int], Var] = {}
        self.y: Dict[Tuple[str, int], Var] = {}
        self.o: Dict[int, Var] = {}
        self._build()

    # ------------------------------------------------------------------
    def _chip_dest_members(self, members: List[Node]) -> List[Node]:
        return [m for m in members if m.dest_partition != OUTSIDE_WORLD]

    def _out_term(self, members: List[Node], value: str, k: int):
        """Shared-output load term: y for multi-fanout, x otherwise."""
        if len(members) > 1:
            key = (value, k)
            if key not in self.y:
                self.y[key] = self.model.binary(f"y[{value},{k}]")
                self.model.add(
                    lsum(self.x[(m.name, k)] for m in members)
                    <= len(members) * self.y[key],
                    name=f"link[{value},{k}]")
            return self.y[key]
        return self.x[(members[0].name, k)]

    def _build(self) -> None:
        model, L = self.model, self.L
        graph = self.graph
        ios = graph.io_nodes()
        values = graph.values_map()

        for node in ios:
            for k in range(L):
                self.x[(node.name, k)] = model.binary(f"x[{node.name},{k}]")

        for index in self.partitioning.indices():
            spec = self.partitioning.chip(index)
            if spec.bidirectional:
                raise IlpError(
                    "the Chapter 3 pin-allocation model assumes "
                    "unidirectional pins")
            if not spec.split_fixed:
                self.o[index] = model.add_var(
                    f"o[{index}]", 0, spec.total_pins)

        for index in self.partitioning.indices():
            if index == OUTSIDE_WORLD:
                self._build_world(ios)
            else:
                self._build_chip(index, ios, values)

        # Every I/O operation lands in some group (Constraint 3.4).
        for node in ios:
            model.add(
                lsum(self.x[(node.name, k)] for k in range(L)) >= 1,
                name=f"cover[{node.name}]")

        model.minimize(0)

    # ------------------------------------------------------------------
    def _input_pins_bound(self, index: int):
        """(expression, rhs) such that input load <= expr form works."""
        spec = self.partitioning.chip(index)
        if spec.split_fixed:
            return None, spec.input_pins
        return self.o[index], spec.total_pins

    def _build_chip(self, index: int, ios: List[Node],
                    values: Dict[str, List[Node]]) -> None:
        model, L = self.model, self.L
        spec = self.partitioning.chip(index)
        ext_in = [n for n in ios if n.dest_partition == index
                  and n.source_partition == OUTSIDE_WORLD]
        star_in = [n for n in ios if n.dest_partition == index
                   and n.source_partition != OUTSIDE_WORLD]
        out_values = {v: members for v, members in values.items()
                      if members[0].source_partition == index}

        bound = spec.total_pins
        # Bundle peaks: external and interchip traffic use disjoint
        # nets, so each side pays its own per-group maximum.
        ein = model.add_var(f"ein[{index}]", 0, bound) if ext_in else None
        sin = model.add_var(f"sin[{index}]", 0, bound) if star_in else None
        for k in range(L):
            if ext_in:
                model.add(ein >= lsum(n.bit_width * self.x[(n.name, k)]
                                      for n in ext_in))
            if star_in:
                model.add(sin >= lsum(n.bit_width * self.x[(n.name, k)]
                                      for n in star_in))
        in_terms = [t for t in (ein, sin) if t is not None]
        if in_terms:
            load = lsum(in_terms)
            if spec.split_fixed:
                model.add(load <= spec.input_pins,
                          name=f"in[{index}]")
            else:
                model.add(load + self.o[index] <= spec.total_pins,
                          name=f"in[{index}]")

        eout = sout = None
        ext_vals = {v: [m for m in ms
                        if m.dest_partition == OUTSIDE_WORLD]
                    for v, ms in out_values.items()}
        star_vals = {v: self._chip_dest_members(ms)
                     for v, ms in out_values.items()}
        if any(ext_vals.values()):
            eout = model.add_var(f"eout[{index}]", 0, bound)
            for k in range(L):
                terms = []
                for value, members in sorted(ext_vals.items()):
                    if members:
                        terms.append(members[0].bit_width
                                     * self._out_term(members, value + "@w",
                                                      k))
                model.add(eout >= lsum(terms))
        if any(star_vals.values()):
            sout = model.add_var(f"sout[{index}]", 0, bound)
            for k in range(L):
                terms = []
                for value, members in sorted(star_vals.items()):
                    if members:
                        terms.append(members[0].bit_width
                                     * self._out_term(members, value, k))
                model.add(sout >= lsum(terms))
        out_terms = [t for t in (eout, sout) if t is not None]
        if out_terms:
            load = lsum(out_terms)
            if spec.split_fixed:
                model.add(load <= spec.output_pins,
                          name=f"out[{index}]")
            else:
                model.add(load - self.o[index] <= 0,
                          name=f"out[{index}]")

    def _build_world(self, ios: List[Node]) -> None:
        """The pseudo partition pays one dedicated bundle per chip."""
        model, L = self.model, self.L
        spec = self.partitioning.chip(OUTSIDE_WORLD)
        chips = [i for i in self.partitioning.indices()
                 if i != OUTSIDE_WORLD]
        out_bundles = []
        in_bundles = []
        for chip in chips:
            to_chip = [n for n in ios
                       if n.source_partition == OUTSIDE_WORLD
                       and n.dest_partition == chip]
            from_chip = [n for n in ios
                         if n.source_partition == chip
                         and n.dest_partition == OUTSIDE_WORLD]
            if to_chip:
                bundle = model.add_var(f"w.out[{chip}]", 0,
                                       spec.total_pins)
                for k in range(L):
                    model.add(bundle >= lsum(
                        n.bit_width * self.x[(n.name, k)]
                        for n in to_chip))
                out_bundles.append(bundle)
            if from_chip:
                bundle = model.add_var(f"w.in[{chip}]", 0,
                                       spec.total_pins)
                for k in range(L):
                    model.add(bundle >= lsum(
                        n.bit_width * self.x[(n.name, k)]
                        for n in from_chip))
                in_bundles.append(bundle)
        # P0's *output* pins drive the system's inputs and vice versa.
        if out_bundles:
            if spec.split_fixed:
                model.add(lsum(out_bundles) <= spec.output_pins,
                          name="world-out")
            else:
                model.add(lsum(out_bundles) - self.o[OUTSIDE_WORLD] <= 0,
                          name="world-out")
        if in_bundles:
            if spec.split_fixed:
                model.add(lsum(in_bundles) <= spec.input_pins,
                          name="world-in")
            else:
                model.add(lsum(in_bundles) + self.o[OUTSIDE_WORLD]
                          <= spec.total_pins, name="world-in")

    # ------------------------------------------------------------------
    def var(self, op: str, group: int) -> Var:
        return self.x[(op, group)]

    def tableau_size(self) -> Tuple[int, int]:
        """(variables, constraints) — Section 3.1.2's sizing."""
        n, _n_int, m = self.model.stats()
        return n, m

    def build_aggregated_model(self) -> Model:
        """The Section 3.1.2 size reduction, as a separate model.

        Single-fanout transfers with the same (source, destination,
        bit width) are interchangeable for feasibility; ``q`` of them
        collapse into one integer variable per group with
        ``sum_k x[class,k] >= q``.  "In practice, most of the values
        have the same bit width[, so] the tableau size can be reduced
        quite a lot."  Used for feasibility probes and size reporting —
        the *incremental* checker keeps per-op variables because
        scheduling pins individual operations.
        """
        graph, L = self.graph, self.L
        model = Model("pin-allocation-aggregated")
        values = graph.values_map()

        classes: Dict[Tuple[int, int, int], List[Node]] = {}
        multi: List[Node] = []
        for node in graph.io_nodes():
            if len(values[node.value or node.name]) > 1:
                multi.append(node)
            else:
                key = (node.source_partition, node.dest_partition,
                       node.bit_width)
                classes.setdefault(key, []).append(node)

        agg: Dict[Tuple[Tuple[int, int, int], int], Var] = {}
        for key, members in sorted(classes.items()):
            q = len(members)
            for k in range(L):
                agg[(key, k)] = model.add_var(
                    f"x[{key[0]}->{key[1]}w{key[2]},{k}]", 0, q)
            model.add(lsum(agg[(key, k)] for k in range(L)) >= q)
        xm: Dict[Tuple[str, int], Var] = {}
        ym: Dict[Tuple[str, int], Var] = {}
        for node in multi:
            for k in range(L):
                xm[(node.name, k)] = model.binary(
                    f"x[{node.name},{k}]")
        for value, members in sorted(values.items()):
            if len(members) <= 1:
                continue
            for k in range(L):
                y = model.binary(f"y[{value},{k}]")
                ym[(value, k)] = y
                model.add(lsum(xm[(m.name, k)] for m in members)
                          <= len(members) * y)
        for node in multi:
            model.add(lsum(xm[(node.name, k)] for k in range(L)) >= 1)

        for index in self.partitioning.indices():
            spec = self.partitioning.chip(index)
            for k in range(L):
                in_terms = []
                for key, members in sorted(classes.items()):
                    if key[1] == index:
                        in_terms.append(key[2] * agg[(key, k)])
                for node in multi:
                    if node.dest_partition == index:
                        in_terms.append(node.bit_width
                                        * xm[(node.name, k)])
                out_terms = []
                for key, members in sorted(classes.items()):
                    if key[0] == index:
                        out_terms.append(key[2] * agg[(key, k)])
                seen = set()
                for node in multi:
                    value = node.value or node.name
                    if node.source_partition == index \
                            and value not in seen:
                        seen.add(value)
                        out_terms.append(node.bit_width
                                         * ym[(value, k)])
                if not in_terms and not out_terms:
                    continue
                if spec.split_fixed:
                    if in_terms:
                        model.add(lsum(in_terms) <= spec.input_pins)
                    if out_terms:
                        model.add(lsum(out_terms) <= spec.output_pins)
                else:
                    o = model.var_by_name(f"o[{index}]") \
                        if f"o[{index}]" in model._names \
                        else model.add_var(f"o[{index}]", 0,
                                           spec.total_pins)
                    if in_terms:
                        model.add(lsum(in_terms) + o <= spec.total_pins)
                    if out_terms:
                        model.add(lsum(out_terms) - o <= 0)
        model.minimize(0)
        return model

    def solve_with_fixed(self, fixed: Mapping[str, int],
                         budget=None) -> bool:
        """One-shot feasibility with some ops pinned to groups (B&B)."""
        model = _clone_with_fixed(self.model, self.x, fixed)
        return solve_ilp(model, budget=budget).feasible

    def lp_relaxation_feasible(self, fixed: Mapping[str, int]) -> bool:
        """Feasibility of the LP *relaxation* with ops pinned to groups.

        The weakest rung of the degradation chain: relaxation
        feasibility is a necessary condition for ILP feasibility, so a
        "no" here is sound while a "yes" is optimistic — the end-to-end
        :meth:`repro.core.flow.SynthesisResult.require_valid` check
        still guards every answer built on top of it.
        """
        model = _clone_with_fixed(self.model, self.x, fixed)
        return solve_lp(model).status is SolveStatus.OPTIMAL


def _clone_with_fixed(model: Model, x: Mapping[Tuple[str, int], Var],
                      fixed: Mapping[str, int]) -> Model:
    clone = Model(model.name)
    raised = {x[(op, group)].index for op, group in fixed.items()}
    for var in model.vars:
        lb = 1 if var.index in raised else var.lb
        clone.add_var(var.name, lb, var.ub, var.integer)
    clone.constraints = list(model.constraints)
    clone.objective = model.objective
    clone.sense = model.sense
    return clone


class PinAllocationChecker:
    """IoHooks implementation: the bold boxes of Figure 3.4.

    ``method="gomory"`` (default) keeps one incrementally-updated dual
    all-integer tableau, exactly as Section 3.3 describes; ``"bnb"``
    re-solves from scratch with branch & bound (used for cross-checking
    and as an automatic fallback if the cutting planes hit their
    iteration cap).

    Feasibility oracle cache
    ------------------------
    The probe verdict ("would pinning op ``w`` to group ``k`` keep the
    ILP feasible?") is a pure function of the *set* of committed
    ``x_{w,k} >= 1`` bounds plus the probed bound — it does not depend
    on the order bounds were committed or on the cuts accumulated along
    the way (cuts never remove integer points).  The checker therefore
    memoizes verdicts under a canonical fingerprint of the committed
    set; the list scheduler re-probes equivalent states constantly
    (priority ties within a step, the same group recurring every L
    steps, postpone/retry passes), and each hit skips a full
    cutting-plane probe.

    Graceful degradation
    --------------------
    Under a :class:`repro.robustness.budget.SolveBudget` the probe
    strategy forms a fallback chain: when the cutting planes exhaust
    their budget share the checker latches onto exact branch & bound;
    when that exhausts too it latches onto the conservative
    LP-relaxation bound (sound "no", optimistic "yes" — the flow-level
    ``require_valid()`` still verifies the final answer).  Every latch
    is recorded on the ``diagnostics`` trail.
    """

    def __init__(self, graph: Cdfg, partitioning: Partitioning,
                 initiation_rate: int, method: str = "gomory",
                 budget=None, diagnostics=None) -> None:
        if method not in ("gomory", "bnb"):
            raise IlpError(f"unknown method {method!r}")
        self.problem = PinAllocationProblem(graph, partitioning,
                                            initiation_rate)
        self.graph = graph
        self.L = initiation_rate
        self.method = method
        self.budget = as_token(budget)
        self.diagnostics = diagnostics
        #: Latched budget fallback: None (configured method) -> "bnb"
        #: -> "lp".  Never un-latches within one synthesis run.
        self._degraded_method: Optional[str] = None
        self.fixed: Dict[str, int] = {}
        self.checks = 0
        self.cache_hits = 0
        self._oracle: Dict[Tuple[Tuple[Tuple[str, int], ...], str, int],
                           bool] = {}
        self._fingerprint: Tuple[Tuple[str, int], ...] = ()
        self._solver: Optional[DualAllIntegerSolver] = None
        if method == "gomory":
            self._solver = DualAllIntegerSolver(self.problem.model,
                                                budget=self.budget)
            if not self._solver.reoptimize():
                raise InfeasibleError(
                    "no feasible pin allocation exists for this design "
                    "(infeasible initial ILP, Section 3.3)")
        else:
            if not self.problem.solve_with_fixed({}, budget=self.budget):
                raise InfeasibleError(
                    "no feasible pin allocation exists for this design")

    # -- IoHooks ---------------------------------------------------------
    def can_schedule(self, node: Node, step: int,
                     schedule: Schedule) -> bool:
        group = step % self.L
        if not self._sharing_consistent(node, step, schedule):
            return False
        self.checks += 1
        PERF.inc("pin.checks")
        key = (self._fingerprint, node.name, group)
        cached = self._oracle.get(key)
        if cached is not None:
            self.cache_hits += 1
            PERF.inc("pin.cache_hits")
            return cached
        PERF.inc("pin.cache_misses")
        verdict = self._probe(node, group)
        self._oracle[key] = verdict
        return verdict

    @property
    def active_method(self) -> str:
        """The probe strategy currently in force (after any latches)."""
        return self._degraded_method or self.method

    def _probe(self, node: Node, group: int) -> bool:
        """Uncached feasibility probe (solver, branch & bound, or LP)."""
        method = self.active_method
        tentative = dict(self.fixed)
        tentative[node.name] = group
        if method == "gomory":
            assert self._solver is not None
            var = self.problem.var(node.name, group)
            try:
                return self._solver.try_lower_bound(var)
            except BudgetExhausted as exc:
                self._degrade("bnb", exc)
                method = "bnb"
            except IlpError:
                # Cutting-plane cap: fall back to exact branch & bound
                # for this probe only (no budget involved, no latch).
                PERF.inc("pin.bnb_fallbacks")
                return self.problem.solve_with_fixed(tentative,
                                                     budget=self.budget)
        if method == "bnb":
            try:
                return self.problem.solve_with_fixed(tentative,
                                                     budget=self.budget)
            except BudgetExhausted as exc:
                self._degrade("lp", exc)
        # Weakest rung: one bounded LP-relaxation solve, not ticked
        # against the budget (it IS the last-resort answer).
        return self.problem.lp_relaxation_feasible(tentative)

    def _degrade(self, to: str, exc: BudgetExhausted) -> None:
        """Latch onto a cheaper probe strategy for the rest of the run."""
        frm = self.active_method
        self._degraded_method = to
        PERF.inc(f"pin.budget_fallback_{to}")
        # Verdicts cached under the stronger method stay valid for
        # "no" but may be sharper than the weaker oracle; keep them —
        # they are sound answers to the same question.
        if self.diagnostics is not None:
            detail = exc.progress()
            detail.pop("phase", None)
            self.diagnostics.record_fallback(
                "pin_allocation", frm=frm, to=to, **detail)

    def commit(self, node: Node, step: int, schedule: Schedule) -> None:
        group = step % self.L
        self.fixed[node.name] = group
        self._fingerprint = tuple(sorted(self.fixed.items()))
        if self.method == "gomory" and self._degraded_method is None:
            assert self._solver is not None
            var = self.problem.var(node.name, group)
            try:
                self._solver.commit_lower_bound(var)
            except BudgetExhausted as exc:
                # The commit's re-optimization ran out of budget; the
                # tableau was rolled back, so abandon it and latch onto
                # branch & bound (``self.fixed`` carries the state).
                self._degrade("bnb", exc)

    # ---------------------------------------------------------------
    def _sharing_consistent(self, node: Node, step: int,
                            schedule: Schedule) -> bool:
        """Same-value transfers in one group must be in one *step*.

        The group-granular ILP lets sibling transfers of one value share
        output pins within a control-step group; physically they carry
        different pipeline instances unless they are in the very same
        control step, so the checker forbids the mixed case.
        """
        group = step % self.L
        for sibling in self.graph.values_map().get(node.value, []):
            if sibling.name == node.name:
                continue
            if not schedule.is_scheduled(sibling.name):
                continue
            other = schedule.step(sibling.name)
            if other % self.L == group and other != step:
                return False
        return True
