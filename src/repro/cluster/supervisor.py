"""``repro cluster``: spawn and supervise a whole cluster locally.

One command brings up the full tree on one machine:

* a **cache server** subprocess (``repro cache-server``) backed by the
  shared JSONL result cache;
* N **shard** subprocesses (``repro serve``) with their ring seat
  flags set and their caches mounted ``remote://`` on the cache
  server, so every shard reads through — and writes back to — the same
  store;
* the **front tier** in this process, ring-routing requests over the
  shards.

SIGTERM/SIGINT drain the tree in dependency order: the front stops
admitting and finishes in-flight proxying, then each shard drains its
pool, then the cache server flushes and exits.  Ports default to
OS-assigned free ports so parallel clusters (CI matrix jobs, tests)
never collide; only the front port is user-facing.
"""

from __future__ import annotations

import asyncio
import os
import signal
import socket
import subprocess
import sys
import time
from typing import List, Optional, Tuple

import repro
from repro.errors import ReproError
from repro.cluster.cache_client import CacheClient, CacheClientError
from repro.cluster.front import ClusterConfig, ShardAddress
from repro.cluster.server import FrontServer
from repro.service.client import ServiceClient


def free_port(host: str = "127.0.0.1") -> int:
    """Ask the OS for an unused TCP port (bind-to-zero trick)."""
    with socket.socket() as probe:
        probe.bind((host, 0))
        return probe.getsockname()[1]


def _child_env() -> dict:
    """Child processes must resolve ``repro`` the same way we did.

    The full environment rides along, which is also how observability
    config reaches the shards: ``repro cluster --trace`` mirrors its
    settings into ``REPRO_TRACE*`` (see :func:`repro.obs.configure`),
    so every shard subprocess traces with the same sample rate and
    appends to the same JSONL export (O_APPEND keeps lines atomic).
    """
    env = dict(os.environ)
    src = os.path.dirname(os.path.dirname(os.path.abspath(
        repro.__file__)))
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = (src if not existing
                         else src + os.pathsep + existing)
    return env


def _spawn(argv: List[str]) -> subprocess.Popen:
    # Children inherit stdout/stderr so one `repro cluster` log carries
    # the whole tree (the CI smoke job greps it).
    return subprocess.Popen([sys.executable, "-m", "repro"] + argv,
                            env=_child_env())


def _wait_cache(host: str, port: int, timeout_s: float = 30.0) -> None:
    deadline = time.monotonic() + timeout_s
    while True:
        try:
            client = CacheClient(host, port, timeout_s=2.0)
            try:
                client.ping()
                return
            finally:
                client.close()
        except (OSError, CacheClientError):
            if time.monotonic() >= deadline:
                raise ReproError(
                    f"cache server at {host}:{port} not ready after "
                    f"{timeout_s:.0f}s") from None
            time.sleep(0.1)


def _terminate(label: str, proc: subprocess.Popen,
               timeout_s: float = 60.0) -> int:
    if proc.poll() is None:
        proc.send_signal(signal.SIGTERM)
    try:
        return proc.wait(timeout_s)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.wait(10.0)
        print(f"warning: {label} did not drain within "
              f"{timeout_s:.0f}s; killed", flush=True)
        return 1


def serve_cluster(shards: int = 2, host: str = "127.0.0.1",
                  port: int = 8770, workers_per_shard: int = 1,
                  max_queue: int = 64, pool: str = "process",
                  timeout_ms: float = 30000.0,
                  cache_path: Optional[str] = None,
                  oracle_path: Optional[str] = None,
                  batch_window_ms: float = 10.0) -> int:
    """Blocking entry point for ``repro cluster``; 0 on clean drain."""
    if shards < 1:
        raise ReproError(f"need at least one shard, got {shards}")
    children: List[Tuple[str, subprocess.Popen]] = []

    def _fail_fast(message: str) -> None:
        for _label, proc in reversed(children):
            if proc.poll() is None:
                proc.kill()
                proc.wait(10.0)
        raise ReproError(message)

    cache_port = free_port(host)
    cache_argv = ["cache-server", "--host", host,
                  "--port", str(cache_port)]
    if cache_path:
        cache_argv += ["--path", cache_path]
    children.append(("cache-server", _spawn(cache_argv)))
    try:
        _wait_cache(host, cache_port)
    except ReproError as exc:
        _fail_fast(str(exc))

    addresses: List[ShardAddress] = []
    for index in range(shards):
        shard_port = free_port(host)
        name = f"shard-{index}"
        argv = ["serve", "--host", host, "--port", str(shard_port),
                "--workers", str(workers_per_shard),
                "--max-queue", str(max_queue), "--pool", pool,
                "--timeout-ms", str(timeout_ms),
                "--cache", f"remote://{host}:{cache_port}",
                "--shard-name", name, "--shard-index", str(index),
                "--shard-count", str(shards)]
        if oracle_path:
            argv += ["--oracle-cache", f"{oracle_path}.{name}"]
        children.append((name, _spawn(argv)))
        addresses.append(ShardAddress(name, host, shard_port))
    for address in addresses:
        try:
            ServiceClient(address.host, address.port).wait_until_ready(
                timeout_s=120.0)
        except (OSError, ReproError):
            _fail_fast(f"shard {address.name} at {address.host}:"
                       f"{address.port} never became ready")

    config = ClusterConfig(shards=tuple(addresses), host=host,
                           port=port,
                           cache_address=f"{host}:{cache_port}",
                           batch_window_ms=batch_window_ms,
                           default_timeout_ms=timeout_ms)

    async def _main() -> None:
        server = await FrontServer(config).start()
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, stop.set)
            except (NotImplementedError, RuntimeError):
                pass
        print(f"repro cluster listening on {config.host}:{server.port} "
              f"(shards={shards}, workers_per_shard="
              f"{workers_per_shard}, pool={pool}, "
              f"cache={host}:{cache_port} "
              f"[{cache_path or 'memory'}])", flush=True)
        await stop.wait()
        print("draining cluster: front first, then shards, then "
              "cache ...", flush=True)
        await server.shutdown()
        counters = server.front.metrics.snapshot()["counters"]
        print(f"cluster drained cleanly: "
              f"requests={counters['requests']} "
              f"proxied={counters['proxied']} "
              f"batched={counters['batched']} "
              f"front_coalesced={counters['front_coalesced']} "
              f"failovers={counters['failovers']}", flush=True)

    exit_code = 0
    try:
        asyncio.run(_main())
    finally:
        # Drain in reverse dependency order: shards before the cache
        # server they write through.
        for label, proc in reversed(children):
            if _terminate(label, proc) != 0:
                exit_code = 1
    return exit_code
