"""Sharded multi-node service tier.

Scales the single-node synthesis service (:mod:`repro.service`) to a
fleet while keeping its core economy — solve each distinct problem
once — fleet-wide:

* :mod:`repro.cluster.ring` — consistent hashing with virtual nodes;
  every request's content key has exactly one owner shard, so
  per-shard coalescing composes to fleet-wide exactly-once solving,
  and removing a shard only remaps that shard's keys.
* :mod:`repro.cluster.protocol` / :mod:`~repro.cluster.cache_server` /
  :mod:`~repro.cluster.cache_client` — a length-prefixed-JSON cache
  protocol over the JSONL :class:`~repro.explore.cache.ResultCache`,
  plus the ``remote://host:port`` read-through layer every shard (and
  the front) mounts, so one shard's solve is every shard's cache hit.
* :mod:`repro.cluster.front` — the routing front tier: ring routing
  with drain/death failover, batched admission (same-design requests
  in a short window fold into one sweep per owner shard), and fleet
  metrics aggregation.
* :mod:`repro.cluster.supervisor` — ``repro cluster --shards N``:
  spawn cache server + shards + front as one supervised tree with a
  graceful SIGTERM drain.
"""

from repro.cluster.cache_client import (CacheClient, CacheClientError,
                                        ReadThroughCache,
                                        parse_address)
from repro.cluster.cache_server import (CacheServer,
                                        ThreadedCacheServer,
                                        serve_cache)
from repro.cluster.front import (ClusterConfig, FrontTier,
                                 ShardAddress, ShardState)
from repro.cluster.protocol import (CACHE_PROTOCOL, ProtocolError,
                                    recv_frame, send_frame)
from repro.cluster.ring import DEFAULT_REPLICAS, HashRing, ring_position
from repro.cluster.server import FrontServer, ThreadedFrontTier
from repro.cluster.supervisor import free_port, serve_cluster

__all__ = [
    "CACHE_PROTOCOL",
    "CacheClient",
    "CacheClientError",
    "CacheServer",
    "ClusterConfig",
    "DEFAULT_REPLICAS",
    "FrontServer",
    "FrontTier",
    "HashRing",
    "ProtocolError",
    "ReadThroughCache",
    "ShardAddress",
    "ShardState",
    "ThreadedCacheServer",
    "ThreadedFrontTier",
    "free_port",
    "parse_address",
    "recv_frame",
    "ring_position",
    "send_frame",
    "serve_cache",
    "serve_cluster",
]
