"""HTTP server wrapper for the cluster front tier.

Reuses the hand-rolled HTTP/1.1 framing from
:mod:`repro.service.server` (request parsing, keep-alive, JSON
responses) and dispatches into :meth:`FrontTier.handle`.  Mirrors the
service's three entry-point shapes:

* :class:`FrontServer` — async core (start / shutdown) for embedding;
* :class:`ThreadedFrontTier` — daemon-thread harness for tests and
  the cluster benchmark (``port=0`` picks a free port);
* the blocking path lives in :mod:`repro.cluster.supervisor`, which
  owns the whole process tree (cache server + shards + front).
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import threading
from typing import Any, Dict, Optional
from urllib.parse import urlsplit

from repro.errors import ReproError
from repro.cluster.front import ClusterConfig, FrontTier
from repro.service.server import (_HttpError, _read_request,
                                  _write_response)


async def _handle_connection(front: FrontTier,
                             reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
    try:
        while True:
            try:
                request = await _read_request(
                    reader, front.config.max_body_bytes)
            except _HttpError as exc:
                await _write_response(
                    writer, exc.status,
                    {"schema": "repro-service-error/1",
                     "error": str(exc)}, {}, keep_alive=False)
                break
            if request is None:
                break
            method, target, headers, body_bytes = request
            keep_alive = headers.get(
                "connection", "keep-alive").lower() != "close"
            parts = urlsplit(target)
            path, query = parts.path, parts.query
            body: Optional[Dict[str, Any]] = None
            if body_bytes:
                try:
                    parsed = json.loads(body_bytes)
                    body = parsed if isinstance(parsed, dict) else None
                except json.JSONDecodeError:
                    body = None
            try:
                status, payload, extra = await front.handle(
                    method, path, body, headers=headers, query=query)
            except Exception as exc:  # keep the front alive
                front.metrics.inc("errors")
                status, payload, extra = 500, {
                    "schema": "repro-service-error/1",
                    "error": f"{type(exc).__name__}: {exc}"}, {}
            await _write_response(writer, status, payload, extra,
                                  keep_alive)
            if not keep_alive:
                break
    except (ConnectionResetError, BrokenPipeError,
            asyncio.IncompleteReadError):
        pass
    except asyncio.CancelledError:
        pass
    finally:
        with contextlib.suppress(Exception, asyncio.CancelledError):
            writer.close()
            await writer.wait_closed()


class FrontServer:
    """Async core: a routing front tier plus a listening socket."""

    def __init__(self, config: ClusterConfig) -> None:
        self.config = config
        self.front = FrontTier(config)
        self.port: Optional[int] = None
        self._server: Optional[asyncio.base_events.Server] = None

    async def start(self) -> "FrontServer":
        # First shard probe happens before the socket opens, so the
        # very first /healthz already reflects real fleet state.
        await self.front.start()
        self._server = await asyncio.start_server(
            lambda r, w: _handle_connection(self.front, r, w),
            self.config.host, self.config.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def shutdown(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.front.drain()


class ThreadedFrontTier:
    """Run a front tier in a daemon thread (tests and benchmarks)."""

    def __init__(self, config: ClusterConfig) -> None:
        self.config = config
        self.server: Optional[FrontServer] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._error: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None

    @property
    def front(self) -> FrontTier:
        assert self.server is not None
        return self.server.front

    @property
    def port(self) -> int:
        assert self.server is not None and self.server.port is not None
        return self.server.port

    def start(self) -> "ThreadedFrontTier":
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-cluster-front")
        self._thread.start()
        if not self._started.wait(timeout=60.0):
            raise ReproError("front tier thread failed to start")
        if self._error is not None:
            raise ReproError(
                f"front tier failed to start: {self._error}") \
                from self._error
        return self

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:
            self._error = exc
        finally:
            self._started.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self.server = await FrontServer(self.config).start()
        self._started.set()
        await self._stop.wait()
        await self.server.shutdown()

    def stop(self, timeout_s: float = 60.0) -> None:
        if self._loop is not None and self._stop is not None:
            with contextlib.suppress(RuntimeError):
                self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout_s)

    def __enter__(self) -> "ThreadedFrontTier":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
