"""Shared result-cache server: one ResultCache, many shards.

A small asyncio TCP server speaking the length-prefixed JSON protocol
of :mod:`repro.cluster.protocol` over one
:class:`repro.explore.cache.ResultCache`.  Every solver shard mounts
it through :class:`repro.cluster.cache_client.ReadThroughCache`, so a
point solved by any shard is a cache hit for the whole fleet — which
is what lets the front tier route by content key without ever
re-solving work another shard already finished.

Operations (all requests carry ``schema_version``; newer-than-known
versions are refused):

``ping``     liveness + entry count
``get``      ``{"key"}`` -> ``{"found", "record"}``
``put``      ``{"key", "record"}`` -> ``{"stored"}`` — the cache's own
             rules apply: only ``ok``/``degraded`` records persist
``compact``  rewrite the JSONL file down to the live index
``stats``    cache stats + server counters

Cache file I/O happens inline on the event loop: appends are one
``O_APPEND`` write of a few KB, which is far below the scheduling
noise of the solves whose results they store.
"""

from __future__ import annotations

import asyncio
import contextlib
import signal
import threading
from typing import Any, Dict, Optional

from repro.errors import ReproError
from repro.explore.cache import ResultCache
from repro.io_json import SCHEMA_VERSION
from repro.cluster.protocol import (CACHE_PROTOCOL, ProtocolError,
                                    check_frame_version, read_frame,
                                    write_frame)

#: Server-side counters reported by the ``stats`` op.
SERVER_COUNTERS = ("connections", "gets", "hits", "puts", "stored",
                   "compactions", "errors")


class CacheServer:
    """Async core: a ResultCache behind a framed-protocol listener."""

    def __init__(self, cache: ResultCache, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.cache = cache
        self.host = host
        self.config_port = port
        self.port: Optional[int] = None
        self.counters: Dict[str, int] = {n: 0 for n in SERVER_COUNTERS}
        self._server: Optional[asyncio.base_events.Server] = None

    # ------------------------------------------------------------------
    async def start(self) -> "CacheServer":
        self._server = await asyncio.start_server(
            self._handle, self.host, self.config_port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def shutdown(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    # ------------------------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        self.counters["connections"] += 1
        try:
            while True:
                try:
                    request = await read_frame(reader)
                except ProtocolError as exc:
                    self.counters["errors"] += 1
                    await write_frame(writer, self._error(str(exc)))
                    break
                if request is None:
                    break
                await write_frame(writer, self.dispatch(request))
        except (ConnectionResetError, BrokenPipeError,
                asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Loop shutdown while parked on a read from a persistent
            # client connection; finish quietly so asyncio's
            # connection_made callback has nothing to log.
            pass
        finally:
            with contextlib.suppress(Exception, asyncio.CancelledError):
                writer.close()
                await writer.wait_closed()

    # ------------------------------------------------------------------
    def _ok(self, **fields: Any) -> Dict[str, Any]:
        out = {"ok": True, "schema": CACHE_PROTOCOL,
               "schema_version": SCHEMA_VERSION}
        out.update(fields)
        return out

    def _error(self, message: str) -> Dict[str, Any]:
        self.counters["errors"] += 1
        return {"ok": False, "schema": CACHE_PROTOCOL,
                "schema_version": SCHEMA_VERSION, "error": message}

    def dispatch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """One request object -> one response object (pure, testable)."""
        complaint = check_frame_version(request)
        if complaint is not None:
            return self._error(complaint)
        op = request.get("op")
        if op == "ping":
            return self._ok(entries=len(self.cache))
        if op == "get":
            key = request.get("key")
            if not isinstance(key, str) or not key:
                return self._error("get needs a non-empty string 'key'")
            self.counters["gets"] += 1
            record = self.cache.get(key)
            if record is not None:
                self.counters["hits"] += 1
            return self._ok(found=record is not None, record=record)
        if op == "put":
            key = request.get("key")
            record = request.get("record")
            if not isinstance(key, str) or not key:
                return self._error("put needs a non-empty string 'key'")
            if not isinstance(record, dict):
                return self._error("put needs an object 'record'")
            self.counters["puts"] += 1
            stored = self.cache.put(key, record)
            if stored:
                self.counters["stored"] += 1
            return self._ok(stored=stored)
        if op == "compact":
            self.counters["compactions"] += 1
            return self._ok(summary=self.cache.compact())
        if op == "stats":
            return self._ok(stats=self.cache.stats(),
                            server=dict(self.counters))
        return self._error(f"unknown op {op!r}")


# ---------------------------------------------------------------------
def serve_cache(path: Optional[str], host: str = "127.0.0.1",
                port: int = 8769, sync: bool = True) -> int:
    """Blocking entry point for ``repro cache-server``; 0 on drain."""

    async def _main() -> None:
        cache = ResultCache(path, sync=sync)
        server = await CacheServer(cache, host, port).start()
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, stop.set)
            except (NotImplementedError, RuntimeError):
                pass
        print(f"repro cache server listening on {host}:{server.port} "
              f"(path={path or 'memory'}, entries={len(cache)})",
              flush=True)
        await stop.wait()
        await server.shutdown()
        print(f"cache server drained cleanly: entries={len(cache)} "
              f"gets={server.counters['gets']} "
              f"hits={server.counters['hits']} "
              f"stored={server.counters['stored']}", flush=True)

    asyncio.run(_main())
    return 0


# ---------------------------------------------------------------------
class ThreadedCacheServer:
    """Run a cache server in a daemon thread (tests and benchmarks)."""

    def __init__(self, cache: Optional[ResultCache] = None,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.cache = cache if cache is not None else ResultCache()
        self.server = CacheServer(self.cache, host, port)
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._error: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None

    @property
    def port(self) -> int:
        assert self.server.port is not None
        return self.server.port

    @property
    def address(self) -> str:
        return f"{self.server.host}:{self.port}"

    def start(self) -> "ThreadedCacheServer":
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-cache-server")
        self._thread.start()
        if not self._started.wait(timeout=30.0):
            raise ReproError("cache server thread failed to start")
        if self._error is not None:
            raise ReproError(
                f"cache server failed to start: {self._error}") \
                from self._error
        return self

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:
            self._error = exc
        finally:
            self._started.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        await self.server.start()
        self._started.set()
        await self._stop.wait()
        await self.server.shutdown()

    def stop(self, timeout_s: float = 30.0) -> None:
        if self._loop is not None and self._stop is not None:
            with contextlib.suppress(RuntimeError):
                self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout_s)

    def __enter__(self) -> "ThreadedCacheServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
