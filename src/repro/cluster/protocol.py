"""Length-prefixed JSON framing for the shared-cache protocol.

One frame is a 4-byte big-endian unsigned length followed by exactly
that many bytes of UTF-8 JSON encoding a single object.  Requests
carry ``{"op": ..., "schema_version": ...}`` plus op-specific fields;
responses carry ``{"ok": true/false, "schema": "repro-cache/1",
"schema_version": ...}`` plus results.  The version gate mirrors
:func:`repro.io_json.check_schema_version`: a peer speaking a *newer*
schema than this process understands is refused loudly instead of
being misread.

Both sides of the protocol live here — async stream helpers for the
server (:mod:`repro.cluster.cache_server`) and blocking socket helpers
for the client (:mod:`repro.cluster.cache_client`) — so the frame
format cannot drift between them.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
from typing import Any, Dict, Optional

from repro.errors import ReproError
from repro.io_json import SCHEMA_VERSION

#: Protocol identifier stamped on every response.
CACHE_PROTOCOL = "repro-cache/1"

#: Hard bound on one frame; a synthesis record is a few KB, so this is
#: generous headroom, not a tuning knob.
MAX_FRAME_BYTES = 16 << 20

_HEADER = struct.Struct(">I")


class ProtocolError(ReproError):
    """Malformed, truncated, or oversized frame."""


# ---------------------------------------------------------------------
def encode_frame(obj: Dict[str, Any]) -> bytes:
    body = json.dumps(obj, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds {MAX_FRAME_BYTES}")
    return _HEADER.pack(len(body)) + body


def decode_body(data: bytes) -> Dict[str, Any]:
    try:
        obj = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"bad frame payload: {exc}") from None
    if not isinstance(obj, dict):
        raise ProtocolError(
            f"frame payload must be a JSON object, "
            f"got {type(obj).__name__}")
    return obj


def check_frame_version(obj: Dict[str, Any]) -> Optional[str]:
    """None if the peer's schema_version is acceptable, else why not."""
    version = obj.get("schema_version", SCHEMA_VERSION)
    if not isinstance(version, int) or isinstance(version, bool):
        return f"schema_version must be an integer, got {version!r}"
    if version > SCHEMA_VERSION:
        return (f"peer speaks cache schema_version {version}, newer "
                f"than supported {SCHEMA_VERSION}; upgrade this side")
    return None


# -- asyncio side ------------------------------------------------------
async def read_frame(reader: asyncio.StreamReader
                     ) -> Optional[Dict[str, Any]]:
    """One frame from a stream; None on clean EOF between frames."""
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("truncated frame header") from None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {length} bytes exceeds {MAX_FRAME_BYTES}")
    try:
        data = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise ProtocolError("truncated frame body") from None
    return decode_body(data)


async def write_frame(writer: asyncio.StreamWriter,
                      obj: Dict[str, Any]) -> None:
    writer.write(encode_frame(obj))
    await writer.drain()


# -- blocking-socket side ---------------------------------------------
def send_frame(sock: socket.socket, obj: Dict[str, Any]) -> None:
    sock.sendall(encode_frame(obj))


def _recv_exactly(sock: socket.socket, count: int,
                  eof_ok: bool) -> Optional[bytes]:
    chunks = b""
    while len(chunks) < count:
        chunk = sock.recv(count - len(chunks))
        if not chunk:
            if eof_ok and not chunks:
                return None
            raise ProtocolError("connection closed mid-frame")
        chunks += chunk
    return chunks


def recv_frame(sock: socket.socket) -> Optional[Dict[str, Any]]:
    """One frame from a socket; None on clean EOF between frames."""
    header = _recv_exactly(sock, _HEADER.size, eof_ok=True)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {length} bytes exceeds {MAX_FRAME_BYTES}")
    data = _recv_exactly(sock, length, eof_ok=False)
    assert data is not None
    return decode_body(data)
