"""Consistent-hash ring mapping content keys onto solver shards.

The cluster's exactly-once guarantee rests on this module: every
SweepJob content key (:func:`repro.explore.keys.job_key`) has exactly
one owner shard, so in-flight coalescing — which is per-process state
on each shard — composes to fleet-wide coalescing as long as the front
tier always routes a key to its owner.

Classic consistent hashing with virtual nodes: each shard contributes
``replicas`` points on a 64-bit circle, positioned by sha256 of
``"<shard>#<i>"`` (content-derived, so the ring is identical in every
process regardless of ``PYTHONHASHSEED``, construction order, or
platform).  A key is owned by the first virtual node clockwise from
sha256 of the key.  Removing a shard removes only that shard's virtual
nodes, so only the keys it owned are remapped — the property that
makes draining one shard cheap for the rest of the fleet.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Any, Dict, List, Sequence, Tuple

from repro.errors import ReproError

#: Virtual nodes per shard.  128 keeps the largest/smallest key-space
#: share within ~15% of each other at 4 shards, which is what the
#: balance property test pins down.
DEFAULT_REPLICAS = 128

#: The ring circle is the 64-bit space of the sha256 prefix.
_SPACE = 1 << 64


def ring_position(label: str) -> int:
    """Position of a label on the circle (first 8 sha256 bytes)."""
    digest = hashlib.sha256(label.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Immutable shard ring; build once, derive reduced rings from it."""

    def __init__(self, shards: Sequence[str],
                 replicas: int = DEFAULT_REPLICAS) -> None:
        names = tuple(shards)
        if not names:
            raise ReproError("ring needs at least one shard")
        if len(set(names)) != len(names):
            raise ReproError(f"duplicate shard names on ring: {names}")
        self.replicas = max(1, int(replicas))
        self.shards: Tuple[str, ...] = names
        points: List[Tuple[int, str]] = []
        for name in names:
            for i in range(self.replicas):
                points.append((ring_position(f"{name}#{i}"), name))
        points.sort()
        self._positions = [position for position, _ in points]
        self._owners = [name for _, name in points]

    # ------------------------------------------------------------------
    def owner(self, key: str) -> str:
        """The shard owning ``key``: first virtual node clockwise."""
        index = bisect.bisect_right(self._positions, ring_position(key))
        if index == len(self._positions):
            index = 0
        return self._owners[index]

    def without(self, *names: str) -> "HashRing":
        """A ring with ``names`` removed (same replica count).

        Because the surviving shards' virtual nodes keep their
        positions, every key owned by a survivor keeps its owner; only
        the removed shards' keys move.
        """
        dropped = set(names)
        remaining = [n for n in self.shards if n not in dropped]
        if not remaining:
            raise ReproError("cannot remove every shard from the ring")
        return HashRing(remaining, replicas=self.replicas)

    def share(self) -> Dict[str, float]:
        """Fraction of the key space each shard owns (sums to 1.0)."""
        owned: Dict[str, int] = {name: 0 for name in self.shards}
        previous = self._positions[-1] - _SPACE
        for position, name in zip(self._positions, self._owners):
            owned[name] += position - previous
            previous = position
        return {name: owned[name] / _SPACE for name in self.shards}

    def to_dict(self) -> Dict[str, Any]:
        share = self.share()
        return {
            "replicas": self.replicas,
            "vnodes": len(self._positions),
            "shards": [{"name": name,
                        "share": round(share[name], 4)}
                       for name in self.shards],
        }

    def __len__(self) -> int:
        return len(self.shards)
