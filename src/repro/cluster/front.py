"""The cluster front tier: ring-routed proxy with batched admission.

One front process owns the fleet's request routing:

* **ring routing** — every ``/v1/synthesize`` request and every sweep
  point is materialized through :mod:`repro.service.catalog` into a
  content-addressed :class:`~repro.explore.spec.SweepJob`, and its key
  is routed to the owner shard on the :class:`HashRing`.  Each shard's
  in-process coalescing therefore composes to *fleet-wide* exactly-once
  solving: two identical requests always land on the same shard, which
  runs the solve once.
* **failover** — a dead or draining owner is marked down and the key
  re-routed on the reduced ring (only the down shard's keys move).
  Re-sending after a connection drop is safe because jobs are
  idempotent by content key: the retry coalesces or hits cache on
  whichever shard owns the key now.  429s are *not* failed over — the
  owner shed deliberately — but are relayed with the ``Retry-After``
  header plus a ``redirect`` hint naming the owner, which
  :class:`repro.service.ServiceClient` retries honor.
* **batched admission** — synthesize requests for the same design
  arriving within ``batch_window_ms`` are folded into one ``/v1/sweep``
  per owner shard (one admission, one deadline carve, one warm-start
  chain) instead of N independent jobs; each caller is answered from
  its sweep point's child job.  Identical keys inside a window collapse
  to one future before any shard sees them (``front_coalesced``).
* **observability** — ``/metrics`` aggregates per-shard counters with
  the front's own, and ``/cluster/ring`` reports ring shares and
  shard health.

Shard-proxied job ids are rewritten to ``<shard>.<job id>`` so
``GET /v1/jobs/<id>`` on the front can route polls back to the shard
that owns the job.
"""

from __future__ import annotations

import asyncio
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.explore.pareto import OBJECTIVES, pareto_front
from repro.explore.spec import SweepJob
from repro.io_json import SCHEMA_VERSION, canonical_dumps
from repro.obs import HUB, TRACER, extract_headers
from repro.obs.prometheus import render_cluster_metrics
from repro.service import catalog
from repro.service.app import (COMPLETED_STATUSES, Handled,
                               job_response, wants_prometheus)
from repro.service.jobs import Job, JobStore
from repro.service.metrics import ServiceMetrics
from repro.cluster.cache_client import ReadThroughCache
from repro.cluster.http import request_json
from repro.cluster.ring import DEFAULT_REPLICAS, HashRing

#: Front-tier counters (shard counters are aggregated separately).
FRONT_COUNTERS = (
    "requests",          # /v1/* requests received
    "proxied",           # forwarded to a shard (non-error answer)
    "batched",           # callers answered via a folded sweep
    "batch_windows",     # batching windows opened
    "front_coalesced",   # identical keys collapsed inside a window
    "front_cache_hits",  # answered from the shared cache at tier 0
    "failovers",         # re-routes after a dead/draining owner
    "shard_errors",      # shard connections that failed outright
    "shed_relayed",      # shard 429s relayed to the caller
    "errors",            # front-level 5xx answers
)


class ShardDown(ReproError):
    """A shard connection failed; the caller should fail over."""


@dataclass(frozen=True)
class ShardAddress:
    name: str
    host: str
    port: int


@dataclass(frozen=True)
class ClusterConfig:
    """Frozen knobs for one front-tier instance."""

    shards: Tuple[ShardAddress, ...]
    host: str = "127.0.0.1"
    port: int = 8770
    replicas: int = DEFAULT_REPLICAS
    #: ``host:port`` of the shared cache server; None disables the
    #: front's own read-through tier (shards still share the cache).
    cache_address: Optional[str] = None
    #: Same-design synthesize requests arriving within this window are
    #: folded into one sweep per owner shard; 0 disables batching.
    batch_window_ms: float = 10.0
    batch_limit: int = 32
    default_timeout_ms: float = 30000.0
    proxy_timeout_s: float = 300.0
    probe_interval_s: float = 2.0
    max_body_bytes: int = 8 << 20
    retained_jobs: int = 1024


class ShardState:
    """Mutable health the front tracks per shard."""

    def __init__(self, address: ShardAddress) -> None:
        self.address = address
        self.healthy: Optional[bool] = None   # None = never probed
        self.draining = False
        self.last_error: Optional[str] = None

    @property
    def up(self) -> bool:
        return bool(self.healthy) and not self.draining

    def snapshot(self) -> Dict[str, Any]:
        return {"host": self.address.host, "port": self.address.port,
                "healthy": bool(self.healthy),
                "draining": self.draining,
                "last_error": self.last_error}


class _Batch:
    """One open batching window for a (design, deadline) group."""

    __slots__ = ("body", "deadline_ms", "points", "futures")

    def __init__(self, body: Dict[str, Any],
                 deadline_ms: Optional[float]) -> None:
        self.body = body
        self.deadline_ms = deadline_ms
        self.points: Dict[str, SweepJob] = {}
        self.futures: Dict[str, asyncio.Future] = {}


def _error(status: int, message: str, **extra: Any) -> Handled:
    payload: Dict[str, Any] = {"schema": "repro-service-error/1",
                               "error": message}
    payload.update(extra)
    headers = ({"Retry-After": str(extra["retry_after_s"])}
               if "retry_after_s" in extra else {})
    return status, payload, headers


# ---------------------------------------------------------------------
class FrontTier:
    """Routing, batching, and aggregation state for one cluster."""

    def __init__(self, config: ClusterConfig) -> None:
        if not config.shards:
            raise ReproError("cluster needs at least one shard")
        self.config = config
        self.metrics = ServiceMetrics(names=FRONT_COUNTERS)
        self.shards: Dict[str, ShardState] = {
            a.name: ShardState(a) for a in config.shards}
        if len(self.shards) != len(config.shards):
            raise ReproError("duplicate shard names in cluster config")
        self.ring = HashRing([a.name for a in config.shards],
                             replicas=config.replicas)
        self.cache = (ReadThroughCache(config.cache_address)
                      if config.cache_address else None)
        self.store = JobStore(config.retained_jobs)
        self.batches: Dict[str, _Batch] = {}
        self.draining = False
        self._ring_cache: Dict[frozenset, HashRing] = {}
        self._tasks: set = set()
        self._prober: Optional[asyncio.Task] = None

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> None:
        await self.probe_all()
        self._prober = asyncio.get_running_loop().create_task(
            self._probe_loop())

    async def drain(self) -> None:
        """Stop admitting, flush open windows, finish in-flight work."""
        self.draining = True
        if self._prober is not None:
            self._prober.cancel()
        for group_key in list(self.batches):
            self._flush_now(group_key)
        while self._tasks:
            await asyncio.gather(*list(self._tasks),
                                 return_exceptions=True)
        if self.cache is not None:
            self.cache.client.close()

    def _spawn(self, coro) -> asyncio.Task:
        task = asyncio.get_running_loop().create_task(coro)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return task

    # -- health probing ------------------------------------------------
    async def probe(self, state: ShardState) -> bool:
        try:
            status, payload, _ = await request_json(
                state.address.host, state.address.port, "GET",
                "/healthz", timeout_s=5.0)
        except (OSError, asyncio.TimeoutError) as exc:
            state.healthy = False
            state.last_error = str(exc)
            return False
        state.draining = payload.get("status") == "draining"
        state.healthy = status == 200 and not state.draining
        state.last_error = None if state.healthy else payload.get(
            "status", f"HTTP {status}")
        return state.up

    async def probe_all(self) -> None:
        await asyncio.gather(*(self.probe(s)
                               for s in self.shards.values()))

    async def _probe_loop(self) -> None:
        # Background reinstatement: a shard marked down by a failed
        # request comes back automatically once it answers /healthz
        # again (rolling restarts need no front-tier restart).
        while True:
            await asyncio.sleep(self.config.probe_interval_s)
            await self.probe_all()

    # -- ring routing --------------------------------------------------
    def live_ring(self) -> HashRing:
        down = frozenset(name for name, s in self.shards.items()
                         if s.healthy is False or s.draining)
        if not down:
            return self.ring
        cached = self._ring_cache.get(down)
        if cached is None:
            if len(down) >= len(self.shards):
                raise ReproError("every shard is down or draining")
            cached = self.ring.without(*down)
            self._ring_cache[down] = cached
        return cached

    # -- shard RPC -----------------------------------------------------
    async def call_shard(self, state: ShardState, method: str,
                         path: str, body: Optional[Dict[str, Any]],
                         timeout_s: Optional[float] = None
                         ) -> Tuple[int, Dict[str, Any],
                                    Dict[str, str]]:
        try:
            # Trace context rides on the hop's headers, so the shard's
            # request span parents under the front's (one trace across
            # the whole cluster).
            return await request_json(
                state.address.host, state.address.port, method, path,
                body, timeout_s or self.config.proxy_timeout_s,
                headers=TRACER.current_headers())
        except (OSError, asyncio.TimeoutError) as exc:
            state.healthy = False
            state.last_error = str(exc)
            self.metrics.inc("shard_errors")
            raise ShardDown(
                f"shard {state.address.name} at {state.address.host}:"
                f"{state.address.port} unreachable: {exc}") from None

    def _proxy_timeout_s(self, deadline_ms: Optional[float]) -> float:
        if deadline_ms is None:
            return self.config.proxy_timeout_s
        # The shard itself waits up to 2*deadline + slack; give the
        # proxy hop headroom beyond that so the shard times out first.
        return (2.0 * deadline_ms + 2000.0) / 1000.0 + 30.0

    def _rewrite(self, payload: Dict[str, Any],
                 shard_name: str) -> Dict[str, Any]:
        out = dict(payload)
        job_id = out.get("job_id")
        if isinstance(job_id, str) and job_id:
            out["job_id"] = f"{shard_name}.{job_id}"
            if "location" in out:
                out["location"] = f"/v1/jobs/{out['job_id']}"
        points = out.get("points")
        if isinstance(points, list):
            rewritten = []
            for point in points:
                if isinstance(point, dict) and "job_id" in point:
                    point = dict(point)
                    point["job_id"] = f"{shard_name}.{point['job_id']}"
                rewritten.append(point)
            out["points"] = rewritten
        out["shard"] = shard_name
        return out

    # -- single-point routing with failover ----------------------------
    async def route_point(self, body: Dict[str, Any], point: SweepJob,
                          deadline_ms: Optional[float]) -> Handled:
        with TRACER.span("front.route", layer="front",
                         key=point.key[:12]) as sp:
            status, payload, headers = await self._route_point(
                body, point, deadline_ms, sp)
            sp.set(status=status)
            return status, payload, headers

    async def _route_point(self, body: Dict[str, Any], point: SweepJob,
                           deadline_ms: Optional[float],
                           sp: Any) -> Handled:
        start = time.perf_counter()
        tried: set = set()
        while True:
            try:
                owner = self.live_ring().owner(point.key)
            except ReproError as exc:
                self.metrics.inc("errors")
                return _error(503, str(exc), retry_after_s=1)
            if owner in tried:
                self.metrics.inc("errors")
                return _error(503,
                              f"every candidate shard failed for key "
                              f"{point.key[:12]}...", retry_after_s=1)
            state = self.shards[owner]
            try:
                status, payload, headers = await self.call_shard(
                    state, "POST", "/v1/synthesize", body,
                    self._proxy_timeout_s(deadline_ms))
            except ShardDown:
                tried.add(owner)
                self.metrics.inc("failovers")
                continue
            if status == 503:
                # Draining shard: take it off the ring and re-route.
                state.draining = True
                tried.add(owner)
                self.metrics.inc("failovers")
                continue
            if status == 429:
                # Deliberate shed by the owner — relay, don't reroute
                # (another shard would break exactly-once ownership).
                # The redirect hint lets retrying clients go straight
                # to the owner.
                self.metrics.inc("shed_relayed")
                out = dict(payload)
                out["redirect"] = {"host": state.address.host,
                                   "port": state.address.port}
                retry_after = headers.get("retry-after")
                return status, out, (
                    {"Retry-After": retry_after} if retry_after else {})
            self.metrics.inc("proxied")
            self.metrics.observe_job_ms(
                (time.perf_counter() - start) * 1000.0)
            HUB.observe("front.route_ms",
                        (time.perf_counter() - start) * 1000.0)
            sp.set(owner=owner, failovers=len(tried))
            return status, self._rewrite(payload, owner), {}

    async def _cache_lookup(self, key: str) -> Optional[Dict[str, Any]]:
        if self.cache is None:
            return None
        # The read-through may do a blocking RPC on miss; keep it off
        # the event loop.
        return await asyncio.get_running_loop().run_in_executor(
            None, self.cache.get, key)

    # -- batched admission ---------------------------------------------
    async def handle_synthesize(self, body: Dict[str, Any],
                                point: SweepJob, wait: bool,
                                deadline_ms: Optional[float]
                                ) -> Handled:
        record = await self._cache_lookup(point.key)
        if record is not None:
            self.metrics.inc("front_cache_hits")
            job = Job(key=point.key, params=dict(point.params),
                      cached=True)
            job.finish(record)
            self.store.add(job)
            return 200, job_response(job), {}
        if wait and self.config.batch_window_ms > 0 \
                and not self.draining:
            return await self._admit_batched(body, point, deadline_ms)
        return await self.route_point(body, point, deadline_ms)

    async def _admit_batched(self, body: Dict[str, Any],
                             point: SweepJob,
                             deadline_ms: Optional[float]) -> Handled:
        loop = asyncio.get_running_loop()
        group_key = canonical_dumps([body.get("design"), deadline_ms])
        batch = self.batches.get(group_key)
        if batch is None:
            batch = _Batch(body, deadline_ms)
            self.batches[group_key] = batch
            self.metrics.inc("batch_windows")
            self._spawn(self._window(group_key))
        future = batch.futures.get(point.key)
        if future is None:
            future = loop.create_future()
            batch.futures[point.key] = future
            batch.points[point.key] = point
            if len(batch.points) >= self.config.batch_limit:
                self._flush_now(group_key)
        else:
            # Same content key inside the window: share the future —
            # the shard never even sees a duplicate.
            self.metrics.inc("front_coalesced")
        return await future

    async def _window(self, group_key: str) -> None:
        await asyncio.sleep(self.config.batch_window_ms / 1000.0)
        self._flush_now(group_key)

    def _flush_now(self, group_key: str) -> None:
        batch = self.batches.pop(group_key, None)
        if batch is not None:
            self._spawn(self._flush(batch))

    async def _flush(self, batch: _Batch) -> None:
        try:
            groups: Dict[str, List[SweepJob]] = {}
            for point in batch.points.values():
                try:
                    owner = self.live_ring().owner(point.key)
                except ReproError:
                    self._resolve(batch, point.key, _error(
                        503, "every shard is down or draining",
                        retry_after_s=1))
                    continue
                groups.setdefault(owner, []).append(point)
            await asyncio.gather(*(
                self._flush_group(batch, owner, points)
                for owner, points in groups.items()))
        except Exception as exc:  # never strand a caller
            self.metrics.inc("errors")
            for key in batch.points:
                self._resolve(batch, key, _error(
                    500, f"batch flush failed: {exc}"))

    def _resolve(self, batch: _Batch, key: str,
                 handled: Handled) -> None:
        future = batch.futures.get(key)
        if future is not None and not future.done():
            future.set_result(handled)

    def _point_body(self, batch: _Batch,
                    point: SweepJob) -> Dict[str, Any]:
        body: Dict[str, Any] = {"design": batch.body["design"],
                                "wait": True}
        if "timeout_ms" in batch.body:
            body["timeout_ms"] = batch.body["timeout_ms"]
        body.update(point.params)
        return body

    async def _flush_group(self, batch: _Batch, owner: str,
                           points: List[SweepJob]) -> None:
        if len(points) == 1:
            point = points[0]
            self._resolve(batch, point.key, await self.route_point(
                self._point_body(batch, point), point,
                batch.deadline_ms))
            return
        # Fold the window's points for this owner into ONE sweep: one
        # admission check, one deadline carve, one warm-start chain.
        self.metrics.inc("batched", len(points))
        state = self.shards[owner]
        sweep_body: Dict[str, Any] = {
            "design": batch.body["design"], "wait": True,
            "points": [dict(p.params) for p in points]}
        if "timeout_ms" in batch.body:
            sweep_body["timeout_ms"] = batch.body["timeout_ms"]
        try:
            status, payload, _ = await self.call_shard(
                state, "POST", "/v1/sweep", sweep_body,
                self._proxy_timeout_s(batch.deadline_ms))
            if status == 202 and payload.get("job_id"):
                status, payload = await self._wait_shard_job(
                    state, payload["job_id"], batch.deadline_ms)
        except ShardDown:
            self.metrics.inc("failovers")
            await self._flush_fallback(batch, points)
            return
        sweep_points = payload.get("points")
        if status != 200 or not isinstance(sweep_points, list):
            # Shed, draining, or malformed: fall back to per-point
            # routing, which shares the standard failover logic.
            await self._flush_fallback(batch, points)
            return
        by_key = {p.get("key"): p for p in sweep_points
                  if isinstance(p, dict)}
        await asyncio.gather(*(
            self._answer_from_point(batch, state, owner, point,
                                    by_key.get(point.key))
            for point in points))

    async def _flush_fallback(self, batch: _Batch,
                              points: List[SweepJob]) -> None:
        await asyncio.gather(*(
            self._route_and_resolve(batch, point) for point in points))

    async def _route_and_resolve(self, batch: _Batch,
                                 point: SweepJob) -> None:
        self._resolve(batch, point.key, await self.route_point(
            self._point_body(batch, point), point, batch.deadline_ms))

    async def _answer_from_point(self, batch: _Batch,
                                 state: ShardState, owner: str,
                                 point: SweepJob,
                                 sweep_point: Optional[Dict[str, Any]]
                                 ) -> None:
        """Answer one batched caller from its sweep point's child job
        (the full record lives there, not in the point summary)."""
        job_id = (sweep_point or {}).get("job_id")
        if not isinstance(job_id, str) or not job_id:
            self._resolve(batch, point.key, await self.route_point(
                self._point_body(batch, point), point,
                batch.deadline_ms))
            return
        try:
            status, payload, _ = await self.call_shard(
                state, "GET", f"/v1/jobs/{job_id}", None,
                timeout_s=30.0)
        except ShardDown:
            self._resolve(batch, point.key, await self.route_point(
                self._point_body(batch, point), point,
                batch.deadline_ms))
            return
        self.metrics.inc("proxied")
        self._resolve(batch, point.key,
                      (status, self._rewrite(payload, owner), {}))

    async def _wait_shard_job(self, state: ShardState, job_id: str,
                              deadline_ms: Optional[float]
                              ) -> Tuple[int, Dict[str, Any]]:
        limit = time.monotonic() + (
            300.0 if deadline_ms is None
            else (2.0 * deadline_ms + 2000.0) / 1000.0)
        while True:
            status, payload, _ = await self.call_shard(
                state, "GET", f"/v1/jobs/{job_id}", None,
                timeout_s=30.0)
            if status != 200 \
                    or payload.get("status") not in ("queued",
                                                     "running"):
                return status, payload
            if time.monotonic() >= limit:
                return status, payload
            await asyncio.sleep(0.05)

    # -- split sweeps --------------------------------------------------
    async def handle_sweep(self, body: Dict[str, Any],
                           design_name: str, spec, points, wait: bool,
                           deadline_ms: Optional[float]) -> Handled:
        composite = Job(key="", kind="sweep",
                        params={"design": design_name,
                                "spec": spec.to_dict()})
        self.store.add(composite)
        self._spawn(self._run_split_sweep(composite, body, points,
                                          deadline_ms))
        if wait and not composite.done:
            limit_s = (None if deadline_ms is None
                       else (2.0 * deadline_ms + 2000.0) / 1000.0)
            await composite.wait(limit_s)
        return ((200 if composite.done else 202),
                job_response(composite), {})

    async def _run_split_sweep(self, composite: Job,
                               body: Dict[str, Any], points,
                               deadline_ms: Optional[float]) -> None:
        indexed = list(enumerate(points))
        groups: Dict[str, List[Tuple[int, SweepJob]]] = {}
        orphans: List[Tuple[int, SweepJob]] = []
        for index, point in indexed:
            try:
                owner = self.live_ring().owner(point.key)
            except ReproError:
                orphans.append((index, point))
                continue
            groups.setdefault(owner, []).append((index, point))
        results: Dict[int, Dict[str, Any]] = {}
        for index, point in orphans:
            results[index] = self._point_failure(
                index, point, "every shard is down or draining")
        await asyncio.gather(*(
            self._sweep_group(owner, body, group, results, deadline_ms)
            for owner, group in groups.items()))
        point_dicts = [results[i] for i, _ in indexed]
        done = [p for p in point_dicts
                if p.get("status") in COMPLETED_STATUSES
                and "metrics" in p]
        front = pareto_front([p["metrics"] for p in done], OBJECTIVES)
        counts: Dict[str, int] = {}
        for point in point_dicts:
            counts[point["status"]] = counts.get(point["status"], 0) + 1
        composite.finish({
            "status": ("ok" if all(p["status"] == "ok"
                                   for p in point_dicts)
                       else "degraded"),
            "points": point_dicts,
            "pareto": [done[i]["index"] for i in front],
            "status_counts": counts,
            "wall_ms": round(sum(p.get("wall_ms", 0.0)
                                 for p in point_dicts), 3),
        })

    def _point_failure(self, index: int, point: SweepJob,
                       message: str) -> Dict[str, Any]:
        return {"index": index, "key": point.key,
                "params": dict(point.params), "status": "error",
                "cached": False, "wall_ms": 0.0, "error": message}

    async def _sweep_group(self, owner: str, body: Dict[str, Any],
                           group: List[Tuple[int, SweepJob]],
                           results: Dict[int, Dict[str, Any]],
                           deadline_ms: Optional[float]) -> None:
        state = self.shards[owner]
        sweep_body: Dict[str, Any] = {
            "design": body["design"], "wait": True,
            "points": [dict(p.params) for _, p in group]}
        if "timeout_ms" in body:
            sweep_body["timeout_ms"] = body["timeout_ms"]
        try:
            status, payload, _ = await self.call_shard(
                state, "POST", "/v1/sweep", sweep_body,
                self._proxy_timeout_s(deadline_ms))
            if status == 202 and payload.get("job_id"):
                status, payload = await self._wait_shard_job(
                    state, payload["job_id"], deadline_ms)
        except ShardDown:
            self.metrics.inc("failovers")
            await self._sweep_group_fallback(body, group, results,
                                             deadline_ms)
            return
        sweep_points = payload.get("points")
        if status != 200 or not isinstance(sweep_points, list):
            await self._sweep_group_fallback(body, group, results,
                                             deadline_ms)
            return
        self.metrics.inc("proxied")
        by_key = {p.get("key"): p for p in sweep_points
                  if isinstance(p, dict)}
        for index, point in group:
            got = by_key.get(point.key)
            if got is None:
                results[index] = self._point_failure(
                    index, point, "missing from shard sweep response")
                continue
            entry = dict(got)
            entry["index"] = index
            if isinstance(entry.get("job_id"), str):
                entry["job_id"] = f"{owner}.{entry['job_id']}"
            results[index] = entry

    async def _sweep_group_fallback(self, body: Dict[str, Any],
                                    group: List[Tuple[int, SweepJob]],
                                    results: Dict[int, Dict[str, Any]],
                                    deadline_ms: Optional[float]
                                    ) -> None:
        async def one(index: int, point: SweepJob) -> None:
            point_body: Dict[str, Any] = {"design": body["design"],
                                          "wait": True}
            if "timeout_ms" in body:
                point_body["timeout_ms"] = body["timeout_ms"]
            point_body.update(point.params)
            status, payload, _ = await self.route_point(
                point_body, point, deadline_ms)
            if status not in (200, 202):
                results[index] = self._point_failure(
                    index, point,
                    str(payload.get("error", f"HTTP {status}")))
                return
            entry = {"index": index, "key": point.key,
                     "params": dict(point.params),
                     "status": payload.get("status", "error"),
                     "cached": bool(payload.get("cached")),
                     "wall_ms": payload.get("wall_ms", 0.0)}
            if isinstance(payload.get("job_id"), str):
                entry["job_id"] = payload["job_id"]
            for name in ("metrics", "error"):
                if name in payload:
                    entry[name] = payload[name]
            results[index] = entry

        await asyncio.gather(*(one(i, p) for i, p in group))

    # -- observability -------------------------------------------------
    def ring_payload(self) -> Dict[str, Any]:
        out = self.ring.to_dict()
        for entry in out["shards"]:
            entry.update(self.shards[entry["name"]].snapshot())
        return {"schema": "repro-cluster-ring/1",
                "schema_version": SCHEMA_VERSION,
                "ring": out,
                "down": sorted(name for name, s in self.shards.items()
                               if not s.up)}

    async def _scrape(self, state: ShardState
                      ) -> Optional[Dict[str, Any]]:
        try:
            status, payload, _ = await self.call_shard(
                state, "GET", "/metrics", None, timeout_s=10.0)
        except ShardDown:
            return None
        return payload if status == 200 else None

    async def build_metrics(self) -> Dict[str, Any]:
        states = list(self.shards.values())
        payloads = await asyncio.gather(*(self._scrape(s)
                                          for s in states))
        totals: Dict[str, int] = {}
        queue_depth = 0
        inflight = 0
        workers = 0
        p95 = 0.0
        shards: Dict[str, Any] = {}
        healthy = 0
        for state, payload in zip(states, payloads):
            entry = state.snapshot()
            if payload is not None:
                healthy += 1
                svc = payload.get("service", {})
                counters = svc.get("counters", {})
                for name, value in counters.items():
                    if isinstance(value, int):
                        totals[name] = totals.get(name, 0) + value
                queue_depth += int(svc.get("queue_depth", 0))
                inflight += int(svc.get("inflight", 0))
                workers += int(payload.get("workers", {})
                               .get("count", 0))
                latency = svc.get("latency", {})
                p95 = max(p95, float(latency.get("p95_ms", 0.0)))
                entry.update({
                    "counters": counters,
                    "queue_depth": svc.get("queue_depth", 0),
                    "inflight": svc.get("inflight", 0),
                    "workers": payload.get("workers", {})
                                      .get("count", 0),
                    "ema_job_ms": svc.get("ema_job_ms", 0.0),
                })
            shards[state.address.name] = entry
        # Scrape-time gauges for the front's own hub section.
        HUB.gauges({
            "front.batch_windows_open": len(self.batches),
            "front.tasks_inflight": len(self._tasks),
            "cluster.queue_depth": queue_depth,
            "cluster.inflight": inflight,
            "cluster.shards_healthy": healthy,
        })
        hub = HUB.snapshot()
        out: Dict[str, Any] = {
            "schema": "repro-cluster-metrics/1",
            "schema_version": SCHEMA_VERSION,
            "front": self.metrics.snapshot(),
            "cluster": {"counters": totals,
                        "queue_depth": queue_depth,
                        "inflight": inflight,
                        "workers": workers,
                        "latency_p95_ms": round(p95, 3),
                        "shards": len(states),
                        "shards_healthy": healthy},
            "shards": shards,
            "ring": self.ring.to_dict(),
            "obs": {"histograms": hub["histograms"],
                    "gauges": hub["gauges"]},
            "tracer": TRACER.stats(),
        }
        if self.cache is not None:
            out["cache"] = self.cache.stats()
        return out

    def health(self) -> Handled:
        ready = any(s.up for s in self.shards.values()) \
            and not self.draining
        payload = {
            "schema": "repro-cluster-health/1",
            "schema_version": SCHEMA_VERSION,
            "status": ("draining" if self.draining
                       else "ok" if ready else "starting"),
            "ready": ready,
            "live": True,
            "shards": {name: s.snapshot()
                       for name, s in self.shards.items()},
        }
        if ready:
            return 200, payload, {}
        return 503, payload, {"Retry-After": "1"}

    # -- request routing -----------------------------------------------
    async def handle(self, method: str, path: str,
                     body: Optional[Dict[str, Any]],
                     headers: Optional[Dict[str, str]] = None,
                     query: str = "") -> Handled:
        if path == "/healthz":
            if method != "GET":
                return _error(405, "method not allowed")
            return self.health()
        if path == "/metrics":
            if method != "GET":
                return _error(405, "method not allowed")
            payload = await self.build_metrics()
            if wants_prometheus(headers, query):
                return 200, render_cluster_metrics(payload), {}
            return 200, payload, {}
        if path == "/cluster/ring":
            if method != "GET":
                return _error(405, "method not allowed")
            return 200, self.ring_payload(), {}
        if path.startswith("/v1/jobs/"):
            if method != "GET":
                return _error(405, "method not allowed")
            self.metrics.inc("requests")
            return await self._handle_job(path[len("/v1/jobs/"):])
        if path in ("/v1/synthesize", "/v1/sweep"):
            if method != "POST":
                return _error(405, "method not allowed")
            self.metrics.inc("requests")
            request_id = uuid.uuid4().hex[:12]
            # Adopt the caller's trace context (if any) so the whole
            # cluster hop — front routing, shard admission, worker
            # solve — lands on one connected trace.
            with TRACER.attach(extract_headers(headers)), \
                    TRACER.span("front.request", layer="front",
                                endpoint=path) as sp:
                sp.set(request_id=request_id)
                status, payload, extra = await self._handle_submit(
                    path, body, sp)
            extra = dict(extra)
            extra["X-Repro-Request-Id"] = request_id
            if sp.sampled:
                extra["X-Repro-Trace-Id"] = sp.trace_id
            return status, payload, extra
        return _error(404, f"no such endpoint {path!r}")

    async def _handle_submit(self, path: str,
                             body: Optional[Dict[str, Any]],
                             sp: Any) -> Handled:
        if self.draining:
            return _error(503, "cluster front tier is draining",
                          retry_after_s=1)
        if body is None:
            return _error(400, "request body must be a JSON object")
        try:
            deadline_ms = self._deadline_ms(body)
            wait = bool(body.get("wait", True))
            if path == "/v1/synthesize":
                _space, point = catalog.synthesize_job(body)
                sp.set(design=str(body.get("design", ""))[:64],
                       key=point.key[:12])
                return await self.handle_synthesize(
                    body, point, wait, deadline_ms)
            space, spec, points = catalog.sweep_jobs(body)
            sp.set(design=space.name, points=len(points))
            return await self.handle_sweep(
                body, space.name, spec, points, wait, deadline_ms)
        except (ReproError, ValueError, TypeError) as exc:
            return _error(400, str(exc))

    def _deadline_ms(self, body: Dict[str, Any]) -> Optional[float]:
        raw = body.get("timeout_ms", self.config.default_timeout_ms)
        if raw is None:
            return None
        deadline = float(raw)
        if deadline <= 0:
            raise ReproError(
                f"timeout_ms must be positive, got {raw!r}")
        return deadline

    async def _handle_job(self, job_id: str) -> Handled:
        shard_name, sep, shard_job = job_id.partition(".")
        if sep and shard_name in self.shards:
            state = self.shards[shard_name]
            try:
                status, payload, _ = await self.call_shard(
                    state, "GET", f"/v1/jobs/{shard_job}", None,
                    timeout_s=30.0)
            except ShardDown as exc:
                return _error(503, str(exc), retry_after_s=1)
            return status, self._rewrite(payload, shard_name), {}
        job = self.store.get(job_id)
        if job is None:
            return _error(404, "no such job")
        return 200, job_response(job), {}
