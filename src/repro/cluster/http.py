"""Minimal async JSON-over-HTTP client for shard-to-shard hops.

The front tier proxies requests from inside an event loop, so it
cannot use the blocking :class:`repro.service.ServiceClient`.  This is
the asyncio mirror of its wire behavior: one connection per exchange
(``Connection: close``), JSON bodies, decoded JSON responses, and the
``Retry-After`` header surfaced so failover logic can relay it.
Connection failures raise plain ``OSError``/``asyncio.TimeoutError``
for the caller to classify — the front tier turns them into
mark-down-and-failover, not user-facing errors.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional, Tuple

#: (status, decoded payload, response headers lowercase-keyed)
JsonResponse = Tuple[int, Dict[str, Any], Dict[str, str]]


async def _read_response(reader: asyncio.StreamReader) -> JsonResponse:
    status_line = await reader.readline()
    parts = status_line.decode("latin-1").split(None, 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
        raise OSError(f"malformed status line {status_line!r}")
    status = int(parts[1])
    headers: Dict[str, str] = {}
    while True:
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        name, sep, value = raw.decode("latin-1").partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()
    length = headers.get("content-length")
    if length is not None:
        body = await reader.readexactly(int(length))
    else:
        body = await reader.read()
    try:
        parsed = json.loads(body) if body else {}
        payload = parsed if isinstance(parsed, dict) else {}
    except json.JSONDecodeError:
        payload = {"error": body.decode("utf-8", "replace")}
    return status, payload, headers


async def request_json(host: str, port: int, method: str, path: str,
                       body: Optional[Dict[str, Any]] = None,
                       timeout_s: float = 30.0,
                       headers: Optional[Dict[str, str]] = None
                       ) -> JsonResponse:
    """One HTTP exchange against ``host:port``.

    ``headers`` are extra request headers (the front tier uses this to
    propagate trace context to the owner shard).
    """
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout_s)
    try:
        data = b"" if body is None else json.dumps(body).encode("utf-8")
        lines = [f"{method} {path} HTTP/1.1",
                 f"Host: {host}:{port}",
                 "Content-Type: application/json",
                 f"Content-Length: {len(data)}"]
        lines.extend(f"{name}: {value}"
                     for name, value in (headers or {}).items())
        lines.append("Connection: close")
        head = "\r\n".join(lines) + "\r\n\r\n"
        writer.write(head.encode("latin-1") + data)
        await writer.drain()
        return await asyncio.wait_for(_read_response(reader), timeout_s)
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (OSError, asyncio.CancelledError):
            pass
