"""Client side of the shared-cache protocol, plus the read-through
layer that makes a remote cache look like a local ResultCache.

:class:`CacheClient` is a blocking framed-protocol client holding one
persistent connection (re-dialed transparently after a drop), safe to
share across threads behind its lock.

:class:`ReadThroughCache` is what a solver shard actually mounts: it
*is* a :class:`repro.explore.cache.ResultCache` (file-less), so the
service and explorer use it unchanged — local in-memory index first,
remote lookup on miss, writes propagated to both.  Remote failures
degrade to local-only behavior and are counted, never raised: a shard
must keep serving when the cache server restarts.
"""

from __future__ import annotations

import copy
import socket
import threading
import time
from typing import Any, Dict, Optional, Tuple

from repro.errors import ReproError
from repro.explore.cache import ResultCache
from repro.io_json import SCHEMA_VERSION
from repro.cluster.protocol import (ProtocolError, recv_frame,
                                    send_frame)


class CacheClientError(ReproError):
    """Cache server unreachable or answered with an error."""


def parse_address(address: str) -> Tuple[str, int]:
    """``host:port`` -> (host, port), tolerating a ``remote://`` prefix."""
    spec = address
    if spec.startswith("remote://"):
        spec = spec[len("remote://"):]
    host, sep, port = spec.rpartition(":")
    if not sep or not host:
        raise ReproError(
            f"cache address must be host:port, got {address!r}")
    try:
        return host, int(port)
    except ValueError:
        raise ReproError(
            f"cache address port must be an integer, "
            f"got {address!r}") from None


class CacheClient:
    """One persistent framed-protocol connection, thread-safe."""

    def __init__(self, host: str, port: int,
                 timeout_s: float = 5.0) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self._sock: Optional[socket.socket] = None
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    def _close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def close(self) -> None:
        with self._lock:
            self._close()

    def call(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """One request/response exchange; reconnects once on failure."""
        request = dict(request)
        request.setdefault("schema_version", SCHEMA_VERSION)
        with self._lock:
            response: Optional[Dict[str, Any]] = None
            for attempt in (0, 1):
                try:
                    if self._sock is None:
                        self._sock = socket.create_connection(
                            (self.host, self.port),
                            timeout=self.timeout_s)
                    send_frame(self._sock, request)
                    response = recv_frame(self._sock)
                    if response is None:
                        raise ProtocolError(
                            "server closed the connection")
                    break
                except (OSError, ProtocolError) as exc:
                    self._close()
                    if attempt:
                        raise CacheClientError(
                            f"cache server at {self.host}:{self.port} "
                            f"unreachable: {exc}") from None
        assert response is not None
        if not response.get("ok", False):
            raise CacheClientError(
                str(response.get("error", "cache server error")))
        return response

    # ------------------------------------------------------------------
    def ping(self) -> Dict[str, Any]:
        return self.call({"op": "ping"})

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        response = self.call({"op": "get", "key": key})
        return response.get("record") if response.get("found") else None

    def put(self, key: str, record: Dict[str, Any]) -> bool:
        return bool(self.call({"op": "put", "key": key,
                               "record": record}).get("stored"))

    def compact(self) -> Dict[str, Any]:
        return dict(self.call({"op": "compact"}).get("summary") or {})

    def stats(self) -> Dict[str, Any]:
        response = self.call({"op": "stats"})
        return {"stats": response.get("stats") or {},
                "server": response.get("server") or {}}


# ---------------------------------------------------------------------
class ReadThroughCache(ResultCache):
    """A ResultCache whose misses fall through to the cache server.

    Remote failures degrade to local-only service, but never
    permanently: after an error the remote is marked *down* and left
    alone for ``probe_interval_s`` (each blocked call would otherwise
    pay a full connect timeout), then the next cache operation
    re-probes — the same cadence contract as the front tier's shard
    prober.  Write-through puts that could not be shipped while the
    server was away are queued and replayed on the first successful
    reconnect, so a recovered cache server converges back to the
    fleet-wide truth instead of silently missing every result solved
    during its outage (which would make *other* shards re-execute
    work this shard already finished).
    """

    def __init__(self, address: str, timeout_s: float = 5.0,
                 probe_interval_s: float = 2.0) -> None:
        super().__init__(path=None)
        host, port = parse_address(address)
        self.address = f"{host}:{port}"
        self.client = CacheClient(host, port, timeout_s=timeout_s)
        self.probe_interval_s = float(probe_interval_s)
        self.remote_hits = 0
        self.remote_errors = 0
        #: monotonic deadline before which the remote is presumed
        #: down; 0.0 means presumed up.
        self._down_until = 0.0
        #: write-throughs dropped during an outage, replayed (FIFO)
        #: on reconnect.
        self._unshipped: Dict[str, Dict[str, Any]] = {}

    # -- remote health -------------------------------------------------
    def _remote_usable(self) -> bool:
        """Up, or down long enough that a re-probe is due."""
        if self._down_until == 0.0:
            return True
        return time.monotonic() >= self._down_until

    def _mark_down(self) -> None:
        self.remote_errors += 1
        self._down_until = time.monotonic() + self.probe_interval_s

    def _mark_up(self) -> None:
        was_down = self._down_until != 0.0
        self._down_until = 0.0
        if was_down and self._unshipped:
            self._replay_unshipped()

    def _replay_unshipped(self) -> None:
        """Ship queued write-throughs; re-queue on a fresh failure."""
        with self._lock:
            pending = list(self._unshipped.items())
            self._unshipped.clear()
        for key, record in pending:
            try:
                self.client.put(key, record)
            except (OSError, ReproError):
                with self._lock:
                    for k, r in pending:
                        self._unshipped.setdefault(k, r)
                self._mark_down()
                return

    @property
    def unshipped(self) -> int:
        """Write-throughs awaiting a cache-server reconnect."""
        return len(self._unshipped)

    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[Dict[str, Any]]:
        record = self._index.get(key)
        if record is None:
            remote = self._remote_get(key)
            if remote is not None:
                with self._lock:
                    self._index.setdefault(key, remote)
                self.remote_hits += 1
                record = remote
        if record is None:
            self.misses += 1
            return None
        self.hits += 1
        return copy.deepcopy(record)

    def _remote_get(self, key: str) -> Optional[Dict[str, Any]]:
        if not self._remote_usable():
            return None
        try:
            record = self.client.get(key)
        except (OSError, ReproError):
            self._mark_down()
            return None
        self._mark_up()
        return record if isinstance(record, dict) else None

    def put(self, key: str, record: Dict[str, Any]) -> bool:
        stored = super().put(key, record)
        if stored:
            # Ship the same stripped form the local index keeps, so
            # every shard's view of the record is byte-identical.
            if not self._remote_usable():
                self.remote_errors += 1
                with self._lock:
                    self._unshipped[key] = self._index[key]
                return stored
            try:
                self.client.put(key, self._index[key])
            except (OSError, ReproError):
                with self._lock:
                    self._unshipped[key] = self._index[key]
                self._mark_down()
            else:
                self._mark_up()
        return stored

    def compact(self) -> Dict[str, Any]:
        degraded = {"path": f"remote://{self.address}",
                    "lines_before": 0, "entries": len(self._index),
                    "removed": 0, "compacted": False}
        if not self._remote_usable():
            self.remote_errors += 1
            return degraded
        try:
            summary = self.client.compact()
        except (OSError, ReproError):
            self._mark_down()
            return degraded
        self._mark_up()
        return summary

    def stats(self) -> Dict[str, Any]:
        out = super().stats()
        out["remote"] = {"address": self.address,
                         "hits": self.remote_hits,
                         "errors": self.remote_errors,
                         "down": not self._remote_usable(),
                         "unshipped": len(self._unshipped)}
        return out
