"""``repro.obs`` — tracing, histogram metrics, Prometheus exposition.

The observability tier for the whole stack (solver → pipeline →
explorer → service → cluster front).  Three pieces:

* :mod:`repro.obs.trace` — structured spans with ambient parenting,
  deterministic sampling, a bounded ring buffer, mark/delta/merge
  across fork workers, and an optional JSONL exporter (``TRACER``);
* :mod:`repro.obs.metrics` — fixed-bucket histograms and gauges
  unified with the ``PerfRegistry`` counters (``HUB``);
* :mod:`repro.obs.prometheus` / :mod:`repro.obs.render` — the text
  exposition for ``/metrics`` and the ``repro trace`` span-tree view.

Importing this package installs a perf phase hook, so every existing
``PERF.phase(key)`` region (``flow.*``, ``simplex.solve_lp``,
``gomory.solve``, ``bnb.solve``) doubles as a span when tracing is on
— the solver layer needs no direct obs imports.  Configuration is via
:func:`configure` (the CLI's ``--trace`` / ``--trace-sample`` /
``--trace-export`` flags) or the ``REPRO_TRACE`` /
``REPRO_TRACE_SAMPLE`` / ``REPRO_TRACE_EXPORT`` environment variables,
which also carry the settings into cluster shard subprocesses and
fork-pool workers.

Third parties instrument the same way the repo does::

    from repro.obs import span

    with span("my.stage", layer="app", widget=7) as s:
        ...
        s.set(result="ok")
"""

from __future__ import annotations

import os
from typing import Optional

from repro import perf as _perf
from repro.obs.context import (extract_headers, extract_payload,
                               inject_headers, inject_payload)
from repro.obs.metrics import (DEFAULT_BUCKETS_MS, HUB, Histogram,
                               MetricsHub)
from repro.obs.trace import (TRACER, JsonlExporter, Span, SpanContext,
                             Tracer, current_context, span)

__all__ = [
    "TRACER",
    "HUB",
    "Tracer",
    "Span",
    "SpanContext",
    "MetricsHub",
    "Histogram",
    "JsonlExporter",
    "DEFAULT_BUCKETS_MS",
    "span",
    "current_context",
    "configure",
    "inject_payload",
    "extract_payload",
    "inject_headers",
    "extract_headers",
]


def _phase_hook(key: str):
    # Existing phase markers become spans: flow.* phases belong to the
    # pass pipeline, everything else (simplex/gomory/bnb) to the solver.
    layer = "pipeline" if key.startswith("flow.") else "solver"
    return TRACER.span(key, layer=layer)


_perf.set_phase_hook(_phase_hook)


def configure(enabled: Optional[bool] = None,
              sample_rate: Optional[float] = None,
              export_path: Optional[str] = None,
              sync_env: bool = True) -> None:
    """Configure the process-global tracer.

    With ``sync_env`` (the default) the settings are mirrored into
    ``REPRO_TRACE*`` environment variables so subprocesses spawned
    later — cluster shards, respawned pool workers — inherit them; the
    already-forked warm pool inherited the live objects at fork time.
    """
    TRACER.configure(enabled=enabled, sample_rate=sample_rate,
                     export_path=export_path)
    if not sync_env:
        return
    if enabled is not None:
        if enabled:
            os.environ["REPRO_TRACE"] = "1"
        else:
            os.environ.pop("REPRO_TRACE", None)
    if sample_rate is not None:
        os.environ["REPRO_TRACE_SAMPLE"] = repr(float(sample_rate))
    if export_path is not None:
        if export_path:
            os.environ["REPRO_TRACE_EXPORT"] = export_path
        else:
            os.environ.pop("REPRO_TRACE_EXPORT", None)
