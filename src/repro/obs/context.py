"""Trace-context propagation helpers for the two boundary kinds.

The repo crosses execution boundaries in exactly two shapes, and each
gets one inject/extract pair:

* **Plain-data job payloads** (explorer ``Executor`` → fork worker,
  service → pool worker): the context rides as ``payload["trace"]``, a
  small JSON-able dict.  The worker re-activates it with
  ``TRACER.attach(extract_payload(payload))`` so spans recorded in the
  worker parent under the submitting span after the delta merge.
* **HTTP hops** (client → service, front → shard): the context rides
  as ``x-repro-trace-id`` / ``x-repro-parent-id`` / ``x-repro-sampled``
  request headers.

Both directions are no-ops when tracing is disabled or the active
trace is unsampled, so call sites stay unconditional.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.obs.trace import TRACER, SpanContext

__all__ = [
    "inject_payload",
    "extract_payload",
    "inject_headers",
    "extract_headers",
]

#: Payload key carrying the serialized context across worker pools.
PAYLOAD_KEY = "trace"


def inject_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Stamp the current sampled context into a job payload (in place).

    Returns the payload for chaining.  Leaves it untouched when there
    is nothing to propagate.
    """
    ctx = TRACER.current_dict()
    if ctx is not None:
        payload[PAYLOAD_KEY] = ctx
    return payload


def extract_payload(payload: Dict[str, Any]) -> Optional[SpanContext]:
    """Read a propagated context out of a job payload (or None)."""
    return SpanContext.from_dict(payload.get(PAYLOAD_KEY))


def inject_headers(
        headers: Optional[Dict[str, str]] = None) -> Dict[str, str]:
    """Merge the current sampled context into an HTTP header dict."""
    out = dict(headers) if headers else {}
    out.update(TRACER.current_headers())
    return out


def extract_headers(headers: Any) -> Optional[SpanContext]:
    """Read a propagated context from lowercase request headers."""
    return SpanContext.from_headers(headers)
