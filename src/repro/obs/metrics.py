"""Histogram metrics and gauges, unified with ``PerfRegistry``.

:class:`MetricsHub` is the one-stop metrics surface: integer counters
and phase timings delegate to a :class:`~repro.perf.PerfRegistry`
(by default the process-global ``PERF``), while fixed-bucket latency /
size histograms and point-in-time gauges live in the hub itself.
``snapshot()`` returns all four sections, so a ``/metrics`` endpoint
or a Prometheus renderer reads one object.

Cross-process aggregation mirrors the PerfRegistry shape exactly:
a fork worker snapshots before the job, ships
``HUB.delta_since(before)`` in its result record, and the parent
``HUB.merge(delta)``\\ s it.  The delta carries **histograms only** —
counters and timings already travel on the established
``record["perf"]`` path, and shipping them twice would double-count.
Gauges are point-in-time owner-process values (queue depth, in-flight)
and are never merged; the owning tier sets them at scrape time.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.perf import PERF, PerfRegistry

__all__ = [
    "Histogram",
    "MetricsHub",
    "HUB",
    "DEFAULT_BUCKETS_MS",
    "BYTE_BUCKETS",
]

#: Default latency buckets (milliseconds): sub-ms solver phases up to
#: multi-second cluster sweeps.
DEFAULT_BUCKETS_MS: Tuple[float, ...] = (
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 30000)

#: Size buckets (bytes) for request/response body histograms.
BYTE_BUCKETS: Tuple[float, ...] = (
    256, 1024, 4096, 16384, 65536, 262144, 1048576)


class Histogram:
    """Fixed-bucket histogram: per-bucket counts plus sum and count.

    ``counts[i]`` counts observations ``<= bounds[i]``; the final slot
    is the overflow (``+Inf``) bucket.  Counts are *per-bucket*, not
    cumulative — the Prometheus renderer cumulates on the way out.
    Not locked itself; the owning :class:`MetricsHub` serializes access.
    """

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BUCKETS_MS
                 ) -> None:
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        idx = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                idx = i
                break
        self.counts[idx] += 1
        self.sum += value
        self.count += 1

    def snapshot(self) -> Dict[str, Any]:
        return {
            "buckets": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }

    def delta_since(self, before: Optional[Mapping[str, Any]]
                    ) -> Optional[Dict[str, Any]]:
        if not before or list(before.get("buckets", [])) != list(
                self.bounds):
            before = None
        prev_counts = (list(before["counts"]) if before
                       else [0] * len(self.counts))
        counts = [int(c) - int(p)
                  for c, p in zip(self.counts, prev_counts)]
        count = self.count - (int(before["count"]) if before else 0)
        if count <= 0 and not any(counts):
            return None
        return {
            "buckets": list(self.bounds),
            "counts": counts,
            "sum": self.sum - (float(before["sum"]) if before else 0.0),
            "count": count,
        }

    def merge(self, delta: Mapping[str, Any]) -> bool:
        """Fold a snapshot/delta in; False when bucket bounds differ."""
        if list(delta.get("buckets", [])) != list(self.bounds):
            return False
        for i, value in enumerate(delta.get("counts", [])):
            if i < len(self.counts):
                self.counts[i] += int(value)
        self.sum += float(delta.get("sum", 0.0))
        self.count += int(delta.get("count", 0))
        return True


class MetricsHub:
    """Thread-safe histograms + gauges over a ``PerfRegistry``.

    One hub per process (the module-global ``HUB``); every tier —
    service event loop, pool workers after a fork, the cluster front —
    observes into its own copy and the deltas flow back along the
    existing result-record merge path.
    """

    def __init__(self, perf: Optional[PerfRegistry] = None) -> None:
        self._lock = threading.Lock()
        self.perf = perf if perf is not None else PERF
        self._hists: Dict[str, Histogram] = {}
        self._gauges: Dict[str, float] = {}

    # -- counters / timings delegate to the perf registry --------------
    def inc(self, key: str, amount: int = 1) -> None:
        self.perf.inc(key, amount)

    @contextmanager
    def phase(self, key: str) -> Iterator[None]:
        with self.perf.phase(key):
            yield

    # -- histograms ----------------------------------------------------
    def observe(self, name: str, value: float,
                buckets: Optional[Sequence[float]] = None) -> None:
        """Record one observation; creates the histogram on first use
        (with ``buckets``, or the default ms buckets)."""
        with self._lock:
            hist = self._hists.get(name)
            if hist is None:
                hist = Histogram(buckets or DEFAULT_BUCKETS_MS)
                self._hists[name] = hist
            hist.observe(value)

    # -- gauges --------------------------------------------------------
    def gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = float(value)

    def gauges(self, values: Mapping[str, Any]) -> None:
        """Set several gauges at once (scrape-time convenience)."""
        with self._lock:
            for name, value in values.items():
                if value is None:
                    continue
                self._gauges[name] = float(value)

    # -- snapshot / delta / merge --------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """All four sections: perf counters/timings + histograms/gauges."""
        perf = self.perf.snapshot()
        with self._lock:
            return {
                "counters": perf["counters"],
                "timings": perf["timings"],
                "histograms": {name: hist.snapshot()
                               for name, hist in self._hists.items()},
                "gauges": dict(self._gauges),
            }

    def delta_since(self, before: Mapping[str, Any]
                    ) -> Dict[str, Any]:
        """Histogram-only delta since ``before = snapshot()``.

        Counters/timings deliberately excluded: they travel on the
        ``record["perf"]`` path and must not be shipped twice.
        """
        prev = before.get("histograms", {}) if before else {}
        hists: Dict[str, Any] = {}
        with self._lock:
            for name, hist in self._hists.items():
                delta = hist.delta_since(prev.get(name))
                if delta is not None:
                    hists[name] = delta
        return {"histograms": hists} if hists else {}

    def merge(self, delta: Any) -> int:
        """Absorb a worker's histogram delta; returns histograms merged."""
        if not isinstance(delta, dict):
            return 0
        merged = 0
        with self._lock:
            for name, snap in (delta.get("histograms") or {}).items():
                if not isinstance(snap, dict):
                    continue
                hist = self._hists.get(name)
                if hist is None:
                    hist = Histogram(snap.get("buckets")
                                     or DEFAULT_BUCKETS_MS)
                    self._hists[name] = hist
                if hist.merge(snap):
                    merged += 1
        return merged

    def reset(self) -> None:
        """Clear histograms and gauges (tests); leaves perf alone."""
        with self._lock:
            self._hists.clear()
            self._gauges.clear()


#: Process-global hub over the process-global ``PERF``.
HUB = MetricsHub()
