"""Prometheus text exposition (format 0.0.4) for ``/metrics`` payloads.

The service and cluster-front ``/metrics`` endpoints keep their JSON
documents as the primary, schema-governed surface; these renderers map
those same documents to the Prometheus line format so a stock scraper
can consume them — content negotiation picks the representation.

Conventions:

* service / front counters  → ``repro_service_<name>_total`` /
  ``repro_front_<name>_total`` counters;
* perf registry counters    → ``repro_perf_counter_total{key="..."}``
  (one family with a ``key`` label, not one family per counter — the
  registry namespace is open-ended);
* perf phase timings        → ``repro_perf_phase_seconds_total{key=...}``;
* hub histograms            → ``repro_<name>`` histograms with
  cumulative ``_bucket{le=...}`` / ``_sum`` / ``_count`` series;
* hub / derived gauges      → ``repro_<name>`` gauges;
* per-shard cluster gauges  → ``repro_shard_<name>{shard="..."}``.
"""

from __future__ import annotations

import math
import re
from typing import Any, Dict, List, Mapping, Optional

__all__ = [
    "render_service_metrics",
    "render_cluster_metrics",
    "render_hub",
    "CONTENT_TYPE",
]

#: Content-Type answered for the text exposition.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_RE = re.compile(r"[^a-zA-Z0-9_]")


def _name(raw: str) -> str:
    name = _NAME_RE.sub("_", str(raw))
    if not name or name[0].isdigit():
        name = "_" + name
    return name


def _label_value(raw: Any) -> str:
    return str(raw).replace("\\", "\\\\").replace('"', '\\"') \
        .replace("\n", "\\n")


def _labels(labels: Optional[Mapping[str, Any]]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{_LABEL_RE.sub("_", str(k))}="{_label_value(v)}"'
        for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def _value(value: Any) -> str:
    try:
        number = float(value)
    except (TypeError, ValueError):
        return "0"
    if math.isinf(number):
        return "+Inf" if number > 0 else "-Inf"
    if math.isnan(number):
        return "NaN"
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


class _Writer:
    """Accumulates exposition lines, emitting TYPE once per family."""

    def __init__(self) -> None:
        self.lines: List[str] = []
        self._typed: set = set()

    def sample(self, family: str, kind: str, value: Any,
               labels: Optional[Mapping[str, Any]] = None,
               suffix: str = "") -> None:
        family = _name(family)
        if family not in self._typed:
            self.lines.append(f"# TYPE {family} {kind}")
            self._typed.add(family)
        self.lines.append(
            f"{family}{suffix}{_labels(labels)} {_value(value)}")

    def counter(self, family: str, value: Any,
                labels: Optional[Mapping[str, Any]] = None) -> None:
        self.sample(family, "counter", value, labels)

    def gauge(self, family: str, value: Any,
              labels: Optional[Mapping[str, Any]] = None) -> None:
        self.sample(family, "gauge", value, labels)

    def histogram(self, family: str, snap: Mapping[str, Any],
                  labels: Optional[Mapping[str, Any]] = None) -> None:
        """Emit cumulative buckets + sum + count for one hub snapshot
        (per-bucket counts; see :class:`repro.obs.metrics.Histogram`)."""
        family = _name(family)
        if family not in self._typed:
            self.lines.append(f"# TYPE {family} histogram")
            self._typed.add(family)
        bounds = list(snap.get("buckets", []))
        counts = list(snap.get("counts", []))
        cumulative = 0
        for bound, count in zip(bounds, counts):
            cumulative += int(count)
            bucket_labels = dict(labels or {})
            bucket_labels["le"] = _value(bound)
            self.lines.append(f"{family}_bucket{_labels(bucket_labels)} "
                              f"{cumulative}")
        bucket_labels = dict(labels or {})
        bucket_labels["le"] = "+Inf"
        total = int(snap.get("count", cumulative))
        self.lines.append(f"{family}_bucket{_labels(bucket_labels)} "
                          f"{total}")
        self.lines.append(f"{family}_sum{_labels(labels)} "
                          f"{_value(snap.get('sum', 0.0))}")
        self.lines.append(f"{family}_count{_labels(labels)} {total}")

    def text(self) -> str:
        return "\n".join(self.lines) + "\n" if self.lines else "\n"


def _numeric(value: Any) -> bool:
    return isinstance(value, bool) or isinstance(value, (int, float))


def render_hub(writer: _Writer, obs: Mapping[str, Any],
               labels: Optional[Mapping[str, Any]] = None) -> None:
    """Render a ``MetricsHub`` histograms/gauges section."""
    for hist_name, snap in sorted(
            (obs.get("histograms") or {}).items()):
        writer.histogram(f"repro_{hist_name}", snap, labels)
    for gauge_name, value in sorted((obs.get("gauges") or {}).items()):
        writer.gauge(f"repro_{gauge_name}", value, labels)


def _render_perf(writer: _Writer, perf: Mapping[str, Any]) -> None:
    for key, value in sorted((perf.get("counters") or {}).items()):
        writer.counter("repro_perf_counter_total", value, {"key": key})
    for key, value in sorted((perf.get("timings") or {}).items()):
        writer.sample("repro_perf_phase_seconds_total", "counter",
                      value, {"key": key})


def _render_stats_gauges(writer: _Writer, prefix: str,
                         stats: Mapping[str, Any]) -> None:
    for key, value in sorted(stats.items()):
        if _numeric(value):
            writer.gauge(f"{prefix}_{key}", value)


def _render_latency(writer: _Writer, prefix: str,
                    latency: Mapping[str, Any]) -> None:
    for quantile, key in (("0.5", "p50_ms"), ("0.95", "p95_ms")):
        if key in latency:
            writer.gauge(f"{prefix}_latency_ms", latency[key],
                         {"quantile": quantile})
    if "max_ms" in latency:
        writer.gauge(f"{prefix}_latency_max_ms", latency["max_ms"])
    if "count" in latency:
        writer.gauge(f"{prefix}_latency_window_count",
                     latency["count"])


def render_service_metrics(payload: Mapping[str, Any]) -> str:
    """Prometheus text for a ``repro-service-metrics/1`` document."""
    writer = _Writer()
    service = payload.get("service", {})
    for counter, value in sorted(
            (service.get("counters") or {}).items()):
        writer.counter(f"repro_service_{counter}_total", value)
    writer.gauge("repro_service_queue_depth",
                 service.get("queue_depth", 0))
    writer.gauge("repro_service_inflight", service.get("inflight", 0))
    writer.gauge("repro_service_draining",
                 1 if service.get("draining") else 0)
    writer.gauge("repro_service_jobs_retained",
                 service.get("jobs_retained", 0))
    writer.gauge("repro_service_ema_job_ms",
                 service.get("ema_job_ms", 0.0))
    _render_latency(writer, "repro_service",
                    service.get("latency") or {})
    workers = payload.get("workers", {})
    writer.gauge("repro_service_workers", workers.get("count", 0))
    for section, prefix in (("cache", "repro_cache"),
                            ("oracle", "repro_oracle")):
        stats = payload.get(section)
        if isinstance(stats, dict):
            _render_stats_gauges(writer, prefix, stats)
    _render_perf(writer, payload.get("perf") or {})
    obs = payload.get("obs")
    if isinstance(obs, dict):
        render_hub(writer, obs)
    tracer = payload.get("tracer")
    if isinstance(tracer, dict):
        writer.gauge("repro_tracer_enabled",
                     1 if tracer.get("enabled") else 0)
        writer.counter("repro_tracer_spans_total",
                       tracer.get("recorded", 0))
        writer.counter("repro_tracer_dropped_total",
                       tracer.get("dropped", 0))
    return writer.text()


def render_cluster_metrics(payload: Mapping[str, Any]) -> str:
    """Prometheus text for a ``repro-cluster-metrics/1`` document,
    including the per-shard auto-scaling gauges."""
    writer = _Writer()
    front = payload.get("front", {})
    for counter, value in sorted((front.get("counters") or {}).items()):
        writer.counter(f"repro_front_{counter}_total", value)
    writer.gauge("repro_front_ema_job_ms", front.get("ema_job_ms", 0.0))
    _render_latency(writer, "repro_front", front.get("latency") or {})
    cluster = payload.get("cluster", {})
    for counter, value in sorted(
            (cluster.get("counters") or {}).items()):
        writer.counter(f"repro_cluster_{counter}_total", value)
    for gauge in ("queue_depth", "inflight", "workers", "shards",
                  "shards_healthy"):
        if gauge in cluster:
            writer.gauge(f"repro_cluster_{gauge}", cluster[gauge])
    if "latency_p95_ms" in cluster:
        writer.gauge("repro_cluster_latency_p95_ms",
                     cluster["latency_p95_ms"])
    # Per-shard gauges: everything shard auto-scaling needs, labeled.
    for shard_name, entry in sorted(
            (payload.get("shards") or {}).items()):
        if not isinstance(entry, dict):
            continue
        labels = {"shard": shard_name}
        up = bool(entry.get("healthy")) and not entry.get("draining")
        writer.gauge("repro_shard_up", 1 if up else 0, labels)
        writer.gauge("repro_shard_draining",
                     1 if entry.get("draining") else 0, labels)
        for gauge in ("queue_depth", "inflight", "workers"):
            if gauge in entry:
                writer.gauge(f"repro_shard_{gauge}", entry[gauge],
                             labels)
        if "ema_job_ms" in entry:
            writer.gauge("repro_shard_ema_job_ms",
                         entry["ema_job_ms"], labels)
    cache = payload.get("cache")
    if isinstance(cache, dict):
        _render_stats_gauges(writer, "repro_front_cache", cache)
    obs = payload.get("obs")
    if isinstance(obs, dict):
        render_hub(writer, obs)
    return writer.text()
