"""Structured tracing: spans, ring buffer, sampling, JSONL export.

A span is a named, timed region of work carrying ``trace_id`` /
``span_id`` / ``parent_id`` identifiers plus free-form attributes.
Parenting is ambient: :meth:`Tracer.span` reads the current
:class:`SpanContext` from a ``contextvars`` variable, so nested ``with``
blocks (and ``await`` chains inside one asyncio task) form a tree
without explicit plumbing.  Crossing an execution boundary — a fork
worker, an executor thread, or an HTTP hop — is explicit: the sender
serialises the current context (:meth:`Tracer.current_dict` /
:meth:`Tracer.current_headers`) and the receiver re-activates it with
:meth:`Tracer.attach`.

Finished spans land in a bounded in-process ring buffer with a
monotonically increasing per-process sequence number, which gives the
same mark/delta/merge shape as ``PerfRegistry``: a worker calls
:meth:`mark` before the job, :meth:`spans_since` after, ships the delta
in its result record, and the parent :meth:`merge`\\ s it into its own
ring (and exporter).  Sampling is decided once per trace, at root-span
creation, with a deterministic accumulator (rate 0.25 samples exactly
every fourth root) so benchmarks and tests are reproducible without
seeding an RNG.

The tracer is disabled by default and the disabled path is a single
attribute check per ``span()`` call, so instrumentation can stay in hot
paths unconditionally.
"""

from __future__ import annotations

import contextvars
import json
import os
import threading
import time
import uuid
from collections import deque
from contextlib import contextmanager
from typing import Any, Deque, Dict, Iterator, List, Optional

__all__ = [
    "Span",
    "SpanContext",
    "Tracer",
    "JsonlExporter",
    "TRACER",
    "span",
    "current_context",
]

#: HTTP header names used for cross-hop propagation (lowercase; the
#: stdlib service server lowercases incoming header names).
TRACE_HEADER = "x-repro-trace-id"
PARENT_HEADER = "x-repro-parent-id"
SAMPLED_HEADER = "x-repro-sampled"


def _new_id() -> str:
    return uuid.uuid4().hex[:16]


class SpanContext:
    """Immutable (trace_id, span_id, sampled) triple.

    ``span_id`` is the id of the *current* span — a child created under
    this context uses it as ``parent_id``.  ``sampled=False`` contexts
    still propagate (so a whole trace is consistently dropped), but
    record nothing.
    """

    __slots__ = ("trace_id", "span_id", "sampled")

    def __init__(self, trace_id: str, span_id: str,
                 sampled: bool = True) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.sampled = bool(sampled)

    def to_dict(self) -> Dict[str, Any]:
        return {"trace_id": self.trace_id, "span_id": self.span_id,
                "sampled": self.sampled}

    @classmethod
    def from_dict(cls, data: Any) -> Optional["SpanContext"]:
        if not isinstance(data, dict):
            return None
        trace_id = data.get("trace_id")
        span_id = data.get("span_id")
        if not trace_id or not span_id:
            return None
        return cls(str(trace_id), str(span_id),
                   bool(data.get("sampled", True)))

    def to_headers(self) -> Dict[str, str]:
        return {
            TRACE_HEADER: self.trace_id,
            PARENT_HEADER: self.span_id,
            SAMPLED_HEADER: "1" if self.sampled else "0",
        }

    @classmethod
    def from_headers(cls, headers: Any) -> Optional["SpanContext"]:
        if not isinstance(headers, dict):
            return None
        trace_id = headers.get(TRACE_HEADER)
        span_id = headers.get(PARENT_HEADER)
        if not trace_id or not span_id:
            return None
        return cls(str(trace_id), str(span_id),
                   headers.get(SAMPLED_HEADER, "1") != "0")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"SpanContext(trace_id={self.trace_id!r}, "
                f"span_id={self.span_id!r}, sampled={self.sampled})")


class Span:
    """Live handle for an open span; ``set()`` adds attributes.

    The finished form is a plain dict (see :meth:`to_dict`) — that is
    what the ring buffer, the JSONL export, and worker deltas carry.
    """

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "layer",
                 "start_ns", "dur_ns", "attrs", "status", "_t0")

    def __init__(self, trace_id: str, span_id: str,
                 parent_id: Optional[str], name: str, layer: str) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.layer = layer
        self.start_ns = time.time_ns()
        self.dur_ns = 0
        self.attrs: Dict[str, Any] = {}
        self.status = "ok"
        self._t0 = time.perf_counter_ns()

    @property
    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id, True)

    @property
    def sampled(self) -> bool:
        return True

    def set(self, **attrs: Any) -> None:
        self.attrs.update(attrs)

    def finish(self) -> None:
        self.dur_ns = time.perf_counter_ns() - self._t0

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "layer": self.layer,
            "start_ns": self.start_ns,
            "dur_ns": self.dur_ns,
            "status": self.status,
        }
        if self.attrs:
            out["attrs"] = self.attrs
        return out


class _NullSpan:
    """No-op handle returned when tracing is off or the trace is
    unsampled; keeps call sites unconditional."""

    __slots__ = ()
    context = None
    sampled = False

    def set(self, **attrs: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()

_CURRENT: contextvars.ContextVar[Optional[SpanContext]] = (
    contextvars.ContextVar("repro_obs_span_context", default=None))


class JsonlExporter:
    """Appends one JSON object per finished span to a file.

    Opens lazily (so merely configuring an export path costs nothing
    until the first sampled span) and in append mode, so several
    processes — cluster front, shards — can share one file: each span
    is a single ``write()`` of one line, which is atomic enough under
    ``O_APPEND`` for the line sizes involved.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._lock = threading.Lock()
        self._handle: Optional[Any] = None

    def export(self, span_dict: Dict[str, Any]) -> None:
        line = json.dumps(span_dict, sort_keys=True,
                          separators=(",", ":")) + "\n"
        with self._lock:
            if self._handle is None:
                self._handle = open(self.path, "a", encoding="utf-8")
            self._handle.write(line)
            self._handle.flush()

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None


class Tracer:
    """Thread-safe span recorder with a bounded ring buffer."""

    DEFAULT_RING = 8192

    def __init__(self, ring_size: int = DEFAULT_RING) -> None:
        self._lock = threading.Lock()
        self.enabled = False
        self.sample_rate = 1.0
        self._sample_acc = 0.0
        self._ring: Deque[Dict[str, Any]] = deque(maxlen=ring_size)
        self._seq = 0
        self.exporter: Optional[JsonlExporter] = None
        self.dropped = 0

    # -- configuration -------------------------------------------------
    def configure(self, enabled: Optional[bool] = None,
                  sample_rate: Optional[float] = None,
                  ring_size: Optional[int] = None,
                  export_path: Optional[str] = None) -> None:
        with self._lock:
            if enabled is not None:
                self.enabled = bool(enabled)
            if sample_rate is not None:
                self.sample_rate = min(1.0, max(0.0, float(sample_rate)))
                self._sample_acc = 0.0
            if ring_size is not None:
                self._ring = deque(self._ring, maxlen=max(1, ring_size))
            if export_path is not None:
                if self.exporter is not None:
                    self.exporter.close()
                self.exporter = (JsonlExporter(export_path)
                                 if export_path else None)

    def reset(self) -> None:
        """Clear recorded spans and sampling state (tests)."""
        with self._lock:
            self._ring.clear()
            self._seq = 0
            self._sample_acc = 0.0
            self.dropped = 0

    def _sample(self) -> bool:
        # Deterministic accumulator: rate r samples every (1/r)-th
        # root trace, evenly spread, reproducible without an RNG.
        rate = self.sample_rate
        if rate >= 1.0:
            return True
        if rate <= 0.0:
            return False
        with self._lock:
            self._sample_acc += rate
            if self._sample_acc >= 1.0:
                self._sample_acc -= 1.0
                return True
            return False

    # -- context -------------------------------------------------------
    def current(self) -> Optional[SpanContext]:
        return _CURRENT.get()

    def current_dict(self) -> Optional[Dict[str, Any]]:
        """Current context as a payload-embeddable dict, or None when
        tracing is off / no sampled trace is active."""
        if not self.enabled:
            return None
        ctx = _CURRENT.get()
        if ctx is None or not ctx.sampled:
            return None
        return ctx.to_dict()

    def current_headers(self) -> Dict[str, str]:
        """Current context as HTTP headers ({} when nothing to send)."""
        if not self.enabled:
            return {}
        ctx = _CURRENT.get()
        if ctx is None or not ctx.sampled:
            return {}
        return ctx.to_headers()

    @contextmanager
    def attach(self, ctx: Any) -> Iterator[Optional[SpanContext]]:
        """Re-activate a propagated context (dict, headers-derived
        SpanContext, or None) for the duration of the block."""
        if isinstance(ctx, dict):
            ctx = SpanContext.from_dict(ctx)
        if ctx is None or not self.enabled:
            yield None
            return
        token = _CURRENT.set(ctx)
        try:
            yield ctx
        finally:
            _CURRENT.reset(token)

    # -- spans ---------------------------------------------------------
    @contextmanager
    def span(self, name: str, layer: str = "app",
             **attrs: Any) -> Iterator[Any]:
        """Open a span; yields a handle with ``.set(**attrs)``.

        Roots (no ambient context) make the sampling decision; children
        inherit it.  Unsampled paths yield a shared no-op handle.
        """
        if not self.enabled:
            yield _NULL_SPAN
            return
        parent = _CURRENT.get()
        if parent is not None:
            if not parent.sampled:
                yield _NULL_SPAN
                return
            trace_id = parent.trace_id
            parent_id: Optional[str] = parent.span_id
        else:
            if not self._sample():
                # Mark the whole trace unsampled so descendants skip
                # the sampling decision (and any propagation).
                token = _CURRENT.set(SpanContext("-", "-", sampled=False))
                try:
                    yield _NULL_SPAN
                finally:
                    _CURRENT.reset(token)
                return
            trace_id = _new_id()
            parent_id = None
        span = Span(trace_id, _new_id(), parent_id, name, layer)
        if attrs:
            span.attrs.update(attrs)
        token = _CURRENT.set(span.context)
        try:
            yield span
        except BaseException:
            span.status = "error"
            raise
        finally:
            _CURRENT.reset(token)
            span.finish()
            self._record(span.to_dict())

    def _record(self, span_dict: Dict[str, Any],
                export: bool = True) -> None:
        with self._lock:
            self._seq += 1
            span_dict["seq"] = self._seq
            if len(self._ring) == self._ring.maxlen:
                self.dropped += 1
            self._ring.append(span_dict)
            exporter = self.exporter if export else None
        if exporter is not None:
            exported = dict(span_dict)
            exported.pop("seq", None)
            exporter.export(exported)

    # -- mark / delta / merge (mirrors PerfRegistry) -------------------
    def mark(self) -> int:
        """Sequence watermark for a later :meth:`spans_since`."""
        with self._lock:
            return self._seq

    def spans_since(self, mark: int) -> List[Dict[str, Any]]:
        """Finished spans recorded after ``mark``, oldest first.

        The delta is plain data (JSON-able dicts minus the local
        ``seq``), ready to ship across a fork-pool result record.
        """
        out: List[Dict[str, Any]] = []
        with self._lock:
            for span_dict in self._ring:
                if span_dict.get("seq", 0) > mark:
                    cleaned = dict(span_dict)
                    cleaned.pop("seq", None)
                    out.append(cleaned)
        return out

    def merge(self, spans: Any) -> int:
        """Absorb a foreign span delta (e.g. from a fork worker) into
        this tracer's ring.  Returns the count merged.

        Merged spans are deliberately NOT re-exported: a worker shares
        the export configuration (pool workers inherit the live tracer
        at fork time, spawned shard processes read ``REPRO_TRACE*``
        from the environment) and has already appended its spans to
        the shared JSONL file, so exporting the delta again would
        duplicate every line.
        """
        if not spans or not self.enabled:
            return 0
        merged = 0
        for span_dict in spans:
            if not isinstance(span_dict, dict):
                continue
            if not span_dict.get("trace_id") or not span_dict.get(
                    "span_id"):
                continue
            self._record(dict(span_dict), export=False)
            merged += 1
        return merged

    def spans(self) -> List[Dict[str, Any]]:
        """All spans currently in the ring, oldest first (seq removed)."""
        return self.spans_since(0)

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "enabled": self.enabled,
                "sample_rate": self.sample_rate,
                "recorded": self._seq,
                "buffered": len(self._ring),
                "dropped": self.dropped,
                "export_path": (self.exporter.path
                                if self.exporter else None),
            }


#: Process-global tracer; forked workers inherit its configuration
#: (enabled flag, sample rate, export path) at fork time.
TRACER = Tracer()

# Environment configuration lets the flags reach cluster shard
# subprocesses and fork workers without threading arguments through
# every constructor: the supervisor / CLI export these before spawning.
_env_trace = os.environ.get("REPRO_TRACE", "")
if _env_trace and _env_trace not in ("0", "false", "no"):
    TRACER.configure(
        enabled=True,
        sample_rate=float(os.environ.get("REPRO_TRACE_SAMPLE", "1.0")),
        export_path=os.environ.get("REPRO_TRACE_EXPORT") or None,
    )


def span(name: str, layer: str = "app", **attrs: Any):
    """Module-level convenience for ``TRACER.span``."""
    return TRACER.span(name, layer=layer, **attrs)


def current_context() -> Optional[SpanContext]:
    """Module-level convenience for ``TRACER.current()``."""
    return TRACER.current()
