"""Replay a JSONL trace export as rendered span trees.

``repro trace <export.jsonl>`` loads every span line, groups them by
``trace_id``, reconstructs the parent/child tree, and prints one tree
per trace plus a per-layer attribution table.  Attribution uses *self
time* — a span's duration minus the summed durations of its direct
children (clamped at zero, since children on other machines/processes
overlap their parent only approximately) — so the table answers "where
did this request's milliseconds actually go" per layer (front /
service / worker / pipeline / solver / explore).

Spans exported by several processes land in one file in arrival order;
the renderer orders siblings by wall-clock ``start_ns``, which is good
enough across machines sharing a clock (the single-host cluster case).
Corrupt lines are counted and skipped, never fatal.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = ["load_spans", "build_traces", "render_trace", "render_file"]


def load_spans(path: str) -> Tuple[List[Dict[str, Any]], int]:
    """Parse a JSONL export; returns (spans, corrupt line count)."""
    spans: List[Dict[str, Any]] = []
    corrupt = 0
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                span = json.loads(line)
            except ValueError:
                corrupt += 1
                continue
            if (isinstance(span, dict) and span.get("trace_id")
                    and span.get("span_id") and span.get("name")):
                spans.append(span)
            else:
                corrupt += 1
    return spans, corrupt


class TraceTree:
    """One trace's spans, indexed for tree walking."""

    def __init__(self, trace_id: str,
                 spans: List[Dict[str, Any]]) -> None:
        self.trace_id = trace_id
        self.spans = spans
        self.by_id = {s["span_id"]: s for s in spans}
        self.children: Dict[Optional[str], List[Dict[str, Any]]] = {}
        for span in spans:
            parent = span.get("parent_id")
            # A parent that never arrived (unsampled, dropped from a
            # ring, or exported elsewhere) orphans the span to a root.
            if parent is not None and parent not in self.by_id:
                parent = None
            self.children.setdefault(parent, []).append(span)
        for siblings in self.children.values():
            siblings.sort(key=lambda s: (s.get("start_ns", 0),
                                         s.get("span_id", "")))

    @property
    def roots(self) -> List[Dict[str, Any]]:
        return self.children.get(None, [])

    @property
    def start_ns(self) -> int:
        return min((s.get("start_ns", 0) for s in self.spans),
                   default=0)

    def total_ms(self) -> float:
        return sum(s.get("dur_ns", 0) for s in self.roots) / 1e6

    def self_ms(self, span: Dict[str, Any]) -> float:
        kids = self.children.get(span["span_id"], [])
        child_ns = sum(k.get("dur_ns", 0) for k in kids)
        return max(0, span.get("dur_ns", 0) - child_ns) / 1e6

    def layer_attribution(self) -> Dict[str, Dict[str, float]]:
        """Per-layer {self_ms, spans} over the whole trace."""
        out: Dict[str, Dict[str, float]] = {}
        for span in self.spans:
            layer = span.get("layer") or "app"
            entry = out.setdefault(layer, {"self_ms": 0.0, "spans": 0})
            entry["self_ms"] += self.self_ms(span)
            entry["spans"] += 1
        return out


def build_traces(spans: Iterable[Dict[str, Any]]) -> List[TraceTree]:
    """Group spans into traces, most recently started first."""
    grouped: Dict[str, List[Dict[str, Any]]] = {}
    for span in spans:
        grouped.setdefault(str(span["trace_id"]), []).append(span)
    trees = [TraceTree(trace_id, group)
             for trace_id, group in grouped.items()]
    trees.sort(key=lambda t: t.start_ns, reverse=True)
    return trees


def _attr_text(span: Dict[str, Any]) -> str:
    attrs = span.get("attrs") or {}
    if not attrs:
        return ""
    inner = " ".join(f"{k}={attrs[k]}" for k in sorted(attrs))
    return f"  [{inner}]"


def render_trace(tree: TraceTree, max_depth: int = 32) -> str:
    """One trace as an indented tree plus its layer table."""
    lines = [f"trace {tree.trace_id}  "
             f"({len(tree.spans)} spans, {tree.total_ms():.1f} ms)"]

    def walk(span: Dict[str, Any], depth: int) -> None:
        dur_ms = span.get("dur_ns", 0) / 1e6
        marker = " !" if span.get("status") == "error" else ""
        lines.append(f"{'  ' * depth}- {span.get('name')} "
                     f"({span.get('layer', 'app')}) "
                     f"{dur_ms:.2f} ms{marker}{_attr_text(span)}")
        if depth < max_depth:
            for child in tree.children.get(span["span_id"], []):
                walk(child, depth + 1)

    for root in tree.roots:
        walk(root, 1)
    attribution = tree.layer_attribution()
    if attribution:
        lines.append("  per-layer self time:")
        total = sum(e["self_ms"] for e in attribution.values()) or 1.0
        for layer, entry in sorted(attribution.items(),
                                   key=lambda kv: -kv[1]["self_ms"]):
            share = 100.0 * entry["self_ms"] / total
            lines.append(f"    {layer:10s} {entry['self_ms']:10.2f} ms "
                         f"({share:5.1f}%)  "
                         f"{int(entry['spans'])} spans")
    return "\n".join(lines)


def render_file(path: str, trace_id: Optional[str] = None,
                limit: int = 0) -> Tuple[str, int]:
    """Render an export file; returns (text, trace count rendered)."""
    spans, corrupt = load_spans(path)
    trees = build_traces(spans)
    if trace_id:
        trees = [t for t in trees if t.trace_id.startswith(trace_id)]
    if limit > 0:
        trees = trees[:limit]
    blocks = [render_trace(tree) for tree in trees]
    if corrupt:
        blocks.append(f"({corrupt} corrupt line"
                      f"{'s' if corrupt != 1 else ''} skipped)")
    return "\n\n".join(blocks), len(trees)
