"""Lightweight performance instrumentation for the solver stack.

A process-global :class:`PerfRegistry` (``PERF``) accumulates integer
counters (pivots, cuts, cache hits, ...) and phase wall times.  The hot
paths pay one dict increment per event, so the counters stay on even in
production runs; flows snapshot/delta the registry to attribute costs to
a single synthesis call, and ``benchmarks/run_all.py`` serializes the
deltas into ``BENCH_ilp.json`` so successive PRs have a perf trajectory.

Counter namespaces used across the repo:

* ``tableau.*``  — pivot counts and undo-log rollbacks
  (:mod:`repro.ilp.tableau`);
* ``gomory.*``   — cuts, pivots, probe/commit counts
  (:mod:`repro.ilp.gomory`);
* ``simplex.*``  — LP solves (:mod:`repro.ilp.simplex`);
* ``bnb.*``      — branch & bound nodes (:mod:`repro.ilp.branch_bound`);
* ``pin.*``      — feasibility-oracle checks and cache hits
  (:mod:`repro.core.pin_allocation`).

Phase timers (``PERF.phase``) follow the same naming; flows record
``flow.simple`` / ``flow.connection_first`` / ``flow.schedule_first``.
"""

from __future__ import annotations

import threading
import time
from collections import defaultdict
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, Mapping, Optional

#: Optional observer for phase regions: a callable returning a context
#: manager, entered for the duration of every ``PERF.phase(key)``
#: block.  ``repro.obs`` installs a span-emitting hook here so the
#: existing solver phase markers double as trace spans without the
#: solver importing the tracing layer (or paying anything while
#: tracing is disabled — the installed hook no-ops then).
_PHASE_HOOK: Optional[Callable[[str], object]] = None


def set_phase_hook(hook: Optional[Callable[[str], object]]) -> None:
    """Install (or clear, with None) the global phase observer."""
    global _PHASE_HOOK
    _PHASE_HOOK = hook


class PerfRegistry:
    """Counters plus phase wall-clock accumulators.

    Thread-safe: the synthesis service reads ``snapshot()`` (its
    ``/metrics`` endpoint) while warm-pool workers increment counters,
    so every mutation and every read of the underlying dicts is guarded
    by an ``RLock``.  The lock is uncontended in single-threaded runs
    and an order of magnitude cheaper than the work between ticks, so
    the hot paths keep paying one increment per event.
    """

    __slots__ = ("counters", "timings", "_lock")

    def __init__(self) -> None:
        self.counters: Dict[str, int] = defaultdict(int)
        self.timings: Dict[str, float] = defaultdict(float)
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    def inc(self, key: str, amount: int = 1) -> None:
        with self._lock:
            self.counters[key] += amount

    @contextmanager
    def phase(self, key: str) -> Iterator[None]:
        """Accumulate wall time under ``timings[key]``."""
        hook_cm = _PHASE_HOOK(key) if _PHASE_HOOK is not None else None
        if hook_cm is not None:
            hook_cm.__enter__()
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            with self._lock:
                self.timings[key] += elapsed
            if hook_cm is not None:
                hook_cm.__exit__(None, None, None)

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, float]]:
        # Counters are integers by contract; coerce on the way out so a
        # float that slipped in via ``inc(amount=...)`` cannot drift the
        # serialized snapshots that cross process boundaries.
        with self._lock:
            return {
                "counters": {k: int(v) for k, v in self.counters.items()},
                "timings": {k: float(v) for k, v in self.timings.items()},
            }

    def delta_since(self, before: Mapping[str, Mapping[str, float]]
                    ) -> Dict[str, Dict[str, float]]:
        """Counters/timings accumulated since ``before = snapshot()``."""
        prev_c = before.get("counters", {})
        prev_t = before.get("timings", {})
        with self._lock:
            counters = {k: int(v) - int(prev_c.get(k, 0))
                        for k, v in self.counters.items()
                        if int(v) - int(prev_c.get(k, 0))}
            timings = {k: v - prev_t.get(k, 0.0)
                       for k, v in self.timings.items()
                       if v - prev_t.get(k, 0.0) > 0.0}
        return {"counters": counters, "timings": timings}

    def merge(self, other) -> None:
        """Fold another registry (or a snapshot/delta dict) into this one.

        This is the cross-process aggregation primitive: explorer
        workers ship ``PERF.delta_since(...)`` dicts back over the
        process boundary (where JSON may have turned counters into
        floats), and the parent merges them so a sweep's solver effort
        is attributable as if it had run in one process.  Counters stay
        integers; timings stay floats.
        """
        if isinstance(other, PerfRegistry):
            other = other.snapshot()
        with self._lock:
            for key, value in (other.get("counters") or {}).items():
                self.counters[key] += int(round(value))
            for key, value in (other.get("timings") or {}).items():
                self.timings[key] += float(value)

    def reset(self) -> None:
        with self._lock:
            self.counters.clear()
            self.timings.clear()


#: Process-global registry; cheap enough to leave always on.
PERF = PerfRegistry()
