"""Persistent warm worker pool for the synthesis service.

One pool outlives every request, which is the whole point of serving:
fork-mode workers inherit the parent's already-imported solver stack
(no per-request interpreter or import cost), and :meth:`warmup`
pre-forks every worker *before* the server accepts traffic so no fork
happens while other threads hold locks (the classic fork-vs-threads
hazard) and the first real request pays no pool spin-up.

``mode="thread"`` runs the same job function on an in-process thread
pool — what the test suite uses (runners are injectable closures
there) and the fallback for platforms without ``fork``.  Jobs are the
explorer's plain-data payloads executed by
:func:`repro.explore.worker.run_job`, so the service, the explorer,
and the process boundary all share one job contract.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
from concurrent.futures import (ProcessPoolExecutor, ThreadPoolExecutor,
                                wait)
from typing import Any, Callable, Dict, Mapping, Optional

from repro.errors import ReproError
from repro.explore.worker import run_job


def _warm_probe() -> int:
    """No-op task that forces a worker to exist (and pre-imports the
    solver stack in spawn-mode children; fork children are born warm)."""
    import repro.core.flow  # noqa: F401
    return os.getpid()


class WorkerPool:
    """A warm executor with an async job interface."""

    def __init__(self, workers: int = 2, mode: str = "process",
                 job_runner: Optional[Callable[[Mapping[str, Any]],
                                               Dict[str, Any]]] = None
                 ) -> None:
        self.workers = max(1, int(workers))
        self.mode = mode
        self.run_job = job_runner if job_runner is not None else run_job
        #: Readiness signal: True once :meth:`warmup` has pre-spawned
        #: every worker.  ``/healthz`` reports 503 until then.
        self.warmed = False
        if mode == "process":
            try:
                context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX fallback
                context = multiprocessing.get_context()
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=context)
        elif mode == "thread":
            self._executor = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="repro-worker")
        else:
            raise ReproError(
                f"unknown pool mode {mode!r}; expected "
                f"'process' or 'thread'")

    # ------------------------------------------------------------------
    def warmup(self, timeout_s: float = 30.0) -> None:
        """Pre-spawn every worker before traffic arrives."""
        futures = [self._executor.submit(_warm_probe)
                   for _ in range(self.workers)]
        wait(futures, timeout=timeout_s)
        self.warmed = True

    async def run(self, payload: Mapping[str, Any]) -> Dict[str, Any]:
        """Execute one job on the pool without blocking the loop."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._executor, self.run_job, payload)

    def shutdown(self, wait_for_jobs: bool = True) -> None:
        self._executor.shutdown(wait=wait_for_jobs)
